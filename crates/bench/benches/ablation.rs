//! Ablation benches for the calibration choices documented in DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use gnc_bench::{ablate_noise_mean, ablate_sender_warps, platform, Scale};

fn bench(c: &mut Criterion) {
    let cfg = platform();
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));
    group.warm_up_time(std::time::Duration::from_secs(2));
    group.bench_function("noise_mean_sweep", |b| {
        b.iter(|| {
            let sweep = ablate_noise_mean(&cfg, Scale::Quick);
            // Zero noise decodes perfectly at any iteration count.
            assert!(sweep[0].1 < 0.02 && sweep[0].2 < 0.02);
            sweep
        })
    });
    group.bench_function("sender_warp_sweep", |b| {
        b.iter(|| ablate_sender_warps(&cfg, Scale::Quick))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
