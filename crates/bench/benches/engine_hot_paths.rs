//! Microbench: the per-cycle cost of the engine's three hottest
//! component ticks — a saturated concentrator mux, a saturated
//! crossbar, and an L2 slice streaming misses through its DRAM
//! controller. These are the paths the event-calendar engine pays on
//! every *processed* cycle, so their cost bounds the simulator's
//! throughput once fast-forwarding has removed the dead cycles.

use criterion::{criterion_group, criterion_main, Criterion};
use gnc_common::config::{Arbitration, NocConfig};
use gnc_common::ids::{SliceId, SmId, WarpId};
use gnc_common::GpuConfig;
use gnc_mem::dram::DramController;
use gnc_mem::l2::L2Slice;
use gnc_noc::crossbar::Crossbar;
use gnc_noc::mux::ConcentratorMux;
use gnc_noc::packet::{Packet, PacketId, PacketKind};
use gnc_sim::gpu::Gpu;

fn packet(id: u64, input: usize, slice: usize, kind: PacketKind, now: u64) -> Packet {
    Packet {
        id: PacketId(id),
        kind,
        sm: SmId::new(input),
        warp: WarpId::new(0),
        slice: SliceId::new(slice),
        addr: id * 128,
        data_bytes: 32,
        injected_at: now,
        group: id,
    }
}

/// A 2:1 TPC-style mux kept saturated: every cycle pays arbitration,
/// a flit drain, and a delay-line hop — the request fabric ticks 46 of
/// these per cycle.
fn mux_saturated(cycles: u64) -> u64 {
    let noc = NocConfig::default();
    let mut mux = ConcentratorMux::new(2, 1, 2, 8, Arbitration::RoundRobin, &noc);
    let mut next = 0u64;
    let mut delivered = 0u64;
    for now in 0..cycles {
        for input in 0..2 {
            if mux.can_accept(input) {
                let p = packet(next, input, 0, PacketKind::WriteRequest, now);
                if mux.try_push(input, p).is_ok() {
                    next += 1;
                }
            }
        }
        mux.tick(now);
        while mux.pop_delivered(now).is_some() {
            delivered += 1;
        }
    }
    delivered
}

/// A 6-input crossbar with traffic spread over 8 outputs — the shape of
/// the request fabric's GPC → slice stage under an all-SMs streaming
/// workload (occupied outputs tick, empty ones are mask-skipped).
fn crossbar_spread(cycles: u64) -> u64 {
    let noc = NocConfig::default();
    let mut xbar = Crossbar::new(6, 8, 1, 2, 8, Arbitration::RoundRobin, &noc);
    let mut next = 0u64;
    let mut delivered = 0u64;
    for now in 0..cycles {
        for input in 0..6 {
            let output = (next % 8) as usize;
            if xbar.can_accept(input, output) {
                let p = packet(next, input, output, PacketKind::ReadRequest, now);
                if xbar.try_push(input, output, p).is_ok() {
                    next += 1;
                }
            }
        }
        xbar.tick(now);
        for output in 0..8 {
            while xbar.pop_delivered(output, now).is_some() {
                delivered += 1;
            }
        }
    }
    delivered
}

/// One L2 slice streaming misses: every request walks the lookup
/// pipeline, allocates an MSHR, round-trips the DRAM controller, and
/// retires through the batched fill path.
fn l2_miss_stream(cycles: u64) -> u64 {
    let cfg = GpuConfig::volta_v100();
    let mut slice = L2Slice::new(SliceId::new(0), &cfg);
    let mut dram = DramController::new(&cfg.mem);
    let mut next = 0u64;
    let mut replies = 0u64;
    for now in 0..cycles {
        // One fresh line per cycle (addresses stride a whole slice set
        // apart so every access misses).
        let p = Packet {
            addr: next * 128 * 48,
            ..packet(next, 0, 0, PacketKind::ReadRequest, now)
        };
        slice.push_request(p, now);
        next += 1;
        slice.tick(now, &mut dram);
        while slice.pop_reply().is_some() {
            replies += 1;
        }
    }
    replies
}

/// Per-trial machine bring-up, both ways: constructing a full 80-SM
/// Volta from scratch versus restoring a pooled machine with
/// `Gpu::reset`. The gap between these two is exactly what the
/// build-once/reset-many sweep engine saves on every trial after the
/// first.
fn construction_vs_reset(c: &mut Criterion) {
    let cfg = GpuConfig::volta_v100();
    let mut group = c.benchmark_group("construction_vs_reset");
    group.sample_size(20);
    group.bench_function("construct_volta", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            Gpu::with_clock_seed(cfg.clone(), seed).expect("valid config")
        });
    });
    group.bench_function("reset_volta", |b| {
        let mut gpu = Gpu::with_clock_seed(cfg.clone(), 0).expect("valid config");
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            gpu.reset(seed);
        });
    });
    group.finish();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_hot_paths");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(10));
    group.warm_up_time(std::time::Duration::from_secs(2));
    group.bench_function("mux_saturated_10k_cycles", |b| {
        b.iter(|| mux_saturated(10_000));
    });
    group.bench_function("crossbar_spread_10k_cycles", |b| {
        b.iter(|| crossbar_spread(10_000));
    });
    group.bench_function("l2_miss_stream_10k_cycles", |b| {
        b.iter(|| l2_miss_stream(10_000));
    });
    group.finish();
}

criterion_group!(benches, bench, construction_vs_reset);
criterion_main!(benches);
