//! Microbench: the per-cycle cost of the engine's hottest component
//! ticks — a saturated concentrator mux, a lone saturated sender (the
//! fig 3/8 covert-channel shape), a saturated crossbar, and an L2 slice
//! streaming misses through its DRAM controller. These are the paths
//! the event-calendar engine pays on every *processed* cycle, so their
//! cost bounds the simulator's throughput once fast-forwarding has
//! removed the dead cycles.
//!
//! The loop bodies live in [`gnc_bench::micro`] so the Criterion
//! benches, the CLI's bench reports, and CI's perf-smoke gate all
//! measure the exact same workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use gnc_bench::micro::{crossbar_spread, l2_miss_stream, mux_lone_sender, mux_saturated};
use gnc_common::GpuConfig;
use gnc_sim::gpu::Gpu;

/// Per-trial machine bring-up, both ways: constructing a full 80-SM
/// Volta from scratch versus restoring a pooled machine with
/// `Gpu::reset`. The gap between these two is exactly what the
/// build-once/reset-many sweep engine saves on every trial after the
/// first.
fn construction_vs_reset(c: &mut Criterion) {
    let cfg = GpuConfig::volta_v100();
    let mut group = c.benchmark_group("construction_vs_reset");
    group.sample_size(20);
    group.bench_function("construct_volta", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            Gpu::with_clock_seed(cfg.clone(), seed).expect("valid config")
        });
    });
    group.bench_function("reset_volta", |b| {
        let mut gpu = Gpu::with_clock_seed(cfg.clone(), 0).expect("valid config");
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            gpu.reset(seed);
        });
    });
    group.finish();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_hot_paths");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(10));
    group.warm_up_time(std::time::Duration::from_secs(2));
    group.bench_function("mux_saturated_10k_cycles", |b| {
        b.iter(|| mux_saturated(10_000));
    });
    group.bench_function("mux_lone_sender_10k_cycles", |b| {
        b.iter(|| mux_lone_sender(10_000));
    });
    group.bench_function("crossbar_spread_10k_cycles", |b| {
        b.iter(|| crossbar_spread(10_000));
    });
    group.bench_function("l2_miss_stream_10k_cycles", |b| {
        b.iter(|| l2_miss_stream(10_000));
    });
    group.finish();
}

criterion_group!(benches, bench, construction_vs_reset);
criterion_main!(benches);
