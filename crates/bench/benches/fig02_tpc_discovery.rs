//! Bench: regenerate Fig 2 (TPC channel discovery sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use gnc_bench::{fig02, platform, Scale};

fn bench(c: &mut Criterion) {
    let cfg = platform();
    let mut group = c.benchmark_group("fig02");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));
    group.warm_up_time(std::time::Duration::from_secs(2));
    group.bench_function("tpc_discovery_sweep", |b| {
        b.iter(|| {
            let sweep = fig02(&cfg, Scale::Quick);
            // Shape check: only the TPC sibling shows ~2x.
            assert!(sweep.iter().filter(|p| p.normalized > 1.5).count() == 1);
            sweep
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
