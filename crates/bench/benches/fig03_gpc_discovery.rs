//! Bench: regenerate Fig 3 (GPC membership scan, probe TPC0).

use criterion::{criterion_group, criterion_main, Criterion};
use gnc_bench::{platform, Scale};
use gnc_covert::reverse::gpc_scan;

fn bench(c: &mut Criterion) {
    let cfg = platform();
    let mut group = c.benchmark_group("fig03");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));
    group.warm_up_time(std::time::Duration::from_secs(2));
    group.bench_function("gpc_scan_probe0", |b| {
        b.iter(|| {
            let scan = gpc_scan(&cfg, 0, 12, 12, 3);
            let _ = Scale::Quick;
            scan.same_gpc_candidates()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
