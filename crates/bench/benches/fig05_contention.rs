//! Bench: regenerate Fig 5 (read/write contention at TPC and GPC level).

use criterion::{criterion_group, criterion_main, Criterion};
use gnc_bench::{fig05, platform, Scale};

fn bench(c: &mut Criterion) {
    let cfg = platform();
    let mut group = c.benchmark_group("fig05");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));
    group.warm_up_time(std::time::Duration::from_secs(2));
    group.bench_function("contention_characterisation", |b| {
        b.iter(|| {
            let f = fig05(&cfg, Scale::Quick);
            assert!(f.tpc.write_slowdown > 1.5);
            f
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
