//! Bench: regenerate Fig 6 (clock register snapshot + skew statistics).

use criterion::{criterion_group, criterion_main, Criterion};
use gnc_bench::{fig06, platform, Scale};

fn bench(c: &mut Criterion) {
    let cfg = platform();
    let mut group = c.benchmark_group("fig06");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));
    group.warm_up_time(std::time::Duration::from_secs(2));
    group.bench_function("clock_snapshot_and_skew", |b| {
        b.iter(|| {
            let f = fig06(&cfg, Scale::Quick);
            assert!(f.stats.avg_tpc_skew < 5.0);
            f
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
