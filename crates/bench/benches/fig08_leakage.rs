//! Bench: regenerate Fig 8 (interconnect channel leakage sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use gnc_bench::{fig08, platform, Scale};

fn bench(c: &mut Criterion) {
    let cfg = platform();
    let mut group = c.benchmark_group("fig08");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));
    group.warm_up_time(std::time::Duration::from_secs(2));
    group.bench_function("leakage_sweep", |b| {
        b.iter(|| {
            let f = fig08(&cfg, Scale::Quick);
            assert!(f.sibling.last().unwrap().normalized > f.distant.last().unwrap().normalized);
            f
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
