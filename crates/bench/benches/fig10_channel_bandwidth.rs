//! Bench: regenerate Fig 10 operating points (single-TPC and multi-TPC
//! transmissions at the paper's iteration counts).

use criterion::{criterion_group, criterion_main, Criterion};
use gnc_bench::platform;
use gnc_common::bits::BitVec;
use gnc_common::rng::experiment_rng;
use gnc_covert::channel::ChannelPlan;
use gnc_covert::protocol::ProtocolConfig;

fn bench(c: &mut Criterion) {
    let cfg = platform();
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));
    group.warm_up_time(std::time::Duration::from_secs(2));
    group.bench_function("tpc_channel_k4_24bits", |b| {
        let plan = ChannelPlan::tpc(&cfg, ProtocolConfig::tpc(4), &[0]);
        let mut rng = experiment_rng("bench-fig10", 0);
        let payload = BitVec::random(&mut rng, 24);
        b.iter(|| {
            let report = plan.transmit(&cfg, &payload, 1);
            assert!(report.error_rate < 0.1);
            report.bandwidth_bps
        })
    });
    group.bench_function("multi_tpc_k5_400bits", |b| {
        let plan = ChannelPlan::multi_tpc(&cfg, ProtocolConfig::tpc(5));
        let mut rng = experiment_rng("bench-fig10", 1);
        let payload = BitVec::random(&mut rng, 400);
        b.iter(|| {
            let report = plan.transmit(&cfg, &payload, 2);
            assert!(report.error_rate < 0.05);
            report.bandwidth_bps
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
