//! Bench: regenerate Fig 13 (coalescing error matrix).

use criterion::{criterion_group, criterion_main, Criterion};
use gnc_bench::{fig13, platform, Scale};

fn bench(c: &mut Criterion) {
    let cfg = platform();
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));
    group.warm_up_time(std::time::Duration::from_secs(2));
    group.bench_function("coalescing_matrix", |b| {
        b.iter(|| {
            let m = fig13(&cfg, Scale::Quick);
            assert!(m.coalesced_both > m.uncoalesced_both);
            m
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
