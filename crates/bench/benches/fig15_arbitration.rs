//! Bench: regenerate Fig 15 (arbitration policy comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use gnc_bench::platform;
use gnc_common::config::Arbitration;
use gnc_covert::countermeasure::arbitration_sweep;

fn bench(c: &mut Criterion) {
    let cfg = platform();
    let mut group = c.benchmark_group("fig15");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));
    group.warm_up_time(std::time::Duration::from_secs(2));
    group.bench_function("rr_crr_srr_sweep", |b| {
        b.iter(|| {
            let sweep = arbitration_sweep(
                &cfg,
                &[
                    Arbitration::RoundRobin,
                    Arbitration::CoarseRoundRobin,
                    Arbitration::StrictRoundRobin,
                ],
                &[0.5, 1.0],
                24,
                0,
            );
            sweep
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
