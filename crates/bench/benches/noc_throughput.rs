//! Microbench: raw fabric throughput (simulator ablation — cost of the
//! arbitration policies on the hot path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gnc_common::config::{Arbitration, NocConfig};
use gnc_common::ids::{SliceId, SmId, WarpId};
use gnc_noc::mux::ConcentratorMux;
use gnc_noc::packet::{Packet, PacketId, PacketKind};

fn saturate(policy: Arbitration, cycles: u64) -> u64 {
    let noc = NocConfig::default();
    let mut mux = ConcentratorMux::new(2, 1, 0, 8, policy, &noc);
    let mut next = 0u64;
    let mut delivered = 0u64;
    for now in 0..cycles {
        for input in 0..2 {
            if mux.can_accept(input) {
                let p = Packet {
                    id: PacketId(next),
                    kind: PacketKind::WriteRequest,
                    sm: SmId::new(input),
                    warp: WarpId::new(0),
                    slice: SliceId::new(0),
                    addr: next * 128,
                    data_bytes: 4,
                    injected_at: now,
                    group: next,
                };
                if mux.try_push(input, p).is_ok() {
                    next += 1;
                }
            }
        }
        mux.tick(now);
        while mux.pop_delivered(now).is_some() {
            delivered += 1;
        }
    }
    delivered
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc_throughput");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));
    group.warm_up_time(std::time::Duration::from_secs(2));
    for policy in Arbitration::ALL {
        group.bench_with_input(
            BenchmarkId::new("mux_saturated", policy.label()),
            &policy,
            |b, &policy| b.iter(|| saturate(policy, 10_000)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
