//! Bench: BER-vs-noise curves — naive vs hardened decoding and
//! ACK/NACK delivery rate across the fault-injection presets.

use criterion::{criterion_group, criterion_main, Criterion};
use gnc_bench::{noise_sweep, platform, Scale};

fn bench(c: &mut Criterion) {
    let cfg = platform();
    let mut group = c.benchmark_group("noise_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(30));
    group.warm_up_time(std::time::Duration::from_secs(2));
    group.bench_function("presets_naive_vs_hardened", |b| {
        b.iter(|| {
            let points = noise_sweep(&cfg, Scale::Quick);
            // The hardened decoder must not lose to a naive decoder that
            // still has signal.
            for p in &points {
                assert!(
                    p.hardened_ber <= p.naive_ber || p.naive_ber > 0.25,
                    "{}: hardened {} vs naive {}",
                    p.preset,
                    p.hardened_ber,
                    p.naive_ber
                );
            }
            points
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
