//! Bench: the §6 SRR performance-cost measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use gnc_bench::{platform, srr_cost, Scale};

fn bench(c: &mut Criterion) {
    let cfg = platform();
    let mut group = c.benchmark_group("srr_overhead");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));
    group.warm_up_time(std::time::Duration::from_secs(2));
    group.bench_function("memory_vs_compute", |b| {
        b.iter(|| {
            let r = srr_cost(&cfg, Scale::Quick);
            assert!(r.memory_intensive_slowdown > r.compute_intensive_slowdown);
            r
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
