//! Regenerates the paper's tables and figures on the simulator.
//!
//! ```text
//! figures [--full] [--json DIR] [--fig N]... [--table N]... [--srr-overhead] [--noise-sweep] [--all]
//!         [--jobs N] [--bench PATH] [--bench-baseline SECS] [--telemetry DIR]
//! ```
//!
//! With no selection flags, everything is produced. `--full` uses
//! paper-fidelity trial counts (slow); the default quick scale keeps the
//! whole run in minutes. `--json DIR` additionally writes each result as
//! a JSON series for plotting. `--jobs N` caps the worker pool used by
//! the parallel sweeps (default: all cores). `--bench PATH` writes a
//! wall-clock/throughput report as JSON when the run finishes;
//! `--bench-baseline SECS` records a reference wall-clock (e.g. the
//! committed pre-optimization number) and the resulting speedup.
//! `--telemetry DIR` re-runs the Fig 5 and Fig 10 workloads with a live
//! collector attached and writes per-component utilization reports plus
//! Chrome-trace flit timelines into DIR (plain result JSONs are
//! unaffected — they always come from uninstrumented runs).

use gnc_bench::*;
use gnc_common::SimError;
use serde::Serialize;
use std::collections::BTreeSet;
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    scale: Scale,
    json_dir: Option<PathBuf>,
    figs: BTreeSet<u32>,
    tables: BTreeSet<u32>,
    srr: bool,
    ablation: bool,
    noise: bool,
    bench: Option<PathBuf>,
    bench_baseline_s: Option<f64>,
    telemetry_dir: Option<PathBuf>,
}

/// The report written by `--bench PATH`.
#[derive(Serialize)]
struct BenchReport {
    scale: String,
    jobs: usize,
    wall_clock_s: f64,
    /// Trials simulated during the run: one GPU instance each, whether
    /// built fresh or reset in place from the worker's pool.
    trials: u64,
    /// Trials that constructed a machine from scratch.
    gpus_built: u64,
    /// Trials served by `Gpu::reset` on a pooled machine.
    gpus_reset: u64,
    trials_per_s: f64,
    /// Reference wall-clock passed via `--bench-baseline`, if any.
    #[serde(skip_serializing_if = "Option::is_none")]
    baseline_wall_clock_s: Option<f64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    speedup: Option<f64>,
    /// Per-cycle cost of the engine's hot loops, measured after the
    /// workload finishes (excluded from `wall_clock_s`) so every bench
    /// report is self-describing about the engine it ran on.
    microbench_ns_per_cycle: micro::MicroTrio,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale::Quick,
        json_dir: None,
        figs: BTreeSet::new(),
        tables: BTreeSet::new(),
        srr: false,
        ablation: false,
        noise: false,
        bench: None,
        bench_baseline_s: None,
        telemetry_dir: None,
    };
    let mut all = true;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => args.scale = Scale::Full,
            "--json" => {
                args.json_dir = Some(PathBuf::from(
                    iter.next().expect("--json requires a directory"),
                ));
            }
            "--jobs" => {
                let n: usize = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs requires a number");
                gnc_common::par::set_jobs(n);
            }
            "--bench" => {
                args.bench = Some(PathBuf::from(iter.next().expect("--bench requires a path")));
            }
            "--bench-baseline" => {
                args.bench_baseline_s = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--bench-baseline requires seconds"),
                );
            }
            "--telemetry" => {
                args.telemetry_dir = Some(PathBuf::from(
                    iter.next().expect("--telemetry requires a directory"),
                ));
            }
            "--fig" => {
                all = false;
                args.figs.insert(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--fig requires a number"),
                );
            }
            "--table" => {
                all = false;
                args.tables.insert(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--table requires a number"),
                );
            }
            "--srr-overhead" => {
                all = false;
                args.srr = true;
            }
            "--ablation" => {
                all = false;
                args.ablation = true;
            }
            "--noise-sweep" => {
                all = false;
                args.noise = true;
            }
            "--all" => all = true,
            other => panic!("unknown argument {other}"),
        }
    }
    if all {
        args.figs
            .extend([2, 3, 4, 5, 6, 8, 9, 10, 11, 12, 13, 14, 15]);
        args.tables.extend([1, 2]);
        args.srr = true;
        args.ablation = true;
        args.noise = true;
    }
    args
}

/// Re-runs the Fig 5 and Fig 10 workloads instrumented and writes, per
/// workload: `telemetry_<name>.json` (the utilization report),
/// `telemetry_<name>_trace.jsonl` (flit events), and
/// `telemetry_<name>_trace.json` (Chrome `trace_event` timeline, load
/// into `chrome://tracing` or Perfetto). Also prints the contention
/// heatmap and channel-utilization table.
fn run_telemetry(cfg: &gnc_common::GpuConfig, scale: Scale, dir: &std::path::Path) {
    std::fs::create_dir_all(dir)
        .map_err(|e| SimError::io("create telemetry directory", dir.display(), &e))
        .unwrap_or_else(|e| bail(&e));
    let write = |name: &str, collector: &gnc_common::telemetry::Collector| {
        let report = collector.report();
        let path = dir.join(format!("telemetry_{name}.json"));
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| SimError::Journal {
                path: path.display().to_string(),
                reason: format!("telemetry report failed to serialize: {e}"),
            })
            .unwrap_or_else(|e| bail(&e));
        std::fs::write(&path, json)
            .map_err(|e| SimError::io("write telemetry report", path.display(), &e))
            .unwrap_or_else(|e| bail(&e));
        println!("  [telemetry] {}", path.display());
        let jsonl = dir.join(format!("telemetry_{name}_trace.jsonl"));
        std::fs::File::create(&jsonl)
            .and_then(|f| {
                let mut w = std::io::BufWriter::new(f);
                collector.write_trace_jsonl(&mut w)?;
                w.flush()
            })
            .map_err(|e| SimError::io("write flit trace", jsonl.display(), &e))
            .unwrap_or_else(|e| bail(&e));
        println!("  [telemetry] {}", jsonl.display());
        let chrome = dir.join(format!("telemetry_{name}_trace.json"));
        std::fs::File::create(&chrome)
            .and_then(|f| {
                let mut w = std::io::BufWriter::new(f);
                collector.write_chrome_trace(&mut w)?;
                w.flush()
            })
            .map_err(|e| SimError::io("write Chrome trace", chrome.display(), &e))
            .unwrap_or_else(|e| bail(&e));
        println!("  [telemetry] {}", chrome.display());
        println!("{}", report.heatmap_ascii());
        println!("{}", report.utilization_table_ascii());
    };
    println!("== Telemetry: Fig 5 workload (GPC0 read contention) ==");
    let col = telemetry::telemetry_fig05(cfg, scale);
    write("fig05", &col);
    println!("== Telemetry: Fig 10 workload (TPC channel transmission) ==");
    let (col, report) = telemetry::telemetry_fig10(cfg, scale);
    println!(
        "  instrumented run: {:.1} kbps, error {:.2} %",
        report.bandwidth_bps / 1e3,
        report.error_rate * 100.0
    );
    write("fig10", &col);
}

/// Reports an unrecoverable harness error (I/O, serialization) with its
/// [`SimError`] message and exits — a figures run has nothing to salvage
/// once its outputs cannot be written.
fn bail(e: &SimError) -> ! {
    eprintln!("error: {e}");
    std::process::exit(1);
}

fn emit<T: Serialize>(args: &Args, name: &str, value: &T) {
    let Some(dir) = &args.json_dir else {
        return;
    };
    let emitted = std::fs::create_dir_all(dir)
        .map_err(|e| SimError::io("create json directory", dir.display(), &e))
        .and_then(|()| {
            let path = dir.join(format!("{name}.json"));
            let json = serde_json::to_string_pretty(value).map_err(|e| SimError::Journal {
                path: path.display().to_string(),
                reason: format!("result failed to serialize: {e}"),
            })?;
            std::fs::write(&path, json)
                .map_err(|e| SimError::io("write result json", path.display(), &e))?;
            Ok(path)
        });
    match emitted {
        Ok(path) => println!("  [json] {}", path.display()),
        Err(e) => bail(&e),
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args = parse_args();
    let started = Instant::now();
    let builds_at_start = gnc_sim::gpus_built();
    let resets_at_start = gnc_sim::gpus_reset();
    let cfg = platform();
    println!(
        "platform: {} ({} SMs / {} TPCs / {} GPCs), scale: {:?}\n",
        cfg.name,
        cfg.num_sms(),
        cfg.num_tpcs(),
        cfg.num_gpcs,
        args.scale
    );

    if args.tables.contains(&1) {
        println!("== Table 1: simulation configuration ==");
        let t = table1(&cfg);
        println!(
            "  core {} MHz, SIMT {}, {} TPCs x {} SMs",
            t.core_clock_hz / 1_000_000,
            t.simt_width,
            t.num_tpcs(),
            t.sms_per_tpc
        );
        println!(
            "  L1 {} KB/SM, {} L2 slices x {} KB, {} MCs, HBM2 tCL={} tRP={} tRC={} tRAS={} tRCD={} tRRD={}",
            t.mem.l1_kb_per_sm,
            t.mem.num_l2_slices,
            t.mem.l2_slice_kb,
            t.mem.num_mcs,
            t.mem.dram.t_cl,
            t.mem.dram.t_rp,
            t.mem.dram.t_rc,
            t.mem.dram.t_ras,
            t.mem.dram.t_rcd,
            t.mem.dram.t_rrd
        );
        println!(
            "  NoC: crossbar, flit {} B, {} VC, {} subnets\n",
            t.noc.flit_size_bytes, t.noc.num_vcs, t.noc.subnets
        );
        emit(&args, "table1", &t);
    }

    if args.figs.contains(&2) {
        println!("== Fig 2: SM0 + one other SM (write benchmark) ==");
        let f = fig02(&cfg, args.scale);
        for p in f.iter().take(8) {
            println!("  SM{:<2} -> {:.2}x", p.other_sm, p.normalized);
        }
        let over: Vec<usize> = f
            .iter()
            .filter(|p| p.normalized > 1.5)
            .map(|p| p.other_sm)
            .collect();
        println!("  SMs with ~2x impact: {over:?} (paper: only the TPC sibling)\n");
        emit(&args, "fig02", &f);
    }

    if args.figs.contains(&3) {
        println!("== Fig 3: GPC membership scans (probe TPC0 and TPC5) ==");
        let f = fig03(&cfg, args.scale);
        for scan in [&f.probe0, &f.probe5] {
            let flagged = scan.same_gpc_candidates();
            println!(
                "  probe TPC{}: elevated-mean candidates {flagged:?}",
                scan.probe_tpc
            );
        }
        println!();
        emit(&args, "fig03", &f);
    }

    if args.figs.contains(&4) {
        println!("== Fig 4: recovered logical->physical mapping ==");
        let f = fig04(&cfg, args.scale);
        for (g, group) in f.groups.iter().enumerate() {
            println!("  GPC group {g}: TPCs {group:?}");
        }
        println!(
            "  ground-truth match: {}\n",
            if f.matches_ground_truth { "YES" } else { "NO" }
        );
        emit(&args, "fig04", &f);
    }

    if args.figs.contains(&5) {
        println!("== Fig 5: contention by access type ==");
        let f = fig05(&cfg, args.scale);
        println!(
            "  (a) TPC channel: write {:.2}x, read {:.2}x  (paper: ~2x / ~1x)",
            f.tpc.write_slowdown, f.tpc.read_slowdown
        );
        println!("  (b) GPC channel by active TPCs:");
        for (n, (w, r)) in f
            .gpc
            .write_slowdown
            .iter()
            .zip(&f.gpc.read_slowdown)
            .enumerate()
        {
            println!("      n={} write {:.2}x read {:.2}x", n + 1, w, r);
        }
        println!("      (paper: writes <=~1.15x, reads 2.14x at 7)\n");
        emit(&args, "fig05", &f);
    }

    if args.figs.contains(&6) {
        println!("== Fig 6: clock() distribution across SMs ==");
        let f = fig06(&cfg, args.scale);
        for sm in (0..f.snapshot.values.len()).step_by(8) {
            println!("  SM{sm:<2} clock {:>12}", f.snapshot.values[sm]);
        }
        println!(
            "  skew: TPC avg {:.1} (max {:.0}) | GPC avg {:.1} (max {:.0}) | epoch spread {:.1}x",
            f.stats.avg_tpc_skew,
            f.stats.max_tpc_skew,
            f.stats.avg_gpc_skew,
            f.stats.max_gpc_skew,
            f.stats.gpc_epoch_ratio
        );
        println!("  (paper: <5 / <15 cycles, ~4x epoch spread)\n");
        emit(&args, "fig06", &f);
    }

    if args.figs.contains(&8) {
        println!("== Fig 8: SM0 slowdown vs SM1/SM12 traffic fraction ==");
        let f = fig08(&cfg, args.scale);
        println!("  fraction   SM1(shared)   SM12(isolated)");
        for ((fr, s), d) in f.fractions.iter().zip(&f.sibling).zip(&f.distant) {
            println!(
                "  {fr:>7.2}   {:>10.2}x   {:>12.2}x",
                s.normalized, d.normalized
            );
        }
        println!();
        emit(&args, "fig08", &f);
    }

    if args.figs.contains(&9) {
        println!("== Fig 9: '0101..' latency trace, slot-only vs resync ==");
        let f = fig09(&cfg, args.scale);
        println!("  slot-only    : {:?}", f.slot_only);
        println!("  clock-aligned: {:?}\n", f.clock_aligned);
        emit(&args, "fig09", &f);
    }

    if args.figs.contains(&10) {
        println!("== Fig 10: bitrate / error vs iterations ==");
        let f = fig10(&cfg, args.scale);
        for (name, series, paper) in [
            ("TPC", &f.tpc, "~1 Mbps @ 4 iters"),
            ("multi-TPC", &f.multi_tpc, "~24 Mbps @ 5 iters"),
            ("GPC", &f.gpc, "~0.8 Mbps @ 4 iters"),
            ("multi-GPC", &f.multi_gpc, "~4 Mbps"),
        ] {
            println!("  {name} (paper: {paper})");
            for p in series {
                println!(
                    "    k={} -> {:>10.1} kbps, error {:>6.2} %",
                    p.iterations,
                    p.bitrate_bps / 1e3,
                    p.error_rate * 100.0
                );
            }
        }
        println!();
        emit(&args, "fig10", &f);
    }

    if args.figs.contains(&11) {
        println!("== Fig 11: GPC leakage, same vs different GPC ==");
        let f = fig11(&cfg, args.scale);
        println!("  fraction   same-GPC   different-GPC");
        for ((fr, s), d) in f.fractions.iter().zip(&f.same_gpc).zip(&f.different_gpc) {
            println!(
                "  {fr:>7.2}   {:>7.3}x   {:>10.3}x",
                s.normalized, d.normalized
            );
        }
        println!();
        emit(&args, "fig11", &f);
    }

    if args.figs.contains(&12) {
        println!("== Fig 12: robustness vs requests per access (misaligned) ==");
        let f = fig12(&cfg, args.scale);
        for (r, e) in &f {
            println!("  {r:>2} requests -> error {:>6.2} %", e * 100.0);
        }
        println!();
        emit(&args, "fig12", &f);
    }

    if args.figs.contains(&13) {
        println!("== Fig 13: coalescing error matrix ==");
        let f = fig13(&cfg, args.scale);
        println!(
            "  sender coalesced,   receiver coalesced  : {:>6.2} %",
            f.coalesced_both * 100.0
        );
        println!(
            "  sender coalesced,   receiver uncoalesced: {:>6.2} %",
            f.coalesced_sender_only * 100.0
        );
        println!(
            "  sender uncoalesced, receiver coalesced  : {:>6.2} %",
            f.coalesced_receiver_only * 100.0
        );
        println!(
            "  sender uncoalesced, receiver uncoalesced: {:>6.2} %",
            f.uncoalesced_both * 100.0
        );
        println!("  (paper: >50 %, >50 %, ~10 %, ~0.1 %)\n");
        emit(&args, "fig13", &f);
    }

    if args.figs.contains(&14) {
        println!("== Fig 14: multi-level '01020301..' staircase ==");
        let f = fig14(&cfg, args.scale);
        println!("  latencies: {:?}", f.latencies);
        println!(
            "  thresholds {:?} | symbol error {:.2} % | {:.1} kbps ({}x bits/slot)",
            f.thresholds.map(|t| t.round()),
            f.symbol_error_rate * 100.0,
            f.bandwidth_bps / 1e3,
            f.gain_over_binary
        );
        println!();
        emit(&args, "fig14", &f);
    }

    if args.figs.contains(&15) {
        println!("== Fig 15: arbitration comparison ==");
        let f = fig15(&cfg, args.scale);
        for (policy, points) in &f.sweep.curves {
            let series: Vec<String> = points
                .iter()
                .map(|p| format!("{:.2}", p.normalized))
                .collect();
            println!("  {:<4}: {}", policy.label(), series.join(" "));
        }
        println!("  end-to-end channel error:");
        for (policy, err) in &f.channel_error {
            println!("    {:<4} -> {:>6.2} %", policy.label(), err * 100.0);
        }
        println!("  (paper: RR/CRR linear, SRR flat and channel dead)\n");
        emit(&args, "fig15", &f);
    }

    if args.srr {
        println!("== SRR overhead (Section 6 text) ==");
        let f = srr_cost(&cfg, args.scale);
        println!(
            "  memory-intensive {:.2}x, compute-intensive {:.2}x (paper: up to ~60 % loss / negligible)\n",
            f.memory_intensive_slowdown, f.compute_intensive_slowdown
        );
        emit(&args, "srr_overhead", &f);

        println!("== Section 5: third-kernel noise ==");
        let n = noise_impact(&cfg, args.scale);
        println!(
            "  clean error {:.2} % -> noisy error {:.2} % ({} L2 misses during noisy run)\n",
            n.clean_error * 100.0,
            n.noisy_error * 100.0,
            n.noisy_l2_misses
        );
        emit(&args, "noise_impact", &n);

        println!("== Section 5: side channel (victim activity metering) ==");
        let sc = side_channel(&cfg, args.scale);
        for (i, p) in sc.phases.iter().enumerate() {
            println!(
                "  phase {i}: intensity {} -> {:.1} cycles",
                p.true_intensity, p.observed_latency
            );
        }
        println!(
            "  correlation {:.3} (paper: 'linear correlation')\n",
            sc.correlation
        );
        emit(&args, "side_channel", &sc);

        println!("== Section 6: scheduler partitioning countermeasure ==");
        for (name, err) in scheduler_isolation(&cfg, args.scale) {
            println!("  {name:<18} -> channel error {:.2} %", err * 100.0);
        }
        println!();

        println!("== Section 5: other GPU architectures ==");
        let arches = cross_architecture(args.scale);
        for a in &arches {
            println!(
                "  {:<14} ({} TPCs / {} GPCs): TPC-channel error {:.2} %, multi-TPC {:.2} Mbps",
                a.arch,
                a.tpcs,
                a.gpcs,
                a.tpc_error * 100.0,
                a.multi_tpc_bandwidth_bps / 1e6
            );
        }
        emit(&args, "cross_architecture", &arches);
        println!();
    }

    if args.ablation {
        println!("== Ablations (DESIGN.md calibration sensitivity) ==");
        let bw = ablate_gpc_reply_bw(&cfg, args.scale);
        println!("  GPC reply bandwidth vs Fig 5b read slowdowns (1..7 TPCs):");
        for (b, series) in &bw {
            let s: Vec<String> = series.iter().map(|v| format!("{v:.2}")).collect();
            println!("    bw={b}: {}", s.join(" "));
        }
        emit(&args, "ablation_gpc_reply_bw", &bw);
        let noise = ablate_noise_mean(&cfg, args.scale);
        println!("  noise mean vs error (k=1, k=4):");
        for (m, e1, e4) in &noise {
            println!(
                "    mean={m:<2} -> {:.2} % / {:.2} %",
                e1 * 100.0,
                e4 * 100.0
            );
        }
        emit(&args, "ablation_noise_mean", &noise);
        let warps = ablate_sender_warps(&cfg, args.scale);
        println!("  sender warps vs error:");
        for (w, e) in &warps {
            println!("    warps={w} -> {:.2} %", e * 100.0);
        }
        emit(&args, "ablation_sender_warps", &warps);
        let slots = ablate_slot_length(&cfg, args.scale);
        println!("  slot length vs error:");
        for (t, e) in &slots {
            println!("    T={t} -> {:.2} %", e * 100.0);
        }
        emit(&args, "ablation_slot_length", &slots);
        println!();
    }

    if args.noise {
        println!("== Robustness: BER vs fault intensity (naive vs hardened) ==");
        let points = noise_sweep(&cfg, args.scale);
        for p in &points {
            println!(
                "  {:<10} naive {:>5.1} %  hardened {:>5.1} %  delivered {:>3.0} % (mean {:.1} attempts)",
                p.preset,
                p.naive_ber * 100.0,
                p.hardened_ber * 100.0,
                p.delivery_rate * 100.0,
                p.mean_attempts
            );
        }
        emit(&args, "noise_sweep", &points);
        println!();
    }

    if args.tables.contains(&2) {
        println!("== Table 2: covert channel comparison ==");
        let rows = table_2(&cfg, args.scale);
        for row in &rows {
            println!("  {row}");
        }
        emit(&args, "table2", &rows);
    }

    if let Some(dir) = &args.telemetry_dir {
        run_telemetry(&cfg, args.scale, dir);
    }

    if let Some(path) = &args.bench {
        let wall_clock_s = started.elapsed().as_secs_f64();
        let gpus_built = gnc_sim::gpus_built() - builds_at_start;
        let gpus_reset = gnc_sim::gpus_reset() - resets_at_start;
        let trials = gpus_built + gpus_reset;
        // Measured after `wall_clock_s` is captured, so the trio never
        // perturbs the gated number.
        let trio = micro::measure_trio(3, 50_000);
        let report = BenchReport {
            scale: format!("{:?}", args.scale),
            jobs: gnc_common::par::jobs(),
            wall_clock_s,
            trials,
            gpus_built,
            gpus_reset,
            trials_per_s: trials as f64 / wall_clock_s,
            baseline_wall_clock_s: args.bench_baseline_s,
            speedup: args.bench_baseline_s.map(|b| b / wall_clock_s),
            microbench_ns_per_cycle: trio,
        };
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| SimError::Journal {
                path: path.display().to_string(),
                reason: format!("bench report failed to serialize: {e}"),
            })
            .unwrap_or_else(|e| bail(&e));
        std::fs::write(path, json)
            .map_err(|e| SimError::io("write bench report", path.display(), &e))
            .unwrap_or_else(|e| bail(&e));
        println!(
            "[bench] {:.3} s wall clock, {} trials ({:.1}/s) | {} | report -> {}",
            wall_clock_s,
            trials,
            report.trials_per_s,
            report.microbench_ns_per_cycle.summary(),
            path.display()
        );
    }
}
