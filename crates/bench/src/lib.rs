//! Experiment runners regenerating every table and figure of the paper's
//! evaluation, shared between the `figures` binary and the Criterion
//! benches.
//!
//! Each `figNN` function returns a serde-serializable result whose rows /
//! series mirror the corresponding figure; [`Scale`] trades trial counts
//! for runtime (benches use [`Scale::Quick`], the `figures --full` run
//! uses [`Scale::Full`], which matches the paper's trial counts where
//! stated).

use gnc_common::bits::{BitVec, SymbolVec};
use gnc_common::config::Arbitration;
use gnc_common::ids::GpcId;
use gnc_common::rng::experiment_rng;
use gnc_common::GpuConfig;
use gnc_covert::channel::ChannelPlan;
use gnc_covert::characterize::{
    alignment_sweep, coalescing_matrix, gpc_contention, leakage_sweep, leakage_sweep_kind,
    third_kernel_noise, tpc_contention, CoalescingMatrix, GpcContention, LeakagePoint, NoiseImpact,
    TpcContention,
};
use gnc_covert::countermeasure::{
    arbitration_sweep, channel_error_under, channel_error_under_scheduler, srr_overhead,
    ArbitrationSweep, OverheadReport,
};
use gnc_covert::encoding::{MultiLevelChannel, MultiLevelReport};
use gnc_covert::metrics::{ground_truth_membership, table2, ComparisonRow};
use gnc_covert::protocol::{ProtocolConfig, SyncMode};
use gnc_covert::reverse::{gpc_scan, recover_mapping, tpc_pairing_sweep, GpcScan, TpcSweepPoint};
use gnc_covert::robust::RobustOptions;
use gnc_covert::sidechannel::{spy_on_victim, SpyReport};
use gnc_covert::sync::{clock_snapshot, skew_stats, ClockSnapshot, SkewStats};
use gnc_sim::kernel::AccessKind;
use serde::Serialize;

pub mod micro;
pub mod sweep;
pub mod telemetry;

/// Experiment scale: `Quick` for benches and smoke runs, `Full` for
/// paper-fidelity trial counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced trials/bits for fast iteration.
    Quick,
    /// Paper-fidelity trials (e.g. 200 evaluations in Fig 3).
    Full,
}

impl Scale {
    fn pick(self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// The default platform: the Table 1 Volta-like GPU.
pub fn platform() -> GpuConfig {
    GpuConfig::volta_v100()
}

/// Fig 2: probe SM0 against every other SM.
pub fn fig02(cfg: &GpuConfig, scale: Scale) -> Vec<TpcSweepPoint> {
    tpc_pairing_sweep(cfg, 0, scale.pick(24, 60) as u32, 2)
}

/// Fig 3: the GPC scan for probes TPC0 and TPC5 (the two panels).
#[derive(Debug, Clone, Serialize)]
pub struct Fig03 {
    /// Panel (a,b): probe TPC0.
    pub probe0: GpcScan,
    /// Panel (c,d): probe TPC5.
    pub probe5: GpcScan,
}

/// Fig 3: scatter + averages for probes TPC0 and TPC5.
pub fn fig03(cfg: &GpuConfig, scale: Scale) -> Fig03 {
    let trials = scale.pick(30, 200);
    Fig03 {
        probe0: gpc_scan(cfg, 0, trials, 16, 3),
        probe5: gpc_scan(cfg, 5, trials, 16, 3),
    }
}

/// Fig 4: the fully recovered mapping plus the ground-truth check.
#[derive(Debug, Clone, Serialize)]
pub struct Fig04 {
    /// Recovered TPC groups (one per GPC).
    pub groups: Vec<Vec<usize>>,
    /// Whether they match the simulator's hidden ground truth.
    pub matches_ground_truth: bool,
}

/// Fig 4: blind mapping recovery.
pub fn fig04(cfg: &GpuConfig, scale: Scale) -> Fig04 {
    // The co-activation matrix needs a few hundred trials for reliable
    // top-partner ranking even at quick scale (the directed phase then
    // verifies deterministically).
    let mapping = recover_mapping(cfg, scale.pick(300, 800), 10, 4);
    Fig04 {
        matches_ground_truth: mapping.matches_ground_truth(cfg),
        groups: mapping
            .groups
            .iter()
            .map(|g| g.iter().map(|t| t.index()).collect())
            .collect(),
    }
}

/// Fig 5: read/write contention at both hierarchy levels.
#[derive(Debug, Clone, Serialize)]
pub struct Fig05 {
    /// Panel (a): TPC channel.
    pub tpc: TpcContention,
    /// Panel (b): GPC channel, 1–7 active TPCs.
    pub gpc: GpcContention,
}

/// Fig 5: contention characterisation.
pub fn fig05(cfg: &GpuConfig, scale: Scale) -> Fig05 {
    let batches = scale.pick(24, 60) as u32;
    let members = cfg.tpcs_of_gpc(GpcId::new(0));
    Fig05 {
        tpc: tpc_contention(cfg, batches, 5),
        gpc: gpc_contention(cfg, &members, batches, 5),
    }
}

/// Fig 6: the clock snapshot plus §4.1 skew statistics.
#[derive(Debug, Clone, Serialize)]
pub struct Fig06 {
    /// One Fig 6 run: per-SM clock values.
    pub snapshot: ClockSnapshot,
    /// Aggregate over the re-runs (paper: 100).
    pub stats: SkewStats,
}

/// Fig 6: clock register distribution and skew.
pub fn fig06(cfg: &GpuConfig, scale: Scale) -> Fig06 {
    Fig06 {
        snapshot: clock_snapshot(cfg, 6),
        stats: skew_stats(cfg, scale.pick(20, 100), 6),
    }
}

/// Fig 8: SM0 slowdown vs the traffic fraction of SM1 (shared mux) and
/// SM12 (different TPC).
#[derive(Debug, Clone, Serialize)]
pub struct Fig08 {
    /// x-axis fractions.
    pub fractions: Vec<f64>,
    /// SM1 series (linear).
    pub sibling: Vec<LeakagePoint>,
    /// SM12 series (flat).
    pub distant: Vec<LeakagePoint>,
}

/// Fig 8: interconnect channel leakage.
pub fn fig08(cfg: &GpuConfig, scale: Scale) -> Fig08 {
    let fractions: Vec<f64> = (0..=8).map(|i| f64::from(i) * 0.12).collect();
    let batches = scale.pick(30, 80) as u32;
    Fig08 {
        sibling: leakage_sweep(cfg, 1, &fractions, batches, 8),
        distant: leakage_sweep(cfg, 12, &fractions, batches, 8),
        fractions,
    }
}

/// Fig 9: the receiver's per-bit latency trace for an alternating
/// pattern, with and without periodic clock resynchronisation.
#[derive(Debug, Clone, Serialize)]
pub struct Fig09 {
    /// Panel (a): timing-slot-only pacing (drift accumulates).
    pub slot_only: Vec<u64>,
    /// Panel (b): with local synchronization (stable).
    pub clock_aligned: Vec<u64>,
}

/// Fig 9: drift vs resynchronisation traces.
///
/// The slot is deliberately halved so a contended measurement overruns
/// it — the paper's error-accumulation scenario: under slot-only pacing
/// each overrun pushes every later slot further off the sender's
/// schedule until `1`s read as no-contention (panel a), while periodic
/// clock re-alignment resets the drift (panel b).
pub fn fig09(cfg: &GpuConfig, scale: Scale) -> Fig09 {
    let bits = scale.pick(30, 60);
    let run = |mode: SyncMode| -> Vec<u64> {
        let mut proto = ProtocolConfig::tpc(4);
        // Model a sender whose busy-wait pacing loop is crude (one
        // iteration ≈ 48 cycles): under slot-only pacing the
        // sender-vs-receiver differential lateness accumulates ~20
        // cycles per bit — Fig 9(a)'s drift — while periodic clock
        // re-alignment (panel b) keeps resetting it.
        proto.sender_pacing_quantum = 48;
        proto.mode = mode;
        proto.preamble_bits = 0; // raw trace, like the figure
        proto.jitter_cycles = 0;
        let plan = ChannelPlan::tpc(cfg, proto, &[0]);
        let payload = BitVec::alternating(bits);
        let report = plan.transmit(cfg, &payload, 9);
        report.per_channel[0].latencies.clone()
    };
    Fig09 {
        slot_only: run(SyncMode::SlotOnly),
        clock_aligned: run(SyncMode::ClockAligned { sync_period: 2 }),
    }
}

/// One Fig 10 operating point.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Point {
    /// Memory operations per bit.
    pub iterations: u32,
    /// Aggregate bit rate, bits/s.
    pub bitrate_bps: f64,
    /// Payload error rate.
    pub error_rate: f64,
}

/// Fig 10: bitrate and error rate vs iterations for the four channel
/// configurations.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10 {
    /// Panel (a): single TPC channel.
    pub tpc: Vec<Fig10Point>,
    /// Panel (b): all 40 TPC channels.
    pub multi_tpc: Vec<Fig10Point>,
    /// Panel (c): single GPC channel.
    pub gpc: Vec<Fig10Point>,
    /// Panel (d): all 6 GPC channels.
    pub multi_gpc: Vec<Fig10Point>,
}

/// Fig 10: the headline bandwidth/error sweeps.
pub fn fig10(cfg: &GpuConfig, scale: Scale) -> Fig10 {
    let bits_per_channel = scale.pick(24, 96);
    let membership = ground_truth_membership(cfg);
    let sweep = |mk: &dyn Fn(u32) -> ChannelPlan, channels: usize| -> Vec<Fig10Point> {
        (1..=5u32)
            .map(|k| {
                let plan = mk(k);
                let mut rng = experiment_rng("fig10", u64::from(k) ^ (channels as u64) << 8);
                let payload = BitVec::random(&mut rng, bits_per_channel * channels);
                let report = plan.transmit(cfg, &payload, u64::from(k));
                Fig10Point {
                    iterations: k,
                    bitrate_bps: report.bandwidth_bps,
                    error_rate: report.error_rate,
                }
            })
            .collect()
    };
    let all_gpcs: Vec<usize> = (0..cfg.num_gpcs).collect();
    Fig10 {
        tpc: sweep(&|k| ChannelPlan::tpc(cfg, ProtocolConfig::tpc(k), &[0]), 1),
        multi_tpc: sweep(&|k| ChannelPlan::multi_tpc(cfg, ProtocolConfig::tpc(k)), 40),
        gpc: sweep(
            &|k| ChannelPlan::gpc(cfg, ProtocolConfig::gpc(k), &membership, &[0]),
            1,
        ),
        multi_gpc: sweep(
            &|k| ChannelPlan::gpc(cfg, ProtocolConfig::gpc(k), &membership, &all_gpcs),
            6,
        ),
    }
}

/// Fig 11: GPC-level leakage, same-GPC vs different-GPC senders.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11 {
    /// x-axis fractions.
    pub fractions: Vec<f64>,
    /// Senders in the probe's GPC.
    pub same_gpc: Vec<LeakagePoint>,
    /// Senders in other GPCs.
    pub different_gpc: Vec<LeakagePoint>,
}

/// Fig 11: GPC channel information leakage.
pub fn fig11(cfg: &GpuConfig, scale: Scale) -> Fig11 {
    let fractions: Vec<f64> = (0..=8).map(|i| f64::from(i) * 0.12).collect();
    let batches = scale.pick(30, 80) as u32;
    let members = cfg.tpcs_of_gpc(GpcId::new(0));
    let same: Vec<usize> = members[1..6].iter().map(|t| 2 * t.index()).collect();
    let different: Vec<usize> = [1usize, 7, 13, 19, 25].iter().map(|&t| 2 * t).collect();
    Fig11 {
        same_gpc: leakage_sweep_kind(
            cfg,
            0,
            AccessKind::Read,
            &same,
            AccessKind::Read,
            &fractions,
            batches,
            11,
        ),
        different_gpc: leakage_sweep_kind(
            cfg,
            0,
            AccessKind::Read,
            &different,
            AccessKind::Read,
            &fractions,
            batches,
            11,
        ),
        fractions,
    }
}

/// Fig 12 (operationalised): error rate vs requests per access under
/// intra-slot misalignment.
pub fn fig12(cfg: &GpuConfig, scale: Scale) -> Vec<(u32, f64)> {
    alignment_sweep(cfg, &[1, 2, 4, 8, 16, 32], scale.pick(32, 128), 12)
}

/// Fig 13: the coalescing error matrix.
pub fn fig13(cfg: &GpuConfig, scale: Scale) -> CoalescingMatrix {
    coalescing_matrix(cfg, 4, scale.pick(48, 192), 13)
}

/// Fig 14: the multi-level staircase trace and its report.
pub fn fig14(cfg: &GpuConfig, scale: Scale) -> MultiLevelReport {
    let chan = MultiLevelChannel::tpc(ProtocolConfig::tpc(4), 0);
    let symbols = SymbolVec::staircase(scale.pick(16, 32));
    chan.transmit(cfg, &symbols, 14)
}

/// Fig 15 plus the end-to-end channel kill check.
#[derive(Debug, Clone, Serialize)]
pub struct Fig15 {
    /// The Fig 15 sweep itself.
    pub sweep: ArbitrationSweep,
    /// Covert-channel payload error under each policy.
    pub channel_error: Vec<(Arbitration, f64)>,
}

/// Fig 15: arbitration comparison.
pub fn fig15(cfg: &GpuConfig, scale: Scale) -> Fig15 {
    let fractions: Vec<f64> = (0..=10).map(|i| f64::from(i) * 0.1).collect();
    let batches = scale.pick(30, 80) as u32;
    let sweep = arbitration_sweep(cfg, &Arbitration::ALL, &fractions, batches, 15);
    let channel_error = Arbitration::ALL
        .iter()
        .map(|&p| (p, channel_error_under(cfg, p, scale.pick(32, 96), 15)))
        .collect();
    Fig15 {
        sweep,
        channel_error,
    }
}

/// §6 text: the SRR performance cost.
pub fn srr_cost(cfg: &GpuConfig, scale: Scale) -> OverheadReport {
    srr_overhead(cfg, scale.pick(40, 100) as u32, 16)
}

/// §5 "Impact of Noise": channel error with and without a third kernel.
pub fn noise_impact(cfg: &GpuConfig, scale: Scale) -> NoiseImpact {
    third_kernel_noise(cfg, scale.pick(32, 96), 18)
}

/// §5 side-channel sketch: spy meters a victim's activity profile.
pub fn side_channel(cfg: &GpuConfig, _scale: Scale) -> SpyReport {
    spy_on_victim(cfg, &[0, 24, 8, 32, 16], 19)
}

/// §6 scheduler countermeasure: channel error under placement isolation.
pub fn scheduler_isolation(cfg: &GpuConfig, scale: Scale) -> Vec<(&'static str, f64)> {
    use gnc_common::config::SchedulerPolicy;
    vec![
        (
            "paper-interleaved",
            channel_error_under_scheduler(
                cfg,
                SchedulerPolicy::PaperInterleaved,
                scale.pick(32, 96),
                20,
            ),
        ),
        (
            "stream-isolated",
            channel_error_under_scheduler(
                cfg,
                SchedulerPolicy::StreamIsolated,
                scale.pick(32, 96),
                20,
            ),
        ),
    ]
}

/// §5 "Other GPU Architectures": the same attack on the Pascal and
/// Turing presets (the paper confirmed the channel on both, differing
/// only in hierarchy sizes and scheduling details).
#[derive(Debug, Clone, Serialize)]
pub struct CrossArchPoint {
    /// Architecture name.
    pub arch: String,
    /// TPC/GPC counts of the preset.
    pub tpcs: usize,
    /// GPCs of the preset.
    pub gpcs: usize,
    /// Single-TPC-channel error rate at 4 iterations.
    pub tpc_error: f64,
    /// Aggregate multi-TPC bandwidth in bits/s.
    pub multi_tpc_bandwidth_bps: f64,
}

/// §5: runs the TPC channel on every architecture preset.
pub fn cross_architecture(scale: Scale) -> Vec<CrossArchPoint> {
    [
        GpuConfig::volta_v100(),
        GpuConfig::pascal_p100(),
        GpuConfig::turing_tu102(),
    ]
    .into_iter()
    .map(|cfg| {
        let bits = scale.pick(24, 64);
        let plan = ChannelPlan::tpc(&cfg, ProtocolConfig::tpc(4), &[0]);
        let mut rng = experiment_rng("cross-arch", cfg.num_tpcs() as u64);
        let payload = BitVec::random(&mut rng, bits);
        let report = plan.transmit(&cfg, &payload, 22);
        let multi = ChannelPlan::multi_tpc(&cfg, ProtocolConfig::tpc(5));
        let payload = BitVec::random(&mut rng, bits * cfg.num_tpcs());
        let multi_report = multi.transmit(&cfg, &payload, 23);
        CrossArchPoint {
            arch: cfg.name.clone(),
            tpcs: cfg.num_tpcs(),
            gpcs: cfg.num_gpcs,
            tpc_error: report.error_rate,
            multi_tpc_bandwidth_bps: multi_report.bandwidth_bps,
        }
    })
    .collect()
}

/// Table 1: the simulation configuration (serialisable verbatim).
pub fn table1(cfg: &GpuConfig) -> GpuConfig {
    cfg.clone()
}

/// Table 2: the covert-channel comparison with measured "this work" rows.
pub fn table_2(cfg: &GpuConfig, scale: Scale) -> Vec<ComparisonRow> {
    let membership = ground_truth_membership(cfg);
    table2(cfg, &membership, scale.pick(16, 64), 17)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_picks() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn fig09_slot_only_drifts_clock_aligned_does_not() {
        let cfg = platform();
        let f = fig09(&cfg, Scale::Quick);
        assert_eq!(f.slot_only.len(), 30);
        assert_eq!(f.clock_aligned.len(), 30);
        // Contrast of the loud (odd) vs quiet (even) positions in the
        // final third of each trace: re-alignment keeps the alternation
        // alive; slot-only pacing has drifted off the sender's schedule.
        let contrast = |trace: &[u64]| -> f64 {
            let tail = &trace[20..30];
            let mean = |par: usize| -> f64 {
                let vals: Vec<u64> = tail
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % 2 == par)
                    .map(|(_, &v)| v)
                    .collect();
                vals.iter().sum::<u64>() as f64 / vals.len() as f64
            };
            mean(1) - mean(0)
        };
        let aligned = contrast(&f.clock_aligned);
        let drifted = contrast(&f.slot_only);
        assert!(
            aligned > 100.0,
            "aligned tail contrast {aligned} (trace {:?})",
            f.clock_aligned
        );
        assert!(
            drifted < aligned / 2.0,
            "slot-only should have decayed: {drifted} vs aligned {aligned}\n{:?}",
            f.slot_only
        );
    }

    #[test]
    fn fig12_series_is_monotone_enough() {
        let cfg = platform();
        let sweep = fig12(&cfg, Scale::Quick);
        let first = sweep.first().unwrap().1;
        let last = sweep.last().unwrap().1;
        assert!(
            first > last,
            "error must fall with more requests: {sweep:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Ablations: sensitivity of the reproduction to its calibration choices
// (DESIGN.md §4). Each returns (setting, observable) series.
// ---------------------------------------------------------------------

/// Ablation: the GPC reply-channel bandwidth sets where the Fig 5(b)
/// read-contention knee falls. The paper's shape (flat to 3 TPCs,
/// ≈2.14× at 7) pins it to 3 flits/cycle.
pub fn ablate_gpc_reply_bw(cfg: &GpuConfig, scale: Scale) -> Vec<(u32, Vec<f64>)> {
    let batches = scale.pick(20, 48) as u32;
    [2u32, 3, 4, 6]
        .iter()
        .map(|&bw| {
            let mut cfg = cfg.clone();
            cfg.noc.gpc_reply_bw = bw;
            let members = cfg.tpcs_of_gpc(GpcId::new(0));
            let c = gpc_contention(&cfg, &members, batches, 21);
            (bw, c.read_slowdown)
        })
        .collect()
}

/// Ablation: the measurement-noise mean sets the error floor; the
/// decode error follows ≈ e^(−margin/mean), so iteration count buys
/// reliability exactly as Fig 10(a) shows.
pub fn ablate_noise_mean(cfg: &GpuConfig, scale: Scale) -> Vec<(u32, f64, f64)> {
    let bits = scale.pick(48, 192);
    [0u32, 8, 16, 32]
        .iter()
        .map(|&mean| {
            let run = |k: u32| -> f64 {
                let mut proto = ProtocolConfig::tpc(k);
                proto.noise_mean_cycles = mean;
                let plan = ChannelPlan::tpc(cfg, proto, &[0]);
                let mut rng = experiment_rng("ablate-noise", u64::from(mean) ^ u64::from(k));
                let payload = BitVec::random(&mut rng, bits);
                plan.transmit(cfg, &payload, u64::from(mean)).error_rate
            };
            (mean, run(1), run(4))
        })
        .collect()
}

/// Ablation: sender warp count vs channel error. One warp already
/// saturates the TPC channel in this model; more warps only lengthen the
/// sender's burst.
pub fn ablate_sender_warps(cfg: &GpuConfig, scale: Scale) -> Vec<(usize, f64)> {
    let bits = scale.pick(32, 96);
    [1usize, 2, 4]
        .iter()
        .map(|&warps| {
            let mut proto = ProtocolConfig::tpc(4);
            proto.sender_warps = warps;
            // Keep the slot large enough for the longest sender burst.
            proto.slot_cycles = (proto.slot_cycles * warps.next_power_of_two() as u32).max(1024);
            let plan = ChannelPlan::tpc(cfg, proto, &[0]);
            let mut rng = experiment_rng("ablate-warps", warps as u64);
            let payload = BitVec::random(&mut rng, bits);
            (warps, plan.transmit(cfg, &payload, warps as u64).error_rate)
        })
        .collect()
}

/// Ablation: slot length vs error — a slot too small for the contended
/// burst causes slips; larger slots only cost bandwidth.
pub fn ablate_slot_length(cfg: &GpuConfig, scale: Scale) -> Vec<(u32, f64)> {
    let bits = scale.pick(32, 96);
    let base = ProtocolConfig::tpc(4);
    [base.slot_cycles / 2, base.slot_cycles, base.slot_cycles * 2]
        .iter()
        .map(|&slot| {
            let mut proto = base.clone();
            proto.slot_cycles = slot;
            let plan = ChannelPlan::tpc(cfg, proto, &[0]);
            let mut rng = experiment_rng("ablate-slot", u64::from(slot));
            let payload = BitVec::random(&mut rng, bits);
            (
                slot,
                plan.transmit(cfg, &payload, u64::from(slot)).error_rate,
            )
        })
        .collect()
}

/// One fault preset's point on the BER-vs-noise curve.
#[derive(Debug, Clone, Serialize)]
pub struct NoisePoint {
    /// Preset name (`off`, `mild`, `moderate`, `severe`, `jammed`).
    pub preset: String,
    /// Post-FEC bit-error rate of the naive static-threshold decoder.
    pub naive_ber: f64,
    /// Post-FEC bit-error rate of the adaptive erasure decoder, on the
    /// identical traces.
    pub hardened_ber: f64,
    /// Fraction of trials the hardened ACK/NACK loop delivered
    /// (CRC-verified) within its retry budget.
    pub delivery_rate: f64,
    /// Mean attempts used by the delivered trials.
    pub mean_attempts: f64,
}

/// The robustness noise sweep: naive vs hardened post-FEC BER and
/// ACK/NACK delivery rate across every fault preset.
pub fn noise_sweep(cfg: &GpuConfig, scale: Scale) -> Vec<NoisePoint> {
    let trials = scale.pick(2, 8);
    let bits = scale.pick(24, 64);
    let plan = ChannelPlan::tpc(cfg, ProtocolConfig::tpc(4), &[0]);
    let opts = RobustOptions::default();
    // Every (preset, trial) pair is an independent pair of GPU runs; fan
    // them all out at once and aggregate per preset in input order, so
    // the result is identical to the serial sweep. The unit runner and
    // the aggregation are shared with the resilient journaled engine in
    // [`sweep`], which upholds the same byte-identity contract.
    let units = sweep::noise_units(trials);
    let runs = gnc_common::par::parallel_map(&units, |&(p, trial)| {
        sweep::run_noise_unit(cfg, &plan, &opts, sweep::NOISE_PRESETS[p], trial, bits)
    });
    sweep::aggregate_noise(trials, &runs.iter().collect::<Vec<_>>())
}
