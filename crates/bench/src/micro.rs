//! Per-cycle microbenchmarks of the engine's hottest component loops —
//! a saturated 2:1 mux, a lone saturated sender (the fig 3/8
//! covert-channel shape), a 6×8 crossbar with spread traffic, and an
//! L2 slice streaming misses — shared between the Criterion benches
//! (`benches/engine_hot_paths.rs`), the CLI's bench reports, and CI's
//! perf-smoke gate.
//!
//! The loops are the workloads the recorded BENCH_pr*.json trajectory
//! was measured on; keep their shapes fixed or the trajectory stops
//! being comparable. [`measure_trio`] reports the *minimum* ns/cycle
//! over several repetitions: on shared/virtualised hardware the minimum
//! tracks the true cost while means absorb host steal.

use gnc_common::config::{Arbitration, NocConfig};
use gnc_common::ids::{SliceId, SmId, WarpId};
use gnc_common::GpuConfig;
use gnc_mem::dram::DramController;
use gnc_mem::l2::L2Slice;
use gnc_noc::crossbar::Crossbar;
use gnc_noc::mux::ConcentratorMux;
use gnc_noc::packet::{Packet, PacketId, PacketKind};
use serde::Serialize;
use std::time::Instant;

fn packet(id: u64, input: usize, slice: usize, kind: PacketKind, now: u64) -> Packet {
    Packet {
        id: PacketId(id),
        kind,
        sm: SmId::new(input),
        warp: WarpId::new(0),
        slice: SliceId::new(slice),
        addr: id * 128,
        data_bytes: 32,
        injected_at: now,
        group: id,
    }
}

/// A 2:1 TPC-style mux kept saturated: every cycle pays arbitration,
/// a flit drain, and a delay-line hop — the request fabric ticks 46 of
/// these per cycle. Returns packets delivered (a throughput invariant
/// the callers assert on).
pub fn mux_saturated(cycles: u64) -> u64 {
    let noc = NocConfig::default();
    let mut mux = ConcentratorMux::new(2, 1, 2, 8, Arbitration::RoundRobin, &noc);
    let mut next = 0u64;
    let mut delivered = 0u64;
    for now in 0..cycles {
        for input in 0..2 {
            if mux.can_accept(input) {
                let p = packet(next, input, 0, PacketKind::WriteRequest, now);
                if mux.try_push(input, p).is_ok() {
                    next += 1;
                }
            }
        }
        mux.tick(now);
        while mux.pop_delivered(now).is_some() {
            delivered += 1;
        }
    }
    delivered
}

/// A 6-input crossbar with traffic spread over 8 outputs — the shape of
/// the request fabric's GPC → slice stage under an all-SMs streaming
/// workload (occupied outputs tick, empty ones are mask-skipped).
pub fn crossbar_spread(cycles: u64) -> u64 {
    let noc = NocConfig::default();
    let mut xbar = Crossbar::new(6, 8, 1, 2, 8, Arbitration::RoundRobin, &noc);
    let mut next = 0u64;
    let mut delivered = 0u64;
    for now in 0..cycles {
        for input in 0..6 {
            let output = (next % 8) as usize;
            if xbar.can_accept(input, output) {
                let p = packet(next, input, output, PacketKind::ReadRequest, now);
                if xbar.try_push(input, output, p).is_ok() {
                    next += 1;
                }
            }
        }
        xbar.tick(now);
        for output in 0..8 {
            while xbar.pop_delivered(output, now).is_some() {
                delivered += 1;
            }
        }
    }
    delivered
}

/// The fig 3/8 sender shape: one SM of a TPC pair streams alone while
/// its sibling stays quiet — the covert channel's `1`-bit phase and the
/// saturated figures' per-sender steady state. The mux sees a lone
/// occupant with a stable head, which is exactly the closed-form
/// cross-cycle grant-run path of the batched arbitration engine.
pub fn mux_lone_sender(cycles: u64) -> u64 {
    let noc = NocConfig::default();
    let mut mux = ConcentratorMux::new(2, 1, 2, 8, Arbitration::RoundRobin, &noc);
    let mut next = 0u64;
    let mut delivered = 0u64;
    for now in 0..cycles {
        if mux.can_accept(0) {
            let p = packet(next, 0, 0, PacketKind::WriteRequest, now);
            if mux.try_push(0, p).is_ok() {
                next += 1;
            }
        }
        mux.tick(now);
        while mux.pop_delivered(now).is_some() {
            delivered += 1;
        }
    }
    delivered
}

/// One L2 slice streaming misses: every request walks the lookup
/// pipeline, allocates an MSHR, round-trips the DRAM controller, and
/// retires through the batched fill path.
// `next` is packet identity (it feeds ids and addresses), not a loop
// counter — keep the loop shape identical to the other hot loops.
#[allow(clippy::explicit_counter_loop)]
pub fn l2_miss_stream(cycles: u64) -> u64 {
    let cfg = GpuConfig::volta_v100();
    let mut slice = L2Slice::new(SliceId::new(0), &cfg);
    let mut dram = DramController::new(&cfg.mem);
    let mut next = 0u64;
    let mut replies = 0u64;
    for now in 0..cycles {
        // One fresh line per cycle (addresses stride a whole slice set
        // apart so every access misses).
        let p = Packet {
            addr: next * 128 * 48,
            ..packet(next, 0, 0, PacketKind::ReadRequest, now)
        };
        slice.push_request(p, now);
        next += 1;
        slice.tick(now, &mut dram);
        while slice.pop_reply().is_some() {
            replies += 1;
        }
    }
    replies
}

/// Best-observed ns/cycle for the three hot loops. Serialized into
/// bench reports so BENCH files are self-describing.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MicroTrio {
    /// Saturated 2:1 mux, ns per simulated cycle.
    pub mux_ns_per_cycle: f64,
    /// 6×8 spread crossbar, ns per simulated cycle.
    pub crossbar_ns_per_cycle: f64,
    /// L2 miss stream, ns per simulated cycle.
    pub l2_ns_per_cycle: f64,
}

impl MicroTrio {
    /// `mux 18.5 / xbar 227.0 / l2 68.7 ns/cycle` — the format the CLI
    /// prints next to wall-clock numbers.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "mux {:.1} / xbar {:.1} / l2 {:.1} ns/cycle",
            self.mux_ns_per_cycle, self.crossbar_ns_per_cycle, self.l2_ns_per_cycle
        )
    }
}

/// Minimum observed ns/cycle of `f(cycles)` over `reps` repetitions.
fn min_ns_per_cycle(reps: u32, cycles: u64, f: impl Fn(u64) -> u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let sink = f(cycles);
        let dt = t0.elapsed().as_nanos() as f64 / cycles as f64;
        // Keep the call from being optimised out.
        assert!(sink > 0, "hot loop delivered nothing");
        if dt < best {
            best = dt;
        }
    }
    best
}

/// Measures the trio at `cycles` simulated cycles per repetition,
/// `reps` repetitions each, reporting the per-loop minima.
#[must_use]
pub fn measure_trio(reps: u32, cycles: u64) -> MicroTrio {
    MicroTrio {
        mux_ns_per_cycle: min_ns_per_cycle(reps, cycles, mux_saturated),
        crossbar_ns_per_cycle: min_ns_per_cycle(reps, cycles, crossbar_spread),
        l2_ns_per_cycle: min_ns_per_cycle(reps, cycles, l2_miss_stream),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_loops_sustain_expected_throughput() {
        // The loops are throughput-pinned: wrong arbitration or queue
        // bookkeeping shows up as a delivery deficit, not just a slower
        // benchmark.
        assert_eq!(mux_saturated(1000), 498);
        assert_eq!(mux_lone_sender(1000), 499);
        assert_eq!(crossbar_spread(1000), 5988);
        assert_eq!(l2_miss_stream(1000), 100);
    }

    #[test]
    fn trio_summary_mentions_all_three_stages() {
        let trio = measure_trio(1, 1000);
        let s = trio.summary();
        assert!(
            s.contains("mux") && s.contains("xbar") && s.contains("l2"),
            "{s}"
        );
    }
}
