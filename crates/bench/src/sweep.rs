//! The resilient sweep engine: supervised noise-sweep execution with a
//! crash-safe journal, content-addressed result caching, and graceful
//! degradation.
//!
//! [`crate::noise_sweep`] is the fast path — every trial healthy, no
//! bookkeeping. This module runs the *same* trial units (byte-identical
//! aggregation) under [`gnc_common::supervise::run_supervised`]:
//!
//! * a panicking or timed-out trial becomes a manifest entry instead of
//!   an aborted sweep;
//! * every finished trial is appended to an on-disk [`Journal`] keyed by
//!   a content hash of `(config, experiment, preset, bits, trial)`, so a
//!   killed sweep resumes where it stopped;
//! * a resumed sweep replays cached results through the identical
//!   aggregation, producing byte-identical sweep JSON to an
//!   uninterrupted run.

use crate::NoisePoint;
use gnc_common::bits::BitVec;
use gnc_common::fault::FaultConfig;
use gnc_common::hash::content_key;
use gnc_common::journal::{self, Journal, JournalRecord};
use gnc_common::rng::experiment_rng;
use gnc_common::supervise::{run_supervised, SuperviseOptions};
use gnc_common::{GpuConfig, SimError};
use gnc_covert::channel::ChannelPlan;
use gnc_covert::protocol::ProtocolConfig;
use gnc_covert::robust::{compare_decoders, transmit_reliable, RobustOptions};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// The fault presets swept, in output order.
pub const NOISE_PRESETS: [&str; 5] = ["off", "mild", "moderate", "severe", "jammed"];

/// The sweep's unit list: every `(preset index, trial)` pair,
/// preset-major, so unit order matches aggregation order.
pub fn noise_units(trials: usize) -> Vec<(usize, u64)> {
    (0..NOISE_PRESETS.len())
        .flat_map(|p| (0..trials as u64).map(move |t| (p, t)))
        .collect()
}

/// The measured quantities of one `(preset, trial)` unit — everything
/// the aggregation consumes, and exactly what the journal caches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseTrial {
    /// Fault preset name.
    pub preset: String,
    /// Trial number within the preset (doubles as the trial seed).
    pub trial: u64,
    /// Naive static-threshold decoder's post-FEC bit errors.
    pub naive_errors: u64,
    /// Adaptive erasure decoder's post-FEC bit errors on the same traces.
    pub hardened_errors: u64,
    /// Payload bits compared per decoder.
    pub payload_bits: u64,
    /// Whether the ACK/NACK loop delivered a CRC-verified payload.
    pub delivered: bool,
    /// Attempts the ACK/NACK loop used (meaningful when delivered).
    pub attempts: u32,
}

/// Runs one noise-sweep unit: two full GPU simulations (decoder
/// comparison + reliable delivery) for one `(preset, trial)` pair.
pub fn run_noise_unit(
    cfg: &GpuConfig,
    plan: &ChannelPlan,
    opts: &RobustOptions,
    preset: &str,
    trial: u64,
    bits: usize,
) -> NoiseTrial {
    let mut rng = experiment_rng("noise-sweep", trial);
    let payload = BitVec::random(&mut rng, bits);
    let faults = FaultConfig::parse(preset)
        .expect("preset names parse")
        .with_seed(trial * 17 + 3);
    let cmp = compare_decoders(plan, cfg, &payload, trial, &faults, opts);
    let rel = transmit_reliable(plan, cfg, &payload, trial, Some(&faults), opts);
    NoiseTrial {
        preset: preset.to_owned(),
        trial,
        naive_errors: cmp.naive_errors as u64,
        hardened_errors: cmp.hardened_errors as u64,
        payload_bits: cmp.payload_bits as u64,
        delivered: rel.outcome.is_delivered(),
        attempts: rel.attempts,
    }
}

/// Aggregates per-unit records into per-preset [`NoisePoint`]s with the
/// exact accumulator order of the original serial sweep, so complete
/// sweeps serialize byte-identically however the records were produced
/// (serial, parallel, supervised, or replayed from a journal). Presets
/// with no surviving records (a heavily degraded partial sweep) are
/// omitted rather than reported as `NaN`.
pub fn aggregate_noise(trials: usize, records: &[&NoiseTrial]) -> Vec<NoisePoint> {
    NOISE_PRESETS
        .iter()
        .filter_map(|preset| {
            let mut naive = 0u64;
            let mut hardened = 0u64;
            let mut delivered = 0usize;
            let mut attempts = 0u32;
            let mut total_bits = 0u64;
            let mut seen = false;
            for rec in records.iter().filter(|r| r.preset == *preset) {
                seen = true;
                naive += rec.naive_errors;
                hardened += rec.hardened_errors;
                total_bits += rec.payload_bits;
                if rec.delivered {
                    delivered += 1;
                    attempts += rec.attempts;
                }
            }
            seen.then(|| NoisePoint {
                preset: (*preset).to_owned(),
                naive_ber: naive as f64 / total_bits as f64,
                hardened_ber: hardened as f64 / total_bits as f64,
                delivery_rate: delivered as f64 / trials as f64,
                mean_attempts: if delivered > 0 {
                    f64::from(attempts) / delivered as f64
                } else {
                    0.0
                },
            })
        })
        .collect()
}

/// Configuration for one resilient sweep run.
#[derive(Debug, Clone, Default)]
pub struct SweepConfig {
    /// Trials per preset.
    pub trials: usize,
    /// Payload bits per trial.
    pub bits: usize,
    /// Supervision knobs: timeout, retries, chaos, cancellation.
    pub supervise: SuperviseOptions,
    /// Journal path; `None` runs supervised but unjournaled.
    pub journal: Option<PathBuf>,
    /// Resume from an existing journal instead of truncating it.
    pub resume: bool,
}

/// One failed trial in the error manifest.
#[derive(Debug, Clone, Serialize)]
pub struct TrialFailure {
    /// Unit index in the sweep's unit list.
    pub index: u64,
    /// Fault preset of the failed unit.
    pub preset: String,
    /// Trial number within the preset.
    pub trial: u64,
    /// The trial's seed.
    pub seed: u64,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// Failure class: `panic`, `timeout`, or `cancelled`.
    pub kind: String,
    /// Human-readable failure detail.
    pub message: String,
}

/// The machine-readable summary a degraded sweep emits alongside its
/// partial results (`errors.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ErrorManifest {
    /// Total units in the sweep (presets × trials).
    pub total_units: u64,
    /// Units actually simulated this run.
    pub executed: u64,
    /// Units satisfied from the journal cache.
    pub cached: u64,
    /// Units that delivered a result (this run or cached).
    pub succeeded: u64,
    /// Units whose final attempt panicked or timed out.
    pub failed: u64,
    /// Units cancelled before or during execution.
    pub cancelled: u64,
    /// Units that failed at least once but recovered within the retry
    /// budget.
    pub recovered: u64,
    /// Extra attempts spent across all units (retries).
    pub retries_spent: u64,
    /// GPU machines constructed from scratch during this run. With the
    /// build-once/reset-many pool, this converges to one per (worker,
    /// config-shape); a full-cache replay builds none.
    pub gpus_built: u64,
    /// Trials served by resetting a pooled machine in place instead of
    /// constructing one. `gpus_built + gpus_reset` is the number of
    /// attempts actually simulated.
    pub gpus_reset: u64,
    /// Per-unit failure details for every unit without a result.
    pub failures: Vec<TrialFailure>,
}

impl ErrorManifest {
    /// True when every unit delivered a result.
    pub fn is_clean(&self) -> bool {
        self.failed == 0 && self.cancelled == 0
    }
}

/// What a resilient sweep hands back: the (possibly partial) curve plus
/// the accounting behind it.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-preset aggregates over every unit that delivered a result.
    pub points: Vec<NoisePoint>,
    /// Execution accounting and failure details.
    pub manifest: ErrorManifest,
    /// True when every unit delivered a result (the sweep JSON is then
    /// byte-identical to an undisturbed run).
    pub complete: bool,
}

/// The content-hash cache key of one noise-sweep unit. Stable across
/// runs, processes, and job counts: any change to the GPU config, the
/// payload width, the preset, or the trial seed changes the key.
fn unit_key(cfg_json: &str, preset: &str, bits: usize, trial: u64) -> String {
    content_key(&[
        cfg_json.as_bytes(),
        b"noise-sweep",
        preset.as_bytes(),
        &(bits as u64).to_le_bytes(),
        &trial.to_le_bytes(),
    ])
}

fn failure_kind(err: &SimError) -> &'static str {
    match err {
        SimError::TrialPanicked { .. } => "panic",
        SimError::TrialTimedOut { .. } => "timeout",
        SimError::TrialCancelled { .. } => "cancelled",
        _ => "error",
    }
}

/// Runs the noise sweep under supervision with journaled
/// checkpoint/resume. See the module docs for the contract; the short
/// version: this function does not abort on trial failures, it records
/// them, and a complete (possibly resumed) sweep aggregates
/// byte-identically to [`crate::noise_sweep`] at the same
/// `trials`/`bits`.
///
/// # Errors
///
/// Only infrastructure failures surface as `Err` — journal I/O and
/// corruption ([`SimError::Io`] / [`SimError::Journal`]). Trial
/// failures never do; they land in the report's manifest.
pub fn resilient_noise_sweep(
    cfg: &GpuConfig,
    sweep: &SweepConfig,
) -> Result<SweepReport, SimError> {
    let plan = ChannelPlan::tpc(cfg, ProtocolConfig::tpc(4), &[0]);
    let robust = RobustOptions::default();
    let units = noise_units(sweep.trials);
    let cfg_json = serde_json::to_string(cfg).map_err(|e| SimError::Journal {
        path: String::new(),
        reason: format!("config failed to serialize: {e}"),
    })?;
    let keys: Vec<String> = units
        .iter()
        .map(|&(p, trial)| unit_key(&cfg_json, NOISE_PRESETS[p], sweep.bits, trial))
        .collect();

    // Load the cache and open the journal for appending.
    let mut cache: HashMap<String, NoiseTrial> = HashMap::new();
    let mut journal = match &sweep.journal {
        Some(path) if sweep.resume && path.exists() => {
            let (journal, records) = Journal::resume(path)?;
            for rec in records {
                if let Some(ok) = rec.ok {
                    if let Ok(trial) = serde_json::from_value::<NoiseTrial>(&ok) {
                        cache.insert(rec.key, trial);
                    }
                }
            }
            Some(journal)
        }
        Some(path) => Some(Journal::create(path)?),
        None => None,
    };

    // Only units without a cached success run; failures are re-tried on
    // resume (they may have been transient).
    let pending: Vec<usize> = (0..units.len())
        .filter(|&i| !cache.contains_key(&keys[i]))
        .collect();
    let cached = (units.len() - pending.len()) as u64;

    let builds_before = gnc_sim::gpus_built();
    let resets_before = gnc_sim::gpus_reset();
    let outcomes = run_supervised(
        &pending,
        &sweep.supervise,
        |&i| units[i].1,
        |&i| {
            let (p, trial) = units[i];
            run_noise_unit(cfg, &plan, &robust, NOISE_PRESETS[p], trial, sweep.bits)
        },
    );
    let gpus_built = gnc_sim::gpus_built() - builds_before;
    let gpus_reset = gnc_sim::gpus_reset() - resets_before;

    // Journal every settled outcome (flushed record-by-record) and fold
    // the accounting. Cancelled units are deliberately *not* journaled:
    // they carry no information a resume could reuse.
    let mut fresh: HashMap<usize, NoiseTrial> = HashMap::new();
    let mut manifest = ErrorManifest {
        total_units: units.len() as u64,
        executed: 0,
        cached,
        succeeded: cached,
        failed: 0,
        cancelled: 0,
        recovered: 0,
        retries_spent: 0,
        gpus_built,
        gpus_reset,
        failures: Vec::new(),
    };
    for (slot, outcome) in pending.iter().zip(&outcomes) {
        let unit = *slot;
        let (p, trial) = units[unit];
        manifest.retries_spent += u64::from(outcome.attempts.saturating_sub(1));
        let cancelled = matches!(outcome.result, Err(SimError::TrialCancelled { .. }));
        if !cancelled {
            manifest.executed += 1;
        }
        match &outcome.result {
            Ok(rec) => {
                manifest.succeeded += 1;
                if outcome.attempts > 1 {
                    manifest.recovered += 1;
                }
                if let Some(journal) = journal.as_mut() {
                    journal.append(&JournalRecord {
                        key: keys[unit].clone(),
                        index: unit as u64,
                        seed: outcome.seed,
                        attempts: outcome.attempts,
                        ok: Some(serde_json::to_value(rec).map_err(|e| SimError::Journal {
                            path: journal_path_string(journal),
                            reason: format!("trial record failed to serialize: {e}"),
                        })?),
                        err_kind: None,
                        err_message: None,
                    })?;
                }
                fresh.insert(unit, rec.clone());
            }
            Err(err) => {
                if cancelled {
                    manifest.cancelled += 1;
                } else {
                    manifest.failed += 1;
                    if let Some(journal) = journal.as_mut() {
                        journal.append(&JournalRecord {
                            key: keys[unit].clone(),
                            index: unit as u64,
                            seed: outcome.seed,
                            attempts: outcome.attempts,
                            ok: None,
                            err_kind: Some(failure_kind(err).to_owned()),
                            err_message: Some(err.to_string()),
                        })?;
                    }
                }
                manifest.failures.push(TrialFailure {
                    index: unit as u64,
                    preset: NOISE_PRESETS[p].to_owned(),
                    trial,
                    seed: outcome.seed,
                    attempts: outcome.attempts,
                    kind: failure_kind(err).to_owned(),
                    message: err.to_string(),
                });
            }
        }
    }

    // Replay cached + fresh results through the aggregation in unit
    // order — the byte-identity contract.
    let ordered: Vec<&NoiseTrial> = (0..units.len())
        .filter_map(|i| fresh.get(&i).or_else(|| cache.get(&keys[i])))
        .collect();
    let complete = ordered.len() == units.len();
    let points = aggregate_noise(sweep.trials, &ordered);
    Ok(SweepReport {
        points,
        manifest,
        complete,
    })
}

fn journal_path_string(journal: &Journal) -> String {
    journal.path().display().to_string()
}

/// Counts trials recorded in a journal file — the accounting hook the
/// resilience CI job uses to prove cache hits skip re-simulation.
///
/// # Errors
///
/// [`SimError::Io`] / [`SimError::Journal`] when the journal cannot be
/// read or parsed.
pub fn journal_summary(path: &Path) -> Result<(u64, u64), SimError> {
    let records = journal::load(path)?;
    let ok = records.iter().filter(|r| r.is_ok()).count() as u64;
    let failed = records.len() as u64 - ok;
    Ok((ok, failed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnc_common::fault::HarnessChaos;

    fn quick_cfg() -> SweepConfig {
        SweepConfig {
            trials: 1,
            bits: 8,
            ..SweepConfig::default()
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("gnc_sweep_{name}_{}", std::process::id()))
    }

    #[test]
    fn supervised_sweep_matches_plain_sweep() {
        let cfg = crate::platform();
        let sweep = quick_cfg();
        let report = resilient_noise_sweep(&cfg, &sweep).expect("sweep");
        assert!(report.complete && report.manifest.is_clean());
        // The plain path at the same unit parameters aggregates to the
        // same bytes.
        let plan = ChannelPlan::tpc(&cfg, ProtocolConfig::tpc(4), &[0]);
        let robust = RobustOptions::default();
        let units = noise_units(sweep.trials);
        let plain: Vec<NoiseTrial> = units
            .iter()
            .map(|&(p, t)| run_noise_unit(&cfg, &plan, &robust, NOISE_PRESETS[p], t, sweep.bits))
            .collect();
        let plain_points = aggregate_noise(sweep.trials, &plain.iter().collect::<Vec<_>>());
        assert_eq!(
            serde_json::to_string(&report.points).expect("json"),
            serde_json::to_string(&plain_points).expect("json"),
        );
    }

    #[test]
    fn journal_caches_and_resume_is_byte_identical() {
        let cfg = crate::platform();
        let path = temp_path("resume");
        std::fs::remove_file(&path).ok();
        let mut sweep = quick_cfg();
        sweep.journal = Some(path.clone());
        let first = resilient_noise_sweep(&cfg, &sweep).expect("first run");
        assert_eq!(first.manifest.executed, 5);
        // Resume over the complete journal: everything is a cache hit.
        sweep.resume = true;
        let resumed = resilient_noise_sweep(&cfg, &sweep).expect("resumed run");
        assert_eq!(resumed.manifest.executed, 0);
        assert_eq!(resumed.manifest.cached, 5);
        assert_eq!(
            serde_json::to_string(&first.points).expect("json"),
            serde_json::to_string(&resumed.points).expect("json"),
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chaos_failures_degrade_into_the_manifest() {
        let cfg = crate::platform();
        let mut sweep = quick_cfg();
        sweep.supervise.chaos = HarnessChaos {
            seed: 7,
            trial_panic_rate: 1.0,
            trial_stall_rate: 0.0,
        };
        let report = resilient_noise_sweep(&cfg, &sweep).expect("sweep must not abort");
        assert!(!report.complete);
        assert_eq!(report.manifest.failed, 5);
        assert_eq!(report.manifest.failures.len(), 5);
        assert!(report.points.is_empty());
        assert!(report
            .manifest
            .failures
            .iter()
            .all(|f| f.kind == "panic" && f.message.contains("chaos")));
    }
}
