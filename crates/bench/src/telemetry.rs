//! Telemetry-instrumented variants of the evaluation workloads.
//!
//! Each runner re-stages one of the paper's experiments on a GPU whose
//! probe is a live [`Collector`] instead of the zero-cost `NullProbe`,
//! and returns the filled collector so callers can emit the utilization
//! report, the JSONL flit trace, or the Chrome `trace_event` timeline
//! (see `figures --telemetry` and the CLI's `report` subcommand).

use crate::Scale;
use gnc_common::ids::GpcId;
use gnc_common::rng::experiment_rng;
use gnc_common::telemetry::Collector;
use gnc_common::GpuConfig;
use gnc_covert::channel::{ChannelPlan, TransmissionReport};
use gnc_covert::protocol::ProtocolConfig;
use gnc_covert::reverse::run_active_sms_on;
use gnc_sim::gpu::Gpu;
use gnc_sim::kernel::AccessKind;

use gnc_common::bits::BitVec;

/// Fig 5(b)'s most contended point, instrumented: every TPC of GPC 0
/// streams reads at once, so the GPC request mux and the slice-side
/// crossbar ports light up in the heatmap.
pub fn telemetry_fig05(cfg: &GpuConfig, scale: Scale) -> Collector {
    let batches = match scale {
        Scale::Quick => 24,
        Scale::Full => 60,
    };
    let members = cfg.tpcs_of_gpc(GpcId::new(0));
    let active: Vec<usize> = members.iter().map(|t| 2 * t.index()).collect();
    let mut gpu = Gpu::with_clock_seed(cfg.clone(), 5)
        .expect("valid config")
        .with_probe(Collector::for_config(cfg));
    run_active_sms_on(&mut gpu, &active, AccessKind::Read, 4, batches);
    gpu.into_probe()
}

/// One Fig 10(a) operating point (single TPC channel, 4 iterations per
/// bit), instrumented end to end: the trace shows the sender's flit
/// bursts alternating with the receiver's probe packets slot by slot.
/// Also returns the transmission report so callers can cross-check the
/// instrumented run still decodes.
pub fn telemetry_fig10(cfg: &GpuConfig, scale: Scale) -> (Collector, TransmissionReport) {
    let bits = match scale {
        Scale::Quick => 24,
        Scale::Full => 96,
    };
    let plan = ChannelPlan::tpc(cfg, ProtocolConfig::tpc(4), &[0]);
    let mut rng = experiment_rng("telemetry-fig10", 4);
    let payload = BitVec::random(&mut rng, bits);
    let mut gpu = Gpu::with_clock_seed(cfg.clone(), 4)
        .expect("valid config")
        .with_probe(Collector::for_config(cfg));
    let report = plan.transmit_on(&mut gpu, &payload, 4);
    (gpu.into_probe(), report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig05_collector_sees_gpc0_traffic_only() {
        let cfg = crate::platform();
        let col = telemetry_fig05(&cfg, Scale::Quick);
        assert!(col.packets_injected() > 0, "no traffic collected");
        assert_eq!(col.in_flight(), 0, "run must quiesce");
        let report = col.report();
        // Every member TPC of GPC0 contributes; SM 2 (TPC1, GPC1 in the
        // paper's striped mapping) stays quiet.
        let m = &report.sm_slice;
        let active: u64 = (0..cfg.num_sms())
            .map(|sm| (0..cfg.mem.num_l2_slices).map(|s| m.at(sm, s)).sum::<u64>())
            .sum();
        assert!(active > 0);
    }

    #[test]
    fn fig10_instrumented_run_still_decodes() {
        let cfg = crate::platform();
        let (col, report) = telemetry_fig10(&cfg, Scale::Quick);
        assert!(
            report.error_rate < 0.05,
            "instrumented run decode degraded: {}",
            report.error_rate
        );
        assert_eq!(col.in_flight(), 0);
        assert!(col.packets_delivered() == col.packets_injected());
    }
}
