//! Hand-rolled argument parsing for the `gnc` binary (no extra
//! dependencies; the grammar is small).

use gnc_common::config::{Arbitration, GpuConfig};
use std::fmt;

/// A parsed `gnc` invocation: the command plus global options.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// The subcommand and its options.
    pub command: Command,
    /// Worker-thread count for parallel sweeps (`--jobs`); `None` keeps
    /// the default (all available cores).
    pub jobs: Option<usize>,
}

/// A parsed `gnc` command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print the simulated GPU's topology and Table-1 parameters.
    Info {
        /// Selected architecture preset.
        arch: Arch,
    },
    /// Reverse-engineer the TPC/GPC topology blind and print the map.
    Reverse {
        /// Architecture preset.
        arch: Arch,
        /// Co-activation matrix trials.
        trials: usize,
    },
    /// Transmit a message over the covert channel and report the result.
    Send {
        /// Architecture preset.
        arch: Arch,
        /// The message bytes.
        message: String,
        /// Use every TPC in parallel (the ~24 Mbps configuration).
        all_tpcs: bool,
        /// Memory operations per bit.
        iterations: u32,
        /// Interconnect arbitration policy (the §6 countermeasure knob).
        arbitration: Arbitration,
        /// Protect the payload with Hamming(7,4).
        fec: bool,
        /// Deterministic seed.
        seed: u64,
        /// Fault-injection spec (preset[@seed][,key=val...]); switches to
        /// the hardened CRC/ACK protocol.
        faults: Option<String>,
        /// Instrument the run with the telemetry collector and write the
        /// report + flit traces into this directory (`--telemetry[=DIR]`,
        /// default `telemetry`).
        telemetry: Option<String>,
    },
    /// Run an instrumented transmission and print the contention heatmap
    /// and channel-utilization table.
    Report {
        /// Architecture preset.
        arch: Arch,
        /// The message bytes driven through the channel.
        message: String,
        /// Use every TPC in parallel.
        all_tpcs: bool,
        /// Memory operations per bit.
        iterations: u32,
        /// Interconnect arbitration policy.
        arbitration: Arbitration,
        /// Deterministic seed.
        seed: u64,
        /// Also write the report JSON and flit traces here.
        out: Option<String>,
    },
    /// Sweep the fault presets, comparing naive vs hardened decoding.
    Chaos {
        /// Architecture preset.
        arch: Arch,
        /// The message bytes.
        message: String,
        /// Deterministic seed.
        seed: u64,
    },
    /// Meter a victim's activity profile through the side channel.
    SideChannel {
        /// Architecture preset.
        arch: Arch,
        /// Per-phase L2 access counts (0–32 each).
        profile: Vec<u32>,
    },
    /// Run the supervised, journaled noise sweep (resumable).
    Sweep {
        /// Architecture preset.
        arch: Arch,
        /// Supervision, journaling, and output options.
        opts: SweepOpts,
    },
    /// Print usage.
    Help,
}

/// Options of the `sweep` command, grouped so [`Command`] stays small.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOpts {
    /// Trials per fault preset.
    pub trials: usize,
    /// Payload bits per trial.
    pub bits: usize,
    /// Sweep JSON output path.
    pub out: Option<String>,
    /// Journal path for a fresh (truncating) run.
    pub journal: Option<String>,
    /// Journal path to resume from (skips cached trials).
    pub resume: Option<String>,
    /// Per-trial watchdog deadline in milliseconds.
    pub trial_timeout_ms: Option<u64>,
    /// Extra attempts for panicked/timed-out trials.
    pub retries: u32,
    /// Injected per-attempt panic probability (harness chaos).
    pub chaos_trial_panic: f64,
    /// Injected per-attempt stall probability (harness chaos).
    pub chaos_trial_stall: f64,
    /// Seed for the chaos draws.
    pub chaos_seed: u64,
    /// Error-manifest output path.
    pub errors: String,
}

impl Default for SweepOpts {
    fn default() -> Self {
        Self {
            trials: 2,
            bits: 24,
            out: None,
            journal: None,
            resume: None,
            trial_timeout_ms: None,
            retries: 0,
            chaos_trial_panic: 0.0,
            chaos_trial_stall: 0.0,
            chaos_seed: 0,
            errors: "errors.json".into(),
        }
    }
}

/// Architecture preset selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// The paper's platform (default).
    Volta,
    /// Pascal P100 preset.
    Pascal,
    /// Turing TU102 preset.
    Turing,
}

impl Arch {
    /// Materialises the preset.
    pub fn config(self) -> GpuConfig {
        match self {
            Arch::Volta => GpuConfig::volta_v100(),
            Arch::Pascal => GpuConfig::pascal_p100(),
            Arch::Turing => GpuConfig::turing_tu102(),
        }
    }
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// The usage text printed by `gnc help`.
pub const USAGE: &str = "\
gnc — GPU NoC covert channel reproduction (MICRO'21)

USAGE:
    gnc <COMMAND> [OPTIONS]

COMMANDS:
    info                         print the simulated GPU topology
    reverse                      reverse-engineer TPC/GPC placement blind
    send --message <TEXT>        exfiltrate a message over the channel
    report                       instrumented run: contention heatmap +
                                 channel-utilization table
    chaos                        sweep fault presets, naive vs hardened
    sweep                        supervised, journaled noise sweep with
                                 checkpoint/resume and graceful shutdown
    sidechannel --profile <CSV>  meter a victim's per-phase L2 activity
    help                         show this text

COMMON OPTIONS:
    --arch <volta|pascal|turing>   architecture preset   [default: volta]
    --jobs <N>                     worker threads for sweeps
                                   [default: all cores]

OPTIONS (reverse):
    --trials <N>                   co-activation trials  [default: 400]

OPTIONS (send):
    --all-tpcs                     stripe across all TPC channels
    --iterations <K>               memory ops per bit    [default: 4]
    --arbitration <rr|crr|srr|age> NoC arbitration       [default: rr]
    --fec                          Hamming(7,4) protection
    --seed <N>                     deterministic seed    [default: 42]
    --faults <SPEC>                inject faults and use the hardened
                                   ACK/NACK protocol; SPEC is
                                   off|mild|moderate|severe|jammed with
                                   optional @seed and key=value overrides
                                   (e.g. moderate@7,sample_drop_rate=0.2)
    --telemetry[=DIR]              collect telemetry during the run and
                                   write report + flit traces to DIR
                                   [default dir: telemetry]; not
                                   compatible with --faults

OPTIONS (report):
    --message <TEXT>               payload                [default: noc]
    --all-tpcs                     stripe across all TPC channels
    --iterations <K>               memory ops per bit    [default: 4]
    --arbitration <rr|crr|srr|age> NoC arbitration       [default: rr]
    --seed <N>                     deterministic seed    [default: 42]
    --out <DIR>                    also write report JSON + flit traces

OPTIONS (chaos):
    --message <TEXT>               payload                [default: noc]
    --seed <N>                     deterministic seed    [default: 42]

OPTIONS (sweep):
    --trials <N>                   trials per fault preset [default: 2]
    --bits <N>                     payload bits per trial  [default: 24]
    --out <FILE>                   write the sweep JSON here
    --journal <FILE>               append every finished trial to this
                                   crash-safe JSONL journal
    --resume <FILE>                resume from an existing journal:
                                   cached trials are skipped, the final
                                   JSON is byte-identical to an
                                   uninterrupted run
    --trial-timeout <MS>           per-trial watchdog deadline
    --retries <N>                  extra attempts for panicked or
                                   timed-out trials  [default: 0]
    --errors <FILE>                error-manifest path
                                   [default: errors.json]
    --chaos-trial-panic <P>        inject a panic into each attempt with
                                   probability P (0-1)  [default: 0]
    --chaos-trial-stall <P>        stall each attempt until the watchdog
                                   fires with probability P [default: 0]
    --chaos-seed <N>               seed for the chaos draws [default: 0]
    SIGINT (Ctrl-C) cancels gracefully: the journal is flushed and
    partial results plus the error manifest are still written.

OPTIONS (sidechannel):
    --profile <a,b,c,...>          per-phase access counts (0-32)
";

fn parse_rate(value: &str, flag: &str) -> Result<f64, ParseError> {
    let rate: f64 = value
        .parse()
        .map_err(|_| ParseError(format!("{flag} requires a probability")))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(ParseError(format!("{flag} must be within 0-1")));
    }
    Ok(rate)
}

fn parse_arch(value: &str) -> Result<Arch, ParseError> {
    match value {
        "volta" => Ok(Arch::Volta),
        "pascal" => Ok(Arch::Pascal),
        "turing" => Ok(Arch::Turing),
        other => Err(ParseError(format!("unknown architecture '{other}'"))),
    }
}

fn parse_arbitration(value: &str) -> Result<Arbitration, ParseError> {
    match value {
        "rr" => Ok(Arbitration::RoundRobin),
        "crr" => Ok(Arbitration::CoarseRoundRobin),
        "srr" => Ok(Arbitration::StrictRoundRobin),
        "age" => Ok(Arbitration::AgeBased),
        other => Err(ParseError(format!("unknown arbitration '{other}'"))),
    }
}

/// Parses the argument list (without the program name) into just the
/// command, discarding global options. Convenience wrapper around
/// [`parse_invocation`] kept for tests and embedding.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending argument.
#[cfg_attr(not(test), allow(dead_code))]
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    parse_invocation(args).map(|inv| inv.command)
}

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending argument.
pub fn parse_invocation(args: &[String]) -> Result<Invocation, ParseError> {
    let mut iter = args.iter();
    let Some(cmd) = iter.next() else {
        return Ok(Invocation {
            command: Command::Help,
            jobs: None,
        });
    };
    let mut jobs: Option<usize> = None;
    let mut arch = Arch::Volta;
    let mut trials = 400usize;
    let mut message: Option<String> = None;
    let mut all_tpcs = false;
    let mut iterations = 4u32;
    let mut arbitration = Arbitration::RoundRobin;
    let mut fec = false;
    let mut seed = 42u64;
    let mut faults: Option<String> = None;
    let mut profile: Option<Vec<u32>> = None;
    let mut telemetry: Option<String> = None;
    let mut out: Option<String> = None;
    let mut sweep = SweepOpts::default();
    let mut trials_given = false;

    let take_value = |iter: &mut std::slice::Iter<String>, flag: &str| {
        iter.next()
            .cloned()
            .ok_or_else(|| ParseError(format!("{flag} requires a value")))
    };

    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--arch" => arch = parse_arch(&take_value(&mut iter, "--arch")?)?,
            "--trials" => {
                trials = take_value(&mut iter, "--trials")?
                    .parse()
                    .map_err(|_| ParseError("--trials requires a number".into()))?;
                trials_given = true;
            }
            "--bits" => {
                sweep.bits = take_value(&mut iter, "--bits")?
                    .parse()
                    .map_err(|_| ParseError("--bits requires a number".into()))?;
                if sweep.bits == 0 {
                    return Err(ParseError("--bits must be at least 1".into()));
                }
            }
            "--journal" => sweep.journal = Some(take_value(&mut iter, "--journal")?),
            "--resume" => sweep.resume = Some(take_value(&mut iter, "--resume")?),
            "--trial-timeout" => {
                let ms: u64 = take_value(&mut iter, "--trial-timeout")?
                    .parse()
                    .map_err(|_| ParseError("--trial-timeout requires milliseconds".into()))?;
                if ms == 0 {
                    return Err(ParseError("--trial-timeout must be at least 1 ms".into()));
                }
                sweep.trial_timeout_ms = Some(ms);
            }
            "--retries" => {
                sweep.retries = take_value(&mut iter, "--retries")?
                    .parse()
                    .map_err(|_| ParseError("--retries requires a number".into()))?;
            }
            "--errors" => sweep.errors = take_value(&mut iter, "--errors")?,
            "--chaos-trial-panic" => {
                sweep.chaos_trial_panic = parse_rate(
                    &take_value(&mut iter, "--chaos-trial-panic")?,
                    "--chaos-trial-panic",
                )?;
            }
            "--chaos-trial-stall" => {
                sweep.chaos_trial_stall = parse_rate(
                    &take_value(&mut iter, "--chaos-trial-stall")?,
                    "--chaos-trial-stall",
                )?;
            }
            "--chaos-seed" => {
                sweep.chaos_seed = take_value(&mut iter, "--chaos-seed")?
                    .parse()
                    .map_err(|_| ParseError("--chaos-seed requires a number".into()))?;
            }
            "--message" => message = Some(take_value(&mut iter, "--message")?),
            "--all-tpcs" => all_tpcs = true,
            "--iterations" => {
                iterations = take_value(&mut iter, "--iterations")?
                    .parse()
                    .map_err(|_| ParseError("--iterations requires a number".into()))?;
            }
            "--arbitration" => {
                arbitration = parse_arbitration(&take_value(&mut iter, "--arbitration")?)?;
            }
            "--fec" => fec = true,
            "--seed" => {
                seed = take_value(&mut iter, "--seed")?
                    .parse()
                    .map_err(|_| ParseError("--seed requires a number".into()))?;
            }
            "--faults" => faults = Some(take_value(&mut iter, "--faults")?),
            "--telemetry" => telemetry = Some("telemetry".into()),
            "--out" => out = Some(take_value(&mut iter, "--out")?),
            "--jobs" => {
                let n: usize = take_value(&mut iter, "--jobs")?
                    .parse()
                    .map_err(|_| ParseError("--jobs requires a number".into()))?;
                if n == 0 {
                    return Err(ParseError("--jobs must be at least 1".into()));
                }
                jobs = Some(n);
            }
            "--profile" => {
                let csv = take_value(&mut iter, "--profile")?;
                let parsed: Result<Vec<u32>, _> =
                    csv.split(',').map(|v| v.trim().parse()).collect();
                profile = Some(parsed.map_err(|_| {
                    ParseError("--profile requires comma-separated numbers".into())
                })?);
            }
            other => {
                if let Some(dir) = other.strip_prefix("--telemetry=") {
                    if dir.is_empty() {
                        return Err(ParseError("--telemetry= requires a directory".into()));
                    }
                    telemetry = Some(dir.to_owned());
                } else {
                    return Err(ParseError(format!("unknown option '{other}'")));
                }
            }
        }
    }

    let command = match cmd.as_str() {
        "info" => Command::Info { arch },
        "reverse" => Command::Reverse { arch, trials },
        "send" => {
            let message = message.ok_or_else(|| ParseError("send requires --message".into()))?;
            Command::Send {
                arch,
                message,
                all_tpcs,
                iterations,
                arbitration,
                fec,
                seed,
                faults,
                telemetry,
            }
        }
        "report" => Command::Report {
            arch,
            message: message.unwrap_or_else(|| "noc".into()),
            all_tpcs,
            iterations,
            arbitration,
            seed,
            out,
        },
        "chaos" => Command::Chaos {
            arch,
            message: message.unwrap_or_else(|| "noc".into()),
            seed,
        },
        "sweep" => {
            if trials_given {
                sweep.trials = trials;
            }
            if sweep.journal.is_some() && sweep.resume.is_some() {
                return Err(ParseError(
                    "--journal and --resume are mutually exclusive (resume names the journal)"
                        .into(),
                ));
            }
            sweep.out = out;
            Command::Sweep { arch, opts: sweep }
        }
        "sidechannel" => {
            let profile =
                profile.ok_or_else(|| ParseError("sidechannel requires --profile".into()))?;
            if profile.iter().any(|&p| p > 32) {
                return Err(ParseError("--profile values must be 0-32".into()));
            }
            Command::SideChannel { arch, profile }
        }
        "help" | "--help" | "-h" => Command::Help,
        other => return Err(ParseError(format!("unknown command '{other}'"))),
    };
    Ok(Invocation { command, jobs })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn info_with_arch() {
        assert_eq!(
            parse(&argv("info --arch pascal")).unwrap(),
            Command::Info { arch: Arch::Pascal }
        );
    }

    #[test]
    fn reverse_defaults_and_override() {
        assert_eq!(
            parse(&argv("reverse")).unwrap(),
            Command::Reverse {
                arch: Arch::Volta,
                trials: 400
            }
        );
        assert_eq!(
            parse(&argv("reverse --trials 99 --arch turing")).unwrap(),
            Command::Reverse {
                arch: Arch::Turing,
                trials: 99
            }
        );
    }

    #[test]
    fn send_full_form() {
        let cmd = parse(&argv(
            "send --message hi --all-tpcs --iterations 5 --arbitration srr --fec --seed 7",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Send {
                arch: Arch::Volta,
                message: "hi".into(),
                all_tpcs: true,
                iterations: 5,
                arbitration: Arbitration::StrictRoundRobin,
                fec: true,
                seed: 7,
                faults: None,
                telemetry: None,
            }
        );
    }

    #[test]
    fn send_telemetry_forms() {
        let Command::Send { telemetry, .. } = parse(&argv("send --message hi")).unwrap() else {
            panic!("expected send");
        };
        assert_eq!(telemetry, None);
        let Command::Send { telemetry, .. } =
            parse(&argv("send --message hi --telemetry")).unwrap()
        else {
            panic!("expected send");
        };
        assert_eq!(telemetry.as_deref(), Some("telemetry"));
        let Command::Send { telemetry, .. } =
            parse(&argv("send --message hi --telemetry=probes/out")).unwrap()
        else {
            panic!("expected send");
        };
        assert_eq!(telemetry.as_deref(), Some("probes/out"));
        assert!(parse(&argv("send --message hi --telemetry=")).is_err());
    }

    #[test]
    fn report_defaults_and_override() {
        assert_eq!(
            parse(&argv("report")).unwrap(),
            Command::Report {
                arch: Arch::Volta,
                message: "noc".into(),
                all_tpcs: false,
                iterations: 4,
                arbitration: Arbitration::RoundRobin,
                seed: 42,
                out: None,
            }
        );
        assert_eq!(
            parse(&argv(
                "report --message hi --all-tpcs --arbitration age --seed 9 --out tdir"
            ))
            .unwrap(),
            Command::Report {
                arch: Arch::Volta,
                message: "hi".into(),
                all_tpcs: true,
                iterations: 4,
                arbitration: Arbitration::AgeBased,
                seed: 9,
                out: Some("tdir".into()),
            }
        );
    }

    #[test]
    fn send_with_faults_spec() {
        let cmd = parse(&argv("send --message hi --faults moderate@9")).unwrap();
        let Command::Send { faults, .. } = cmd else {
            panic!("expected send");
        };
        assert_eq!(faults.as_deref(), Some("moderate@9"));
    }

    #[test]
    fn chaos_defaults_and_override() {
        assert_eq!(
            parse(&argv("chaos")).unwrap(),
            Command::Chaos {
                arch: Arch::Volta,
                message: "noc".into(),
                seed: 42,
            }
        );
        assert_eq!(
            parse(&argv("chaos --message x --seed 5 --arch turing")).unwrap(),
            Command::Chaos {
                arch: Arch::Turing,
                message: "x".into(),
                seed: 5,
            }
        );
    }

    #[test]
    fn send_requires_message() {
        assert!(parse(&argv("send")).is_err());
    }

    #[test]
    fn sidechannel_profile_parsing() {
        assert_eq!(
            parse(&argv("sidechannel --profile 0,24,8")).unwrap(),
            Command::SideChannel {
                arch: Arch::Volta,
                profile: vec![0, 24, 8]
            }
        );
        assert!(parse(&argv("sidechannel --profile 0,99")).is_err());
        assert!(parse(&argv("sidechannel")).is_err());
    }

    #[test]
    fn unknown_bits_are_rejected() {
        assert!(parse(&argv("launch")).is_err());
        assert!(parse(&argv("info --bogus")).is_err());
        assert!(parse(&argv("send --message")).is_err());
        assert!(parse(&argv("send --message x --arbitration lifo")).is_err());
    }

    #[test]
    fn jobs_is_global_and_validated() {
        let inv = parse_invocation(&argv("chaos --jobs 4")).unwrap();
        assert_eq!(inv.jobs, Some(4));
        assert_eq!(
            inv.command,
            Command::Chaos {
                arch: Arch::Volta,
                message: "noc".into(),
                seed: 42,
            }
        );
        let inv = parse_invocation(&argv("info")).unwrap();
        assert_eq!(inv.jobs, None);
        assert!(parse_invocation(&argv("chaos --jobs 0")).is_err());
        assert!(parse_invocation(&argv("chaos --jobs many")).is_err());
        // The command-only wrapper discards the flag without error.
        assert_eq!(
            parse(&argv("info --jobs 2")).unwrap(),
            Command::Info { arch: Arch::Volta }
        );
    }

    #[test]
    fn sweep_defaults() {
        assert_eq!(
            parse(&argv("sweep")).unwrap(),
            Command::Sweep {
                arch: Arch::Volta,
                opts: SweepOpts::default(),
            }
        );
    }

    #[test]
    fn sweep_full_form() {
        let cmd = parse(&argv(
            "sweep --trials 4 --bits 16 --out s.json --journal j.jsonl --trial-timeout 500 \
             --retries 2 --errors e.json --chaos-trial-panic 0.25 --chaos-trial-stall 0.1 \
             --chaos-seed 9",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Sweep {
                arch: Arch::Volta,
                opts: SweepOpts {
                    trials: 4,
                    bits: 16,
                    out: Some("s.json".into()),
                    journal: Some("j.jsonl".into()),
                    resume: None,
                    trial_timeout_ms: Some(500),
                    retries: 2,
                    chaos_trial_panic: 0.25,
                    chaos_trial_stall: 0.1,
                    chaos_seed: 9,
                    errors: "e.json".into(),
                },
            }
        );
    }

    #[test]
    fn sweep_resume_and_validation() {
        let Command::Sweep { opts, .. } = parse(&argv("sweep --resume j.jsonl")).unwrap() else {
            panic!("expected sweep");
        };
        assert_eq!(opts.resume.as_deref(), Some("j.jsonl"));
        assert!(parse(&argv("sweep --journal a --resume b")).is_err());
        assert!(parse(&argv("sweep --chaos-trial-panic 1.5")).is_err());
        assert!(parse(&argv("sweep --chaos-trial-stall nope")).is_err());
        assert!(parse(&argv("sweep --trial-timeout 0")).is_err());
        assert!(parse(&argv("sweep --bits 0")).is_err());
        // `--trials` keeps its reverse default when sweeping without it.
        let Command::Sweep { opts, .. } = parse(&argv("sweep --bits 8")).unwrap() else {
            panic!("expected sweep");
        };
        assert_eq!(opts.trials, 2);
    }

    #[test]
    fn arch_materialises_presets() {
        assert_eq!(Arch::Volta.config().num_sms(), 80);
        assert_eq!(Arch::Pascal.config().name, "Pascal P100");
        assert_eq!(Arch::Turing.config().name, "Turing TU102");
    }
}
