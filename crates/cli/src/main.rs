//! `gnc` — command-line driver for the GPU NoC covert-channel
//! reproduction.
//!
//! ```text
//! gnc info
//! gnc reverse --trials 400
//! gnc send --message "secret" --all-tpcs
//! gnc send --message "secret" --arbitration srr   # watch SRR kill it
//! gnc sidechannel --profile 0,24,8,32,16
//! ```

mod args;

use args::{Arch, Command, SweepOpts, USAGE};
use gnc_bench::sweep::{resilient_noise_sweep, SweepConfig};
use gnc_common::bits::BitVec;
use gnc_common::fault::{FaultConfig, HarnessChaos};
use gnc_common::fec::{fec_decode, fec_encode};
use gnc_common::ids::GpcId;
use gnc_common::supervise::{CancelToken, SuperviseOptions};
use gnc_common::telemetry::Collector;
use gnc_common::SimError;
use gnc_covert::channel::ChannelPlan;
use gnc_covert::protocol::ProtocolConfig;
use gnc_covert::reverse::recover_mapping;
use gnc_covert::robust::{compare_decoders, transmit_reliable, RobustOptions};
use gnc_covert::sidechannel::spy_on_victim;
use gnc_sim::gpu::Gpu;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let invocation = match args::parse_invocation(&argv) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(jobs) = invocation.jobs {
        gnc_common::par::set_jobs(jobs);
    }
    match invocation.command {
        Command::Help => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Command::Info { arch } => info(arch),
        Command::Reverse { arch, trials } => reverse(arch, trials),
        Command::Send {
            arch,
            message,
            all_tpcs,
            iterations,
            arbitration,
            fec,
            seed,
            faults,
            telemetry,
        } => send(
            arch,
            &message,
            all_tpcs,
            iterations,
            arbitration,
            fec,
            seed,
            faults.as_deref(),
            telemetry.as_deref(),
        ),
        Command::Report {
            arch,
            message,
            all_tpcs,
            iterations,
            arbitration,
            seed,
            out,
        } => report(
            arch,
            &message,
            all_tpcs,
            iterations,
            arbitration,
            seed,
            out.as_deref(),
        ),
        Command::Chaos {
            arch,
            message,
            seed,
        } => chaos(arch, &message, seed),
        Command::SideChannel { arch, profile } => sidechannel(arch, &profile),
        Command::Sweep { arch, opts } => sweep(arch, &opts),
    }
}

/// Installs a SIGINT handler that flips the sweep's [`CancelToken`]:
/// running trials unwind at their next cooperative checkpoint, the
/// journal is flushed, and partial results are still emitted.
#[cfg(unix)]
fn install_sigint(token: CancelToken) {
    use std::sync::OnceLock;
    static CANCEL: OnceLock<CancelToken> = OnceLock::new();
    extern "C" fn on_sigint(_signum: i32) {
        // Async-signal-safe: a single atomic store, no allocation.
        if let Some(token) = CANCEL.get() {
            token.cancel();
        }
    }
    // std links libc on unix, so the C `signal` entry point is already
    // in the binary; declaring it avoids a dependency on a libc crate.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    if CANCEL.set(token).is_ok() {
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
fn install_sigint(_token: CancelToken) {}

/// One-line per-cycle cost of the engine's hot loops, printed next to
/// wall-clock numbers so recorded runs are self-describing about the
/// engine they ran on.
fn micro_trio() -> String {
    gnc_bench::micro::measure_trio(3, 50_000).summary()
}

/// Serializes `value` as pretty JSON into `path`, mapping failures into
/// the [`SimError`] taxonomy.
fn write_json<T: serde::Serialize>(path: &str, value: &T) -> Result<(), SimError> {
    let json = serde_json::to_string_pretty(value).map_err(|e| SimError::Journal {
        path: path.to_owned(),
        reason: format!("output failed to serialize: {e}"),
    })?;
    std::fs::write(path, json + "\n").map_err(|e| SimError::io("write output", path, &e))
}

fn sweep(arch: Arch, opts: &SweepOpts) -> ExitCode {
    let cfg = arch.config();
    let chaos = HarnessChaos {
        seed: opts.chaos_seed,
        trial_panic_rate: opts.chaos_trial_panic,
        trial_stall_rate: opts.chaos_trial_stall,
    };
    if let Err(e) = chaos.validate() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let cancel = CancelToken::new();
    install_sigint(cancel.clone());
    let resume = opts.resume.is_some();
    let journal = opts
        .resume
        .as_ref()
        .or(opts.journal.as_ref())
        .map(PathBuf::from);
    let sweep_cfg = SweepConfig {
        trials: opts.trials,
        bits: opts.bits,
        supervise: SuperviseOptions {
            timeout: opts.trial_timeout_ms.map(Duration::from_millis),
            retries: opts.retries,
            backoff: Duration::ZERO,
            chaos,
            cancel: cancel.clone(),
        },
        journal: journal.clone(),
        resume,
    };
    println!(
        "supervised noise sweep on {}: {} trial(s) x 5 presets, {} payload bits{}{}",
        cfg.name,
        opts.trials,
        opts.bits,
        opts.trial_timeout_ms
            .map_or_else(String::new, |ms| format!(", {ms} ms watchdog")),
        if opts.retries > 0 {
            format!(
                ", {} retr{}",
                opts.retries,
                if opts.retries == 1 { "y" } else { "ies" }
            )
        } else {
            String::new()
        },
    );
    let started = std::time::Instant::now();
    let report = match resilient_noise_sweep(&cfg, &sweep_cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wall_clock_s = started.elapsed().as_secs_f64();
    println!(
        "{:<10} {:>11} {:>14} {:>9} delivery",
        "preset", "naive BER", "hardened BER", "attempts"
    );
    for p in &report.points {
        println!(
            "{:<10} {:>10.1}% {:>13.1}% {:>9.2} {:>7.0}%",
            p.preset,
            p.naive_ber * 100.0,
            p.hardened_ber * 100.0,
            p.mean_attempts,
            p.delivery_rate * 100.0,
        );
    }
    let m = &report.manifest;
    println!(
        "trials: {} total | {} executed, {} cached, {} failed, {} cancelled | {} recovered via {} retr{}",
        m.total_units,
        m.executed,
        m.cached,
        m.failed,
        m.cancelled,
        m.recovered,
        m.retries_spent,
        if m.retries_spent == 1 { "y" } else { "ies" },
    );
    println!(
        "machines: {} built, {} reset in place (pool hit rate {:.0}%)",
        m.gpus_built,
        m.gpus_reset,
        if m.gpus_built + m.gpus_reset == 0 {
            0.0
        } else {
            100.0 * m.gpus_reset as f64 / (m.gpus_built + m.gpus_reset) as f64
        },
    );
    println!("bench: {:.3} s wall clock | {}", wall_clock_s, micro_trio());
    if let Some(out) = &opts.out {
        if let Err(e) = write_json(out, &report.points) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        println!("[sweep] results: {out}");
    }
    if let Err(e) = write_json(&opts.errors, &report.manifest) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    println!("[sweep] manifest: {}", opts.errors);
    if let Some(journal) = &journal {
        println!("[sweep] journal: {}", journal.display());
    }
    if cancel.is_cancelled() {
        println!("sweep interrupted — journal flushed; continue with --resume");
        // The conventional 128+SIGINT code, minus the killed-by-signal
        // semantics: we exited cleanly after persisting state.
        return ExitCode::from(130);
    }
    ExitCode::SUCCESS
}

fn info(arch: Arch) -> ExitCode {
    let cfg = arch.config();
    println!(
        "{}: {} SMs / {} TPCs / {} GPCs @ {} MHz",
        cfg.name,
        cfg.num_sms(),
        cfg.num_tpcs(),
        cfg.num_gpcs,
        cfg.core_clock_hz / 1_000_000
    );
    println!(
        "L2: {} slices x {} KB ({} MCs, HBM2) | NoC: {} B flits, {} subnets, TPC ch {} f/c, GPC ch {} f/c (req) / {} f/c (reply)",
        cfg.mem.num_l2_slices,
        cfg.mem.l2_slice_kb,
        cfg.mem.num_mcs,
        cfg.noc.flit_size_bytes,
        cfg.noc.subnets,
        cfg.noc.tpc_request_bw,
        cfg.noc.gpc_request_bw,
        cfg.noc.gpc_reply_bw,
    );
    println!("ground-truth TPC->GPC map (what `gnc reverse` recovers blind):");
    for g in 0..cfg.num_gpcs {
        let tpcs: Vec<usize> = cfg
            .tpcs_of_gpc(GpcId::new(g))
            .iter()
            .map(|t| t.index())
            .collect();
        println!("  GPC{g}: {tpcs:?}");
    }
    ExitCode::SUCCESS
}

fn reverse(arch: Arch, trials: usize) -> ExitCode {
    let cfg = arch.config();
    println!(
        "reverse-engineering {} ({} TPCs) with {} co-activation trials...",
        cfg.name,
        cfg.num_tpcs(),
        trials
    );
    let mapping = recover_mapping(&cfg, trials, 10, 0);
    for (g, group) in mapping.groups.iter().enumerate() {
        let tpcs: Vec<usize> = group.iter().map(|t| t.index()).collect();
        println!("  recovered group {g}: {tpcs:?}");
    }
    if mapping.matches_ground_truth(&cfg) {
        println!("ground-truth check: EXACT MATCH");
        ExitCode::SUCCESS
    } else {
        println!("ground-truth check: MISMATCH (try more --trials)");
        ExitCode::FAILURE
    }
}

/// Writes the telemetry report JSON plus both flit-trace formats into
/// `dir`, then prints the heatmap and utilization table.
fn emit_telemetry(collector: &Collector, dir: &Path, name: &str) -> Result<(), SimError> {
    use std::io::Write;
    std::fs::create_dir_all(dir)
        .map_err(|e| SimError::io("create telemetry directory", dir.display(), &e))?;
    let report = collector.report();
    let path = dir.join(format!("telemetry_{name}.json"));
    let json = serde_json::to_string_pretty(&report).map_err(|e| SimError::Journal {
        path: path.display().to_string(),
        reason: format!("telemetry report failed to serialize: {e}"),
    })?;
    std::fs::write(&path, json)
        .map_err(|e| SimError::io("write telemetry report", path.display(), &e))?;
    println!("[telemetry] {}", path.display());
    let jsonl = dir.join(format!("telemetry_{name}_trace.jsonl"));
    std::fs::File::create(&jsonl)
        .and_then(|f| {
            let mut w = std::io::BufWriter::new(f);
            collector.write_trace_jsonl(&mut w)?;
            w.flush()
        })
        .map_err(|e| SimError::io("write flit trace", jsonl.display(), &e))?;
    println!("[telemetry] {}", jsonl.display());
    let chrome = dir.join(format!("telemetry_{name}_trace.json"));
    std::fs::File::create(&chrome)
        .and_then(|f| {
            let mut w = std::io::BufWriter::new(f);
            collector.write_chrome_trace(&mut w)?;
            w.flush()
        })
        .map_err(|e| SimError::io("write Chrome trace", chrome.display(), &e))?;
    println!("[telemetry] {}", chrome.display());
    Ok(())
}

fn print_telemetry_summary(collector: &Collector) {
    let report = collector.report();
    println!("{}", report.heatmap_ascii());
    println!("{}", report.utilization_table_ascii());
}

#[allow(clippy::too_many_arguments)]
fn send(
    arch: Arch,
    message: &str,
    all_tpcs: bool,
    iterations: u32,
    arbitration: gnc_common::config::Arbitration,
    fec: bool,
    seed: u64,
    faults: Option<&str>,
    telemetry: Option<&str>,
) -> ExitCode {
    let mut cfg = arch.config();
    cfg.noc.arbitration = arbitration;
    let proto = ProtocolConfig::tpc(iterations);
    let plan = if all_tpcs {
        ChannelPlan::multi_tpc(&cfg, proto)
    } else {
        ChannelPlan::tpc(&cfg, proto, &[0])
    };
    let payload = BitVec::from_bytes(message.as_bytes());
    if let Some(spec) = faults {
        if telemetry.is_some() {
            eprintln!("error: --telemetry is not supported together with --faults");
            return ExitCode::FAILURE;
        }
        let fault_cfg = match FaultConfig::parse(spec) {
            Ok(fc) => fc,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        return send_hardened(&plan, &cfg, &payload, message, seed, &fault_cfg);
    }
    let coded = if fec {
        fec_encode(&payload)
    } else {
        payload.clone()
    };
    println!(
        "transmitting {} payload bits ({} on the wire{}) over {} channel(s) under {} arbitration...",
        payload.len(),
        coded.len(),
        if fec { ", FEC-protected" } else { "" },
        plan.channels().len(),
        arbitration.label(),
    );
    // The instrumented and plain paths build the GPU identically (same
    // clock seed), so collecting telemetry never changes the outcome.
    let report = if let Some(dir) = telemetry {
        let mut gpu = Gpu::with_clock_seed(cfg.clone(), seed)
            .expect("valid GPU config")
            .with_probe(Collector::for_config(&cfg));
        let report = plan.transmit_on(&mut gpu, &coded, seed);
        let collector = gpu.into_probe();
        print_telemetry_summary(&collector);
        if let Err(e) = emit_telemetry(&collector, Path::new(dir), "send") {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        report
    } else {
        plan.transmit(&cfg, &coded, seed)
    };
    let recovered_bits = if fec {
        fec_decode(&report.received, payload.len()).payload
    } else {
        report.received.clone()
    };
    let recovered = recovered_bits.to_bytes();
    println!(
        "channel: {:.2} kbps over a {}-cycle window, {} raw bit errors ({:.2} %)",
        report.bandwidth_bps / 1e3,
        report.elapsed_cycles,
        report.errors,
        report.error_rate * 100.0
    );
    println!("received: {:?}", String::from_utf8_lossy(&recovered));
    if recovered == message.as_bytes() {
        println!("message recovered exactly.");
        ExitCode::SUCCESS
    } else {
        println!("message corrupted (as expected under an effective countermeasure).");
        ExitCode::FAILURE
    }
}

fn send_hardened(
    plan: &ChannelPlan,
    cfg: &gnc_common::GpuConfig,
    payload: &BitVec,
    message: &str,
    seed: u64,
    fault_cfg: &FaultConfig,
) -> ExitCode {
    println!(
        "transmitting {} payload bits under fault injection (seed {}) with the hardened CRC/ACK protocol...",
        payload.len(),
        fault_cfg.seed,
    );
    let opts = RobustOptions::default();
    let report = transmit_reliable(plan, cfg, payload, seed, Some(fault_cfg), &opts);
    println!(
        "outcome: {:?} after {} attempt(s), {} residual bit error(s), {} cycles",
        report.outcome, report.attempts, report.residual_errors, report.elapsed_cycles,
    );
    if let Some(stats) = &report.fault_stats {
        println!(
            "faults fired: {} burst cycles, {} dropped / {} duplicated / {} jittered samples, {} glitched clock reads, {} L2 stall cycles",
            stats.noc_burst_cycles,
            stats.samples_dropped,
            stats.samples_duplicated,
            stats.samples_jittered,
            stats.glitched_clock_reads,
            stats.l2_stall_cycles,
        );
    }
    let recovered = report.delivered.to_bytes();
    println!("received: {:?}", String::from_utf8_lossy(&recovered));
    if report.crc_ok && recovered == message.as_bytes() {
        println!("message recovered exactly.");
        ExitCode::SUCCESS
    } else {
        println!("delivery failed: the channel stayed jammed through every retry.");
        ExitCode::FAILURE
    }
}

fn report(
    arch: Arch,
    message: &str,
    all_tpcs: bool,
    iterations: u32,
    arbitration: gnc_common::config::Arbitration,
    seed: u64,
    out: Option<&str>,
) -> ExitCode {
    let mut cfg = arch.config();
    cfg.noc.arbitration = arbitration;
    let proto = ProtocolConfig::tpc(iterations);
    let plan = if all_tpcs {
        ChannelPlan::multi_tpc(&cfg, proto)
    } else {
        ChannelPlan::tpc(&cfg, proto, &[0])
    };
    let payload = BitVec::from_bytes(message.as_bytes());
    println!(
        "instrumented transmission: {} payload bits over {} channel(s) under {} arbitration (seed {seed})",
        payload.len(),
        plan.channels().len(),
        arbitration.label(),
    );
    let started = std::time::Instant::now();
    let mut gpu = Gpu::with_clock_seed(cfg.clone(), seed)
        .expect("valid GPU config")
        .with_probe(Collector::for_config(&cfg));
    let tx = plan.transmit_on(&mut gpu, &payload, seed);
    let wall_clock_s = started.elapsed().as_secs_f64();
    let collector = gpu.into_probe();
    println!(
        "channel: {:.2} kbps over {} cycles, {} bit errors ({:.2} %)",
        tx.bandwidth_bps / 1e3,
        tx.elapsed_cycles,
        tx.errors,
        tx.error_rate * 100.0
    );
    println!(
        "bench: {:.3} s wall clock | {}\n",
        wall_clock_s,
        micro_trio()
    );
    print_telemetry_summary(&collector);
    if let Some(dir) = out {
        if let Err(e) = emit_telemetry(&collector, Path::new(dir), "report") {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn chaos(arch: Arch, message: &str, seed: u64) -> ExitCode {
    let cfg = arch.config();
    let proto = ProtocolConfig::tpc(4);
    let plan = ChannelPlan::tpc(&cfg, proto, &[0]);
    let payload = BitVec::from_bytes(message.as_bytes());
    let opts = RobustOptions::default();
    println!(
        "chaos sweep: {} payload bits per preset, naive vs hardened decoding of the same traces (seed {seed})",
        payload.len()
    );
    println!(
        "{:<10} {:>11} {:>14} {:>9} delivery",
        "preset", "naive BER", "hardened BER", "attempts"
    );
    let presets = ["off", "mild", "moderate", "severe", "jammed"];
    // The presets are independent simulations; run them on the worker
    // pool and print the rows afterwards, in preset order.
    let rows = gnc_common::par::parallel_map(&presets, |preset| {
        let fault_cfg = FaultConfig::parse(preset)
            .expect("preset names are valid specs")
            .with_seed(seed);
        let cmp = compare_decoders(&plan, &cfg, &payload, seed, &fault_cfg, &opts);
        let delivery = transmit_reliable(&plan, &cfg, &payload, seed, Some(&fault_cfg), &opts);
        (cmp, delivery)
    });
    let mut naive_total = 0usize;
    let mut hardened_total = 0usize;
    for (preset, (cmp, delivery)) in presets.iter().zip(&rows) {
        let bits = payload.len() as f64;
        println!(
            "{:<10} {:>10.1}% {:>13.1}% {:>9} {:?}",
            preset,
            cmp.naive_errors as f64 / bits * 100.0,
            cmp.hardened_errors as f64 / bits * 100.0,
            delivery.attempts,
            delivery.outcome,
        );
        naive_total += cmp.naive_errors;
        hardened_total += cmp.hardened_errors;
    }
    // Per-preset rows on a short payload are single samples; the sweep
    // total is the statistically meaningful comparison.
    if hardened_total <= naive_total {
        println!(
            "hardened decoding won the sweep: {hardened_total} total bit errors vs {naive_total} naive."
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "hardened decoding lost the sweep ({hardened_total} vs {naive_total} naive) — investigate."
        );
        ExitCode::FAILURE
    }
}

fn sidechannel(arch: Arch, profile: &[u32]) -> ExitCode {
    let cfg = arch.config();
    println!("spying on a victim with secret profile {profile:?}...");
    let report = spy_on_victim(&cfg, profile, 0);
    for (i, p) in report.phases.iter().enumerate() {
        println!(
            "  phase {i}: intensity {:>2} -> observed {:>6.1} cycles",
            p.true_intensity, p.observed_latency
        );
    }
    println!("correlation: {:.3}", report.correlation);
    ExitCode::SUCCESS
}
