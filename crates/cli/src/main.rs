//! `gnc` — command-line driver for the GPU NoC covert-channel
//! reproduction.
//!
//! ```text
//! gnc info
//! gnc reverse --trials 400
//! gnc send --message "secret" --all-tpcs
//! gnc send --message "secret" --arbitration srr   # watch SRR kill it
//! gnc sidechannel --profile 0,24,8,32,16
//! ```

mod args;

use args::{Arch, Command, USAGE};
use gnc_common::bits::BitVec;
use gnc_common::fec::{fec_decode, fec_encode};
use gnc_common::ids::GpcId;
use gnc_covert::channel::ChannelPlan;
use gnc_covert::protocol::ProtocolConfig;
use gnc_covert::reverse::recover_mapping;
use gnc_covert::sidechannel::spy_on_victim;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = match args::parse(&argv) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match command {
        Command::Help => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Command::Info { arch } => info(arch),
        Command::Reverse { arch, trials } => reverse(arch, trials),
        Command::Send {
            arch,
            message,
            all_tpcs,
            iterations,
            arbitration,
            fec,
            seed,
        } => send(arch, &message, all_tpcs, iterations, arbitration, fec, seed),
        Command::SideChannel { arch, profile } => sidechannel(arch, &profile),
    }
}

fn info(arch: Arch) -> ExitCode {
    let cfg = arch.config();
    println!(
        "{}: {} SMs / {} TPCs / {} GPCs @ {} MHz",
        cfg.name,
        cfg.num_sms(),
        cfg.num_tpcs(),
        cfg.num_gpcs,
        cfg.core_clock_hz / 1_000_000
    );
    println!(
        "L2: {} slices x {} KB ({} MCs, HBM2) | NoC: {} B flits, {} subnets, TPC ch {} f/c, GPC ch {} f/c (req) / {} f/c (reply)",
        cfg.mem.num_l2_slices,
        cfg.mem.l2_slice_kb,
        cfg.mem.num_mcs,
        cfg.noc.flit_size_bytes,
        cfg.noc.subnets,
        cfg.noc.tpc_request_bw,
        cfg.noc.gpc_request_bw,
        cfg.noc.gpc_reply_bw,
    );
    println!("ground-truth TPC->GPC map (what `gnc reverse` recovers blind):");
    for g in 0..cfg.num_gpcs {
        let tpcs: Vec<usize> = cfg
            .tpcs_of_gpc(GpcId::new(g))
            .iter()
            .map(|t| t.index())
            .collect();
        println!("  GPC{g}: {tpcs:?}");
    }
    ExitCode::SUCCESS
}

fn reverse(arch: Arch, trials: usize) -> ExitCode {
    let cfg = arch.config();
    println!(
        "reverse-engineering {} ({} TPCs) with {} co-activation trials...",
        cfg.name,
        cfg.num_tpcs(),
        trials
    );
    let mapping = recover_mapping(&cfg, trials, 10, 0);
    for (g, group) in mapping.groups.iter().enumerate() {
        let tpcs: Vec<usize> = group.iter().map(|t| t.index()).collect();
        println!("  recovered group {g}: {tpcs:?}");
    }
    if mapping.matches_ground_truth(&cfg) {
        println!("ground-truth check: EXACT MATCH");
        ExitCode::SUCCESS
    } else {
        println!("ground-truth check: MISMATCH (try more --trials)");
        ExitCode::FAILURE
    }
}

fn send(
    arch: Arch,
    message: &str,
    all_tpcs: bool,
    iterations: u32,
    arbitration: gnc_common::config::Arbitration,
    fec: bool,
    seed: u64,
) -> ExitCode {
    let mut cfg = arch.config();
    cfg.noc.arbitration = arbitration;
    let proto = ProtocolConfig::tpc(iterations);
    let plan = if all_tpcs {
        ChannelPlan::multi_tpc(&cfg, proto)
    } else {
        ChannelPlan::tpc(&cfg, proto, &[0])
    };
    let payload = BitVec::from_bytes(message.as_bytes());
    let coded = if fec { fec_encode(&payload) } else { payload.clone() };
    println!(
        "transmitting {} payload bits ({} on the wire{}) over {} channel(s) under {} arbitration...",
        payload.len(),
        coded.len(),
        if fec { ", FEC-protected" } else { "" },
        plan.channels().len(),
        arbitration.label(),
    );
    let report = plan.transmit(&cfg, &coded, seed);
    let recovered_bits = if fec {
        fec_decode(&report.received, payload.len()).payload
    } else {
        report.received.clone()
    };
    let recovered = recovered_bits.to_bytes();
    println!(
        "channel: {:.2} kbps over a {}-cycle window, {} raw bit errors ({:.2} %)",
        report.bandwidth_bps / 1e3,
        report.elapsed_cycles,
        report.errors,
        report.error_rate * 100.0
    );
    println!("received: {:?}", String::from_utf8_lossy(&recovered));
    if recovered == message.as_bytes() {
        println!("message recovered exactly.");
        ExitCode::SUCCESS
    } else {
        println!("message corrupted (as expected under an effective countermeasure).");
        ExitCode::FAILURE
    }
}

fn sidechannel(arch: Arch, profile: &[u32]) -> ExitCode {
    let cfg = arch.config();
    println!("spying on a victim with secret profile {profile:?}...");
    let report = spy_on_victim(&cfg, profile, 0);
    for (i, p) in report.phases.iter().enumerate() {
        println!(
            "  phase {i}: intensity {:>2} -> observed {:>6.1} cycles",
            p.true_intensity, p.observed_latency
        );
    }
    println!("correlation: {:.3}", report.correlation);
    ExitCode::SUCCESS
}
