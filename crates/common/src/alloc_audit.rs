//! Counting global allocator for allocation audits.
//!
//! The engine's steady-state contract is *zero heap traffic per cycle*:
//! every queue, arena, and calendar is sized at construction (or grows
//! to a high-water mark during warm-up) and is reused thereafter, and
//! [`Gpu::reset`]-style trial reuse keeps even per-trial allocations to
//! a small bounded set. Asserting that contract needs ground truth the
//! borrow checker cannot give — so this module wraps the system
//! allocator in allocation counters and installs it as the global
//! allocator **only** under the `alloc-audit` cargo feature.
//!
//! Without the feature nothing is installed and every query returns
//! zeros with [`is_active`] false, so audit assertions can be written
//! unconditionally and guarded by one `if`:
//!
//! ```
//! use gnc_common::alloc_audit;
//!
//! let (len, delta) = alloc_audit::allocation_delta(|| vec![1u8; 64].len());
//! assert_eq!(len, 64);
//! if alloc_audit::is_active() {
//!     assert!(delta.allocs >= 1, "the vec must show up in the audit");
//! }
//! ```
//!
//! The counters are process-wide relaxed atomics: cheap enough to leave
//! on for a whole test binary, but shared across threads. Audit tests
//! therefore measure deltas around single-threaded regions (CI runs
//! them with `--test-threads=1`).
//!
//! [`Gpu::reset`]: https://docs.rs/gnc-sim

use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide allocation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocCounts {
    /// `alloc` / `alloc_zeroed` calls.
    pub allocs: u64,
    /// `dealloc` calls.
    pub deallocs: u64,
    /// `realloc` calls (counted separately, not as alloc+dealloc).
    pub reallocs: u64,
    /// Bytes requested across allocs and growing reallocs.
    pub bytes: u64,
}

impl AllocCounts {
    /// Heap operations that could take a lock or page fault: the number
    /// a zero-alloc steady-state gate asserts on.
    pub fn total_ops(&self) -> u64 {
        self.allocs + self.reallocs
    }

    /// Counterwise difference `self - earlier` (saturating, so a torn
    /// read across threads never underflows).
    #[must_use]
    pub fn since(&self, earlier: &AllocCounts) -> AllocCounts {
        AllocCounts {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            deallocs: self.deallocs.saturating_sub(earlier.deallocs),
            reallocs: self.reallocs.saturating_sub(earlier.reallocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Whether the counting allocator is installed (the `alloc-audit`
/// feature is on). When false, [`counts`] is permanently zero and audit
/// assertions should be skipped.
pub fn is_active() -> bool {
    cfg!(feature = "alloc-audit")
}

/// The current process-wide counter snapshot.
pub fn counts() -> AllocCounts {
    AllocCounts {
        allocs: ALLOCS.load(Ordering::Relaxed),
        deallocs: DEALLOCS.load(Ordering::Relaxed),
        reallocs: REALLOCS.load(Ordering::Relaxed),
        bytes: BYTES_ALLOCATED.load(Ordering::Relaxed),
    }
}

/// Runs `f` and returns its result together with the allocation counts
/// it incurred (process-wide; run audited regions single-threaded).
pub fn allocation_delta<T>(f: impl FnOnce() -> T) -> (T, AllocCounts) {
    let before = counts();
    let out = f();
    (out, counts().since(&before))
}

/// The counting allocator: [`std::alloc::System`] plus relaxed-atomic
/// tallies. Installed as `#[global_allocator]` by the `alloc-audit`
/// feature; constructible regardless so downstream binaries can opt in
/// themselves.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counter
// updates are lock-free atomics and cannot recurse into the allocator.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { std::alloc::System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { std::alloc::System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        REALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(
            (new_size as u64).saturating_sub(layout.size() as u64),
            Ordering::Relaxed,
        );
        unsafe { std::alloc::System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(feature = "alloc-audit")]
#[global_allocator]
static AUDIT_ALLOCATOR: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_zero_when_inactive_and_positive_when_active() {
        let (v, delta) = allocation_delta(|| vec![0u8; 4096]);
        assert_eq!(v.len(), 4096);
        if is_active() {
            assert!(delta.allocs >= 1, "audit must see the vec: {delta:?}");
            assert!(delta.bytes >= 4096, "audit must count bytes: {delta:?}");
        } else {
            assert_eq!(delta, AllocCounts::default());
        }
    }

    #[test]
    fn since_saturates() {
        let a = AllocCounts {
            allocs: 1,
            deallocs: 2,
            reallocs: 3,
            bytes: 4,
        };
        let b = AllocCounts {
            allocs: 5,
            deallocs: 5,
            reallocs: 5,
            bytes: 5,
        };
        assert_eq!(a.since(&b), AllocCounts::default());
        let d = b.since(&a);
        assert_eq!((d.allocs, d.deallocs, d.reallocs, d.bytes), (4, 3, 2, 1));
        assert_eq!(d.total_ops(), 6);
    }
}
