//! Payload and bit-vector utilities for the covert channel.
//!
//! The channel transmits a sequence of binary symbols (`0` / `1`), or — in
//! the multi-level extension of §5 — 2-bit symbols encoded as four
//! distinct contention intensities. This module holds the payload
//! representation, byte packing, and error accounting shared by the
//! encoder, decoder, and harness.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A sequence of bits, most-significant bit of each byte first.
///
/// ```
/// use gnc_common::bits::BitVec;
///
/// let bits = BitVec::from_bytes(b"\xA5");
/// assert_eq!(bits.to_string(), "10100101");
/// assert_eq!(bits.to_bytes(), vec![0xA5]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct BitVec {
    bits: Vec<bool>,
}

impl BitVec {
    /// Creates an empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bit vector from explicit bits.
    pub fn from_bits(bits: impl IntoIterator<Item = bool>) -> Self {
        Self {
            bits: bits.into_iter().collect(),
        }
    }

    /// Unpacks bytes MSB-first.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut bits = Vec::with_capacity(bytes.len() * 8);
        for &byte in bytes {
            for shift in (0..8).rev() {
                bits.push((byte >> shift) & 1 == 1);
            }
        }
        Self { bits }
    }

    /// Generates `len` uniformly random bits.
    pub fn random(rng: &mut impl Rng, len: usize) -> Self {
        Self {
            bits: (0..len).map(|_| rng.gen()).collect(),
        }
    }

    /// The classic alternating pattern `0101…` used for Fig 9's traces.
    pub fn alternating(len: usize) -> Self {
        Self {
            bits: (0..len).map(|i| i % 2 == 1).collect(),
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Bit at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<bool> {
        self.bits.get(index).copied()
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        self.bits.push(bit);
    }

    /// Iterates over the bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.bits.iter().copied()
    }

    /// Borrows the raw bits.
    pub fn as_slice(&self) -> &[bool] {
        &self.bits
    }

    /// Packs back into bytes MSB-first; a trailing partial byte is
    /// zero-padded on the right.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(self.bits.len().div_ceil(8));
        for chunk in self.bits.chunks(8) {
            let mut byte = 0u8;
            for (i, &bit) in chunk.iter().enumerate() {
                if bit {
                    byte |= 1 << (7 - i);
                }
            }
            bytes.push(byte);
        }
        bytes
    }

    /// Number of positions where `self` and `other` differ, over the
    /// shorter common prefix, **plus** the length difference (missing bits
    /// count as errors).
    pub fn hamming_distance(&self, other: &BitVec) -> usize {
        let common = self.bits.len().min(other.bits.len());
        let diff = self.bits[..common]
            .iter()
            .zip(&other.bits[..common])
            .filter(|(a, b)| a != b)
            .count();
        diff + self.bits.len().abs_diff(other.bits.len())
    }

    /// Bit error rate relative to `sent` — Hamming distance over the sent
    /// length. Returns 0 for empty `sent`.
    pub fn bit_error_rate(&self, sent: &BitVec) -> f64 {
        if sent.is_empty() {
            return 0.0;
        }
        self.hamming_distance(sent) as f64 / sent.len() as f64
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bits.is_empty() {
            return write!(f, "<empty>");
        }
        for &bit in &self.bits {
            write!(f, "{}", u8::from(bit))?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        Self::from_bits(iter)
    }
}

impl Extend<bool> for BitVec {
    fn extend<T: IntoIterator<Item = bool>>(&mut self, iter: T) {
        self.bits.extend(iter);
    }
}

/// A sequence of 2-bit symbols (values 0–3) for the multi-level channel
/// of §5 / Fig 14.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SymbolVec {
    symbols: Vec<u8>,
}

impl SymbolVec {
    /// Creates a symbol vector, validating every value is 0–3.
    ///
    /// # Panics
    ///
    /// Panics if any symbol exceeds 3.
    pub fn from_symbols(symbols: impl IntoIterator<Item = u8>) -> Self {
        let symbols: Vec<u8> = symbols.into_iter().collect();
        assert!(
            symbols.iter().all(|&s| s < 4),
            "multi-level symbols must be 2-bit values"
        );
        Self { symbols }
    }

    /// Packs a bit vector into 2-bit symbols, first bit = high bit of the
    /// first symbol; a trailing odd bit is padded with 0.
    pub fn from_bits(bits: &BitVec) -> Self {
        let mut symbols = Vec::with_capacity(bits.len().div_ceil(2));
        let raw = bits.as_slice();
        let mut i = 0;
        while i < raw.len() {
            let hi = u8::from(raw[i]);
            let lo = if i + 1 < raw.len() {
                u8::from(raw[i + 1])
            } else {
                0
            };
            symbols.push((hi << 1) | lo);
            i += 2;
        }
        Self { symbols }
    }

    /// The repeating `0 1 0 2 0 3…` staircase transmitted in Fig 14.
    pub fn staircase(len: usize) -> Self {
        let pattern = [0u8, 1, 0, 2, 0, 3];
        Self {
            symbols: (0..len).map(|i| pattern[i % pattern.len()]).collect(),
        }
    }

    /// Generates `len` uniformly random symbols.
    pub fn random(rng: &mut impl Rng, len: usize) -> Self {
        Self {
            symbols: (0..len).map(|_| rng.gen_range(0..4u8)).collect(),
        }
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the vector holds no symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The raw symbol values.
    pub fn as_slice(&self) -> &[u8] {
        &self.symbols
    }

    /// Unpacks back into bits (2 per symbol, high bit first).
    pub fn to_bits(&self) -> BitVec {
        let mut bits = BitVec::new();
        for &s in &self.symbols {
            bits.push(s & 0b10 != 0);
            bits.push(s & 0b01 != 0);
        }
        bits
    }

    /// Symbol error rate relative to `sent` (mismatches plus length
    /// difference, over the sent length). Returns 0 for empty `sent`.
    pub fn symbol_error_rate(&self, sent: &SymbolVec) -> f64 {
        if sent.is_empty() {
            return 0.0;
        }
        let common = self.symbols.len().min(sent.symbols.len());
        let diff = self.symbols[..common]
            .iter()
            .zip(&sent.symbols[..common])
            .filter(|(a, b)| a != b)
            .count();
        let missing = self.symbols.len().abs_diff(sent.symbols.len());
        (diff + missing) as f64 / sent.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::experiment_rng;

    #[test]
    fn bytes_round_trip() {
        let original = b"covert channel".to_vec();
        let bits = BitVec::from_bytes(&original);
        assert_eq!(bits.len(), original.len() * 8);
        assert_eq!(bits.to_bytes(), original);
    }

    #[test]
    fn msb_first_ordering() {
        let bits = BitVec::from_bytes(&[0b1000_0001]);
        assert_eq!(bits.get(0), Some(true));
        assert_eq!(bits.get(7), Some(true));
        assert!(!bits.get(1).unwrap());
        assert_eq!(bits.get(8), None);
    }

    #[test]
    fn partial_byte_pads_right() {
        let bits = BitVec::from_bits([true, false, true]);
        assert_eq!(bits.to_bytes(), vec![0b1010_0000]);
    }

    #[test]
    fn alternating_pattern() {
        let bits = BitVec::alternating(6);
        assert_eq!(bits.to_string(), "010101");
    }

    #[test]
    fn hamming_counts_length_mismatch() {
        let a = BitVec::from_bits([true, true, false]);
        let b = BitVec::from_bits([true, false]);
        assert_eq!(a.hamming_distance(&b), 2); // one flip + one missing
        assert_eq!(b.hamming_distance(&a), 2); // symmetric
    }

    #[test]
    fn ber_basics() {
        let sent = BitVec::from_bits([true, false, true, false]);
        let recv = BitVec::from_bits([true, true, true, false]);
        assert!((recv.bit_error_rate(&sent) - 0.25).abs() < 1e-12);
        assert_eq!(recv.bit_error_rate(&BitVec::new()), 0.0);
        assert_eq!(sent.bit_error_rate(&sent), 0.0);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut r1 = experiment_rng("bits", 0);
        let mut r2 = experiment_rng("bits", 0);
        assert_eq!(BitVec::random(&mut r1, 64), BitVec::random(&mut r2, 64));
    }

    #[test]
    fn display_renders_bits() {
        assert_eq!(BitVec::from_bits([false, true]).to_string(), "01");
        assert_eq!(BitVec::new().to_string(), "<empty>");
    }

    #[test]
    fn symbols_round_trip_bits() {
        let bits = BitVec::from_bytes(b"\x1B\xE4");
        let syms = SymbolVec::from_bits(&bits);
        assert_eq!(syms.len(), 8);
        assert_eq!(syms.to_bits(), bits);
    }

    #[test]
    fn odd_bit_count_pads_symbol() {
        let bits = BitVec::from_bits([true]);
        let syms = SymbolVec::from_bits(&bits);
        assert_eq!(syms.as_slice(), &[0b10]);
    }

    #[test]
    fn staircase_matches_fig14_sequence() {
        let s = SymbolVec::staircase(8);
        assert_eq!(s.as_slice(), &[0, 1, 0, 2, 0, 3, 0, 1]);
    }

    #[test]
    fn symbol_error_rate_counts_mismatches() {
        let sent = SymbolVec::from_symbols([0, 1, 2, 3]);
        let recv = SymbolVec::from_symbols([0, 1, 3, 3]);
        assert!((recv.symbol_error_rate(&sent) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "2-bit")]
    fn symbols_reject_out_of_range() {
        let _ = SymbolVec::from_symbols([4]);
    }
}
