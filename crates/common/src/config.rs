//! Simulated GPU configuration.
//!
//! The defaults follow Table 1 of the paper ("Simulation configuration
//! parameters"): a Volta-V100-like GPU at 1200 MHz with SIMT width 32,
//! 40 TPCs of 2 SMs each, 48 L2 slices of 96 KiB, 24 memory controllers
//! with HBM2 timing, a crossbar interconnect with 40 B flits, one virtual
//! channel, and two subnets (request + reply).
//!
//! In addition to the counts, the configuration carries the **ground-truth
//! physical mapping** of logical TPCs onto GPCs. On real silicon this
//! mapping is undocumented and had to be reverse-engineered by the paper
//! (§3.3, Fig 4); in the simulator it is instantiated here and the
//! reverse-engineering code in `gnc-covert` must recover it without
//! looking, exactly as the paper does. The default Volta mapping is
//! interleaved with two disabled TPCs so that GPC4 and GPC5 hold six TPCs
//! while the rest hold seven, and GPC5 contains TPC39 in place of TPC35 —
//! the specific irregularity reported in §3.3.

use crate::error::{ConfigError, Result};
use crate::ids::{GpcId, McId, SliceId, SmId, TpcId};
use serde::{Deserialize, Serialize};

/// Arbitration policy used at every concentrating mux in the NoC (§2.3, §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Arbitration {
    /// Locally-fair round-robin; grants the lone requester immediately.
    /// This is the baseline GPU behaviour the covert channel exploits.
    #[default]
    RoundRobin,
    /// Coarse-grain round-robin: arbitrates once per warp's worth of
    /// packets instead of per packet ("network coalescing", §6). Does not
    /// stop the channel.
    CoarseRoundRobin,
    /// Strict round-robin: time-division multiplexing that grants each
    /// input its slot even when idle. The paper's effective countermeasure.
    StrictRoundRobin,
    /// Globally-fair age-based arbitration [Abts & Weisser]; §6 argues it
    /// does *not* mitigate the channel.
    AgeBased,
}

impl Arbitration {
    /// All policies studied in §6, in presentation order of Fig 15.
    pub const ALL: [Arbitration; 4] = [
        Arbitration::RoundRobin,
        Arbitration::CoarseRoundRobin,
        Arbitration::StrictRoundRobin,
        Arbitration::AgeBased,
    ];

    /// Short label used by the figure harness ("RR", "CRR", "SRR", "AGE").
    pub fn label(self) -> &'static str {
        match self {
            Arbitration::RoundRobin => "RR",
            Arbitration::CoarseRoundRobin => "CRR",
            Arbitration::StrictRoundRobin => "SRR",
            Arbitration::AgeBased => "AGE",
        }
    }
}

/// Thread-block placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// The behaviour reverse-engineered in §4.3: interleave across GPCs,
    /// then TPCs, then TPC siblings. This is what lets the attacker
    /// co-locate trojan and spy pairwise on every TPC.
    #[default]
    PaperInterleaved,
    /// GPUGuard-style spatial partitioning (§6): blocks of different
    /// streams never share a TPC, removing the co-location the TPC
    /// covert channel requires — at the cost of lower SM utilisation
    /// under multiprogramming.
    StreamIsolated,
}

/// HBM2 DRAM timing parameters in memory-clock cycles (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTiming {
    /// CAS latency.
    pub t_cl: u32,
    /// Row precharge time.
    pub t_rp: u32,
    /// Row cycle time (minimum time between ACT commands to one bank).
    pub t_rc: u32,
    /// Row active time (ACT to PRE minimum).
    pub t_ras: u32,
    /// RAS-to-CAS delay (ACT to column command).
    pub t_rcd: u32,
    /// Activate-to-activate delay across banks in the same bank group.
    pub t_rrd: u32,
}

impl Default for DramTiming {
    fn default() -> Self {
        // Table 1: tCL = 12, tRP = 12, tRC = 40, tRAS = 28, tRCD = 12, tRRD = 3.
        Self {
            t_cl: 12,
            t_rp: 12,
            t_rc: 40,
            t_ras: 28,
            t_rcd: 12,
            t_rrd: 3,
        }
    }
}

/// Interconnect parameters (Table 1 plus the calibrated channel widths
/// justified in DESIGN.md §4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Flit size in bytes (Table 1: 40).
    pub flit_size_bytes: u32,
    /// Number of virtual channels per port (Table 1: 1).
    pub num_vcs: u32,
    /// Number of physical subnets; 2 = separate request and reply networks
    /// (Table 1: subnet = 2).
    pub subnets: u32,
    /// Bandwidth of one TPC's request channel, flits per cycle. The two
    /// SMs of a TPC share this — the root cause of the TPC covert channel.
    pub tpc_request_bw: u32,
    /// Bandwidth of one GPC's request channel, flits per cycle. Seven TPC
    /// channels concentrate into this with speedup (§2.3), so writes are
    /// throttled at the TPC mux before GPC contention matters (§3.4).
    pub gpc_request_bw: u32,
    /// Bandwidth of one GPC's reply channel, flits per cycle. Calibrated
    /// to 3 so that up to three reading TPCs see no contention and seven
    /// see ≈2.2×, matching Fig 5(b)'s read series.
    pub gpc_reply_bw: u32,
    /// Per-SM reply ejection bandwidth, flits per cycle. One per SM means
    /// read replies do not contend inside a TPC, matching Fig 5(a).
    pub sm_reply_bw: u32,
    /// Pipeline latency (cycles) from SM output to TPC mux.
    pub sm_to_tpc_latency: u32,
    /// Pipeline latency (cycles) from TPC mux to GPC mux.
    pub tpc_to_gpc_latency: u32,
    /// Pipeline latency (cycles) from GPC mux through the crossbar to an
    /// L2 slice input (and symmetrically on the reply path).
    pub gpc_to_slice_latency: u32,
    /// Arbitration policy at the TPC-level muxes — the SM-pair
    /// concentration point the §6 countermeasure secures. The GPC mux,
    /// crossbar, and reply subnet always arbitrate round-robin (see
    /// `gnc_noc::fabric` for why time-slicing the speedup'd GPC mux
    /// would itself create a demand-dependent observable).
    pub arbitration: Arbitration,
    /// Depth of each input FIFO at a mux, in packets.
    pub input_queue_depth: usize,
}

impl Default for NocConfig {
    fn default() -> Self {
        Self {
            flit_size_bytes: 40,
            num_vcs: 1,
            subnets: 2,
            tpc_request_bw: 1,
            gpc_request_bw: 6,
            gpc_reply_bw: 3,
            sm_reply_bw: 1,
            sm_to_tpc_latency: 2,
            tpc_to_gpc_latency: 5,
            gpc_to_slice_latency: 15,
            arbitration: Arbitration::RoundRobin,
            input_queue_depth: 8,
        }
    }
}

/// Memory-system parameters (Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemConfig {
    /// L1 cache + shared memory per SM in KiB (Table 1: 128).
    pub l1_kb_per_sm: u32,
    /// Number of L2 slices (Table 1: 48).
    pub num_l2_slices: usize,
    /// Capacity of one L2 slice in KiB (Table 1: 96).
    pub l2_slice_kb: u32,
    /// L2 set associativity.
    pub l2_assoc: usize,
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// L2 slice access (tag + data) latency in core cycles.
    pub l2_access_latency: u32,
    /// Number of MSHR entries per L2 slice.
    pub l2_mshrs: usize,
    /// Number of memory controllers (Table 1: 24).
    pub num_mcs: usize,
    /// DRAM banks per memory controller.
    pub banks_per_mc: usize,
    /// HBM2 timing parameters.
    pub dram: DramTiming,
    /// Core-clock cycles per memory-clock cycle (HBM2 runs slower than the
    /// 1200 MHz core; 1.4 ≈ 850 MHz is folded into an integer factor).
    pub mem_clock_ratio: u32,
}

impl Default for MemConfig {
    fn default() -> Self {
        Self {
            l1_kb_per_sm: 128,
            num_l2_slices: 48,
            l2_slice_kb: 96,
            l2_assoc: 16,
            line_bytes: 128,
            l2_access_latency: 150,
            l2_mshrs: 32,
            num_mcs: 24,
            banks_per_mc: 16,
            dram: DramTiming::default(),
            mem_clock_ratio: 2,
        }
    }
}

/// Parameters of the per-SM `clock()` register model (§4.1, Fig 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClockConfig {
    /// Maximum absolute skew, in cycles, between the two SMs of a TPC.
    /// The paper measured an average difference under 5 cycles.
    pub max_tpc_skew: u32,
    /// Maximum absolute skew, in cycles, between SMs of the same GPC.
    /// The paper measured an average difference under 15 cycles.
    pub max_gpc_skew: u32,
    /// Spread of the per-GPC clock epoch offsets. Fig 6 shows ~4× spread
    /// between GPC base values on the order of 10⁹ cycles.
    pub gpc_epoch_spread: u64,
}

impl Default for ClockConfig {
    fn default() -> Self {
        Self {
            max_tpc_skew: 2,
            max_gpc_skew: 7,
            gpc_epoch_spread: 4_000_000_000,
        }
    }
}

/// Complete configuration of the simulated GPU.
///
/// Construct one with a preset ([`GpuConfig::volta_v100`] is the paper's
/// platform) and customise fields before building a
/// `gnc_sim::gpu::Gpu` from it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Human-readable architecture name.
    pub name: String,
    /// Core clock in Hz (Table 1: 1200 MHz).
    pub core_clock_hz: u64,
    /// SIMT width — threads per warp (Table 1: 32).
    pub simt_width: u32,
    /// Number of GPCs.
    pub num_gpcs: usize,
    /// Number of SMs in each TPC (2 on every NVIDIA part the paper studies).
    pub sms_per_tpc: usize,
    /// Ground-truth physical GPC of each logical TPC. Logical TPC `t`
    /// contains SMs `2t` and `2t + 1`. Length = number of TPCs.
    pub tpc_to_gpc: Vec<GpcId>,
    /// Maximum number of resident warps per SM.
    pub max_warps_per_sm: usize,
    /// Maximum thread blocks resident per SM. The paper's attacker pads
    /// per-block resource usage so only one block fits per SM (§5,
    /// "manipulate the resource usage … to ensure that co-location does
    /// not occur within SM"), so 1 is the default.
    pub max_blocks_per_sm: usize,
    /// Thread-block placement policy (§4.3 baseline vs the §6
    /// partitioning countermeasure).
    pub scheduler: SchedulerPolicy,
    /// Maximum outstanding memory requests per warp before it stalls.
    pub max_outstanding_per_warp: usize,
    /// Interconnect parameters.
    pub noc: NocConfig,
    /// Memory-system parameters.
    pub mem: MemConfig,
    /// Clock-register model parameters.
    pub clock: ClockConfig,
}

impl GpuConfig {
    /// The paper's platform: a Volta-V100-like GPU per Table 1, with the
    /// irregular TPC→GPC mapping reported in §3.3 / Fig 4 (GPC4 and GPC5
    /// hold six TPCs; GPC5 = {5, 11, 17, 23, 29, 39}).
    pub fn volta_v100() -> Self {
        let mut tpc_to_gpc: Vec<GpcId> = (0..40).map(|t| GpcId::new(t % 6)).collect();
        // GV100 has 42 TPCs; V100 fuses two off. The surviving parts are
        // renumbered so that the interleaving breaks exactly as §3.3
        // observed: TPC35 lands in GPC3 and TPC36..38 fill GPC0..2, while
        // TPC39 takes the GPC5 slot that plain interleaving would have
        // given TPC35.
        tpc_to_gpc[35] = GpcId::new(3);
        tpc_to_gpc[36] = GpcId::new(0);
        tpc_to_gpc[37] = GpcId::new(1);
        tpc_to_gpc[38] = GpcId::new(2);
        tpc_to_gpc[39] = GpcId::new(5);
        Self {
            name: "Volta V100".to_owned(),
            core_clock_hz: 1_200_000_000,
            simt_width: 32,
            num_gpcs: 6,
            sms_per_tpc: 2,
            tpc_to_gpc,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 1,
            scheduler: SchedulerPolicy::PaperInterleaved,
            max_outstanding_per_warp: 32,
            noc: NocConfig::default(),
            mem: MemConfig::default(),
            clock: ClockConfig::default(),
        }
    }

    /// A Pascal-P100-like preset (56 SMs / 28 TPCs / 6 GPCs): the paper
    /// reports the same covert channel works on Pascal (§5).
    pub fn pascal_p100() -> Self {
        let tpc_to_gpc = (0..28).map(|t| GpcId::new(t % 6)).collect();
        Self {
            name: "Pascal P100".to_owned(),
            num_gpcs: 6,
            tpc_to_gpc,
            ..Self::volta_v100()
        }
    }

    /// A Turing-TU102-like preset (72 SMs / 36 TPCs / 6 GPCs), also
    /// confirmed vulnerable in §5.
    pub fn turing_tu102() -> Self {
        let tpc_to_gpc = (0..36).map(|t| GpcId::new(t % 6)).collect();
        Self {
            name: "Turing TU102".to_owned(),
            num_gpcs: 6,
            tpc_to_gpc,
            ..Self::volta_v100()
        }
    }

    /// A small debug preset (4 TPCs over 2 GPCs) for fast unit tests.
    pub fn tiny() -> Self {
        let tpc_to_gpc = (0..4).map(|t| GpcId::new(t % 2)).collect();
        let mut cfg = Self {
            name: "Tiny (test)".to_owned(),
            num_gpcs: 2,
            tpc_to_gpc,
            ..Self::volta_v100()
        };
        cfg.mem.num_l2_slices = 8;
        cfg.mem.num_mcs = 4;
        cfg
    }

    /// Number of TPCs.
    #[inline]
    pub fn num_tpcs(&self) -> usize {
        self.tpc_to_gpc.len()
    }

    /// Number of SMs.
    #[inline]
    pub fn num_sms(&self) -> usize {
        self.num_tpcs() * self.sms_per_tpc
    }

    /// The TPC containing `sm`.
    #[inline]
    pub fn tpc_of_sm(&self, sm: SmId) -> TpcId {
        TpcId::new(sm.index() / self.sms_per_tpc)
    }

    /// The ground-truth GPC containing `tpc`.
    ///
    /// # Panics
    ///
    /// Panics if `tpc` is out of range for this configuration.
    #[inline]
    pub fn gpc_of_tpc(&self, tpc: TpcId) -> GpcId {
        self.tpc_to_gpc[tpc.index()]
    }

    /// The ground-truth GPC containing `sm`.
    #[inline]
    pub fn gpc_of_sm(&self, sm: SmId) -> GpcId {
        self.gpc_of_tpc(self.tpc_of_sm(sm))
    }

    /// The SMs of `tpc`, lowest id first.
    pub fn sms_of_tpc(&self, tpc: TpcId) -> Vec<SmId> {
        let base = tpc.index() * self.sms_per_tpc;
        (base..base + self.sms_per_tpc).map(SmId::new).collect()
    }

    /// The logical TPCs that the ground truth places in `gpc`, ascending.
    pub fn tpcs_of_gpc(&self, gpc: GpcId) -> Vec<TpcId> {
        self.tpc_to_gpc
            .iter()
            .enumerate()
            .filter(|(_, g)| **g == gpc)
            .map(|(t, _)| TpcId::new(t))
            .collect()
    }

    /// The L2 slices attached to memory controller `mc` (slices are
    /// distributed evenly across MCs).
    pub fn slices_of_mc(&self, mc: McId) -> Vec<SliceId> {
        let per = self.mem.num_l2_slices / self.mem.num_mcs;
        (mc.index() * per..(mc.index() + 1) * per)
            .map(SliceId::new)
            .collect()
    }

    /// The memory controller owning L2 slice `slice`.
    #[inline]
    pub fn mc_of_slice(&self, slice: SliceId) -> McId {
        let per = self.mem.num_l2_slices / self.mem.num_mcs;
        McId::new(slice.index() / per)
    }

    /// Converts a duration in core cycles to seconds.
    #[inline]
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.core_clock_hz as f64
    }

    /// Converts a bit rate expressed in bits per core cycle to bits/s.
    #[inline]
    pub fn bits_per_cycle_to_bps(&self, bits_per_cycle: f64) -> f64 {
        bits_per_cycle * self.core_clock_hz as f64
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when counts are zero, the TPC→GPC map
    /// references a GPC out of range, or the L2 slices do not divide
    /// evenly among the memory controllers.
    pub fn validate(&self) -> Result<()> {
        if self.num_gpcs == 0 {
            return Err(ConfigError::new("num_gpcs must be nonzero"));
        }
        if self.sms_per_tpc == 0 {
            return Err(ConfigError::new("sms_per_tpc must be nonzero"));
        }
        if self.tpc_to_gpc.is_empty() {
            return Err(ConfigError::new("tpc_to_gpc must not be empty"));
        }
        if let Some(bad) = self.tpc_to_gpc.iter().find(|g| g.index() >= self.num_gpcs) {
            return Err(ConfigError::new(format!(
                "tpc_to_gpc references {bad} but num_gpcs = {}",
                self.num_gpcs
            )));
        }
        if self.mem.num_mcs == 0 || self.mem.num_l2_slices == 0 {
            return Err(ConfigError::new("memory system must have slices and MCs"));
        }
        if !self.mem.num_l2_slices.is_multiple_of(self.mem.num_mcs) {
            return Err(ConfigError::new(format!(
                "{} L2 slices do not divide evenly among {} MCs",
                self.mem.num_l2_slices, self.mem.num_mcs
            )));
        }
        if !self.mem.line_bytes.is_power_of_two() {
            return Err(ConfigError::new("line_bytes must be a power of two"));
        }
        if self.noc.subnets != 2 {
            return Err(ConfigError::new(
                "the model requires separate request and reply subnets (subnets = 2)",
            ));
        }
        if self.max_outstanding_per_warp == 0 {
            return Err(ConfigError::new("max_outstanding_per_warp must be nonzero"));
        }
        Ok(())
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::volta_v100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volta_matches_table1_counts() {
        let cfg = GpuConfig::volta_v100();
        assert_eq!(cfg.num_sms(), 80);
        assert_eq!(cfg.num_tpcs(), 40);
        assert_eq!(cfg.num_gpcs, 6);
        assert_eq!(cfg.mem.num_l2_slices, 48);
        assert_eq!(cfg.mem.num_mcs, 24);
        assert_eq!(cfg.noc.flit_size_bytes, 40);
        assert_eq!(cfg.noc.num_vcs, 1);
        assert_eq!(cfg.noc.subnets, 2);
        assert_eq!(cfg.core_clock_hz, 1_200_000_000);
        assert_eq!(cfg.simt_width, 32);
        cfg.validate().expect("volta preset must validate");
    }

    #[test]
    fn volta_gpc_sizes_match_section_3_3() {
        let cfg = GpuConfig::volta_v100();
        let sizes: Vec<usize> = (0..6)
            .map(|g| cfg.tpcs_of_gpc(GpcId::new(g)).len())
            .collect();
        // Four GPCs of 7 TPCs, two of 6 (§3.3).
        assert_eq!(sizes.iter().filter(|&&s| s == 7).count(), 4);
        assert_eq!(sizes.iter().filter(|&&s| s == 6).count(), 2);
        assert_eq!(sizes.iter().sum::<usize>(), 40);
    }

    #[test]
    fn volta_gpc5_contains_tpc39_not_tpc35() {
        let cfg = GpuConfig::volta_v100();
        let gpc5: Vec<usize> = cfg
            .tpcs_of_gpc(GpcId::new(5))
            .iter()
            .map(|t| t.index())
            .collect();
        assert_eq!(gpc5, vec![5, 11, 17, 23, 29, 39]);
    }

    #[test]
    fn sm_tpc_gpc_mapping_is_consistent() {
        let cfg = GpuConfig::volta_v100();
        for sm_idx in 0..cfg.num_sms() {
            let sm = SmId::new(sm_idx);
            let tpc = cfg.tpc_of_sm(sm);
            assert!(cfg.sms_of_tpc(tpc).contains(&sm));
            let gpc = cfg.gpc_of_sm(sm);
            assert!(cfg.tpcs_of_gpc(gpc).contains(&tpc));
        }
    }

    #[test]
    fn slices_partition_across_mcs() {
        let cfg = GpuConfig::volta_v100();
        let mut seen = vec![false; cfg.mem.num_l2_slices];
        for mc_idx in 0..cfg.mem.num_mcs {
            for slice in cfg.slices_of_mc(McId::new(mc_idx)) {
                assert!(!seen[slice.index()], "slice assigned twice");
                seen[slice.index()] = true;
                assert_eq!(cfg.mc_of_slice(slice), McId::new(mc_idx));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn validation_rejects_bad_gpc_reference() {
        let mut cfg = GpuConfig::tiny();
        cfg.tpc_to_gpc[0] = GpcId::new(99);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_uneven_slice_split() {
        let mut cfg = GpuConfig::tiny();
        cfg.mem.num_l2_slices = 7;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_single_subnet() {
        let mut cfg = GpuConfig::tiny();
        cfg.noc.subnets = 1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn presets_validate() {
        for cfg in [
            GpuConfig::volta_v100(),
            GpuConfig::pascal_p100(),
            GpuConfig::turing_tu102(),
            GpuConfig::tiny(),
        ] {
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn unit_conversions() {
        let cfg = GpuConfig::volta_v100();
        assert!((cfg.cycles_to_seconds(1_200_000_000) - 1.0).abs() < 1e-12);
        // 1 bit every 50 cycles at 1.2 GHz = 24 Mbps — the headline number.
        let bps = cfg.bits_per_cycle_to_bps(1.0 / 50.0);
        assert!((bps - 24_000_000.0).abs() < 1.0);
    }

    #[test]
    fn arbitration_labels() {
        assert_eq!(Arbitration::RoundRobin.label(), "RR");
        assert_eq!(Arbitration::CoarseRoundRobin.label(), "CRR");
        assert_eq!(Arbitration::StrictRoundRobin.label(), "SRR");
        assert_eq!(Arbitration::AgeBased.label(), "AGE");
        assert_eq!(Arbitration::default(), Arbitration::RoundRobin);
    }

    #[test]
    fn config_round_trips_through_serde() {
        let cfg = GpuConfig::volta_v100();
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: GpuConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(cfg, back);
    }
}
