//! Error types shared across the workspace.

use std::error::Error as StdError;
use std::fmt;

/// Result alias used by fallible configuration and setup paths.
pub type Result<T> = std::result::Result<T, ConfigError>;

/// An invalid or internally inconsistent configuration.
///
/// Returned by [`crate::config::GpuConfig::validate`] and by constructors
/// throughout the workspace that take a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The human-readable description of what was invalid.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl StdError for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let err = ConfigError::new("zero SMs");
        assert_eq!(err.to_string(), "invalid configuration: zero SMs");
        assert_eq!(err.message(), "zero SMs");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }

    #[test]
    fn implements_std_error() {
        let err = ConfigError::new("x");
        let dyn_err: &dyn StdError = &err;
        assert!(dyn_err.source().is_none());
    }
}
