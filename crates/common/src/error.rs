//! Error types shared across the workspace.

use std::error::Error as StdError;
use std::fmt;

/// Result alias used by fallible configuration and setup paths.
pub type Result<T> = std::result::Result<T, ConfigError>;

/// An invalid or internally inconsistent configuration.
///
/// Returned by [`crate::config::GpuConfig::validate`] and by constructors
/// throughout the workspace that take a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The human-readable description of what was invalid.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl StdError for ConfigError {}

/// Workspace-wide simulation error taxonomy.
///
/// Everything that can go wrong across the stack — bad configuration,
/// malformed fault specs, channels that never synchronize or never
/// deliver a decodable frame — funnels into this one enum so callers
/// (the CLI, benches, tests) match on *kinds* instead of strings.
///
/// Marked `#[non_exhaustive]`: future PRs add variants without a
/// breaking change, so downstream `match` arms must carry a wildcard.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// An invalid or internally inconsistent configuration.
    Config(ConfigError),
    /// A fault-injection spec string that could not be parsed.
    FaultSpec {
        /// The offending spec, verbatim.
        spec: String,
        /// What was wrong with it.
        reason: String,
    },
    /// A transmission exhausted its retransmission budget without ever
    /// delivering a frame that passed its integrity check.
    ChannelJammed {
        /// Label of the channel that gave up.
        label: String,
        /// Transmission attempts made (initial try plus retries).
        attempts: u32,
    },
    /// The receiver lost synchronization: the measured trace is shorter
    /// than the frame the sender modulated.
    SyncLost {
        /// Label of the affected channel.
        label: String,
        /// Samples the decoder expected.
        expected: usize,
        /// Samples actually observed.
        got: usize,
    },
    /// A decoded frame failed a structural check (bad preamble, failed
    /// checksum, undecodable block).
    DecodeFailed {
        /// What the decoder choked on.
        reason: String,
    },
    /// A supervised trial panicked on every attempt. The panic unwound
    /// only that trial — the rest of the sweep kept its results.
    TrialPanicked {
        /// Position of the trial in the sweep's unit list.
        index: usize,
        /// The trial's deterministic seed.
        seed: u64,
        /// The panic payload, stringified best-effort.
        payload: String,
    },
    /// A supervised trial overran its watchdog deadline on every
    /// attempt and was unwound at a cooperative cancellation point.
    TrialTimedOut {
        /// Position of the trial in the sweep's unit list.
        index: usize,
        /// The trial's deterministic seed.
        seed: u64,
        /// The per-attempt deadline that was exceeded, in milliseconds.
        timeout_ms: u64,
    },
    /// A supervised trial was abandoned because the sweep was cancelled
    /// (Ctrl-C or an explicit [`crate::supervise::CancelToken`]).
    TrialCancelled {
        /// Position of the trial in the sweep's unit list.
        index: usize,
        /// The trial's deterministic seed.
        seed: u64,
    },
    /// An I/O operation failed on a path the user named (journal,
    /// sweep output, manifest, telemetry directory).
    Io {
        /// What was being attempted, e.g. `"write sweep output"`.
        op: String,
        /// The file or directory involved.
        path: String,
        /// The underlying OS error message.
        message: String,
    },
    /// A journal file could not be read back (not created by this tool,
    /// or corrupted beyond the tolerated truncated tail).
    Journal {
        /// The journal path.
        path: String,
        /// What was wrong with it.
        reason: String,
    },
    /// A hardware-protocol invariant was violated inside the simulated
    /// machine — e.g. the reply fabric delivered a packet no SM has
    /// outstanding. The simulation state is corrupt, so the violation is
    /// fatal: components raise it by panicking with this error's
    /// [`Display`](fmt::Display) form, which supervised sweeps record as
    /// a failed trial instead of benchmarking a corrupted machine.
    ProtocolViolation {
        /// The component that observed the violation (e.g. `"sm3"`).
        component: String,
        /// Which invariant was broken.
        detail: String,
    },
}

impl SimError {
    /// Convenience constructor for [`SimError::Io`].
    pub fn io(op: impl Into<String>, path: impl fmt::Display, err: &std::io::Error) -> Self {
        Self::Io {
            op: op.into(),
            path: path.to_string(),
            message: err.to_string(),
        }
    }

    /// True for the trial-supervision failures ([`Self::TrialPanicked`],
    /// [`Self::TrialTimedOut`], [`Self::TrialCancelled`]) — the errors a
    /// resilient sweep records and continues past, as opposed to setup
    /// or I/O errors that abort the run.
    pub fn is_trial_failure(&self) -> bool {
        matches!(
            self,
            Self::TrialPanicked { .. } | Self::TrialTimedOut { .. } | Self::TrialCancelled { .. }
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(e) => e.fmt(f),
            Self::FaultSpec { spec, reason } => {
                write!(f, "invalid fault spec {spec:?}: {reason}")
            }
            Self::ChannelJammed { label, attempts } => {
                write!(f, "channel {label:?} jammed after {attempts} attempts")
            }
            Self::SyncLost {
                label,
                expected,
                got,
            } => write!(
                f,
                "channel {label:?} lost sync: expected {expected} samples, got {got}"
            ),
            Self::DecodeFailed { reason } => write!(f, "decode failed: {reason}"),
            Self::TrialPanicked {
                index,
                seed,
                payload,
            } => write!(f, "trial #{index} (seed {seed}) panicked: {payload}"),
            Self::TrialTimedOut {
                index,
                seed,
                timeout_ms,
            } => write!(
                f,
                "trial #{index} (seed {seed}) exceeded its {timeout_ms} ms deadline"
            ),
            Self::TrialCancelled { index, seed } => {
                write!(
                    f,
                    "trial #{index} (seed {seed}) cancelled before completion"
                )
            }
            Self::Io { op, path, message } => {
                write!(f, "failed to {op} at {path}: {message}")
            }
            Self::Journal { path, reason } => {
                write!(f, "journal {path} is unusable: {reason}")
            }
            Self::ProtocolViolation { component, detail } => {
                write!(f, "protocol violation at {component}: {detail}")
            }
        }
    }
}

impl StdError for SimError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let err = ConfigError::new("zero SMs");
        assert_eq!(err.to_string(), "invalid configuration: zero SMs");
        assert_eq!(err.message(), "zero SMs");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }

    #[test]
    fn implements_std_error() {
        let err = ConfigError::new("x");
        let dyn_err: &dyn StdError = &err;
        assert!(dyn_err.source().is_none());
    }

    #[test]
    fn sim_error_displays_and_chains() {
        let e: SimError = ConfigError::new("zero SMs").into();
        assert_eq!(e.to_string(), "invalid configuration: zero SMs");
        let dyn_err: &dyn StdError = &e;
        assert!(dyn_err.source().is_some());
        let jam = SimError::ChannelJammed {
            label: "gpc0".into(),
            attempts: 4,
        };
        assert_eq!(jam.to_string(), "channel \"gpc0\" jammed after 4 attempts");
        let sync = SimError::SyncLost {
            label: "tpc".into(),
            expected: 40,
            got: 12,
        };
        assert!(sync.to_string().contains("expected 40"));
        assert!(SimError::DecodeFailed {
            reason: "checksum".into()
        }
        .to_string()
        .contains("checksum"));
    }

    #[test]
    fn trial_failures_display_and_classify() {
        let panic = SimError::TrialPanicked {
            index: 3,
            seed: 51,
            payload: "index out of bounds".into(),
        };
        assert_eq!(
            panic.to_string(),
            "trial #3 (seed 51) panicked: index out of bounds"
        );
        let timeout = SimError::TrialTimedOut {
            index: 9,
            seed: 156,
            timeout_ms: 250,
        };
        assert!(timeout.to_string().contains("250 ms deadline"));
        let cancelled = SimError::TrialCancelled { index: 1, seed: 18 };
        assert!(cancelled.to_string().contains("cancelled"));
        for e in [&panic, &timeout, &cancelled] {
            assert!(e.is_trial_failure(), "{e}");
        }
        let io = SimError::io(
            "write sweep output",
            "/tmp/sweep.json",
            &std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        );
        assert!(!io.is_trial_failure());
        assert!(io.to_string().contains("/tmp/sweep.json"));
        assert!(SimError::Journal {
            path: "j.jsonl".into(),
            reason: "bad header".into(),
        }
        .to_string()
        .contains("bad header"));
    }
}
