//! Strength-reduced division by a runtime-invariant divisor.
//!
//! Address decomposition divides every packet's address by the slice,
//! set, and bank counts — values fixed at construction but unknown to the
//! compiler, so each one costs a hardware `div` in the hot loops. A
//! [`FastDivisor`] precomputes a rounded-up fixed-point reciprocal and
//! replaces the division with one widening multiply and a shift
//! (Granlund & Montgomery, "Division by Invariant Integers using
//! Multiplication", PLDI '94).
//!
//! The reciprocal path is exact for all numerators below 2^32 — a range
//! that covers every cache-line index the simulator produces — and falls
//! back to hardware division above it, so results are identical for the
//! full `u64` domain.

/// A divisor with a precomputed reciprocal. Division results equal
/// `n / d` exactly for every `u64` numerator.
#[derive(Debug, Clone, Copy)]
pub struct FastDivisor {
    d: u64,
    /// `⌊2^shift / d⌋ + 1` for non-power-of-two `d` (reciprocal path),
    /// unused for powers of two.
    magic: u64,
    /// Total right shift: `32 + ⌈log2 d⌉` for the reciprocal path, or
    /// `log2 d` for powers of two.
    shift: u32,
    pow2: bool,
}

impl FastDivisor {
    /// Prepares a reciprocal for `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn new(d: u64) -> Self {
        assert!(d > 0, "division by zero divisor");
        if d.is_power_of_two() {
            return Self {
                d,
                magic: 0,
                shift: d.trailing_zeros(),
                pow2: true,
            };
        }
        // ⌈log2 d⌉ for non-power-of-two d; d ≤ 2^s with strict inequality,
        // which is what makes the round-up reciprocal exact below 2^32.
        let s = 64 - (d - 1).leading_zeros();
        let shift = 32 + s;
        let magic = ((1u128 << shift) / u128::from(d) + 1) as u64;
        Self {
            d,
            magic,
            shift,
            pow2: false,
        }
    }

    /// The divisor itself.
    #[inline]
    pub fn divisor(&self) -> u64 {
        self.d
    }

    /// `n / self.divisor()`.
    #[inline]
    pub fn div(&self, n: u64) -> u64 {
        if self.pow2 {
            return n >> self.shift;
        }
        if n < 1 << 32 {
            // Exact: magic·d overshoots 2^shift by at most 2^(shift-32),
            // so the quotient error stays below 1/d for 32-bit n.
            ((u128::from(n) * u128::from(self.magic)) >> self.shift) as u64
        } else {
            n / self.d
        }
    }

    /// `(n / d, n % d)` in one go.
    #[inline]
    pub fn div_rem(&self, n: u64) -> (u64, u64) {
        let q = self.div(n);
        (q, n - q * self.d)
    }

    /// `n % self.divisor()`.
    #[inline]
    pub fn rem(&self, n: u64) -> u64 {
        self.div_rem(n).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(d: u64, n: u64) {
        let f = FastDivisor::new(d);
        assert_eq!(f.div(n), n / d, "div {n}/{d}");
        assert_eq!(f.rem(n), n % d, "rem {n}%{d}");
        assert_eq!(f.div_rem(n), (n / d, n % d), "div_rem {n}/{d}");
    }

    #[test]
    fn matches_hardware_division_on_boundaries() {
        let divisors = [1, 2, 3, 5, 7, 16, 24, 47, 48, 97, 128, 1000, u64::MAX];
        let numerators = [
            0,
            1,
            47,
            48,
            4095,
            (1 << 32) - 1,
            1 << 32,
            (1 << 32) + 1,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &d in &divisors {
            for &n in &numerators {
                check(d, n);
            }
        }
    }

    #[test]
    fn matches_hardware_division_exhaustively_near_multiples() {
        // The round-up reciprocal's failure mode is an off-by-one at
        // numerators just below a multiple of d; sweep those densely.
        for d in [3u64, 24, 47, 48, 49, 1023] {
            let f = FastDivisor::new(d);
            for k in (0..5000u64).chain((1 << 32) / d - 5000..(1 << 32) / d) {
                for n in (k * d).saturating_sub(1)..=k * d + 1 {
                    assert_eq!(f.div(n), n / d, "{n}/{d}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero divisor")]
    fn zero_divisor_rejected() {
        let _ = FastDivisor::new(0);
    }
}
