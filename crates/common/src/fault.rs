//! Deterministic, seeded fault injection.
//!
//! The §5 noise study asks how the covert channel behaves when the GPU
//! is *not* a quiet laboratory: co-tenant kernels burst traffic through
//! the shared muxes, the measurement path drops or duplicates latency
//! samples, the per-SM clocks drift and glitch, and L2 slices are
//! hot-spotted by other workloads. A [`FaultPlan`] injects exactly those
//! disturbances — reproducibly.
//!
//! # Determinism
//!
//! Every fault decision is a *pure function* of `(seed, domain, site,
//! time-window)` through a SplitMix64 hash — no sequential RNG state.
//! Subsystems may therefore consult the plan in any order, any number of
//! times, and the injected fault pattern never changes for a given seed:
//! two simulations with the same configuration, payload, and seed produce
//! bit-identical reports.
//!
//! # Consumers
//!
//! The plan is shared (`Arc<FaultPlan>`) by four subsystems:
//!
//! * `gnc_noc::mux::ConcentratorMux` — background-traffic bursts steal
//!   output flit slots at the shared TPC/GPC muxes ([`FaultPlan::burst_flits`]).
//! * the simulator's measurement path — per-sample latency jitter,
//!   dropped samples, duplicated samples
//!   ([`FaultPlan::sample_jitter`], [`FaultPlan::drop_sample`],
//!   [`FaultPlan::dup_sample`]).
//! * `gnc_sim::clock::ClockDomain` — per-SM drift and transient glitch
//!   events ([`FaultPlan::clock_offset`]).
//! * `gnc_mem::l2::L2Slice` — hot-spot windows during which a slice's
//!   lookup stage stalls ([`FaultPlan::l2_stall`]).

use crate::error::SimError;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fault-injection knobs. All rates are probabilities in `[0, 1]`;
/// all-zero means a plan that never fires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed of the whole fault pattern.
    pub seed: u64,
    /// Probability that a given burst window at a given mux carries
    /// background traffic.
    pub noc_burst_rate: f64,
    /// Length of one burst window in cycles.
    pub noc_burst_cycles: u32,
    /// Output flit slots stolen per cycle while a burst is active.
    pub noc_burst_flits: u32,
    /// Maximum extra cycles added to a recorded latency sample.
    pub sample_jitter_cycles: u32,
    /// Probability a latency sample is lost before it is recorded.
    pub sample_drop_rate: f64,
    /// Probability a latency sample is recorded twice.
    pub sample_dup_rate: f64,
    /// Per-SM clock drift in parts per million (sign varies per SM).
    pub clock_drift_ppm: u32,
    /// Probability, per SM per 1024-cycle window, of a transient clock
    /// glitch.
    pub clock_glitch_rate: f64,
    /// Cycles the clock jumps forward while a glitch window is active.
    pub clock_glitch_cycles: u32,
    /// Probability that a given hot-spot window at a given L2 slice is
    /// hot.
    pub l2_hotspot_rate: f64,
    /// Length of one hot-spot window in cycles.
    pub l2_hotspot_cycles: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::off()
    }
}

impl FaultConfig {
    /// No faults at all (every probe returns "inactive").
    pub fn off() -> Self {
        Self {
            seed: 0,
            noc_burst_rate: 0.0,
            noc_burst_cycles: 64,
            noc_burst_flits: 1,
            sample_jitter_cycles: 0,
            sample_drop_rate: 0.0,
            sample_dup_rate: 0.0,
            clock_drift_ppm: 0,
            clock_glitch_rate: 0.0,
            clock_glitch_cycles: 0,
            l2_hotspot_rate: 0.0,
            l2_hotspot_cycles: 256,
        }
    }

    /// Light ambient noise: occasional bursts and a few lost samples.
    pub fn mild() -> Self {
        Self {
            noc_burst_rate: 0.05,
            noc_burst_cycles: 64,
            noc_burst_flits: 1,
            sample_jitter_cycles: 12,
            sample_drop_rate: 0.01,
            sample_dup_rate: 0.005,
            clock_drift_ppm: 20,
            clock_glitch_rate: 0.001,
            clock_glitch_cycles: 8,
            l2_hotspot_rate: 0.01,
            l2_hotspot_cycles: 128,
            ..Self::off()
        }
    }

    /// A busy co-tenant: the regime the hardened protocol is built for.
    pub fn moderate() -> Self {
        Self {
            noc_burst_rate: 0.10,
            noc_burst_cycles: 96,
            noc_burst_flits: 1,
            sample_jitter_cycles: 24,
            sample_drop_rate: 0.03,
            sample_dup_rate: 0.015,
            clock_drift_ppm: 60,
            clock_glitch_rate: 0.002,
            clock_glitch_cycles: 16,
            l2_hotspot_rate: 0.02,
            l2_hotspot_cycles: 128,
            ..Self::off()
        }
    }

    /// Heavy interference; the channel degrades but should survive with
    /// FEC and retransmission.
    pub fn severe() -> Self {
        Self {
            noc_burst_rate: 0.15,
            noc_burst_cycles: 128,
            noc_burst_flits: 1,
            sample_jitter_cycles: 40,
            sample_drop_rate: 0.05,
            sample_dup_rate: 0.025,
            clock_drift_ppm: 100,
            clock_glitch_rate: 0.004,
            clock_glitch_cycles: 24,
            l2_hotspot_rate: 0.03,
            l2_hotspot_cycles: 96,
            ..Self::off()
        }
    }

    /// An adversarial jammer saturating the shared muxes; transmissions
    /// are expected to fail.
    pub fn jammed() -> Self {
        Self {
            noc_burst_rate: 0.92,
            noc_burst_cycles: 256,
            noc_burst_flits: 8,
            sample_jitter_cycles: 256,
            sample_drop_rate: 0.30,
            sample_dup_rate: 0.10,
            clock_drift_ppm: 500,
            clock_glitch_rate: 0.03,
            clock_glitch_cycles: 96,
            l2_hotspot_rate: 0.25,
            l2_hotspot_cycles: 512,
            ..Self::off()
        }
    }

    /// The same configuration with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether any fault class can ever fire.
    pub fn is_noop(&self) -> bool {
        self.noc_burst_rate <= 0.0
            && self.sample_jitter_cycles == 0
            && self.sample_drop_rate <= 0.0
            && self.sample_dup_rate <= 0.0
            && self.clock_drift_ppm == 0
            && self.clock_glitch_rate <= 0.0
            && self.l2_hotspot_rate <= 0.0
    }

    /// Parses a CLI fault spec.
    ///
    /// Grammar: a preset name (`off`, `mild`, `moderate`, `severe`,
    /// `jammed`), optionally suffixed with `@<seed>`, optionally followed
    /// by comma-separated `key=value` overrides using the field names of
    /// [`FaultConfig`] — e.g. `moderate@7,sample_drop_rate=0.1`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FaultSpec`] on unknown presets, unknown keys,
    /// or unparsable values.
    pub fn parse(spec: &str) -> Result<Self, SimError> {
        let bad = |reason: &str| SimError::FaultSpec {
            spec: spec.to_string(),
            reason: reason.to_string(),
        };
        if spec.trim().is_empty() {
            return Err(bad("empty spec (use \"off\" for no faults)"));
        }
        let mut parts = spec.split(',');
        let head = parts.next().unwrap_or("").trim();
        let (preset, seed) = match head.split_once('@') {
            Some((p, s)) => {
                let seed: u64 = s
                    .trim()
                    .parse()
                    .map_err(|_| bad("seed after '@' must be an integer"))?;
                (p.trim(), Some(seed))
            }
            None => (head, None),
        };
        let mut cfg = match preset {
            "off" | "" => Self::off(),
            "mild" => Self::mild(),
            "moderate" => Self::moderate(),
            "severe" => Self::severe(),
            "jammed" => Self::jammed(),
            _ => return Err(bad("unknown preset (off|mild|moderate|severe|jammed)")),
        };
        if let Some(seed) = seed {
            cfg.seed = seed;
        }
        for kv in parts {
            let (key, value) = kv
                .split_once('=')
                .ok_or_else(|| bad("overrides must be key=value"))?;
            let key = key.trim();
            let value = value.trim();
            let as_f64 = |v: &str| v.parse::<f64>().map_err(|_| bad("value must be a number"));
            let as_u32 = |v: &str| {
                v.parse::<u32>()
                    .map_err(|_| bad("value must be an integer"))
            };
            match key {
                "seed" => {
                    cfg.seed = value.parse().map_err(|_| bad("seed must be an integer"))?;
                }
                "noc_burst_rate" => cfg.noc_burst_rate = as_f64(value)?,
                "noc_burst_cycles" => cfg.noc_burst_cycles = as_u32(value)?,
                "noc_burst_flits" => cfg.noc_burst_flits = as_u32(value)?,
                "sample_jitter_cycles" => cfg.sample_jitter_cycles = as_u32(value)?,
                "sample_drop_rate" => cfg.sample_drop_rate = as_f64(value)?,
                "sample_dup_rate" => cfg.sample_dup_rate = as_f64(value)?,
                "clock_drift_ppm" => cfg.clock_drift_ppm = as_u32(value)?,
                "clock_glitch_rate" => cfg.clock_glitch_rate = as_f64(value)?,
                "clock_glitch_cycles" => cfg.clock_glitch_cycles = as_u32(value)?,
                "l2_hotspot_rate" => cfg.l2_hotspot_rate = as_f64(value)?,
                "l2_hotspot_cycles" => cfg.l2_hotspot_cycles = as_u32(value)?,
                _ => return Err(bad("unknown override key")),
            }
        }
        for rate in [
            cfg.noc_burst_rate,
            cfg.sample_drop_rate,
            cfg.sample_dup_rate,
            cfg.clock_glitch_rate,
            cfg.l2_hotspot_rate,
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(bad("rates must lie in [0, 1]"));
            }
        }
        Ok(cfg)
    }
}

/// Harness-level chaos: fault injection aimed at the *trial supervisor*
/// rather than the simulated GPU.
///
/// Where [`FaultConfig`] perturbs the machine under test (so the covert
/// channel's robustness can be measured), `HarnessChaos` perturbs the
/// sweep harness itself — making whole trials panic or hang — so the
/// supervision layer (`gnc_common::supervise`) can be exercised
/// deterministically from a seed: panic isolation, watchdog timeouts,
/// and bounded retries all become reproducible CI scenarios
/// (`--chaos-trial-panic`, `--chaos-trial-stall`).
///
/// Decisions are pure functions of `(seed, trial index, attempt)` via
/// the same SplitMix64 draw the [`FaultPlan`] uses, so a chaos-panicked
/// trial that is retried re-rolls its fate deterministically — a sweep
/// with retries converges to the same results on every run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HarnessChaos {
    /// Seed of the chaos pattern.
    pub seed: u64,
    /// Probability that a given (trial, attempt) panics at trial start.
    pub trial_panic_rate: f64,
    /// Probability that a given (trial, attempt) stalls until the
    /// watchdog deadline (or cancellation) unwinds it.
    pub trial_stall_rate: f64,
}

impl HarnessChaos {
    /// Chaos that never fires.
    pub fn off() -> Self {
        Self {
            seed: 0,
            trial_panic_rate: 0.0,
            trial_stall_rate: 0.0,
        }
    }

    /// Whether either chaos class can ever fire.
    pub fn is_off(&self) -> bool {
        self.trial_panic_rate <= 0.0 && self.trial_stall_rate <= 0.0
    }

    /// Validates the rates.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FaultSpec`] when a rate lies outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), SimError> {
        for (name, rate) in [
            ("trial_panic_rate", self.trial_panic_rate),
            ("trial_stall_rate", self.trial_stall_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(SimError::FaultSpec {
                    spec: format!("{name}={rate}"),
                    reason: "chaos rates must lie in [0, 1]".to_string(),
                });
            }
        }
        Ok(())
    }

    fn draw(&self, domain: u64, index: u64, attempt: u32) -> f64 {
        let h = splitmix64(self.seed ^ splitmix64(domain ^ splitmix64(index ^ u64::from(attempt))));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether attempt `attempt` of trial `index` should panic.
    pub fn panics(&self, index: u64, attempt: u32) -> bool {
        self.trial_panic_rate > 0.0
            && self.draw(domain::TRIAL_PANIC, index, attempt) < self.trial_panic_rate
    }

    /// Whether attempt `attempt` of trial `index` should stall until its
    /// watchdog fires.
    pub fn stalls(&self, index: u64, attempt: u32) -> bool {
        self.trial_stall_rate > 0.0
            && self.draw(domain::TRIAL_STALL, index, attempt) < self.trial_stall_rate
    }
}

impl Default for HarnessChaos {
    fn default() -> Self {
        Self::off()
    }
}

/// Hash-domain tags keeping the four fault classes statistically
/// independent of each other under one seed.
mod domain {
    pub const NOC: u64 = 0x6e6f_632d_6d75_7800; // "noc-mux"
    pub const DROP: u64 = 0x6d65_6173_2d64_7270; // "meas-drp"
    pub const DUP: u64 = 0x6d65_6173_2d64_7570; // "meas-dup"
    pub const JITTER: u64 = 0x6d65_6173_2d6a_6974; // "meas-jit"
    pub const DRIFT: u64 = 0x636c_6f63_6b2d_6466; // "clock-df"
    pub const GLITCH: u64 = 0x636c_6f63_6b2d_676c; // "clock-gl"
    pub const L2: u64 = 0x6c32_2d68_6f74_0000; // "l2-hot"
    pub const TRIAL_PANIC: u64 = 0x7472_6c2d_7061_6e69; // "trl-pani"
    pub const TRIAL_STALL: u64 = 0x7472_6c2d_7374_616c; // "trl-stal"
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How often each fault class actually fired (evidence for tests and
/// reports; never consulted by the decision functions themselves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Mux cycles that lost at least one flit slot to a burst.
    pub noc_burst_cycles: u64,
    /// Latency samples dropped before recording.
    pub samples_dropped: u64,
    /// Latency samples recorded twice.
    pub samples_duplicated: u64,
    /// Latency samples that received nonzero jitter.
    pub samples_jittered: u64,
    /// Clock reads taken while a glitch window was active.
    pub glitched_clock_reads: u64,
    /// L2 lookup cycles stalled by a hot-spot window.
    pub l2_stall_cycles: u64,
}

/// A seeded, order-independent fault oracle shared across the simulator.
///
/// Construct once per simulation via [`FaultPlan::new`] and hand clones
/// of the `Arc` to each subsystem. All probes are `&self` and lock-free;
/// the internal counters are only observability.
#[derive(Debug, Default)]
pub struct FaultPlan {
    cfg: FaultConfig,
    noc_burst_hits: AtomicU64,
    drops: AtomicU64,
    dups: AtomicU64,
    jitters: AtomicU64,
    glitch_reads: AtomicU64,
    l2_stalls: AtomicU64,
}

impl FaultPlan {
    /// Wraps `cfg` into a shareable plan.
    pub fn new(cfg: FaultConfig) -> Arc<Self> {
        Arc::new(Self {
            cfg,
            ..Self::default()
        })
    }

    /// The configuration this plan runs.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether this plan can ever fire.
    pub fn is_noop(&self) -> bool {
        self.cfg.is_noop()
    }

    #[inline]
    fn key(&self, domain: u64, site: u64, window: u64) -> u64 {
        splitmix64(self.cfg.seed ^ splitmix64(domain ^ splitmix64(site ^ window)))
    }

    #[inline]
    fn chance(&self, domain: u64, site: u64, window: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let u = (self.key(domain, site, window) >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// Output flit slots a mux at `site` loses to background traffic at
    /// `now`. Consumed by `ConcentratorMux::tick`.
    pub fn burst_flits(&self, site: u64, now: u64) -> u32 {
        if self.cfg.noc_burst_rate <= 0.0 || self.cfg.noc_burst_flits == 0 {
            return 0;
        }
        let window = now / u64::from(self.cfg.noc_burst_cycles.max(1));
        if self.chance(domain::NOC, site, window, self.cfg.noc_burst_rate) {
            self.noc_burst_hits.fetch_add(1, Ordering::Relaxed);
            self.cfg.noc_burst_flits
        } else {
            0
        }
    }

    /// First cycle strictly after `now` at which [`burst_flits`] for
    /// `site` *may* return a different value, or `None` when it is
    /// constant forever (bursts can never fire under this config).
    ///
    /// Within `[now, boundary)` the burst decision is a pure constant:
    /// it is keyed on `now / noc_burst_cycles`, so it can only change at
    /// the next window boundary. This is the bound that lets a mux
    /// grant whole cross-cycle runs without re-probing the plan every
    /// cycle — the same contract as [`clock_offset_stable_until`].
    ///
    /// [`burst_flits`]: Self::burst_flits
    /// [`clock_offset_stable_until`]: Self::clock_offset_stable_until
    pub fn burst_stable_until(&self, site: u64, now: u64) -> Option<u64> {
        let _ = site;
        if self.cfg.noc_burst_rate <= 0.0 || self.cfg.noc_burst_flits == 0 {
            return None;
        }
        let period = u64::from(self.cfg.noc_burst_cycles.max(1));
        Some((now / period + 1).saturating_mul(period))
    }

    /// Records one mux cycle that lost flit slots to an already-decided
    /// burst window. A mux that caches the [`burst_flits`] value across
    /// a window (see [`burst_stable_until`]) calls this for each
    /// subsequent busy cycle the cached steal applies to, keeping
    /// [`FaultStats::noc_burst_cycles`] identical to probing the plan
    /// every cycle.
    ///
    /// [`burst_flits`]: Self::burst_flits
    /// [`burst_stable_until`]: Self::burst_stable_until
    pub fn note_burst_cycle(&self) {
        self.noc_burst_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether the latency sample identified by `(site, sample)` is lost.
    pub fn drop_sample(&self, site: u64, sample: u64) -> bool {
        let hit = self.chance(domain::DROP, site, sample, self.cfg.sample_drop_rate);
        if hit {
            self.drops.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Whether the latency sample identified by `(site, sample)` is
    /// recorded twice.
    pub fn dup_sample(&self, site: u64, sample: u64) -> bool {
        let hit = self.chance(domain::DUP, site, sample, self.cfg.sample_dup_rate);
        if hit {
            self.dups.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Extra cycles added to the latency sample `(site, sample)`,
    /// uniform in `[0, sample_jitter_cycles]`.
    pub fn sample_jitter(&self, site: u64, sample: u64) -> u64 {
        if self.cfg.sample_jitter_cycles == 0 {
            return 0;
        }
        let j =
            self.key(domain::JITTER, site, sample) % (u64::from(self.cfg.sample_jitter_cycles) + 1);
        if j > 0 {
            self.jitters.fetch_add(1, Ordering::Relaxed);
        }
        j
    }

    /// Signed offset of `sm`'s clock at `now`: slow accumulated drift
    /// plus a transient forward jump while a glitch window is active.
    ///
    /// The glitch is a *bounded, transient* offset (the clock repeats a
    /// few values when the window closes), so a warp spinning on the
    /// clock's masked low bits is delayed by at most one mask period —
    /// never wedged.
    pub fn clock_offset(&self, sm: u64, now: u64) -> i64 {
        let mut off: i64 = 0;
        if self.cfg.clock_drift_ppm > 0 {
            let drift = (now / 1_000_000 * u64::from(self.cfg.clock_drift_ppm))
                .wrapping_add(now % 1_000_000 * u64::from(self.cfg.clock_drift_ppm) / 1_000_000)
                as i64;
            // Direction is a fixed per-SM coin flip.
            if self.key(domain::DRIFT, sm, 0) & 1 == 0 {
                off += drift;
            } else {
                off -= drift;
            }
        }
        if self.cfg.clock_glitch_rate > 0.0 && self.cfg.clock_glitch_cycles > 0 {
            let window = now >> 10;
            if self.chance(domain::GLITCH, sm, window, self.cfg.clock_glitch_rate) {
                self.glitch_reads.fetch_add(1, Ordering::Relaxed);
                off += i64::from(self.cfg.clock_glitch_cycles);
            }
        }
        off
    }

    /// First cycle strictly after `now` at which [`clock_offset`] for
    /// `sm` *may* return a different value, or `None` when the offset is
    /// constant forever (no clock faults configured).
    ///
    /// On `[now, boundary)` the offset is a pure constant: the drift
    /// term equals `floor(t * ppm / 1e6)` (the split evaluation in
    /// [`clock_offset`] is exact, not an approximation), so it next
    /// steps at `ceil((d + 1) * 1e6 / ppm)` where `d` is today's value;
    /// the glitch decision is keyed on `t >> 10`, so it can only change
    /// at the next 1024-cycle window boundary. This is what lets the
    /// event-driven scheduler fast-forward a clock-spinning warp under
    /// fault injection without replaying every cycle.
    ///
    /// [`clock_offset`]: Self::clock_offset
    pub fn clock_offset_stable_until(&self, sm: u64, now: u64) -> Option<u64> {
        let _ = sm;
        let mut boundary = u64::MAX;
        if self.cfg.clock_drift_ppm > 0 {
            let ppm = u128::from(self.cfg.clock_drift_ppm);
            let d = u128::from(now) * ppm / 1_000_000;
            let next = ((d + 1) * 1_000_000).div_ceil(ppm);
            boundary = boundary.min(u64::try_from(next).unwrap_or(u64::MAX));
        }
        if self.cfg.clock_glitch_rate > 0.0 && self.cfg.clock_glitch_cycles > 0 {
            let next_window = ((now >> 10) + 1) << 10;
            boundary = boundary.min(next_window);
        }
        (boundary != u64::MAX).then_some(boundary)
    }

    /// Whether the L2 slice at `site` must stall its lookup stage at
    /// `now` (hot-spot window).
    pub fn l2_stall(&self, site: u64, now: u64) -> bool {
        if self.cfg.l2_hotspot_rate <= 0.0 {
            return false;
        }
        let window = now / u64::from(self.cfg.l2_hotspot_cycles.max(1));
        let hit = self.chance(domain::L2, site, window, self.cfg.l2_hotspot_rate);
        if hit {
            self.l2_stalls.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Snapshot of how often each fault class fired so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            noc_burst_cycles: self.noc_burst_hits.load(Ordering::Relaxed),
            samples_dropped: self.drops.load(Ordering::Relaxed),
            samples_duplicated: self.dups.load(Ordering::Relaxed),
            samples_jittered: self.jitters.load(Ordering::Relaxed),
            glitched_clock_reads: self.glitch_reads.load(Ordering::Relaxed),
            l2_stall_cycles: self.l2_stalls.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_plan_never_fires() {
        let plan = FaultPlan::new(FaultConfig::off());
        assert!(plan.is_noop());
        for t in 0..10_000 {
            assert_eq!(plan.burst_flits(1, t), 0);
            assert!(!plan.drop_sample(1, t));
            assert!(!plan.dup_sample(1, t));
            assert_eq!(plan.sample_jitter(1, t), 0);
            assert_eq!(plan.clock_offset(1, t), 0);
            assert!(!plan.l2_stall(1, t));
        }
        assert_eq!(plan.stats(), FaultStats::default());
    }

    #[test]
    fn decisions_are_order_independent_and_seed_deterministic() {
        let a = FaultPlan::new(FaultConfig::severe().with_seed(9));
        let b = FaultPlan::new(FaultConfig::severe().with_seed(9));
        // Probe `a` forwards and `b` backwards: identical answers.
        let fwd: Vec<bool> = (0..4096).map(|t| a.drop_sample(3, t)).collect();
        let bwd: Vec<bool> = (0..4096).rev().map(|t| b.drop_sample(3, t)).collect();
        let bwd: Vec<bool> = bwd.into_iter().rev().collect();
        assert_eq!(fwd, bwd);
        // A different seed changes the pattern.
        let c = FaultPlan::new(FaultConfig::severe().with_seed(10));
        let other: Vec<bool> = (0..4096).map(|t| c.drop_sample(3, t)).collect();
        assert_ne!(fwd, other);
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan::new(FaultConfig {
            sample_drop_rate: 0.25,
            ..FaultConfig::off()
        });
        let n = 100_000;
        let hits = (0..n).filter(|&t| plan.drop_sample(0, t)).count();
        let frac = hits as f64 / n as f64;
        assert!((0.23..0.27).contains(&frac), "drop fraction {frac}");
    }

    #[test]
    fn burst_windows_are_contiguous() {
        let cfg = FaultConfig {
            noc_burst_rate: 0.5,
            noc_burst_cycles: 64,
            noc_burst_flits: 2,
            ..FaultConfig::off()
        };
        let plan = FaultPlan::new(cfg);
        // Within one window the answer never changes.
        for w in 0..64u64 {
            let base = w * 64;
            let first = plan.burst_flits(7, base);
            for t in base..base + 64 {
                assert_eq!(plan.burst_flits(7, t), first);
            }
        }
    }

    #[test]
    fn burst_stable_until_bounds_the_window() {
        let cfg = FaultConfig {
            noc_burst_rate: 0.5,
            noc_burst_cycles: 64,
            noc_burst_flits: 2,
            ..FaultConfig::off()
        };
        let plan = FaultPlan::new(cfg);
        for now in [0u64, 1, 63, 64, 100, 12_345] {
            let until = plan
                .burst_stable_until(7, now)
                .expect("bursting plan has boundaries");
            assert!(until > now, "bound must be strictly after now");
            assert_eq!(until % 64, 0, "bound lies on a window boundary");
            assert_eq!(until, (now / 64 + 1) * 64);
            // The decision really is constant on [now, until).
            let first = plan.burst_flits(7, now);
            for t in now..until {
                assert_eq!(plan.burst_flits(7, t), first);
            }
        }
        // A plan that can never burst is constant forever.
        assert_eq!(
            FaultPlan::new(FaultConfig::off()).burst_stable_until(7, 0),
            None
        );
        let zero_flits = FaultConfig {
            noc_burst_rate: 0.9,
            noc_burst_flits: 0,
            ..FaultConfig::off()
        };
        assert_eq!(FaultPlan::new(zero_flits).burst_stable_until(7, 0), None);
    }

    #[test]
    fn note_burst_cycle_feeds_the_stats_counter() {
        let plan = FaultPlan::new(FaultConfig::off());
        assert_eq!(plan.stats().noc_burst_cycles, 0);
        plan.note_burst_cycle();
        plan.note_burst_cycle();
        assert_eq!(plan.stats().noc_burst_cycles, 2);
    }

    #[test]
    fn drift_accumulates_and_keeps_per_sm_sign() {
        let plan = FaultPlan::new(FaultConfig {
            clock_drift_ppm: 100,
            ..FaultConfig::off()
        });
        let sm = 4u64;
        let early = plan.clock_offset(sm, 1_000_000);
        let late = plan.clock_offset(sm, 10_000_000);
        assert_eq!(early.abs(), 100);
        assert_eq!(late.abs(), 1000);
        assert_eq!(early.signum(), late.signum());
    }

    #[test]
    fn parse_presets_and_overrides() {
        assert_eq!(FaultConfig::parse("off").unwrap(), FaultConfig::off());
        assert_eq!(FaultConfig::parse("mild").unwrap(), FaultConfig::mild());
        let seeded = FaultConfig::parse("severe@77").unwrap();
        assert_eq!(seeded, FaultConfig::severe().with_seed(77));
        let custom =
            FaultConfig::parse("moderate@3,sample_drop_rate=0.5,noc_burst_flits=4").unwrap();
        assert_eq!(custom.seed, 3);
        assert!((custom.sample_drop_rate - 0.5).abs() < 1e-12);
        assert_eq!(custom.noc_burst_flits, 4);
        assert!(FaultConfig::parse("bogus").is_err());
        assert!(FaultConfig::parse("mild,what=1").is_err());
        assert!(FaultConfig::parse("mild,sample_drop_rate=2.0").is_err());
        assert!(FaultConfig::parse("mild@x").is_err());
    }

    #[test]
    fn stats_count_fired_faults() {
        let plan = FaultPlan::new(FaultConfig::severe().with_seed(1));
        for t in 0..10_000u64 {
            let _ = plan.burst_flits(0, t);
            let _ = plan.drop_sample(0, t);
            let _ = plan.dup_sample(0, t);
            let _ = plan.sample_jitter(0, t);
            let _ = plan.clock_offset(0, t);
            let _ = plan.l2_stall(0, t);
        }
        let stats = plan.stats();
        assert!(stats.noc_burst_cycles > 0);
        assert!(stats.samples_dropped > 0);
        assert!(stats.samples_duplicated > 0);
        assert!(stats.samples_jittered > 0);
        assert!(stats.l2_stall_cycles > 0);
    }

    #[test]
    fn harness_chaos_is_deterministic_and_seed_sensitive() {
        let chaos = HarnessChaos {
            seed: 7,
            trial_panic_rate: 0.5,
            trial_stall_rate: 0.5,
        };
        let a: Vec<bool> = (0..64).map(|i| chaos.panics(i, 0)).collect();
        let b: Vec<bool> = (0..64).map(|i| chaos.panics(i, 0)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&p| p) && a.iter().any(|&p| !p));
        let reseeded = HarnessChaos { seed: 8, ..chaos };
        let c: Vec<bool> = (0..64).map(|i| reseeded.panics(i, 0)).collect();
        assert_ne!(a, c);
        // Attempts re-roll independently: some first-attempt panics clear
        // on retry, which is what makes bounded retry converge.
        assert!((0..64).any(|i| chaos.panics(i, 0) && !chaos.panics(i, 1)));
        // Panic and stall draws are independent domains.
        let stalls: Vec<bool> = (0..64).map(|i| chaos.stalls(i, 0)).collect();
        assert_ne!(a, stalls);
    }

    #[test]
    fn harness_chaos_off_and_validation() {
        assert!(HarnessChaos::off().is_off());
        assert!(HarnessChaos::default().is_off());
        assert!(!HarnessChaos::off().panics(3, 0));
        assert!(!HarnessChaos::off().stalls(3, 0));
        assert!(HarnessChaos::off().validate().is_ok());
        let bad = HarnessChaos {
            seed: 0,
            trial_panic_rate: 1.5,
            trial_stall_rate: 0.0,
        };
        assert!(matches!(bad.validate(), Err(SimError::FaultSpec { .. })));
    }
}
