//! Forward error correction for covert payloads.
//!
//! The paper's channels trade bandwidth against error rate via the
//! iteration count (Fig 10); a real exfiltration tool would instead run
//! the channel fast *and noisy* and recover reliability in software.
//! This module provides a classic Hamming(7,4) code — any single bit
//! error per 7-bit block is corrected, so a channel with a few percent
//! of independent bit errors delivers byte-exact payloads at 4/7 rate.

use crate::bits::BitVec;
use serde::{Deserialize, Serialize};

/// Outcome of decoding one protected stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FecDecode {
    /// The recovered payload bits.
    pub payload: BitVec,
    /// Blocks in which a (correctable) single-bit error was fixed.
    pub corrected_blocks: usize,
}

/// Hamming(7,4) block positions: bits 1..=7, parity at 1, 2, 4
/// (1-indexed, standard construction).
fn parity_sets() -> [[usize; 4]; 3] {
    // Positions covered by parity bits p1 (pos 1), p2 (pos 2), p4 (pos 4).
    [[1, 3, 5, 7], [2, 3, 6, 7], [4, 5, 6, 7]]
}

/// Encodes `payload` with Hamming(7,4): every 4 data bits become a 7-bit
/// block (data at positions 3, 5, 6, 7; parity at 1, 2, 4). A trailing
/// partial group is zero-padded; callers should track payload length.
///
/// ```
/// use gnc_common::bits::BitVec;
/// use gnc_common::fec::{fec_decode, fec_encode};
///
/// let payload = BitVec::from_bytes(b"\x5A");
/// let coded = fec_encode(&payload);
/// assert_eq!(coded.len(), 14); // 8 bits → two 7-bit blocks
/// let out = fec_decode(&coded, payload.len());
/// assert_eq!(out.payload, payload);
/// assert_eq!(out.corrected_blocks, 0);
/// ```
pub fn fec_encode(payload: &BitVec) -> BitVec {
    let mut coded = BitVec::new();
    let bits = payload.as_slice();
    for group in bits.chunks(4) {
        let d = |i: usize| -> bool { group.get(i).copied().unwrap_or(false) };
        // Block positions 1..=7 (1-indexed): data at 3, 5, 6, 7.
        let mut block = [false; 8];
        block[3] = d(0);
        block[5] = d(1);
        block[6] = d(2);
        block[7] = d(3);
        for (pi, set) in parity_sets().iter().enumerate() {
            let parity_pos = 1 << pi;
            block[parity_pos] = set
                .iter()
                .filter(|&&pos| pos != parity_pos)
                .fold(false, |acc, &pos| acc ^ block[pos]);
        }
        for &b in &block[1..=7] {
            coded.push(b);
        }
    }
    coded
}

/// Decodes a Hamming(7,4) stream, correcting up to one bit error per
/// 7-bit block, and truncates to `payload_len` bits.
///
/// Blocks shorter than 7 bits (truncated stream) are zero-filled, which
/// surfaces as payload errors rather than a panic.
pub fn fec_decode(coded: &BitVec, payload_len: usize) -> FecDecode {
    let mut payload = BitVec::new();
    let mut corrected_blocks = 0;
    let bits = coded.as_slice();
    for chunk in bits.chunks(7) {
        let mut block = [false; 8];
        for (i, &b) in chunk.iter().enumerate() {
            block[i + 1] = b;
        }
        // Syndrome: which parity checks fail.
        let mut syndrome = 0usize;
        for (pi, set) in parity_sets().iter().enumerate() {
            let parity = set.iter().fold(false, |acc, &pos| acc ^ block[pos]);
            if parity {
                syndrome |= 1 << pi;
            }
        }
        if syndrome != 0 && syndrome <= 7 {
            block[syndrome] = !block[syndrome];
            corrected_blocks += 1;
        }
        payload.push(block[3]);
        payload.push(block[5]);
        payload.push(block[6]);
        payload.push(block[7]);
    }
    let truncated = BitVec::from_bits(payload.iter().take(payload_len));
    FecDecode {
        payload: truncated,
        corrected_blocks,
    }
}

/// The code rate of the Hamming(7,4) scheme (payload bits per channel
/// bit).
pub const FEC_RATE: f64 = 4.0 / 7.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::experiment_rng;
    use rand::Rng;

    #[test]
    fn clean_round_trip() {
        let mut rng = experiment_rng("fec", 0);
        for len in [0usize, 1, 4, 7, 16, 61] {
            let payload = BitVec::random(&mut rng, len);
            let coded = fec_encode(&payload);
            assert_eq!(coded.len(), len.div_ceil(4) * 7);
            let out = fec_decode(&coded, len);
            assert_eq!(out.payload, payload, "len {len}");
            assert_eq!(out.corrected_blocks, 0);
        }
    }

    #[test]
    fn corrects_every_single_bit_error() {
        let mut rng = experiment_rng("fec", 1);
        let payload = BitVec::random(&mut rng, 32);
        let coded = fec_encode(&payload);
        for flip in 0..coded.len() {
            let corrupted = BitVec::from_bits(
                coded
                    .iter()
                    .enumerate()
                    .map(|(i, b)| if i == flip { !b } else { b }),
            );
            let out = fec_decode(&corrupted, payload.len());
            assert_eq!(out.payload, payload, "flip at {flip} not corrected");
            assert_eq!(out.corrected_blocks, 1);
        }
    }

    #[test]
    fn double_errors_in_one_block_are_not_corrected() {
        let payload = BitVec::from_bits([true, false, true, true]);
        let coded = fec_encode(&payload);
        let corrupted = BitVec::from_bits(
            coded
                .iter()
                .enumerate()
                .map(|(i, b)| if i <= 1 { !b } else { b }),
        );
        let out = fec_decode(&corrupted, payload.len());
        assert_ne!(out.payload, payload, "two errors must defeat Hamming(7,4)");
    }

    #[test]
    fn truncated_stream_degrades_gracefully() {
        let payload = BitVec::from_bits([true; 8]);
        let coded = fec_encode(&payload);
        let cut = BitVec::from_bits(coded.iter().take(10));
        let out = fec_decode(&cut, 8);
        assert_eq!(out.payload.len(), 8);
    }

    #[test]
    fn random_sparse_errors_mostly_recovered() {
        // At a few percent of independent errors (the paper's multi-GPC
        // regime) the vast majority of 7-bit blocks carry at most one
        // flip, so FEC cuts the error rate by several times.
        let mut rng = experiment_rng("fec", 2);
        let payload = BitVec::random(&mut rng, 400);
        let coded = fec_encode(&payload);
        for (raw, budget) in [(0.02, 0.015), (0.03, 0.025)] {
            let corrupted = BitVec::from_bits(
                coded
                    .iter()
                    .map(|b| if rng.gen_bool(raw) { !b } else { b }),
            );
            let out = fec_decode(&corrupted, payload.len());
            let residual = out.payload.bit_error_rate(&payload);
            assert!(
                residual < budget,
                "residual {residual} over budget {budget} at raw rate {raw}"
            );
            assert!(out.corrected_blocks > 0);
        }
    }
}
