//! Forward error correction for covert payloads.
//!
//! The paper's channels trade bandwidth against error rate via the
//! iteration count (Fig 10); a real exfiltration tool would instead run
//! the channel fast *and noisy* and recover reliability in software.
//! This module provides a classic Hamming(7,4) code — any single bit
//! error per 7-bit block is corrected, so a channel with a few percent
//! of independent bit errors delivers byte-exact payloads at 4/7 rate.

use crate::bits::BitVec;
use serde::{Deserialize, Serialize};

/// Outcome of decoding one protected stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FecDecode {
    /// The recovered payload bits.
    pub payload: BitVec,
    /// Full 7-bit blocks in which a (correctable) single-bit error was
    /// fixed. Truncated blocks never count here — a zero-filled partial
    /// block routinely produces a nonzero syndrome that is an artifact
    /// of the missing bits, not a corrected channel error.
    pub corrected_blocks: usize,
    /// Blocks that arrived with fewer than 7 channel bits.
    pub truncated_blocks: usize,
    /// Channel bits that were erased (marked unreliable by the decoder)
    /// or missing entirely (stream truncation).
    pub erased_bits: usize,
}

/// One received channel symbol: a hard bit or an erasure.
///
/// Erasures carry *location* information that plain bit flips lack:
/// Hamming(7,4) (minimum distance 3) corrects any **two** erasures per
/// block but only **one** unknown-position flip, so a demodulator that
/// marks its low-confidence slots instead of guessing doubles the
/// per-block error budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FecSymbol {
    /// A confidently demodulated 0.
    Zero,
    /// A confidently demodulated 1.
    One,
    /// A slot whose value the demodulator refuses to guess.
    Erased,
}

impl From<bool> for FecSymbol {
    fn from(b: bool) -> Self {
        if b {
            Self::One
        } else {
            Self::Zero
        }
    }
}

/// Hamming(7,4) block positions: bits 1..=7, parity at 1, 2, 4
/// (1-indexed, standard construction).
fn parity_sets() -> [[usize; 4]; 3] {
    // Positions covered by parity bits p1 (pos 1), p2 (pos 2), p4 (pos 4).
    [[1, 3, 5, 7], [2, 3, 6, 7], [4, 5, 6, 7]]
}

/// Encodes `payload` with Hamming(7,4): every 4 data bits become a 7-bit
/// block (data at positions 3, 5, 6, 7; parity at 1, 2, 4). A trailing
/// partial group is zero-padded; callers should track payload length.
///
/// ```
/// use gnc_common::bits::BitVec;
/// use gnc_common::fec::{fec_decode, fec_encode};
///
/// let payload = BitVec::from_bytes(b"\x5A");
/// let coded = fec_encode(&payload);
/// assert_eq!(coded.len(), 14); // 8 bits → two 7-bit blocks
/// let out = fec_decode(&coded, payload.len());
/// assert_eq!(out.payload, payload);
/// assert_eq!(out.corrected_blocks, 0);
/// ```
pub fn fec_encode(payload: &BitVec) -> BitVec {
    let mut coded = BitVec::new();
    let bits = payload.as_slice();
    for group in bits.chunks(4) {
        let d = |i: usize| -> bool { group.get(i).copied().unwrap_or(false) };
        // Block positions 1..=7 (1-indexed): data at 3, 5, 6, 7.
        let mut block = [false; 8];
        block[3] = d(0);
        block[5] = d(1);
        block[6] = d(2);
        block[7] = d(3);
        for (pi, set) in parity_sets().iter().enumerate() {
            let parity_pos = 1 << pi;
            block[parity_pos] = set
                .iter()
                .filter(|&&pos| pos != parity_pos)
                .fold(false, |acc, &pos| acc ^ block[pos]);
        }
        for &b in &block[1..=7] {
            coded.push(b);
        }
    }
    coded
}

/// Decodes a Hamming(7,4) stream, correcting up to one bit error per
/// 7-bit block, and truncates to `payload_len` bits.
///
/// Blocks shorter than 7 bits (truncated stream) are decoded as if
/// their missing bits were erasures — reported through
/// [`FecDecode::truncated_blocks`] / [`FecDecode::erased_bits`] — and
/// never contribute to [`FecDecode::corrected_blocks`].
pub fn fec_decode(coded: &BitVec, payload_len: usize) -> FecDecode {
    let symbols: Vec<FecSymbol> = coded.iter().map(FecSymbol::from).collect();
    fec_decode_symbols(&symbols, payload_len)
}

fn syndrome_of(block: &[bool; 8]) -> usize {
    let mut syndrome = 0usize;
    for (pi, set) in parity_sets().iter().enumerate() {
        let parity = set.iter().fold(false, |acc, &pos| acc ^ block[pos]);
        if parity {
            syndrome |= 1 << pi;
        }
    }
    syndrome
}

/// Decodes a Hamming(7,4) symbol stream with erasure support.
///
/// Per 7-symbol block (missing trailing symbols of a truncated stream
/// count as erased):
///
/// * no erasures — classic syndrome decode, up to one flip corrected;
/// * 1–2 erasures — the erased positions are re-derived from the code
///   structure: exactly one filling yields a valid codeword when the
///   surviving symbols are error-free. If none does (an additional flip
///   is present), the decoder falls back to zero-fill plus syndrome
///   correction as a best effort;
/// * 3+ erasures — beyond the code's guarantee; zero-fill best effort.
///
/// Corrections are only counted for full blocks, and every consumed
/// erasure is tallied in [`FecDecode::erased_bits`].
pub fn fec_decode_symbols(coded: &[FecSymbol], payload_len: usize) -> FecDecode {
    let mut payload = BitVec::new();
    let mut corrected_blocks = 0;
    let mut truncated_blocks = 0;
    let mut erased_bits = 0;
    for chunk in coded.chunks(7) {
        let full = chunk.len() == 7;
        if !full {
            truncated_blocks += 1;
        }
        let mut block = [false; 8];
        let mut erased: Vec<usize> = Vec::new();
        for (pos, slot) in block.iter_mut().enumerate().skip(1) {
            match chunk.get(pos - 1) {
                Some(FecSymbol::Zero) => {}
                Some(FecSymbol::One) => *slot = true,
                Some(FecSymbol::Erased) | None => erased.push(pos),
            }
        }
        erased_bits += erased.len();
        if erased.is_empty() {
            let syndrome = syndrome_of(&block);
            if syndrome != 0 {
                block[syndrome] = !block[syndrome];
                corrected_blocks += 1;
            }
        } else if erased.len() <= 2 {
            // Try every filling of the erased positions; a codeword
            // match (zero syndrome) is unique and exact.
            let mut solved = false;
            for mask in 0..(1u32 << erased.len()) {
                let mut candidate = block;
                for (bit, &pos) in erased.iter().enumerate() {
                    candidate[pos] = mask & (1 << bit) != 0;
                }
                if syndrome_of(&candidate) == 0 {
                    block = candidate;
                    solved = true;
                    break;
                }
            }
            if !solved {
                // Erasures plus at least one flip: best effort.
                let syndrome = syndrome_of(&block);
                if syndrome != 0 {
                    block[syndrome] = !block[syndrome];
                    if full {
                        corrected_blocks += 1;
                    }
                }
            }
        } else {
            // Too many erasures for the code; zero-fill best effort
            // without claiming a correction.
            let syndrome = syndrome_of(&block);
            if syndrome != 0 {
                block[syndrome] = !block[syndrome];
            }
        }
        payload.push(block[3]);
        payload.push(block[5]);
        payload.push(block[6]);
        payload.push(block[7]);
    }
    let truncated = BitVec::from_bits(payload.iter().take(payload_len));
    FecDecode {
        payload: truncated,
        corrected_blocks,
        truncated_blocks,
        erased_bits,
    }
}

/// The code rate of the Hamming(7,4) scheme (payload bits per channel
/// bit).
pub const FEC_RATE: f64 = 4.0 / 7.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::experiment_rng;
    use rand::Rng;

    #[test]
    fn clean_round_trip() {
        let mut rng = experiment_rng("fec", 0);
        for len in [0usize, 1, 4, 7, 16, 61] {
            let payload = BitVec::random(&mut rng, len);
            let coded = fec_encode(&payload);
            assert_eq!(coded.len(), len.div_ceil(4) * 7);
            let out = fec_decode(&coded, len);
            assert_eq!(out.payload, payload, "len {len}");
            assert_eq!(out.corrected_blocks, 0);
        }
    }

    #[test]
    fn corrects_every_single_bit_error() {
        let mut rng = experiment_rng("fec", 1);
        let payload = BitVec::random(&mut rng, 32);
        let coded = fec_encode(&payload);
        for flip in 0..coded.len() {
            let corrupted =
                BitVec::from_bits(
                    coded
                        .iter()
                        .enumerate()
                        .map(|(i, b)| if i == flip { !b } else { b }),
                );
            let out = fec_decode(&corrupted, payload.len());
            assert_eq!(out.payload, payload, "flip at {flip} not corrected");
            assert_eq!(out.corrected_blocks, 1);
        }
    }

    #[test]
    fn double_errors_in_one_block_are_not_corrected() {
        let payload = BitVec::from_bits([true, false, true, true]);
        let coded = fec_encode(&payload);
        let corrupted =
            BitVec::from_bits(
                coded
                    .iter()
                    .enumerate()
                    .map(|(i, b)| if i <= 1 { !b } else { b }),
            );
        let out = fec_decode(&corrupted, payload.len());
        assert_ne!(out.payload, payload, "two errors must defeat Hamming(7,4)");
    }

    #[test]
    fn truncated_stream_degrades_gracefully() {
        let payload = BitVec::from_bits([true; 8]);
        let coded = fec_encode(&payload);
        let cut = BitVec::from_bits(coded.iter().take(10));
        let out = fec_decode(&cut, 8);
        assert_eq!(out.payload.len(), 8);
        // The partial block is surfaced, not silently "corrected".
        assert_eq!(out.truncated_blocks, 1);
        assert_eq!(out.erased_bits, 4);
        assert_eq!(out.corrected_blocks, 0);
    }

    #[test]
    fn truncation_never_counts_as_correction() {
        let mut rng = experiment_rng("fec", 3);
        let payload = BitVec::random(&mut rng, 40);
        let coded = fec_encode(&payload);
        for cut_at in 1..coded.len() {
            let cut = BitVec::from_bits(coded.iter().take(cut_at));
            let out = fec_decode(&cut, payload.len());
            let full_blocks = cut_at / 7;
            assert!(
                out.corrected_blocks <= full_blocks,
                "cut at {cut_at}: {} corrections claimed over {} full blocks",
                out.corrected_blocks,
                full_blocks
            );
            // A clean-but-cut stream has no errors in its full blocks.
            assert_eq!(out.corrected_blocks, 0, "cut at {cut_at}");
            assert_eq!(out.truncated_blocks, usize::from(cut_at % 7 != 0));
        }
    }

    #[test]
    fn two_erasures_per_block_decode_exactly() {
        let mut rng = experiment_rng("fec", 4);
        let payload = BitVec::random(&mut rng, 32);
        let coded = fec_encode(&payload);
        // Erase two symbols in every block: still byte-exact.
        for (e1, e2) in [(0usize, 1usize), (2, 5), (3, 6), (4, 5)] {
            let symbols: Vec<FecSymbol> = coded
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    if i % 7 == e1 || i % 7 == e2 {
                        FecSymbol::Erased
                    } else {
                        FecSymbol::from(b)
                    }
                })
                .collect();
            let out = fec_decode_symbols(&symbols, payload.len());
            assert_eq!(out.payload, payload, "erasures at {e1},{e2}");
            assert_eq!(out.corrected_blocks, 0);
            assert_eq!(out.erased_bits, 2 * coded.len() / 7);
        }
    }

    #[test]
    fn erasures_beat_hard_decisions_on_the_same_damage() {
        // Flip two bits per block (defeats hard-decision Hamming) vs
        // erasing the same two positions (decodes exactly).
        let payload = BitVec::from_bits([true, false, true, true]);
        let coded = fec_encode(&payload);
        let flipped = BitVec::from_bits(
            coded
                .iter()
                .enumerate()
                .map(|(i, b)| if i <= 1 { !b } else { b }),
        );
        assert_ne!(fec_decode(&flipped, 4).payload, payload);
        let erased: Vec<FecSymbol> = coded
            .iter()
            .enumerate()
            .map(|(i, b)| {
                if i <= 1 {
                    FecSymbol::Erased
                } else {
                    FecSymbol::from(b)
                }
            })
            .collect();
        assert_eq!(fec_decode_symbols(&erased, 4).payload, payload);
    }

    #[test]
    fn random_sparse_errors_mostly_recovered() {
        // At a few percent of independent errors (the paper's multi-GPC
        // regime) the vast majority of 7-bit blocks carry at most one
        // flip, so FEC cuts the error rate by several times.
        let mut rng = experiment_rng("fec", 2);
        let payload = BitVec::random(&mut rng, 400);
        let coded = fec_encode(&payload);
        for (raw, budget) in [(0.02, 0.015), (0.03, 0.025)] {
            let corrupted =
                BitVec::from_bits(coded.iter().map(|b| if rng.gen_bool(raw) { !b } else { b }));
            let out = fec_decode(&corrupted, payload.len());
            let residual = out.payload.bit_error_rate(&payload);
            assert!(
                residual < budget,
                "residual {residual} over budget {budget} at raw rate {raw}"
            );
            assert!(out.corrected_blocks > 0);
        }
    }
}
