//! A fast, deterministic hasher for hot-path integer-keyed maps.
//!
//! The simulator's inner loops key maps by dense integer ids (packet ids,
//! cache line numbers, block ids). `std`'s default SipHash is
//! DoS-resistant but costs tens of nanoseconds per operation, which is
//! pure overhead here: keys are simulator-generated, never adversarial,
//! and none of the hot maps are iterated (so hash order can never leak
//! into results). [`FastHasher`] is the classic Fx multiply-rotate mix —
//! a few cycles per word, stable across runs and platforms.

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FastHasher`]. Use only for maps whose iteration
/// order is never observed.
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// Multiply-rotate hasher (Fx mix). Deterministic: no per-process seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    hash: u64,
}

/// Knuth's multiplicative constant, ⌊2^64 / φ⌋ forced odd.
const K: u64 = 0x9e37_79b9_7f4a_7c15;

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            let (word, tail) = rest.split_at(8);
            self.mix(u64::from_le_bytes(word.try_into().expect("8 bytes")));
            rest = tail;
        }
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Length tag so "ab" and "ab\0" differ.
            word[7] = rest.len() as u8 | 0x80;
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

// ---------------------------------------------------------------------
// Content addressing for the trial journal / result cache.
// ---------------------------------------------------------------------

/// FNV-1a offset basis, 128-bit parameters.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a prime, 128-bit parameters.
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// FNV-1a over `bytes` at 128-bit width. Deterministic across runs,
/// platforms, and compiler versions — the property a persistent
/// content-addressed cache needs (unlike [`FastHasher`], whose mixing
/// is an internal detail free to change between PRs).
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut h = FNV128_OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(FNV128_PRIME);
    }
    h
}

/// A stable content key over a list of heterogeneous parts (e.g. the
/// serialized GPU config, a program label, and a trial seed).
///
/// Each part is prefixed by its length so `["ab", "c"]` and
/// `["a", "bc"]` hash differently. Returns 32 lowercase hex digits —
/// the journal's record key format.
pub fn content_key(parts: &[&[u8]]) -> String {
    let mut h = FNV128_OFFSET;
    let mut absorb = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u128::from(b);
            h = h.wrapping_mul(FNV128_PRIME);
        }
    };
    for part in parts {
        absorb(&(part.len() as u64).to_le_bytes());
        absorb(part);
    }
    format!("{h:032x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FastHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"covert"), hash_of(&"covert"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Dense ids are the common case; neighbours must not collide.
        let hashes: std::collections::HashSet<u64> = (0u64..10_000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn length_tag_separates_padded_strings() {
        assert_ne!(hash_of(&[0x61u8, 0x62]), hash_of(&[0x61u8, 0x62, 0x00]));
    }

    #[test]
    fn fnv128_matches_reference_vectors() {
        // Published FNV-1a 128-bit test vectors.
        assert_eq!(fnv1a_128(b""), 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d);
        assert_eq!(fnv1a_128(b"a"), 0xd228_cb69_6f1a_8caf_7891_2b70_4e4a_8964);
    }

    #[test]
    fn content_key_is_stable_and_injective_on_part_boundaries() {
        let k = content_key(&[b"config", b"program", &7u64.to_le_bytes()]);
        assert_eq!(k.len(), 32);
        assert_eq!(
            k,
            content_key(&[b"config", b"program", &7u64.to_le_bytes()])
        );
        // Length prefixes keep part boundaries significant.
        assert_ne!(content_key(&[b"ab", b"c"]), content_key(&[b"a", b"bc"]));
        assert_ne!(
            k,
            content_key(&[b"config", b"program", &8u64.to_le_bytes()])
        );
    }

    #[test]
    fn map_round_trip() {
        let mut m: FastHashMap<u64, u64> = FastHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
    }
}
