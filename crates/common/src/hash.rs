//! A fast, deterministic hasher for hot-path integer-keyed maps.
//!
//! The simulator's inner loops key maps by dense integer ids (packet ids,
//! cache line numbers, block ids). `std`'s default SipHash is
//! DoS-resistant but costs tens of nanoseconds per operation, which is
//! pure overhead here: keys are simulator-generated, never adversarial,
//! and none of the hot maps are iterated (so hash order can never leak
//! into results). [`FastHasher`] is the classic Fx multiply-rotate mix —
//! a few cycles per word, stable across runs and platforms.

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FastHasher`]. Use only for maps whose iteration
/// order is never observed.
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// Multiply-rotate hasher (Fx mix). Deterministic: no per-process seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    hash: u64,
}

/// Knuth's multiplicative constant, ⌊2^64 / φ⌋ forced odd.
const K: u64 = 0x9e37_79b9_7f4a_7c15;

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            let (word, tail) = rest.split_at(8);
            self.mix(u64::from_le_bytes(word.try_into().expect("8 bytes")));
            rest = tail;
        }
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Length tag so "ab" and "ab\0" differ.
            word[7] = rest.len() as u8 | 0x80;
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FastHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"covert"), hash_of(&"covert"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Dense ids are the common case; neighbours must not collide.
        let hashes: std::collections::HashSet<u64> = (0u64..10_000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn length_tag_separates_padded_strings() {
        assert_ne!(hash_of(&[0x61u8, 0x62]), hash_of(&[0x61u8, 0x62, 0x00]));
    }

    #[test]
    fn map_round_trip() {
        let mut m: FastHashMap<u64, u64> = FastHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
    }
}
