//! Strongly-typed identifiers for the GPU hierarchy.
//!
//! The paper's attack depends on *exact* placement knowledge (which SM sits
//! in which TPC, which TPC in which GPC), so the rest of the workspace
//! refuses to pass bare `usize` values around: each level of the hierarchy
//! gets its own newtype, and cross-level conversions live in
//! [`crate::config::GpuConfig`] where the topology is known.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(usize);

        impl $name {
            /// Creates an identifier from a raw index.
            #[inline]
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// Returns the raw index of this identifier.
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

id_type!(
    /// A streaming multiprocessor (SM). Volta V100 exposes 80 of these.
    SmId,
    "SM"
);
id_type!(
    /// A texture processing cluster (TPC): a pair of SMs sharing one
    /// injection channel into the on-chip network. V100 exposes 40.
    TpcId,
    "TPC"
);
id_type!(
    /// A graphics processing cluster (GPC): a group of TPCs sharing one
    /// concentrated channel toward the crossbar. V100 exposes 6.
    GpcId,
    "GPC"
);
id_type!(
    /// An L2 cache slice. Table 1 models 48 slices of 96 KiB each.
    SliceId,
    "L2S"
);
id_type!(
    /// A memory controller / memory partition. Table 1 models 24.
    McId,
    "MC"
);
id_type!(
    /// A warp within a thread block (32 threads, SIMT width from Table 1).
    WarpId,
    "W"
);
id_type!(
    /// A thread block within a kernel grid.
    BlockId,
    "B"
);
id_type!(
    /// A kernel launched onto the GPU.
    KernelId,
    "K"
);
id_type!(
    /// A CUDA-stream-like launch queue; kernels in different streams may
    /// run concurrently (the paper's multiprogramming vector, §2.1).
    StreamId,
    "S"
);

impl SmId {
    /// Returns the identifier of the *other* SM in the same TPC, under the
    /// paper's reverse-engineered rule that SMs `2i` and `2i + 1` are
    /// TPC-siblings (§3.2).
    ///
    /// ```
    /// use gnc_common::ids::SmId;
    /// assert_eq!(SmId::new(4).tpc_sibling(), SmId::new(5));
    /// assert_eq!(SmId::new(5).tpc_sibling(), SmId::new(4));
    /// ```
    #[inline]
    pub const fn tpc_sibling(self) -> SmId {
        SmId(self.0 ^ 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_hierarchy_prefixes() {
        assert_eq!(SmId::new(7).to_string(), "SM7");
        assert_eq!(TpcId::new(3).to_string(), "TPC3");
        assert_eq!(GpcId::new(0).to_string(), "GPC0");
        assert_eq!(SliceId::new(47).to_string(), "L2S47");
        assert_eq!(McId::new(23).to_string(), "MC23");
        assert_eq!(WarpId::new(1).to_string(), "W1");
    }

    #[test]
    fn round_trips_through_usize() {
        let sm = SmId::from(12usize);
        assert_eq!(usize::from(sm), 12);
        assert_eq!(sm.index(), 12);
    }

    #[test]
    fn sibling_is_an_involution() {
        for i in 0..80 {
            let sm = SmId::new(i);
            assert_eq!(sm.tpc_sibling().tpc_sibling(), sm);
            assert_ne!(sm.tpc_sibling(), sm);
        }
    }

    #[test]
    fn sibling_pairs_are_even_odd() {
        assert_eq!(SmId::new(0).tpc_sibling(), SmId::new(1));
        assert_eq!(SmId::new(1).tpc_sibling(), SmId::new(0));
        assert_eq!(SmId::new(78).tpc_sibling(), SmId::new(79));
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(SmId::new(1) < SmId::new(2));
        assert_eq!(SmId::new(5), SmId::new(5));
    }

    #[test]
    fn ids_are_usable_as_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(TpcId::new(4), "hello");
        assert_eq!(m[&TpcId::new(4)], "hello");
    }
}
