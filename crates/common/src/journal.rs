//! A crash-safe, append-only trial journal — the sweep engine's
//! write-ahead log and content-addressed result cache in one file.
//!
//! # Format
//!
//! JSON Lines. The first line is a header identifying the file and its
//! format version; every following line is one [`JournalRecord`] —
//! the outcome of one trial, keyed by a stable content hash of
//! `(config, program, seed)` (see [`crate::hash::content_key`]):
//!
//! ```text
//! {"journal":"gnc-sweep","version":1}
//! {"key":"3f…","index":0,"seed":0,"attempts":1,"ok":{…},"err_kind":null,"err_message":null}
//! {"key":"a1…","index":7,"seed":7,"attempts":3,"ok":null,"err_kind":"panic","err_message":"…"}
//! ```
//!
//! # Crash safety
//!
//! Records are appended and flushed one at a time, so the file is
//! always a prefix of complete records plus at most one torn tail line
//! (the write the crash interrupted). The loader tolerates exactly
//! that shape: a final line that does not parse is dropped, a
//! non-final line that does not parse is corruption and reported as
//! [`SimError::Journal`]. [`Journal::resume`] additionally *repairs*
//! the torn tail — truncating the file back to the last complete
//! record — so appends after a resume never concatenate onto a
//! partial line.
//!
//! # Cache semantics
//!
//! Only `ok` records are cache hits: a resumed sweep skips trials whose
//! key has a successful record and re-runs everything else (failures
//! may have been transient — a timeout under load, an injected chaos
//! panic). Because trials are deterministic in their key, replaying the
//! missing ones reproduces byte-identical sweep output.

use crate::error::SimError;
use serde::{Deserialize, Serialize, Value};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, Write};
use std::path::{Path, PathBuf};

/// The header line opening every journal file.
const HEADER: &str = "{\"journal\":\"gnc-sweep\",\"version\":1}";

/// One journaled trial outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Content-hash key of `(config, program, seed)` — the cache key.
    pub key: String,
    /// Position of the trial in the sweep's unit list.
    pub index: u64,
    /// The trial's deterministic seed.
    pub seed: u64,
    /// Attempts the supervisor made (1 = first try succeeded).
    pub attempts: u32,
    /// The trial's result on success (the cached value), else `None`.
    pub ok: Option<Value>,
    /// Failure class on error: `"panic"`, `"timeout"`, or `"cancelled"`.
    pub err_kind: Option<String>,
    /// Human-readable failure detail on error.
    pub err_message: Option<String>,
}

impl JournalRecord {
    /// True when this record carries a cached successful result.
    pub fn is_ok(&self) -> bool {
        self.ok.is_some()
    }
}

/// An open journal, positioned for appending.
#[derive(Debug)]
pub struct Journal {
    writer: BufWriter<File>,
    path: PathBuf,
}

impl Journal {
    /// Creates a fresh journal at `path`, truncating any existing file,
    /// and writes the header.
    ///
    /// # Errors
    ///
    /// [`SimError::Io`] when the file cannot be created or written.
    pub fn create(path: &Path) -> Result<Self, SimError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| SimError::io("create journal directory", parent.display(), &e))?;
            }
        }
        let file =
            File::create(path).map_err(|e| SimError::io("create journal", path.display(), &e))?;
        let mut journal = Self {
            writer: BufWriter::new(file),
            path: path.to_path_buf(),
        };
        journal.write_line(HEADER)?;
        Ok(journal)
    }

    /// Opens an existing journal for appending, returning the complete
    /// records it already holds. A torn tail line (from a crash or
    /// kill) is truncated away so subsequent appends start clean.
    ///
    /// # Errors
    ///
    /// [`SimError::Io`] on filesystem failures, [`SimError::Journal`]
    /// when the file is not a gnc sweep journal or has corruption
    /// before its final line.
    pub fn resume(path: &Path) -> Result<(Self, Vec<JournalRecord>), SimError> {
        let (records, good_bytes) = load_with_offset(path)?;
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| SimError::io("open journal for append", path.display(), &e))?;
        file.set_len(good_bytes)
            .map_err(|e| SimError::io("repair torn journal tail", path.display(), &e))?;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| SimError::io("seek journal", path.display(), &e))?;
        Ok((
            Self {
                writer: BufWriter::new(file),
                path: path.to_path_buf(),
            },
            records,
        ))
    }

    /// Appends one record and flushes it to the OS, so a later crash
    /// can lose at most the record currently being written.
    ///
    /// # Errors
    ///
    /// [`SimError::Io`] when the write or flush fails.
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), SimError> {
        let line = serde_json::to_string(record).map_err(|e| SimError::Journal {
            path: self.path.display().to_string(),
            reason: format!("record failed to serialize: {e}"),
        })?;
        self.write_line(&line)
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_line(&mut self, line: &str) -> Result<(), SimError> {
        let io_err = |e: &std::io::Error| SimError::io("append to journal", self.path.display(), e);
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| io_err(&e))?;
        self.writer.write_all(b"\n").map_err(|e| io_err(&e))?;
        self.writer.flush().map_err(|e| io_err(&e))
    }
}

/// Reads a journal without opening it for writing (e.g. to inspect a
/// finished sweep). Same tolerance as [`Journal::resume`]: a torn final
/// line is dropped.
///
/// # Errors
///
/// [`SimError::Io`] / [`SimError::Journal`] as for [`Journal::resume`].
pub fn load(path: &Path) -> Result<Vec<JournalRecord>, SimError> {
    load_with_offset(path).map(|(records, _)| records)
}

/// Parses the journal, returning its records plus the byte offset of
/// the end of the last complete line (the repair point for a torn tail).
fn load_with_offset(path: &Path) -> Result<(Vec<JournalRecord>, u64), SimError> {
    let corrupt = |reason: String| SimError::Journal {
        path: path.display().to_string(),
        reason,
    };
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| SimError::io("read journal", path.display(), &e))?;

    // Split into lines, remembering whether the file ended mid-line.
    let mut lines: Vec<&str> = text.split('\n').collect();
    let ends_complete = lines.last() == Some(&"");
    if ends_complete {
        lines.pop();
    }
    if lines.is_empty() {
        return Err(corrupt("empty file (missing header)".to_string()));
    }

    let header = lines[0];
    if !(ends_complete || lines.len() > 1) {
        // The header itself is torn: nothing usable.
        return Err(corrupt("torn header line".to_string()));
    }
    let header_value: Value =
        serde_json::from_str(header).map_err(|_| corrupt("header is not JSON".to_string()))?;
    if header_value.get("journal").and_then(|v| match v {
        Value::Str(s) => Some(s.as_str()),
        _ => None,
    }) != Some("gnc-sweep")
    {
        return Err(corrupt("not a gnc sweep journal".to_string()));
    }

    let mut records = Vec::new();
    let mut good_bytes = header.len() as u64 + 1;
    for (i, line) in lines.iter().enumerate().skip(1) {
        let is_last = i == lines.len() - 1;
        let torn_tail = is_last && !ends_complete;
        match serde_json::from_str::<JournalRecord>(line) {
            Ok(record) => {
                if torn_tail {
                    // Parsed, but the newline never made it to disk; the
                    // record may still be missing trailing bytes that
                    // happen to parse. Treat it as torn and drop it.
                    break;
                }
                good_bytes += line.len() as u64 + 1;
                records.push(record);
            }
            Err(e) => {
                if torn_tail {
                    break;
                }
                return Err(corrupt(format!("corrupt record on line {}: {e}", i + 1)));
            }
        }
    }
    Ok((records, good_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: u64, ok: bool) -> JournalRecord {
        JournalRecord {
            key: format!("key-{i:04}"),
            index: i,
            seed: i * 31,
            attempts: 1 + (i % 3) as u32,
            ok: ok.then(|| Value::Map(vec![("errors".into(), Value::UInt(i))])),
            err_kind: (!ok).then(|| "panic".to_string()),
            err_message: (!ok).then(|| format!("trial {i} panicked")),
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("gnc_journal_{name}_{}", std::process::id()))
    }

    #[test]
    fn round_trips_records() {
        let path = temp_path("round_trip");
        let mut j = Journal::create(&path).expect("create");
        let written: Vec<JournalRecord> = (0..10).map(|i| record(i, i % 4 != 3)).collect();
        for r in &written {
            j.append(r).expect("append");
        }
        drop(j);
        let read = load(&path).expect("load");
        assert_eq!(read, written);
        assert_eq!(read.iter().filter(|r| r.is_ok()).count(), 8);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tolerates_and_repairs_torn_tail() {
        let path = temp_path("torn_tail");
        let mut j = Journal::create(&path).expect("create");
        for i in 0..6 {
            j.append(&record(i, true)).expect("append");
        }
        drop(j);
        let full = std::fs::read(&path).expect("read");
        // Truncate at every byte boundary inside the last record.
        let last_line_start = full[..full.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .expect("newline")
            + 1;
        for cut in [last_line_start + 1, last_line_start + 9, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).expect("truncate");
            let read = load(&path).expect("torn tail must be tolerated");
            assert_eq!(read.len(), 5, "cut at {cut}");
            // Resume repairs the tail so appends start on a fresh line.
            let (mut j, resumed) = Journal::resume(&path).expect("resume");
            assert_eq!(resumed.len(), 5);
            j.append(&record(99, true)).expect("append after repair");
            drop(j);
            let read = load(&path).expect("load after repair");
            assert_eq!(read.len(), 6);
            assert_eq!(read[5].index, 99);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_foreign_and_corrupt_files() {
        let path = temp_path("foreign");
        std::fs::write(&path, "{\"some\":\"json\"}\n").expect("write");
        assert!(matches!(
            load(&path),
            Err(SimError::Journal { reason, .. }) if reason.contains("not a gnc sweep journal")
        ));
        std::fs::write(&path, "").expect("write");
        assert!(matches!(load(&path), Err(SimError::Journal { .. })));
        // Corruption before the final line is an error, not a skip.
        let mut j = Journal::create(&path).expect("create");
        j.append(&record(0, true)).expect("append");
        drop(j);
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(b"garbage not json\n");
        let mut j2 = record(1, true);
        j2.key = "k2".into();
        bytes.extend_from_slice(serde_json::to_string(&j2).expect("ser").as_bytes());
        bytes.push(b'\n');
        std::fs::write(&path, &bytes).expect("write");
        assert!(matches!(
            load(&path),
            Err(SimError::Journal { reason, .. }) if reason.contains("corrupt record")
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = temp_path("missing_never_created");
        std::fs::remove_file(&path).ok();
        assert!(matches!(load(&path), Err(SimError::Io { .. })));
    }

    #[test]
    fn header_only_journal_is_empty() {
        let path = temp_path("header_only");
        let j = Journal::create(&path).expect("create");
        drop(j);
        assert!(load(&path).expect("load").is_empty());
        let (_, records) = Journal::resume(&path).expect("resume");
        assert!(records.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
