//! Shared foundations for the GPU NoC covert-channel reproduction.
//!
//! This crate holds the vocabulary types used by every other crate in the
//! workspace:
//!
//! * [`ids`] — strongly-typed identifiers for the GPU hierarchy
//!   (SM / TPC / GPC / L2 slice / memory controller / warp / block).
//! * [`config`] — the simulated GPU configuration, with defaults matching
//!   Table 1 of the paper (a Volta-V100-like part) plus presets for the
//!   other architectures the paper discusses.
//! * [`stats`] — small online statistics and histogram helpers used by the
//!   instrumentation and the experiment harness.
//! * [`bits`] — payload/bit-vector utilities for the covert channel
//!   (packing, unpacking, bit-error-rate computation).
//! * [`fec`] — Hamming(7,4) forward error correction, so fast-but-noisy
//!   channel operating points still deliver byte-exact payloads.
//! * [`fault`] — deterministic, seeded fault injection consumed by the
//!   NoC muxes, the measurement path, the clock domain, and the L2
//!   slices to study the channel under realistic interference.
//! * [`rng`] — deterministic random number generation so experiments are
//!   reproducible run-to-run.
//! * [`supervise`] — panic-isolated, watchdogged trial execution for the
//!   experiment harness: per-trial timeouts, seeded retries, and
//!   cooperative cancellation over [`par`]'s work-stealing pool.
//! * [`journal`] — the crash-safe append-only trial journal that doubles
//!   as a content-addressed result cache for `sweep --resume`.
//! * [`telemetry`] — the zero-overhead-when-off observability seam: the
//!   [`telemetry::Probe`] hook trait the engine is generic over, the
//!   recording [`telemetry::Collector`], and its report/trace exporters.
//!
//! # Example
//!
//! ```
//! use gnc_common::config::GpuConfig;
//! use gnc_common::ids::SmId;
//!
//! let cfg = GpuConfig::volta_v100();
//! assert_eq!(cfg.num_sms(), 80);
//! let sm = SmId::new(3);
//! assert_eq!(cfg.tpc_of_sm(sm).index(), 1);
//! ```

pub mod alloc_audit;
pub mod bits;
pub mod config;
pub mod error;
pub mod fastdiv;
pub mod fault;
pub mod fec;
pub mod hash;
pub mod ids;
pub mod journal;
pub mod par;
pub mod rng;
pub mod stats;
pub mod supervise;
pub mod telemetry;

/// A simulation timestamp measured in core clock cycles.
///
/// The whole simulator is synchronous to the 1.2 GHz core clock from
/// Table 1 of the paper; converting cycles to seconds is the harness's
/// job (see [`config::GpuConfig::core_clock_hz`]).
pub type Cycle = u64;

pub use config::GpuConfig;
pub use error::{ConfigError, Result, SimError};
pub use fault::{FaultConfig, FaultPlan, FaultStats};
pub use telemetry::{Collector, NullProbe, Probe, TelemetryReport};
