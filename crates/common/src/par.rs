//! A dependency-free work-stealing trial pool for embarrassingly-parallel
//! sweeps.
//!
//! Every figure in the paper is a sweep of *independent* GPU instances:
//! each trial builds its own [`crate::GpuConfig`]-sized simulator from a
//! per-trial derived seed, runs it to completion, and reports a result.
//! [`parallel_map`] runs those trials across a scoped thread pool while
//! guaranteeing that the output `Vec` is in *input order* — so sweep JSON
//! is byte-identical whether the pool has 1 worker or 64.
//!
//! The scheduler is a classic chunked work-stealing deque, flattened into
//! one atomic word per worker: each worker owns a `[lo, hi)` range of
//! trial indices packed into an `AtomicU64`. Owners pop from the front
//! with a CAS; idle workers steal the upper half of the *largest*
//! remaining victim range with a CAS. No locks, no `unsafe`, no external
//! crates — `std::thread::scope` supplies the lifetime discipline.
//!
//! The global worker count defaults to [`std::thread::available_parallelism`]
//! and can be pinned (e.g. from a `--jobs N` CLI flag) with [`set_jobs`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::thread;

/// A panic captured from one item of a [`parallel_map_catch`] run: the
/// original unwind payload, preserved so callers can re-raise it
/// ([`std::panic::resume_unwind`]) or classify it (downcast).
pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Best-effort stringification of a panic payload (`&str` and `String`
/// payloads — i.e. everything `panic!` produces — come through verbatim).
pub fn payload_message(payload: &PanicPayload) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Global worker-count override: 0 means "use available parallelism".
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Pin the number of worker threads used by [`parallel_map`].
///
/// `0` restores the default (one worker per available core). Typically
/// wired to a `--jobs N` command-line flag.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The number of worker threads [`parallel_map`] will use.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Pack a `[lo, hi)` index range into one atomic word.
fn pack(lo: usize, hi: usize) -> u64 {
    ((lo as u64) << 32) | hi as u64
}

/// Unpack an atomic word into a `[lo, hi)` index range.
fn unpack(word: u64) -> (usize, usize) {
    ((word >> 32) as usize, (word & 0xffff_ffff) as usize)
}

/// Map `f` over `items` on a scoped work-stealing pool, returning results
/// in input order.
///
/// Each element is processed exactly once; the caller's `f` sees items in
/// an arbitrary interleaving across workers, but the returned `Vec` is
/// always `[f(&items[0]), f(&items[1]), ...]`. With `jobs() == 1` (or one
/// item) the map runs inline on the calling thread.
///
/// # Panics
///
/// If `f` panics on any item, the panic is re-raised on the calling
/// thread with its original payload — but only after every *other* item
/// has been processed, so a poisoned trial never aborts its siblings
/// mid-flight. Callers who want the completed results instead of a
/// propagated panic use [`parallel_map_catch`].
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut first_panic = None;
    let out: Vec<R> = parallel_map_catch(items, f)
        .into_iter()
        .filter_map(|r| match r {
            Ok(v) => Some(v),
            Err(payload) => {
                first_panic.get_or_insert(payload);
                None
            }
        })
        .collect();
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    out
}

/// [`parallel_map`], but each item's panic is captured instead of
/// propagated: the output slot for a panicking item holds the unwind
/// payload, and every other item's result survives.
///
/// This is the error-carrying primitive the supervised trial runner
/// ([`crate::supervise`]) builds on: one pathological trial degrades to
/// an `Err` in the result vector rather than poisoning the pool.
pub fn parallel_map_catch<T, R, F>(items: &[T], f: F) -> Vec<Result<R, PanicPayload>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs().min(n.max(1));
    let run_one = |item: &T| catch_unwind(AssertUnwindSafe(|| f(item)));
    if workers <= 1 || n <= 1 {
        return items.iter().map(run_one).collect();
    }

    // Split [0, n) into one contiguous range per worker.
    let ranges: Vec<AtomicU64> = (0..workers)
        .map(|w| {
            let lo = w * n / workers;
            let hi = (w + 1) * n / workers;
            AtomicU64::new(pack(lo, hi))
        })
        .collect();

    let mut slots: Vec<Option<Result<R, PanicPayload>>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);

    let chunks = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                let ranges = &ranges;
                let run_one = &run_one;
                scope.spawn(move || worker_loop(me, ranges, items, run_one))
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
    });
    // A worker thread that itself unwound (join `Err`) contributes no
    // chunk. Item panics are caught per-item inside the worker, so that
    // only happens for panics in the scheduler scaffolding; the other
    // workers' results are still intact in their own chunks, and only
    // the indices the dead worker had claimed stay `None` below.
    for chunk in chunks.into_iter().flatten() {
        for (idx, result) in chunk {
            slots[idx] = Some(result);
        }
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                Err(Box::new("parallel_map worker died before reporting this item") as PanicPayload)
            })
        })
        .collect()
}

/// One worker: drain the owned range, then steal until all ranges are dry.
fn worker_loop<T, R, F>(
    me: usize,
    ranges: &[AtomicU64],
    items: &[T],
    run_one: &F,
) -> Vec<(usize, Result<R, PanicPayload>)>
where
    F: Fn(&T) -> Result<R, PanicPayload>,
{
    let mut out = Vec::new();
    loop {
        // Pop from the front of our own range.
        while let Some(idx) = pop_front(&ranges[me]) {
            out.push((idx, run_one(&items[idx])));
        }
        // Own range dry: steal the upper half of the largest victim range.
        if !steal_into(me, ranges) {
            return out;
        }
    }
}

/// CAS-pop the lowest index of a range; `None` if the range is empty.
fn pop_front(range: &AtomicU64) -> Option<usize> {
    let mut word = range.load(Ordering::Acquire);
    loop {
        let (lo, hi) = unpack(word);
        if lo >= hi {
            return None;
        }
        match range.compare_exchange_weak(
            word,
            pack(lo + 1, hi),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return Some(lo),
            Err(cur) => word = cur,
        }
    }
}

/// Try to move work into `me`'s (empty) range from the fullest victim.
/// Returns `false` when no worker has stealable items left.
fn steal_into(me: usize, ranges: &[AtomicU64]) -> bool {
    loop {
        // Find the victim with the most remaining work.
        let mut best: Option<(usize, u64, usize, usize)> = None;
        for (v, range) in ranges.iter().enumerate() {
            if v == me {
                continue;
            }
            let word = range.load(Ordering::Acquire);
            let (lo, hi) = unpack(word);
            if hi > lo && best.is_none_or(|(_, _, blo, bhi)| hi - lo > bhi - blo) {
                best = Some((v, word, lo, hi));
            }
        }
        let Some((victim, word, lo, hi)) = best else {
            return false;
        };
        // Take the upper half of the victim's range.
        let take = (hi - lo).div_ceil(2);
        let split = hi - take;
        if ranges[victim]
            .compare_exchange(word, pack(lo, split), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            // Our own range is empty and nobody steals from an empty
            // range, so a plain store is safe here.
            ranges[me].store(pack(split, hi), Ordering::Release);
            return true;
        }
        // Victim range changed under us; rescan.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(&items, |x| x * 3 + 1);
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn visits_every_item_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..1000).collect();
        parallel_map(&items, |&i| hits[i].fetch_add(1, Ordering::Relaxed));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn output_identical_across_job_counts() {
        let items: Vec<u64> = (0..100).collect();
        set_jobs(1);
        let serial = parallel_map(&items, |x| x.wrapping_mul(0x9e37_79b9));
        set_jobs(8);
        let parallel = parallel_map(&items, |x| x.wrapping_mul(0x9e37_79b9));
        set_jobs(0);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |x| *x).is_empty());
        assert_eq!(parallel_map(&[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn pack_unpack_round_trip() {
        for (lo, hi) in [(0, 0), (3, 17), (100, 4_000_000)] {
            assert_eq!(unpack(pack(lo, hi)), (lo, hi));
        }
    }

    #[test]
    fn catch_isolates_panicking_items() {
        let items: Vec<u32> = (0..64).collect();
        set_jobs(4);
        let out = parallel_map_catch(&items, |&x| {
            assert!(x % 13 != 5, "poisoned item {x}");
            x * 2
        });
        set_jobs(0);
        assert_eq!(out.len(), items.len());
        for (i, r) in out.iter().enumerate() {
            if i % 13 == 5 {
                let payload = r.as_ref().expect_err("item should have panicked");
                assert!(payload_message(payload).contains("poisoned item"));
            } else {
                assert_eq!(
                    *r.as_ref().expect("item should have succeeded"),
                    i as u32 * 2
                );
            }
        }
    }

    #[test]
    fn map_reraises_after_finishing_siblings() {
        let done: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..32).collect();
        set_jobs(4);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&items, |&i| {
                done[i].fetch_add(1, Ordering::Relaxed);
                assert!(i != 7, "boom on 7");
            })
        }));
        set_jobs(0);
        let payload = caught.expect_err("panic must propagate");
        assert!(payload_message(&payload).contains("boom on 7"));
        // Every sibling still ran exactly once despite the poisoned item.
        for (i, d) in done.iter().enumerate() {
            assert_eq!(d.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn payload_message_covers_common_payloads() {
        let s: PanicPayload = Box::new("static str");
        assert_eq!(payload_message(&s), "static str");
        let owned: PanicPayload = Box::new(String::from("owned"));
        assert_eq!(payload_message(&owned), "owned");
        let other: PanicPayload = Box::new(17u32);
        assert_eq!(payload_message(&other), "non-string panic payload");
    }
}
