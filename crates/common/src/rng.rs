//! Deterministic random number generation.
//!
//! Every stochastic element of the reproduction (trial selection in the
//! reverse-engineering sweeps, payload generation, clock skew draws) is
//! seeded through this module so that experiment outputs are bit-for-bit
//! reproducible across runs and machines.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// The deterministic generator used throughout the workspace.
pub type DetRng = ChaCha12Rng;

/// Creates a deterministic generator for a named experiment and trial.
///
/// Different `(label, trial)` pairs produce independent streams; the same
/// pair always produces the same stream.
///
/// ```
/// use gnc_common::rng::experiment_rng;
/// use rand::Rng;
///
/// let mut a = experiment_rng("fig10", 0);
/// let mut b = experiment_rng("fig10", 0);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn experiment_rng(label: &str, trial: u64) -> DetRng {
    // FNV-1a over the label, mixed with the trial index. Cheap, stable,
    // and collision-resistant enough for seeding purposes.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut seed = [0u8; 32];
    seed[..8].copy_from_slice(&hash.to_le_bytes());
    seed[8..16].copy_from_slice(&trial.to_le_bytes());
    seed[16..24].copy_from_slice(&hash.rotate_left(32).to_le_bytes());
    seed[24..32].copy_from_slice(&(trial ^ 0x9e37_79b9_7f4a_7c15).to_le_bytes());
    DetRng::from_seed(seed)
}

/// Draws a uniformly random skew in `[-max, max]` cycles.
pub fn symmetric_skew(rng: &mut impl Rng, max: u32) -> i64 {
    if max == 0 {
        return 0;
    }
    rng.gen_range(-(i64::from(max))..=i64::from(max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = experiment_rng("fig02", 7);
        let mut b = experiment_rng("fig02", 7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u32>(), b.gen::<u32>());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = experiment_rng("fig02", 0);
        let mut b = experiment_rng("fig03", 0);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_trials_diverge() {
        let mut a = experiment_rng("fig03", 0);
        let mut b = experiment_rng("fig03", 1);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn skew_respects_bounds() {
        let mut rng = experiment_rng("skew", 0);
        for _ in 0..1000 {
            let s = symmetric_skew(&mut rng, 5);
            assert!((-5..=5).contains(&s));
        }
        assert_eq!(symmetric_skew(&mut rng, 0), 0);
    }

    #[test]
    fn skew_covers_both_signs() {
        let mut rng = experiment_rng("skew-signs", 0);
        let draws: Vec<i64> = (0..200).map(|_| symmetric_skew(&mut rng, 3)).collect();
        assert!(draws.iter().any(|&s| s > 0));
        assert!(draws.iter().any(|&s| s < 0));
    }
}
