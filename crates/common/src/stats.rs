//! Online statistics and histogram helpers.
//!
//! The experiment harness summarises large numbers of latency samples and
//! execution times; these helpers provide numerically stable mean/variance
//! (Welford's algorithm), percentiles, and simple fixed-width histograms
//! without pulling in a statistics dependency.

use serde::{Deserialize, Serialize};

/// Numerically stable online mean / variance / min / max accumulator.
///
/// ```
/// use gnc_common::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n); 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample variance (divides by n − 1); 0 when fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Smallest sample; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `samples` using linear
/// interpolation between order statistics. Returns `None` for an empty
/// slice.
///
/// The input does not need to be sorted; a sorted copy is made internally.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// The median of `samples`; `None` when empty.
pub fn median(samples: &[f64]) -> Option<f64> {
    quantile(samples, 0.5)
}

/// A fixed-width histogram over `[lo, hi)` with values outside the range
/// clamped into the first / last bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
        }
    }

    /// Adds one sample, clamping out-of-range values into the edge bins.
    pub fn push(&mut self, x: f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = ((x - self.lo) / width).floor();
        let idx = idx.clamp(0.0, (self.bins.len() - 1) as f64) as usize;
        self.bins[idx] += 1;
    }

    /// The bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// The inclusive lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + width * i as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_benign() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn welford_matches_naive() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let s: OnlineStats = xs.iter().copied().collect();
        let naive_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let naive_var = xs.iter().map(|x| (x - naive_mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - naive_mean).abs() < 1e-10);
        assert!((s.population_variance() - naive_var).abs() < 1e-10);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.7).collect();
        let ys: Vec<f64> = (0..30).map(|i| 100.0 - i as f64).collect();
        let mut merged: OnlineStats = xs.iter().copied().collect();
        let other: OnlineStats = ys.iter().copied().collect();
        merged.merge(&other);
        let seq: OnlineStats = xs.iter().chain(ys.iter()).copied().collect();
        assert_eq!(merged.count(), seq.count());
        assert!((merged.mean() - seq.mean()).abs() < 1e-10);
        assert!((merged.population_variance() - seq.population_variance()).abs() < 1e-9);
        assert_eq!(merged.min(), seq.min());
        assert_eq!(merged.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(5.0));
        assert_eq!(median(&xs), Some(3.0));
        assert_eq!(quantile(&xs, 0.25), Some(2.0));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn median_interpolates_even_counts() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
    }

    #[test]
    fn quantile_handles_unsorted_input() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median(&xs), Some(3.0));
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.push(-1.0); // clamps to bin 0
        h.push(0.5);
        h.push(3.0);
        h.push(9.99);
        h.push(42.0); // clamps to last bin
        assert_eq!(h.bins(), &[2, 1, 0, 0, 2]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.bin_lo(0), 0.0);
        assert_eq!(h.bin_lo(4), 8.0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
