//! Supervised trial execution: panic isolation, watchdog deadlines,
//! bounded deterministic retries, and cooperative cancellation.
//!
//! [`crate::par::parallel_map`] gives the sweep harness throughput; this
//! module gives it *survivability*. A multi-hour measurement campaign
//! sees failures a quick benchmark never does — a pathological
//! configuration that panics deep in the simulator, a trial that
//! wanders into a quasi-livelock, an operator pressing Ctrl-C two hours
//! in — and none of them should cost the trials that already finished.
//!
//! [`run_supervised`] wraps every trial in three layers:
//!
//! 1. **Panic isolation** — each attempt runs under
//!    [`std::panic::catch_unwind`]; a panicking trial becomes
//!    [`SimError::TrialPanicked`] in its own result slot while its
//!    siblings keep running.
//! 2. **Watchdog deadline** — an optional per-attempt wall-clock budget.
//!    The watchdog is *cooperative*: long-running simulator loops call
//!    [`checkpoint`] (the GPU cycle loop does, every few thousand
//!    iterations), which unwinds the trial with a private signal payload
//!    once the deadline passes. The supervisor catches the unwind and
//!    records [`SimError::TrialTimedOut`].
//! 3. **Bounded retry** — panicked and timed-out attempts are retried up
//!    to `retries` extra times with a deterministic exponential backoff.
//!    Combined with [`HarnessChaos`] (whose panic/stall draws are pure in
//!    `(seed, index, attempt)`), chaos-injected failures re-roll
//!    deterministically, so a sweep with retries converges to the same
//!    result set on every run.
//!
//! Cancellation uses the same unwind path: a [`CancelToken`] flipped by
//! a Ctrl-C handler makes pending trials return
//! [`SimError::TrialCancelled`] immediately and running trials unwind at
//! their next [`checkpoint`], after which the caller can flush journals
//! and emit partial results.

use crate::error::SimError;
use crate::fault::HarnessChaos;
use crate::par::{self, payload_message, PanicPayload};
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

/// A shared cancellation flag: clone it into a signal handler or another
/// thread, and every supervised trial observes the flip — pending trials
/// before they start, running trials at their next [`checkpoint`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent, lock-free, and async-signal
    /// safe (a single atomic store).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Supervision knobs for one [`run_supervised`] sweep.
#[derive(Debug, Clone, Default)]
pub struct SuperviseOptions {
    /// Per-attempt wall-clock deadline. `None` disarms the watchdog.
    pub timeout: Option<Duration>,
    /// Extra attempts after the first for panicked/timed-out trials.
    pub retries: u32,
    /// Base backoff before retry `k` (scaled by `2^(k-1)`, capped at
    /// 1 s). Zero (the default) retries immediately — right for a
    /// deterministic simulator, where backoff only models the service
    /// loop's politeness.
    pub backoff: Duration,
    /// Harness-level fault injection (panic/stall draws per attempt).
    pub chaos: HarnessChaos,
    /// Cooperative cancellation flag shared with the caller.
    pub cancel: CancelToken,
}

/// The supervised result of one trial.
#[derive(Debug)]
pub struct TrialOutcome<R> {
    /// Position of the trial in the input slice.
    pub index: usize,
    /// The trial's deterministic seed (from the caller's `seed_of`).
    pub seed: u64,
    /// Attempts actually made (1 = first try succeeded).
    pub attempts: u32,
    /// Errors from attempts that failed but were retried successfully —
    /// the evidence behind "recovered after N retries" accounting.
    pub setbacks: Vec<SimError>,
    /// The final verdict: the trial's value, or the last attempt's error.
    pub result: Result<R, SimError>,
}

impl<R> TrialOutcome<R> {
    /// True when the trial delivered a value.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

// ---------------------------------------------------------------------
// The thread-local watchdog and its cooperative checkpoints.
// ---------------------------------------------------------------------

/// Watchdog state armed for the supervised trial running on this thread.
struct Armed {
    deadline: Option<Instant>,
    timeout_ms: u64,
    cancel: CancelToken,
}

thread_local! {
    static WATCHDOG: RefCell<Option<Armed>> = const { RefCell::new(None) };
    /// Set while a supervised trial body runs: tells the quiet panic
    /// hook that this thread's unwind will be caught and recorded, so
    /// the default "thread panicked" banner would only be noise.
    static IN_SUPERVISED_TRIAL: Cell<bool> = const { Cell::new(false) };
}

/// Unwind payload for a watchdog expiry (private to the supervisor).
struct TimeoutSignal {
    timeout_ms: u64,
}

/// Unwind payload for a cooperative cancellation (private to the
/// supervisor).
struct CancelSignal;

/// Cooperative watchdog/cancellation check.
///
/// Long-running simulation loops call this periodically (the GPU cycle
/// loop does every few thousand iterations). Outside a supervised trial
/// it is a thread-local read and a branch — effectively free. Inside
/// one, it unwinds the trial when the watchdog deadline has passed or
/// the sweep's [`CancelToken`] has flipped; [`run_supervised`] catches
/// the unwind and records the structured error.
#[inline]
pub fn checkpoint() {
    let fate = WATCHDOG.with(|w| {
        let slot = w.borrow();
        let armed = slot.as_ref()?;
        if armed.cancel.is_cancelled() {
            return Some(Err(CancelSignal));
        }
        if let Some(deadline) = armed.deadline {
            if Instant::now() >= deadline {
                return Some(Ok(TimeoutSignal {
                    timeout_ms: armed.timeout_ms,
                }));
            }
        }
        None
    });
    match fate {
        None => {}
        Some(Ok(timeout)) => std::panic::panic_any(timeout),
        Some(Err(cancel)) => std::panic::panic_any(cancel),
    }
}

/// Installs (once, process-wide) a panic hook that stays silent for
/// panics the supervisor is about to catch and keeps the previous
/// behavior for everything else.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_SUPERVISED_TRIAL.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Classifies a caught unwind payload into the supervision error
/// taxonomy.
fn classify(payload: PanicPayload, index: usize, seed: u64) -> SimError {
    let payload = match payload.downcast::<TimeoutSignal>() {
        Ok(t) => {
            return SimError::TrialTimedOut {
                index,
                seed,
                timeout_ms: t.timeout_ms,
            }
        }
        Err(p) => p,
    };
    if payload.is::<CancelSignal>() {
        return SimError::TrialCancelled { index, seed };
    }
    SimError::TrialPanicked {
        index,
        seed,
        payload: payload_message(&payload),
    }
}

/// Spin at the cooperative checkpoints until the watchdog (or
/// cancellation) unwinds this trial — the body of an injected stall.
fn stall_until_watchdog() {
    loop {
        checkpoint();
        std::thread::sleep(Duration::from_micros(500));
    }
}

/// Deterministic backoff before retry attempt `attempt` (1-based).
fn backoff_for(base: Duration, attempt: u32) -> Duration {
    if base.is_zero() {
        return Duration::ZERO;
    }
    let scaled = base.saturating_mul(1u32 << (attempt - 1).min(6));
    scaled.min(Duration::from_secs(1))
}

/// Runs `f` over `items` on the work-stealing pool with panic isolation,
/// watchdogs, chaos injection, and bounded retries per trial.
///
/// Results come back in input order, one [`TrialOutcome`] per item, and
/// every item gets an outcome — a sweep under supervision never aborts,
/// it degrades. `seed_of` names each trial's deterministic seed; it only
/// labels outcomes (and feeds the chaos draws via the trial index), the
/// trial body is still responsible for using the seed itself.
pub fn run_supervised<T, R, F, S>(
    items: &[T],
    opts: &SuperviseOptions,
    seed_of: S,
    f: F,
) -> Vec<TrialOutcome<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    S: Fn(&T) -> u64 + Sync,
{
    install_quiet_hook();
    let indexed: Vec<usize> = (0..items.len()).collect();
    par::parallel_map(&indexed, |&index| {
        let item = &items[index];
        let seed = seed_of(item);
        let mut setbacks = Vec::new();
        let mut attempts = 0u32;
        loop {
            if opts.cancel.is_cancelled() {
                return TrialOutcome {
                    index,
                    seed,
                    attempts,
                    setbacks,
                    result: Err(SimError::TrialCancelled { index, seed }),
                };
            }
            let attempt = attempts;
            attempts += 1;
            let caught = supervised_attempt(item, index, seed, attempt, opts, &f);
            match caught {
                Ok(value) => {
                    return TrialOutcome {
                        index,
                        seed,
                        attempts,
                        setbacks,
                        result: Ok(value),
                    }
                }
                Err(err) => {
                    let retryable = !matches!(err, SimError::TrialCancelled { .. });
                    if retryable && attempt < opts.retries {
                        setbacks.push(err);
                        let pause = backoff_for(opts.backoff, attempt + 1);
                        if !pause.is_zero() {
                            std::thread::sleep(pause);
                        }
                        continue;
                    }
                    return TrialOutcome {
                        index,
                        seed,
                        attempts,
                        setbacks,
                        result: Err(err),
                    };
                }
            }
        }
    })
}

/// One armed, caught attempt of one trial.
fn supervised_attempt<T, R, F>(
    item: &T,
    index: usize,
    seed: u64,
    attempt: u32,
    opts: &SuperviseOptions,
    f: &F,
) -> Result<R, SimError>
where
    F: Fn(&T) -> R,
{
    WATCHDOG.with(|w| {
        *w.borrow_mut() = Some(Armed {
            deadline: opts.timeout.map(|t| Instant::now() + t),
            timeout_ms: opts.timeout.map_or(0, |t| t.as_millis() as u64),
            cancel: opts.cancel.clone(),
        });
    });
    IN_SUPERVISED_TRIAL.with(|q| q.set(true));
    let caught = catch_unwind(AssertUnwindSafe(|| {
        if opts.chaos.panics(index as u64, attempt) {
            panic!("harness chaos: injected panic (trial #{index}, attempt {attempt})");
        }
        if opts.chaos.stalls(index as u64, attempt) {
            stall_until_watchdog();
        }
        f(item)
    }));
    IN_SUPERVISED_TRIAL.with(|q| q.set(false));
    WATCHDOG.with(|w| {
        *w.borrow_mut() = None;
    });
    caught.map_err(|payload| classify(payload, index, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> SuperviseOptions {
        SuperviseOptions::default()
    }

    #[test]
    fn all_trials_succeed_without_supervision_events() {
        let items: Vec<u64> = (0..20).collect();
        let out = run_supervised(&items, &opts(), |&s| s, |&x| x * 2);
        assert_eq!(out.len(), 20);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.index, i);
            assert_eq!(o.seed, i as u64);
            assert_eq!(o.attempts, 1);
            assert!(o.setbacks.is_empty());
            assert_eq!(*o.result.as_ref().expect("ok"), i as u64 * 2);
        }
    }

    #[test]
    fn panicking_trial_is_isolated() {
        let items: Vec<u64> = (0..16).collect();
        let out = run_supervised(
            &items,
            &opts(),
            |&s| s,
            |&x| {
                assert!(x != 5, "trial five exploded");
                x
            },
        );
        for o in &out {
            if o.index == 5 {
                match &o.result {
                    Err(SimError::TrialPanicked {
                        index,
                        seed,
                        payload,
                    }) => {
                        assert_eq!((*index, *seed), (5, 5));
                        assert!(payload.contains("exploded"), "{payload}");
                    }
                    other => panic!("expected TrialPanicked, got {other:?}"),
                }
            } else {
                assert!(o.is_ok(), "trial {} should have survived", o.index);
            }
        }
    }

    #[test]
    fn watchdog_times_out_a_stalled_trial() {
        let items = [0u64, 1, 2];
        let o = SuperviseOptions {
            timeout: Some(Duration::from_millis(50)),
            ..opts()
        };
        let out = run_supervised(
            &items,
            &o,
            |&s| s,
            |&x| {
                if x == 1 {
                    // A quasi-livelock that still hits cooperative
                    // checkpoints, like a pathological simulator config.
                    stall_until_watchdog();
                }
                x
            },
        );
        assert!(out[0].is_ok() && out[2].is_ok());
        match &out[1].result {
            Err(SimError::TrialTimedOut { timeout_ms, .. }) => assert_eq!(*timeout_ms, 50),
            other => panic!("expected TrialTimedOut, got {other:?}"),
        }
    }

    #[test]
    fn chaos_panics_recover_within_retry_budget() {
        let chaos = HarnessChaos {
            seed: 11,
            trial_panic_rate: 0.5,
            trial_stall_rate: 0.0,
        };
        let items: Vec<u64> = (0..48).collect();
        let o = SuperviseOptions {
            retries: 8,
            chaos,
            ..opts()
        };
        let out = run_supervised(&items, &o, |&s| s, |&x| x + 100);
        let mut recovered = 0;
        for o in &out {
            assert!(
                o.is_ok(),
                "trial {} should converge: {:?}",
                o.index,
                o.result
            );
            assert_eq!(o.setbacks.len() as u32, o.attempts - 1);
            if o.attempts > 1 {
                recovered += 1;
                assert!(matches!(o.setbacks[0], SimError::TrialPanicked { .. }));
            }
        }
        assert!(recovered > 0, "p=0.5 over 48 trials must hit some");
        // Determinism: the same options reproduce the same attempt counts.
        let again = run_supervised(&items, &o, |&s| s, |&x| x + 100);
        let a: Vec<u32> = out.iter().map(|o| o.attempts).collect();
        let b: Vec<u32> = again.iter().map(|o| o.attempts).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn chaos_stall_degrades_to_timeout_without_retries() {
        let chaos = HarnessChaos {
            seed: 3,
            trial_panic_rate: 0.0,
            trial_stall_rate: 1.0,
        };
        let items = [0u64, 1];
        let o = SuperviseOptions {
            timeout: Some(Duration::from_millis(40)),
            chaos,
            ..opts()
        };
        let out = run_supervised(&items, &o, |&s| s, |&x| x);
        for o in &out {
            assert!(
                matches!(o.result, Err(SimError::TrialTimedOut { .. })),
                "{:?}",
                o.result
            );
            assert_eq!(o.attempts, 1);
        }
    }

    #[test]
    fn cancellation_stops_pending_and_running_trials() {
        let cancel = CancelToken::new();
        let o = SuperviseOptions {
            cancel: cancel.clone(),
            ..opts()
        };
        let items: Vec<u64> = (0..64).collect();
        crate::par::set_jobs(2);
        let out = run_supervised(
            &items,
            &o,
            |&s| s,
            |&x| {
                if x == 0 {
                    // First trial pulls the plug on the whole sweep.
                    o.cancel.cancel();
                }
                x
            },
        );
        crate::par::set_jobs(0);
        let cancelled = out
            .iter()
            .filter(|o| matches!(o.result, Err(SimError::TrialCancelled { .. })))
            .count();
        assert!(cancelled > 0, "later trials must observe the cancel");
        assert!(cancel.is_cancelled());
        // Cancelled trials are not retried.
        for o in &out {
            if matches!(o.result, Err(SimError::TrialCancelled { .. })) {
                assert!(o.attempts <= 1);
            }
        }
    }

    #[test]
    fn checkpoint_is_inert_outside_supervision() {
        // Must not panic and must cost ~nothing when no watchdog is armed.
        for _ in 0..1000 {
            checkpoint();
        }
    }

    #[test]
    fn backoff_is_bounded_and_deterministic() {
        assert_eq!(backoff_for(Duration::ZERO, 3), Duration::ZERO);
        let base = Duration::from_millis(10);
        assert_eq!(backoff_for(base, 1), Duration::from_millis(10));
        assert_eq!(backoff_for(base, 2), Duration::from_millis(20));
        assert_eq!(backoff_for(base, 3), Duration::from_millis(40));
        assert!(backoff_for(Duration::from_millis(900), 9) <= Duration::from_secs(1));
    }
}
