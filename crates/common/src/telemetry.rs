//! Zero-overhead-when-off telemetry for the simulator.
//!
//! The covert channel is *read off* microarchitectural state — who held
//! which mux slot, when — so debugging the channel (or calibrating the
//! noise models) needs the same observability a production traffic
//! generator would have: per-component counters, windowed time series,
//! and an event trace. This module provides them behind a statically
//! erased seam:
//!
//! * [`Probe`] — the hook trait. Every method has an inlined no-op
//!   default body, and the associated `ENABLED` constant lets hot paths
//!   skip argument construction entirely (`if P::ENABLED { .. }`).
//! * [`NullProbe`] — the zero-sized off switch. Monomorphising the
//!   engine against it produces the exact same machine code as having no
//!   telemetry at all, which is what pins the bit-identity and overhead
//!   gates.
//! * [`Collector`] — the on switch: counts mux grants/denials per input,
//!   queue-depth high-water marks, crossbar port flits, L2 hits/misses
//!   and MSHR occupancy, DRAM bank busy time, per-SM stall reasons, an
//!   SM×slice traffic matrix, windowed time series, and a bounded
//!   packet-forward trace exportable as JSONL or Chrome `trace_event`
//!   JSON.
//!
//! Components report themselves by a stable [`Component`] label passed
//! by the caller (the fabrics know which mux is which), so the muxes
//! themselves stay label-free.

use crate::{Cycle, GpuConfig};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;

/// Which kind of shared NoC component an event happened at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum ComponentKind {
    /// 2:1 SM→TPC request mux.
    TpcMux,
    /// 7:1 TPC→GPC request mux (with speedup).
    GpcReqMux,
    /// One crossbar output port (GPCs → one L2 slice).
    XbarOut,
    /// Per-GPC reply channel (L2 slices → GPC).
    GpcReplyMux,
    /// Per-SM ejection port on the reply subnet.
    SmEjector,
}

impl ComponentKind {
    /// Short stable label for reports and traces.
    pub fn label(self) -> &'static str {
        match self {
            ComponentKind::TpcMux => "tpc_mux",
            ComponentKind::GpcReqMux => "gpc_req_mux",
            ComponentKind::XbarOut => "xbar_out",
            ComponentKind::GpcReplyMux => "gpc_reply_mux",
            ComponentKind::SmEjector => "sm_ejector",
        }
    }
}

/// A stable identity for one shared component instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct Component {
    /// The component class.
    pub kind: ComponentKind,
    /// Instance index within the class (TPC id, GPC id, slice id, SM id).
    pub index: usize,
}

impl Component {
    /// The TPC request mux of TPC `t`.
    pub fn tpc_mux(t: usize) -> Self {
        Self {
            kind: ComponentKind::TpcMux,
            index: t,
        }
    }

    /// The GPC request mux of GPC `g`.
    pub fn gpc_req_mux(g: usize) -> Self {
        Self {
            kind: ComponentKind::GpcReqMux,
            index: g,
        }
    }

    /// The crossbar output port feeding L2 slice `s`.
    pub fn xbar_out(s: usize) -> Self {
        Self {
            kind: ComponentKind::XbarOut,
            index: s,
        }
    }

    /// The reply channel of GPC `g`.
    pub fn gpc_reply_mux(g: usize) -> Self {
        Self {
            kind: ComponentKind::GpcReplyMux,
            index: g,
        }
    }

    /// The ejection port of SM `s`.
    pub fn sm_ejector(s: usize) -> Self {
        Self {
            kind: ComponentKind::SmEjector,
            index: s,
        }
    }

    /// `kind[index]`, e.g. `tpc_mux[3]`.
    pub fn label(self) -> String {
        format!("{}[{}]", self.kind.label(), self.index)
    }
}

/// Why a warp spent cycles blocked (per-SM stall breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum StallReason {
    /// Waiting for all replies of a waited memory batch.
    WaitMem,
    /// Fire-and-forget stream throttled at its outstanding cap.
    Throttled,
    /// Explicit sleep.
    Sleep,
    /// Spinning on a clock-alignment target.
    WaitClock,
}

impl StallReason {
    /// Dense index for table storage.
    pub fn index(self) -> usize {
        match self {
            StallReason::WaitMem => 0,
            StallReason::Throttled => 1,
            StallReason::Sleep => 2,
            StallReason::WaitClock => 3,
        }
    }

    /// All reasons in [`index`](Self::index) order.
    pub const ALL: [StallReason; 4] = [
        StallReason::WaitMem,
        StallReason::Throttled,
        StallReason::Sleep,
        StallReason::WaitClock,
    ];

    /// Short stable label.
    pub fn label(self) -> &'static str {
        match self {
            StallReason::WaitMem => "wait_mem",
            StallReason::Throttled => "throttled",
            StallReason::Sleep => "sleep",
            StallReason::WaitClock => "wait_clock",
        }
    }
}

/// The telemetry hook set. Every method defaults to an inlined no-op, so
/// a `Probe`-generic code path monomorphised against [`NullProbe`]
/// compiles to exactly the probe-free machine code.
///
/// Hooks must never influence simulation behaviour — they observe.
pub trait Probe {
    /// Whether this probe records anything. Hot paths may use this to
    /// skip *argument construction* for expensive hooks:
    /// `if P::ENABLED { probe.packet_forwarded(..) }`.
    const ENABLED: bool = false;

    /// One output flit slot granted to `input` at `comp`.
    #[inline]
    fn flit_granted(&mut self, _now: Cycle, _comp: Component, _input: usize) {}

    /// A packet fully crossed `comp` and entered its output pipeline.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn packet_forwarded(
        &mut self,
        _now: Cycle,
        _comp: Component,
        _input: usize,
        _packet: u64,
        _sm: usize,
        _slice: usize,
        _flits: u32,
    ) {
    }

    /// A push into `comp`'s `input` queue was refused (backpressure).
    #[inline]
    fn push_denied(&mut self, _comp: Component, _input: usize) {}

    /// `comp`'s `input` queue reached `depth` packets after a push.
    #[inline]
    fn queue_depth(&mut self, _comp: Component, _input: usize, _depth: usize) {}

    /// SM `sm` injected a request packet bound for L2 slice `slice`.
    #[inline]
    fn packet_injected(&mut self, _now: Cycle, _sm: usize, _slice: usize) {}

    /// A reply packet was delivered back to SM `sm`.
    #[inline]
    fn packet_delivered(&mut self, _now: Cycle, _sm: usize) {}

    /// L2 slice `slice` completed a lookup (`hit` or miss).
    #[inline]
    fn l2_access(&mut self, _now: Cycle, _slice: usize, _hit: bool) {}

    /// L2 slice `slice`'s MSHR file holds `occupied` entries.
    #[inline]
    fn mshr_occupancy(&mut self, _slice: usize, _occupied: usize) {}

    /// DRAM controller `mc` serviced an access on `bank` busy over
    /// `[start, done)` core cycles.
    #[inline]
    fn dram_access(
        &mut self,
        _now: Cycle,
        _mc: usize,
        _bank: usize,
        _start: Cycle,
        _done: Cycle,
        _row_hit: bool,
    ) {
    }

    /// A warp on SM `sm` just left a blocked state it sat in for
    /// `cycles` cycles.
    #[inline]
    fn sm_stall(&mut self, _sm: usize, _reason: StallReason, _cycles: Cycle) {}
}

/// The statically-free off switch: a zero-sized probe whose hooks all
/// inline to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// Per-component mux counters.
#[derive(Debug, Clone, Default)]
struct MuxTelemetry {
    grants: Vec<u64>,
    denials: Vec<u64>,
    queue_hwm: Vec<usize>,
    forwarded_packets: u64,
    forwarded_flits: u64,
}

fn slot<T: Default + Clone>(v: &mut Vec<T>, i: usize) -> &mut T {
    if v.len() <= i {
        v.resize(i + 1, T::default());
    }
    &mut v[i]
}

/// Per-L2-slice counters.
#[derive(Debug, Clone, Copy, Default)]
struct L2Telemetry {
    hits: u64,
    misses: u64,
    mshr_hwm: usize,
}

/// Per-DRAM-bank counters.
#[derive(Debug, Clone, Copy, Default)]
struct DramBankTelemetry {
    accesses: u64,
    row_hits: u64,
    busy_cycles: Cycle,
}

/// One sample of the windowed time series.
#[derive(Debug, Clone, Copy, Default, Serialize)]
struct WindowSample {
    injected: u64,
    delivered: u64,
    l2_hits: u64,
    l2_misses: u64,
    mux_flits: u64,
}

/// One recorded packet-forward event (flit-resolution occupancy of a
/// shared component: `dur` is the packet's flit count, i.e. the number
/// of output slots it consumed).
#[derive(Debug, Clone, Copy)]
struct TraceEvent {
    cycle: Cycle,
    flits: u32,
    comp: Component,
    input: usize,
    packet: u64,
    sm: usize,
    slice: usize,
}

/// The recording probe.
///
/// Build one with [`Collector::for_config`], run any workload on a
/// `Gpu<Collector>` (see `Gpu::with_probe`), then pull a serialisable
/// [`TelemetryReport`] or export the trace.
#[derive(Debug)]
pub struct Collector {
    num_sms: usize,
    num_slices: usize,
    window_cycles: Cycle,
    trace_capacity: usize,
    muxes: BTreeMap<Component, MuxTelemetry>,
    /// Packets injected per (SM, slice) pair, row-major by SM.
    sm_slice: Vec<u64>,
    injected: u64,
    delivered: u64,
    l2: Vec<L2Telemetry>,
    dram: BTreeMap<(usize, usize), DramBankTelemetry>,
    /// `stalls[sm][reason]` in cycles.
    stalls: Vec<[u64; 4]>,
    windows: BTreeMap<u64, WindowSample>,
    trace: Vec<TraceEvent>,
    trace_dropped: u64,
    last_cycle: Cycle,
}

impl Collector {
    /// Default window length in cycles for the time series.
    pub const DEFAULT_WINDOW_CYCLES: Cycle = 4096;
    /// Default cap on retained trace events.
    pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

    /// A collector sized for `cfg`'s SM and slice counts.
    pub fn for_config(cfg: &GpuConfig) -> Self {
        Self::new(cfg.num_sms(), cfg.mem.num_l2_slices)
    }

    /// A collector for `num_sms` SMs and `num_slices` L2 slices.
    pub fn new(num_sms: usize, num_slices: usize) -> Self {
        Self {
            num_sms,
            num_slices,
            window_cycles: Self::DEFAULT_WINDOW_CYCLES,
            trace_capacity: Self::DEFAULT_TRACE_CAPACITY,
            muxes: BTreeMap::new(),
            sm_slice: vec![0; num_sms * num_slices],
            injected: 0,
            delivered: 0,
            l2: vec![L2Telemetry::default(); num_slices],
            dram: BTreeMap::new(),
            stalls: vec![[0; 4]; num_sms],
            windows: BTreeMap::new(),
            trace: Vec::new(),
            trace_dropped: 0,
            last_cycle: 0,
        }
    }

    /// Sets the time-series window length (cycles per bucket).
    #[must_use]
    pub fn with_window(mut self, cycles: Cycle) -> Self {
        self.window_cycles = cycles.max(1);
        self
    }

    /// Sets the maximum retained trace events (0 disables the trace).
    #[must_use]
    pub fn with_trace_capacity(mut self, events: usize) -> Self {
        self.trace_capacity = events;
        self
    }

    fn window(&mut self, now: Cycle) -> &mut WindowSample {
        self.last_cycle = self.last_cycle.max(now);
        let idx = now / self.window_cycles;
        self.windows.entry(idx).or_default()
    }

    /// Packets injected but not yet delivered (0 at quiesce).
    pub fn in_flight(&self) -> u64 {
        self.injected - self.delivered
    }

    /// Total packets injected by all SMs.
    pub fn packets_injected(&self) -> u64 {
        self.injected
    }

    /// Total reply packets delivered back to SMs.
    pub fn packets_delivered(&self) -> u64 {
        self.delivered
    }

    /// `(grants summed over inputs, flits of forwarded packets)` for the
    /// component, if it saw traffic. Conservation: equal at quiesce.
    pub fn mux_flit_balance(&self, comp: Component) -> Option<(u64, u64)> {
        self.muxes
            .get(&comp)
            .map(|m| (m.grants.iter().sum(), m.forwarded_flits))
    }

    /// Components that recorded at least one event.
    pub fn components(&self) -> impl Iterator<Item = Component> + '_ {
        self.muxes.keys().copied()
    }

    /// `(hits, misses)` recorded for L2 slice `slice`.
    pub fn l2_hit_miss(&self, slice: usize) -> (u64, u64) {
        let t = self.l2[slice];
        (t.hits, t.misses)
    }

    /// Builds the serialisable summary report.
    pub fn report(&self) -> TelemetryReport {
        let cycles = self.last_cycle + 1;
        let components = self
            .muxes
            .iter()
            .map(|(&comp, m)| ComponentReport {
                kind: comp.kind,
                index: comp.index,
                grants: m.grants.clone(),
                denials: m.denials.clone(),
                queue_high_water: m.queue_hwm.clone(),
                forwarded_packets: m.forwarded_packets,
                forwarded_flits: m.forwarded_flits,
                flits_per_kcycle: m.grants.iter().sum::<u64>() as f64 * 1000.0 / cycles as f64,
            })
            .collect();
        let l2 = self
            .l2
            .iter()
            .enumerate()
            .filter(|(_, t)| t.hits + t.misses > 0 || t.mshr_hwm > 0)
            .map(|(s, t)| L2SliceReport {
                slice: s,
                hits: t.hits,
                misses: t.misses,
                mshr_high_water: t.mshr_hwm,
            })
            .collect();
        let dram = self
            .dram
            .iter()
            .map(|(&(mc, bank), t)| DramBankReport {
                mc,
                bank,
                accesses: t.accesses,
                row_hits: t.row_hits,
                busy_cycles: t.busy_cycles,
            })
            .collect();
        let sm_stalls = self
            .stalls
            .iter()
            .enumerate()
            .filter(|(_, s)| s.iter().any(|&c| c > 0))
            .map(|(sm, s)| SmStallReport {
                sm,
                wait_mem: s[StallReason::WaitMem.index()],
                throttled: s[StallReason::Throttled.index()],
                sleep: s[StallReason::Sleep.index()],
                wait_clock: s[StallReason::WaitClock.index()],
            })
            .collect();
        let windows = self
            .windows
            .iter()
            .map(|(&idx, w)| WindowReport {
                start_cycle: idx * self.window_cycles,
                injected: w.injected,
                delivered: w.delivered,
                l2_hits: w.l2_hits,
                l2_misses: w.l2_misses,
                mux_flits: w.mux_flits,
            })
            .collect();
        TelemetryReport {
            cycles,
            window_cycles: self.window_cycles,
            packets_injected: self.injected,
            packets_delivered: self.delivered,
            components,
            sm_slice: SmSliceMatrix {
                num_sms: self.num_sms,
                num_slices: self.num_slices,
                packets: self.sm_slice.clone(),
            },
            l2,
            dram,
            sm_stalls,
            windows,
            trace_events: self.trace.len(),
            trace_dropped: self.trace_dropped,
        }
    }

    /// Writes the packet-forward trace as JSON Lines, one event per line.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_trace_jsonl<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        for e in &self.trace {
            writeln!(
                w,
                "{{\"cycle\":{},\"flits\":{},\"component\":\"{}\",\"input\":{},\"packet\":{},\"sm\":{},\"slice\":{}}}",
                e.cycle,
                e.flits,
                e.comp.label(),
                e.input,
                e.packet,
                e.sm,
                e.slice
            )?;
        }
        Ok(())
    }

    /// Writes the packet-forward trace in Chrome `trace_event` JSON
    /// (load in `chrome://tracing` or <https://ui.perfetto.dev>). One
    /// complete (`"ph":"X"`) event per forwarded packet: `ts` is the
    /// completion cycle (as microseconds), `dur` the flit count, one
    /// process row per component instance, one thread row per input.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_chrome_trace<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        let pids: BTreeMap<Component, usize> = self
            .muxes
            .keys()
            .enumerate()
            .map(|(i, &c)| (c, i + 1))
            .collect();
        write!(w, "{{\"traceEvents\":[")?;
        let mut first = true;
        for (&comp, &pid) in &pids {
            if !first {
                write!(w, ",")?;
            }
            first = false;
            write!(
                w,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                comp.label()
            )?;
        }
        for e in &self.trace {
            let pid = pids.get(&e.comp).copied().unwrap_or(0);
            if !first {
                write!(w, ",")?;
            }
            first = false;
            write!(
                w,
                "{{\"name\":\"pkt {} sm{} slice{}\",\"cat\":\"{}\",\"ph\":\"X\",\
                 \"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\
                 \"args\":{{\"sm\":{},\"slice\":{},\"flits\":{}}}}}",
                e.packet,
                e.sm,
                e.slice,
                e.comp.kind.label(),
                e.cycle,
                e.flits.max(1),
                pid,
                e.input,
                e.sm,
                e.slice,
                e.flits
            )?;
        }
        writeln!(w, "]}}")
    }
}

impl Probe for Collector {
    const ENABLED: bool = true;

    fn flit_granted(&mut self, now: Cycle, comp: Component, input: usize) {
        *slot(&mut self.muxes.entry(comp).or_default().grants, input) += 1;
        self.window(now).mux_flits += 1;
    }

    fn packet_forwarded(
        &mut self,
        now: Cycle,
        comp: Component,
        input: usize,
        packet: u64,
        sm: usize,
        slice: usize,
        flits: u32,
    ) {
        self.last_cycle = self.last_cycle.max(now);
        let m = self.muxes.entry(comp).or_default();
        m.forwarded_packets += 1;
        m.forwarded_flits += u64::from(flits);
        if self.trace.len() < self.trace_capacity {
            self.trace.push(TraceEvent {
                cycle: now,
                flits,
                comp,
                input,
                packet,
                sm,
                slice,
            });
        } else {
            self.trace_dropped += 1;
        }
    }

    fn push_denied(&mut self, comp: Component, input: usize) {
        *slot(&mut self.muxes.entry(comp).or_default().denials, input) += 1;
    }

    fn queue_depth(&mut self, comp: Component, input: usize, depth: usize) {
        let hwm = slot(&mut self.muxes.entry(comp).or_default().queue_hwm, input);
        *hwm = (*hwm).max(depth);
    }

    fn packet_injected(&mut self, now: Cycle, sm: usize, slice: usize) {
        self.injected += 1;
        self.sm_slice[sm * self.num_slices + slice] += 1;
        self.window(now).injected += 1;
    }

    fn packet_delivered(&mut self, now: Cycle, sm: usize) {
        let _ = sm;
        self.delivered += 1;
        self.window(now).delivered += 1;
    }

    fn l2_access(&mut self, now: Cycle, slice: usize, hit: bool) {
        if hit {
            self.l2[slice].hits += 1;
            self.window(now).l2_hits += 1;
        } else {
            self.l2[slice].misses += 1;
            self.window(now).l2_misses += 1;
        }
    }

    fn mshr_occupancy(&mut self, slice: usize, occupied: usize) {
        let t = &mut self.l2[slice];
        t.mshr_hwm = t.mshr_hwm.max(occupied);
    }

    fn dram_access(
        &mut self,
        now: Cycle,
        mc: usize,
        bank: usize,
        start: Cycle,
        done: Cycle,
        row_hit: bool,
    ) {
        self.last_cycle = self.last_cycle.max(now);
        let t = self.dram.entry((mc, bank)).or_default();
        t.accesses += 1;
        t.row_hits += u64::from(row_hit);
        t.busy_cycles += done.saturating_sub(start);
    }

    fn sm_stall(&mut self, sm: usize, reason: StallReason, cycles: Cycle) {
        self.stalls[sm][reason.index()] += cycles;
    }
}

/// Counters for one component instance.
#[derive(Debug, Clone, Serialize)]
pub struct ComponentReport {
    /// The component class.
    pub kind: ComponentKind,
    /// Instance index within the class.
    pub index: usize,
    /// Flit slots granted per input.
    pub grants: Vec<u64>,
    /// Refused pushes per input (backpressure events).
    pub denials: Vec<u64>,
    /// Deepest observed queue per input.
    pub queue_high_water: Vec<usize>,
    /// Packets fully forwarded.
    pub forwarded_packets: u64,
    /// Flits of those packets (conservation: equals total grants).
    pub forwarded_flits: u64,
    /// Mean channel load in flits per thousand cycles.
    pub flits_per_kcycle: f64,
}

/// Per-slice L2 counters.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct L2SliceReport {
    /// Slice index.
    pub slice: usize,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses (MSHR allocations).
    pub misses: u64,
    /// Deepest observed MSHR occupancy.
    pub mshr_high_water: usize,
}

/// Per-bank DRAM counters.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct DramBankReport {
    /// Memory-controller index.
    pub mc: usize,
    /// Bank index within the controller.
    pub bank: usize,
    /// Accesses serviced.
    pub accesses: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Core cycles the bank was busy servicing them.
    pub busy_cycles: Cycle,
}

/// Per-SM blocked-cycle breakdown.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SmStallReport {
    /// SM index.
    pub sm: usize,
    /// Cycles blocked on waited memory batches.
    pub wait_mem: u64,
    /// Cycles throttled at the outstanding cap.
    pub throttled: u64,
    /// Cycles in explicit sleeps.
    pub sleep: u64,
    /// Cycles spinning on clock alignment.
    pub wait_clock: u64,
}

/// One bucket of the windowed time series.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct WindowReport {
    /// First cycle covered by this bucket.
    pub start_cycle: Cycle,
    /// Packets injected during the bucket.
    pub injected: u64,
    /// Packets delivered during the bucket.
    pub delivered: u64,
    /// L2 hits during the bucket.
    pub l2_hits: u64,
    /// L2 misses during the bucket.
    pub l2_misses: u64,
    /// Mux flit grants during the bucket.
    pub mux_flits: u64,
}

/// The SM×slice traffic matrix, row-major by SM.
#[derive(Debug, Clone, Serialize)]
pub struct SmSliceMatrix {
    /// Number of rows.
    pub num_sms: usize,
    /// Number of columns.
    pub num_slices: usize,
    /// `packets[sm * num_slices + slice]` requests injected.
    pub packets: Vec<u64>,
}

impl SmSliceMatrix {
    /// Packets SM `sm` sent to `slice`.
    pub fn at(&self, sm: usize, slice: usize) -> u64 {
        self.packets[sm * self.num_slices + slice]
    }
}

/// The full serialisable telemetry summary.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetryReport {
    /// Cycles covered (last observed cycle + 1).
    pub cycles: Cycle,
    /// Time-series bucket length.
    pub window_cycles: Cycle,
    /// Total packets injected by SMs.
    pub packets_injected: u64,
    /// Total replies delivered to SMs.
    pub packets_delivered: u64,
    /// Per-component counters (only components that saw traffic).
    pub components: Vec<ComponentReport>,
    /// SM×slice request matrix (the contention heatmap's data).
    pub sm_slice: SmSliceMatrix,
    /// Per-slice L2 counters.
    pub l2: Vec<L2SliceReport>,
    /// Per-bank DRAM counters.
    pub dram: Vec<DramBankReport>,
    /// Per-SM stall breakdown.
    pub sm_stalls: Vec<SmStallReport>,
    /// Windowed time series.
    pub windows: Vec<WindowReport>,
    /// Trace events retained.
    pub trace_events: usize,
    /// Trace events dropped at the capacity cap.
    pub trace_dropped: u64,
}

impl TelemetryReport {
    /// Renders the SM×slice contention heatmap as ASCII art: one row per
    /// SM with traffic, one column per L2 slice, glyph scaled to that
    /// cell's share of the busiest cell.
    pub fn heatmap_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let m = &self.sm_slice;
        let max = m.packets.iter().copied().max().unwrap_or(0);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "SM x slice request heatmap ({} packets, max cell {}):",
            self.packets_injected, max
        );
        if max == 0 {
            let _ = writeln!(out, "  (no traffic recorded)");
            return out;
        }
        let _ = writeln!(out, "        slice 0..{}", m.num_slices - 1);
        for sm in 0..m.num_sms {
            let row = &m.packets[sm * m.num_slices..(sm + 1) * m.num_slices];
            if row.iter().all(|&v| v == 0) {
                continue;
            }
            let cells: String = row
                .iter()
                .map(|&v| {
                    let idx = (v * (RAMP.len() as u64 - 1)).div_ceil(max) as usize;
                    RAMP[idx.min(RAMP.len() - 1)] as char
                })
                .collect();
            let _ = writeln!(out, "  SM{sm:<3} |{cells}|");
        }
        out
    }

    /// Renders the channel-utilization table: per component instance
    /// with traffic, its flit load, grant/denial counts, and queue
    /// high-water mark.
    pub fn utilization_table_ascii(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "channel utilization over {} cycles:\n  {:<18} {:>10} {:>8} {:>8} {:>9} {:>6}",
            self.cycles, "component", "flits", "packets", "denied", "flits/kc", "q-hwm"
        );
        for c in &self.components {
            let _ = writeln!(
                out,
                "  {:<18} {:>10} {:>8} {:>8} {:>9.1} {:>6}",
                format!("{}[{}]", c.kind.label(), c.index),
                c.grants.iter().sum::<u64>(),
                c.forwarded_packets,
                c.denials.iter().sum::<u64>(),
                c.flits_per_kcycle,
                c.queue_high_water.iter().copied().max().unwrap_or(0)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NullProbe>(), 0);
        assert!(!<NullProbe as Probe>::ENABLED);
        assert!(<Collector as Probe>::ENABLED);
    }

    #[test]
    fn collector_counts_and_conserves() {
        let mut c = Collector::new(2, 2);
        let comp = Component::tpc_mux(0);
        for _ in 0..5 {
            c.flit_granted(10, comp, 1);
        }
        c.packet_forwarded(10, comp, 1, 42, 0, 1, 5);
        c.packet_injected(3, 0, 1);
        c.packet_delivered(80, 0);
        c.l2_access(40, 1, true);
        c.l2_access(41, 1, false);
        c.sm_stall(0, StallReason::WaitMem, 30);
        assert_eq!(c.mux_flit_balance(comp), Some((5, 5)));
        assert_eq!(c.in_flight(), 0);
        assert_eq!(c.l2_hit_miss(1), (1, 1));
        let report = c.report();
        assert_eq!(report.packets_injected, 1);
        assert_eq!(report.sm_slice.at(0, 1), 1);
        assert_eq!(report.sm_stalls[0].wait_mem, 30);
        assert_eq!(report.trace_events, 1);
        assert!(report.heatmap_ascii().contains("SM0"));
        assert!(report.utilization_table_ascii().contains("tpc_mux[0]"));
    }

    #[test]
    fn trace_capacity_caps_and_counts_drops() {
        let mut c = Collector::new(1, 1).with_trace_capacity(2);
        let comp = Component::xbar_out(0);
        for i in 0..5 {
            c.packet_forwarded(i, comp, 0, i, 0, 0, 1);
        }
        let report = c.report();
        assert_eq!(report.trace_events, 2);
        assert_eq!(report.trace_dropped, 3);
    }

    #[test]
    fn trace_exports_are_well_formed() {
        let mut c = Collector::new(1, 1);
        c.flit_granted(7, Component::tpc_mux(3), 0);
        c.packet_forwarded(7, Component::tpc_mux(3), 0, 9, 0, 0, 2);
        let mut jsonl = Vec::new();
        c.write_trace_jsonl(&mut jsonl).unwrap();
        let line = String::from_utf8(jsonl).unwrap();
        assert!(line.contains("\"component\":\"tpc_mux[3]\""));
        let mut chrome = Vec::new();
        c.write_chrome_trace(&mut chrome).unwrap();
        let body = String::from_utf8(chrome).unwrap();
        assert!(body.starts_with("{\"traceEvents\":["));
        assert!(body.contains("\"ph\":\"X\""));
        assert!(body.trim_end().ends_with("]}"));
    }

    #[test]
    fn windows_bucket_by_cycle() {
        let mut c = Collector::new(1, 1).with_window(100);
        c.packet_injected(5, 0, 0);
        c.packet_injected(150, 0, 0);
        c.packet_injected(199, 0, 0);
        let report = c.report();
        assert_eq!(report.windows.len(), 2);
        assert_eq!(report.windows[0].start_cycle, 0);
        assert_eq!(report.windows[0].injected, 1);
        assert_eq!(report.windows[1].start_cycle, 100);
        assert_eq!(report.windows[1].injected, 2);
    }
}
