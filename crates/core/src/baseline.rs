//! Baseline: a serial, cache-based prime+probe covert channel.
//!
//! Table 2 contrasts the paper's parallel/local/direct interconnect
//! channel with prior serial/global/indirect cache channels (e.g.
//! Naghibijouybari et al.'s L1/L2 channels). To make that comparison
//! measurable on equal footing, this module implements the classic
//! L2-set prime+probe covert channel *on the same simulator*:
//!
//! 1. the receiver primes half the ways of one L2 set with its lines;
//! 2. the sender transmits `1` by touching enough conflicting lines to
//!    evict them (or stays idle for `0`);
//! 3. the receiver probes its lines and times them: hits stay on-chip,
//!    evictions go to DRAM and are hundreds of cycles slower.
//!
//! The phases are serialised within each slot through the same clock
//! register the NoC channel uses (prime at the slot start, evict at ¼
//! slot, probe at ½ slot). Because the contended resource is a *global*
//! L2 set, sender and receiver need no **TPC** co-location — they only
//! share a GPC here because clock-register synchronization is what keeps
//! the slot grids aligned (§4.1: cross-GPC clock epochs differ by ~10⁹
//! cycles). Prior cache-channel work syncs cross-chip with an explicit
//! prime+probe handshake instead, which we do not model. And because
//! the protocol is serial, its bandwidth is an order of magnitude below
//! the interconnect channel's — exactly Table 2's argument.

use crate::channel::decode_stream;
use gnc_common::bits::BitVec;
use gnc_common::ids::{BlockId, SliceId, StreamId, WarpId};
use gnc_common::{Cycle, GpuConfig};
use gnc_mem::address::AddressMap;
use gnc_sim::kernel::{AccessKind, KernelProgram, WarpContext, WarpProgram, WarpStep};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Outcome of one prime+probe transmission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrimeProbeReport {
    /// Payload as sent.
    pub sent: BitVec,
    /// Payload as decoded.
    pub received: BitVec,
    /// Bit errors over the payload.
    pub errors: usize,
    /// errors / payload length.
    pub error_rate: f64,
    /// Per-slot probe latencies (preamble included).
    pub latencies: Vec<u64>,
    /// Raw channel bandwidth in bits/s (one bit per slot).
    pub bandwidth_bps: f64,
}

/// Configuration of the baseline channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrimeProbeChannel {
    /// Timing slot (power of two; must fit prime + evict + probe).
    pub slot_cycles: u32,
    /// L2 slice hosting the contended set.
    pub slice: usize,
    /// Set index within the slice.
    pub set: usize,
    /// Lines the receiver primes (≤ half the associativity).
    pub primed_lines: u32,
    /// Alternating calibration bits prepended to the stream.
    pub preamble_bits: usize,
    /// SM running the sender (any SM works — the channel is global).
    pub sender_sm: usize,
    /// SM running the receiver.
    pub receiver_sm: usize,
}

impl Default for PrimeProbeChannel {
    fn default() -> Self {
        Self {
            slot_cycles: 4096,
            slice: 7,
            set: 5,
            primed_lines: 8,
            preamble_bits: 8,
            sender_sm: 0,
            // A different TPC than the sender (TPC6): the cache channel
            // needs no interconnect co-location. Same GPC, so the clock
            // registers stay slot-aligned (§4.1).
            receiver_sm: 13,
        }
    }
}

impl PrimeProbeChannel {
    /// Addresses of the receiver's primed lines (`count` distinct tags of
    /// the contended set).
    fn receiver_addrs(&self, map: &AddressMap) -> Vec<u64> {
        let sets = map.num_sets() as u64;
        (0..u64::from(self.primed_lines))
            .map(|k| map.addr_in_slice(SliceId::new(self.slice), self.set as u64 + k * sets))
            .collect()
    }

    /// Addresses of the sender's conflicting lines (enough extra tags to
    /// evict the receiver's from a `assoc`-way set).
    fn sender_addrs(&self, map: &AddressMap, assoc: usize) -> Vec<u64> {
        let sets = map.num_sets() as u64;
        let start = u64::from(self.primed_lines);
        (start..assoc as u64 + start)
            .map(|k| map.addr_in_slice(SliceId::new(self.slice), self.set as u64 + k * sets))
            .collect()
    }

    /// Runs one transmission of `payload`.
    ///
    /// ```no_run
    /// use gnc_common::bits::BitVec;
    /// use gnc_common::GpuConfig;
    /// use gnc_covert::baseline::PrimeProbeChannel;
    ///
    /// let chan = PrimeProbeChannel::default();
    /// let report = chan.transmit(&GpuConfig::volta_v100(), &BitVec::from_bytes(b"x"), 0);
    /// println!("{:.0} kbps at {:.1} % error", report.bandwidth_bps / 1e3,
    ///     report.error_rate * 100.0);
    /// ```
    pub fn transmit(&self, cfg: &GpuConfig, payload: &BitVec, seed: u64) -> PrimeProbeReport {
        let mut gpu = gnc_sim::pooled_gpu(cfg, seed, None).expect("valid config");
        let map = AddressMap::new(cfg);
        let mut stream: Vec<bool> = (0..self.preamble_bits).map(|i| i % 2 == 1).collect();
        stream.extend(payload.iter());
        let stream = Arc::new(stream);

        let sender = PrimeProbeKernel {
            role: Role::Sender,
            chan: self.clone(),
            stream: Arc::clone(&stream),
            addrs: self.sender_addrs(&map, cfg.mem.l2_assoc),
            blocks: cfg.num_tpcs(),
        };
        let receiver = PrimeProbeKernel {
            role: Role::Receiver,
            chan: self.clone(),
            stream: Arc::clone(&stream),
            addrs: self.receiver_addrs(&map),
            blocks: cfg.num_tpcs(),
        };
        gpu.launch(Box::new(sender), StreamId::new(0));
        let receiver_id = gpu.launch(Box::new(receiver), StreamId::new(1));
        let budget = u64::from(self.slot_cycles) * (stream.len() as u64 + 70) + 200_000;
        let outcome = gpu.run_until_idle(budget);
        debug_assert!(outcome.is_idle(), "prime+probe did not finish: {outcome:?}");

        let mut slots: Vec<(u32, u64, Cycle)> = gpu
            .recorder()
            .for_kernel(receiver_id)
            .map(|r| (r.tag, r.value, r.cycle))
            .collect();
        slots.sort_by_key(|&(tag, _, _)| tag);
        let latencies: Vec<u64> = slots.iter().map(|&(_, v, _)| v).collect();
        let (_, bits) = decode_stream(&latencies, self.preamble_bits, payload.len());
        let received = BitVec::from_bits(bits);
        let errors = received.hamming_distance(payload);
        PrimeProbeReport {
            error_rate: if payload.is_empty() {
                0.0
            } else {
                errors as f64 / payload.len() as f64
            },
            errors,
            sent: payload.clone(),
            received,
            latencies,
            bandwidth_bps: cfg.core_clock_hz as f64 / f64::from(self.slot_cycles),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Sender,
    Receiver,
}

struct PrimeProbeKernel {
    role: Role,
    chan: PrimeProbeChannel,
    stream: Arc<Vec<bool>>,
    addrs: Vec<u64>,
    blocks: usize,
}

impl KernelProgram for PrimeProbeKernel {
    fn name(&self) -> &str {
        match self.role {
            Role::Sender => "prime-probe-sender",
            Role::Receiver => "prime-probe-receiver",
        }
    }

    fn num_blocks(&self) -> usize {
        self.blocks
    }

    fn warps_per_block(&self) -> usize {
        1
    }

    fn create_warp(&self, _block: BlockId, _warp: WarpId) -> Box<dyn WarpProgram> {
        Box::new(PrimeProbeWarp {
            role: self.role,
            chan: self.chan.clone(),
            stream: Arc::clone(&self.stream),
            addrs: self.addrs.clone(),
            bit: 0,
            stage: Stage::Gate,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Gate,
    SyncMid,
    Sync,
    /// Receiver: prime at the slot start.
    Prime,
    /// Both: wait for the mid-phase (evict for the sender, probe wait for
    /// the receiver).
    PhaseWait,
    /// Sender: conflict accesses; receiver: timed probe.
    Act,
    Report,
    NextSlot,
}

struct PrimeProbeWarp {
    role: Role,
    chan: PrimeProbeChannel,
    stream: Arc<Vec<bool>>,
    addrs: Vec<u64>,
    bit: usize,
    stage: Stage,
}

impl WarpProgram for PrimeProbeWarp {
    fn step(&mut self, ctx: &WarpContext) -> WarpStep {
        let slot_mask = self.chan.slot_cycles - 1;
        loop {
            match self.stage {
                Stage::Gate => {
                    let me = match self.role {
                        Role::Sender => self.chan.sender_sm,
                        Role::Receiver => self.chan.receiver_sm,
                    };
                    if ctx.sm.index() != me {
                        return WarpStep::Finish;
                    }
                    self.stage = Stage::SyncMid;
                    return WarpStep::UntilClock {
                        mask: self.chan.slot_cycles * 64 - 1,
                        target: self.chan.slot_cycles * 32,
                    };
                }
                Stage::SyncMid => {
                    self.stage = Stage::Sync;
                    return WarpStep::UntilClock {
                        mask: self.chan.slot_cycles * 64 - 1,
                        target: 0,
                    };
                }
                Stage::Sync => {
                    self.stage = match self.role {
                        Role::Receiver => Stage::Prime,
                        Role::Sender => Stage::PhaseWait,
                    };
                }
                Stage::Prime => {
                    if self.bit >= self.stream.len() {
                        return WarpStep::Finish;
                    }
                    self.stage = Stage::PhaseWait;
                    return WarpStep::Memory {
                        kind: AccessKind::Read,
                        addrs: self.addrs.clone(),
                        wait: true,
                    };
                }
                Stage::PhaseWait => {
                    if self.bit >= self.stream.len() {
                        return WarpStep::Finish;
                    }
                    self.stage = Stage::Act;
                    // Sender acts at ¼ slot, receiver probes at ½ slot.
                    let target = match self.role {
                        Role::Sender => self.chan.slot_cycles / 4,
                        Role::Receiver => self.chan.slot_cycles / 2,
                    };
                    return WarpStep::UntilClock {
                        mask: slot_mask,
                        target,
                    };
                }
                Stage::Act => {
                    let transmit_one = self.stream[self.bit];
                    match self.role {
                        Role::Sender => {
                            self.stage = Stage::NextSlot;
                            if transmit_one {
                                return WarpStep::Memory {
                                    kind: AccessKind::Read,
                                    addrs: self.addrs.clone(),
                                    wait: true,
                                };
                            }
                        }
                        Role::Receiver => {
                            self.stage = Stage::Report;
                            return WarpStep::Memory {
                                kind: AccessKind::Read,
                                addrs: self.addrs.clone(),
                                wait: true,
                            };
                        }
                    }
                }
                Stage::Report => {
                    self.stage = Stage::NextSlot;
                    let tag = self.bit as u32;
                    return WarpStep::Record {
                        tag,
                        value: ctx.last_mem_latency,
                    };
                }
                Stage::NextSlot => {
                    self.bit += 1;
                    self.stage = match self.role {
                        Role::Receiver => Stage::Prime,
                        Role::Sender => Stage::PhaseWait,
                    };
                    // Wait for the next slot start (never a free step:
                    // both roles are mid-slot here).
                    return WarpStep::UntilClock {
                        mask: slot_mask,
                        target: 0,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnc_common::rng::experiment_rng;

    #[test]
    fn prime_probe_transmits_across_the_whole_chip() {
        let cfg = GpuConfig::volta_v100();
        let chan = PrimeProbeChannel::default();
        // Sender SM0 (TPC0), receiver SM13 (TPC6): no TPC co-location,
        // unlike the NoC channel, which requires sibling SMs.
        assert_ne!(
            cfg.tpc_of_sm(gnc_common::ids::SmId::new(chan.sender_sm)),
            cfg.tpc_of_sm(gnc_common::ids::SmId::new(chan.receiver_sm))
        );
        let mut rng = experiment_rng("pp", 0);
        let payload = BitVec::random(&mut rng, 24);
        let report = chan.transmit(&cfg, &payload, 1);
        assert!(
            report.error_rate < 0.10,
            "prime+probe error {} (latencies {:?})",
            report.error_rate,
            report.latencies
        );
    }

    #[test]
    fn prime_probe_is_an_order_of_magnitude_slower() {
        // Table 2's point: the serial global channel cannot approach the
        // parallel local one.
        let cfg = GpuConfig::volta_v100();
        let pp = PrimeProbeChannel::default();
        let pp_bw = cfg.core_clock_hz as f64 / f64::from(pp.slot_cycles);
        let noc_multi = crate::protocol::ProtocolConfig::tpc(5).bits_per_second(&cfg) / 2.0 * 40.0;
        assert!(
            noc_multi > pp_bw * 10.0,
            "NoC {noc_bw} vs prime+probe {pp_bw}",
            noc_bw = noc_multi
        );
    }

    #[test]
    fn eviction_set_covers_the_associativity() {
        let cfg = GpuConfig::volta_v100();
        let map = AddressMap::new(&cfg);
        let chan = PrimeProbeChannel::default();
        let rx = chan.receiver_addrs(&map);
        let tx = chan.sender_addrs(&map, cfg.mem.l2_assoc);
        assert_eq!(rx.len(), 8);
        assert_eq!(tx.len(), cfg.mem.l2_assoc);
        // All in the same slice and set, all distinct tags.
        let mut tags = std::collections::HashSet::new();
        for &a in rx.iter().chain(&tx) {
            assert_eq!(map.slice_of(a).index(), chan.slice);
            assert_eq!(map.set_of(a), chan.set);
            assert!(tags.insert(map.tag_of(a)), "duplicate tag");
        }
    }
}
