//! Channel orchestration: build, transmit, decode, report.
//!
//! A [`ChannelPlan`] is a set of point-to-point covert channels (one per
//! TPC for the TPC channel, one per GPC for the GPC channel) sharing one
//! [`ProtocolConfig`]. [`ChannelPlan::transmit`] stripes a payload
//! across the channels, launches the trojan and spy kernels into two
//! streams on a fresh simulated GPU, runs to completion, and decodes the
//! receiver's latency records back into bits using a threshold calibrated
//! from the per-channel preamble.

use crate::protocol::{
    Assignments, ChannelKind, ProtocolConfig, ReceiverKernel, SenderKernel, RECEIVER_BASE,
    SENDER_BASE,
};
use gnc_common::bits::BitVec;
use gnc_common::fec::FecSymbol;
use gnc_common::ids::{KernelId, StreamId, TpcId};
use gnc_common::telemetry::Probe;
use gnc_common::{Cycle, GpuConfig};
use gnc_sim::gpu::Gpu;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// One point-to-point channel: which SMs flood, which SM listens.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelSpec {
    /// Label for reports (e.g. "TPC3" or "GPC5").
    pub label: String,
    /// SM indices that transmit.
    pub sender_sms: Vec<usize>,
    /// SM index that listens.
    pub receiver_sm: usize,
}

/// Outcome of one transmission over one channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelOutcome {
    /// The channel's label.
    pub label: String,
    /// Receiving SM.
    pub receiver_sm: usize,
    /// Per-slot measured latencies (preamble included), slot order.
    pub latencies: Vec<u64>,
    /// The calibrated decision threshold.
    pub threshold: f64,
    /// Decoded payload bits (preamble stripped).
    pub decoded: BitVec,
    /// Payload bits this channel was supposed to carry.
    pub sent: BitVec,
    /// Bit errors on this channel.
    pub errors: usize,
}

/// Why a transmission that still delivered data is not pristine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradationReason {
    /// Residual bit errors survived in the delivered payload.
    BitErrors,
    /// Latency samples were missing (short trace, dropped measurements);
    /// the decoder had to pad or erase.
    SamplesMissing,
    /// The FEC layer had to correct blocks or consume erasures.
    FecCorrected,
    /// The payload only got through after at least one retransmission.
    Retransmitted,
}

/// Terminal state of a transmission attempt (or retry loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransmissionOutcome {
    /// Delivered with zero bit errors and a complete trace.
    Clean,
    /// Delivered, but something had to be repaired along the way.
    Degraded(DegradationReason),
    /// Not delivered: the run timed out, the trace was unusable, or the
    /// error rate is indistinguishable from guessing.
    Failed,
}

impl TransmissionOutcome {
    /// Whether the payload made it across (possibly degraded).
    pub fn is_delivered(self) -> bool {
        !matches!(self, Self::Failed)
    }
}

/// Aggregate outcome of one transmission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransmissionReport {
    /// Payload as sent.
    pub sent: BitVec,
    /// Payload as decoded (same striping order).
    pub received: BitVec,
    /// Bit errors over the payload.
    pub errors: usize,
    /// errors / payload length.
    pub error_rate: f64,
    /// Cycles between the first and last receiver measurement, plus one
    /// slot (the active transmission window).
    pub elapsed_cycles: Cycle,
    /// Aggregate goodput over the transmission window, in bits/s
    /// (payload + preamble bits, as the paper counts raw channel bits).
    pub bandwidth_bps: f64,
    /// Payload-only goodput in bits/s.
    pub payload_bandwidth_bps: f64,
    /// Number of parallel channels used.
    pub channels_used: usize,
    /// Per-channel details.
    pub per_channel: Vec<ChannelOutcome>,
    /// Health classification of this transmission.
    pub outcome: TransmissionOutcome,
}

/// The raw tagged measurement stream of one channel, before any
/// decoding. `samples` preserves arrival order, duplicate tags and all —
/// the robust decoder ([`crate::robust`]) needs exactly this to undo
/// measurement-path damage that the naive slot-ordered view bakes in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelTrace {
    /// The channel's label.
    pub label: String,
    /// Receiving SM.
    pub receiver_sm: usize,
    /// `(slot tag, measured latency)` pairs in arrival order.
    pub samples: Vec<(u32, u64)>,
    /// Slots the sender actually modulated (preamble + chunk).
    pub expected_samples: usize,
    /// Ground-truth payload chunk this channel carried.
    pub chunk: Vec<bool>,
}

/// A set of parallel covert channels under one protocol.
#[derive(Debug, Clone)]
pub struct ChannelPlan {
    proto: ProtocolConfig,
    channels: Vec<ChannelSpec>,
    blocks_per_kernel: usize,
}

impl ChannelPlan {
    /// A plan from explicit channel specs.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is empty.
    pub fn from_specs(
        gpu_cfg: &GpuConfig,
        proto: ProtocolConfig,
        channels: Vec<ChannelSpec>,
    ) -> Self {
        assert!(!channels.is_empty(), "a plan needs at least one channel");
        Self {
            proto,
            channels,
            blocks_per_kernel: gpu_cfg.num_tpcs(),
        }
    }

    /// TPC channels over the given TPC indices (§4.4): the sender owns
    /// the even SM, the receiver the odd SM of each TPC.
    pub fn tpc(gpu_cfg: &GpuConfig, proto: ProtocolConfig, tpcs: &[usize]) -> Self {
        assert_eq!(proto.kind, ChannelKind::Tpc, "protocol must be TPC-kind");
        let channels = tpcs
            .iter()
            .map(|&t| ChannelSpec {
                label: format!("TPC{t}"),
                sender_sms: vec![2 * t],
                receiver_sm: 2 * t + 1,
            })
            .collect();
        Self::from_specs(gpu_cfg, proto, channels)
    }

    /// All-TPC plan: the paper's 24 Mbps configuration.
    ///
    /// The slot length is doubled relative to the single-channel
    /// protocol: with 40 receivers measuring simultaneously, their read
    /// replies share each GPC's reply channel (up to 7 per GPC on a
    /// 3-flit/cycle channel), so a measurement takes roughly twice as
    /// long — the same reason the paper needs more iterations and a
    /// higher `T` for the multi-TPC channel (§4.4).
    pub fn multi_tpc(gpu_cfg: &GpuConfig, mut proto: ProtocolConfig) -> Self {
        proto.slot_cycles *= 2;
        let all: Vec<usize> = (0..gpu_cfg.num_tpcs()).collect();
        Self::tpc(gpu_cfg, proto, &all)
    }

    /// GPC channels (§4.5). `membership[g]` lists the TPCs of GPC `g`
    /// (use the *recovered* mapping from [`crate::reverse`], or the
    /// ground truth in tests). The first TPC of each requested GPC
    /// listens (odd SM); every other TPC floods (even SMs).
    pub fn gpc(
        gpu_cfg: &GpuConfig,
        proto: ProtocolConfig,
        membership: &[Vec<TpcId>],
        gpcs: &[usize],
    ) -> Self {
        assert_eq!(proto.kind, ChannelKind::Gpc, "protocol must be GPC-kind");
        let channels = gpcs
            .iter()
            .map(|&g| {
                let members = &membership[g];
                assert!(
                    members.len() >= 2,
                    "GPC{g} needs at least two TPCs for a channel"
                );
                ChannelSpec {
                    label: format!("GPC{g}"),
                    sender_sms: members[1..].iter().map(|t| 2 * t.index()).collect(),
                    receiver_sm: 2 * members[0].index() + 1,
                }
            })
            .collect();
        Self::from_specs(gpu_cfg, proto, channels)
    }

    /// The protocol in use.
    pub fn protocol(&self) -> &ProtocolConfig {
        &self.proto
    }

    /// The channel specs.
    pub fn channels(&self) -> &[ChannelSpec] {
        &self.channels
    }

    /// Stripes `payload` across channels round-robin: channel `i` carries
    /// bits `i, i+n, i+2n, …`.
    fn stripe(&self, payload: &BitVec) -> Vec<Vec<bool>> {
        let n = self.channels.len();
        let mut chunks = vec![Vec::new(); n];
        for (i, bit) in payload.iter().enumerate() {
            chunks[i % n].push(bit);
        }
        chunks
    }

    fn preamble(&self) -> Vec<bool> {
        (0..self.proto.preamble_bits).map(|i| i % 2 == 1).collect()
    }

    /// Runs one full transmission of `payload` on a fresh GPU.
    ///
    /// `seed` controls the clock-domain draw and all protocol jitter, so
    /// identical `(plan, payload, seed)` triples reproduce identical
    /// transmissions.
    ///
    /// ```no_run
    /// use gnc_common::bits::BitVec;
    /// use gnc_common::GpuConfig;
    /// use gnc_covert::channel::ChannelPlan;
    /// use gnc_covert::protocol::ProtocolConfig;
    ///
    /// let cfg = GpuConfig::volta_v100();
    /// let plan = ChannelPlan::multi_tpc(&cfg, ProtocolConfig::tpc(5));
    /// let report = plan.transmit(&cfg, &BitVec::from_bytes(b"secret"), 42);
    /// println!("{:.1} Mbps", report.bandwidth_bps / 1e6);
    /// ```
    pub fn transmit(&self, gpu_cfg: &GpuConfig, payload: &BitVec, seed: u64) -> TransmissionReport {
        gnc_sim::with_pooled_gpu(gpu_cfg, seed, None, |gpu| {
            self.transmit_on(gpu, payload, seed)
        })
        .expect("valid GPU config")
    }

    /// [`transmit`](Self::transmit) on a GPU with a fault-injection plan
    /// wired in (see [`Gpu::with_faults`]). Returns the naive-decoded
    /// report *and* the raw per-channel traces so callers can run the
    /// hardened decoder of [`crate::robust`] over the very same
    /// measurements.
    pub fn transmit_with_faults(
        &self,
        gpu_cfg: &GpuConfig,
        payload: &BitVec,
        seed: u64,
        plan: &std::sync::Arc<gnc_common::fault::FaultPlan>,
    ) -> (TransmissionReport, Vec<ChannelTrace>) {
        gnc_sim::with_pooled_gpu(gpu_cfg, seed, Some(plan), |gpu| {
            self.transmit_inner(gpu, payload, seed, 0)
        })
        .expect("valid GPU config")
    }

    /// MPS-style multiprogramming (§2.1): the trojan and spy come from
    /// *different processes*, so their kernels launch `skew_cycles`
    /// apart. As the paper observes, the only cost is the one-time
    /// synchronization: both sides still meet at the next clock-window
    /// boundary as long as the skew stays below the sync window.
    pub fn transmit_with_launch_skew(
        &self,
        gpu_cfg: &GpuConfig,
        payload: &BitVec,
        seed: u64,
        skew_cycles: Cycle,
    ) -> TransmissionReport {
        gnc_sim::with_pooled_gpu(gpu_cfg, seed, None, |gpu| {
            self.transmit_inner(gpu, payload, seed, skew_cycles).0
        })
        .expect("valid GPU config")
    }

    /// Runs one full transmission on an existing GPU (lets callers
    /// pre-configure arbitration, noise kernels, telemetry probes,
    /// etc.). The GPU should be idle; records are cleared.
    pub fn transmit_on<P: Probe>(
        &self,
        gpu: &mut Gpu<P>,
        payload: &BitVec,
        seed: u64,
    ) -> TransmissionReport {
        self.transmit_inner(gpu, payload, seed, 0).0
    }

    /// [`transmit_on`](Self::transmit_on), additionally returning the
    /// raw per-channel traces for external (re-)decoding.
    pub fn transmit_traced_on<P: Probe>(
        &self,
        gpu: &mut Gpu<P>,
        payload: &BitVec,
        seed: u64,
    ) -> (TransmissionReport, Vec<ChannelTrace>) {
        self.transmit_inner(gpu, payload, seed, 0)
    }

    fn transmit_inner<P: Probe>(
        &self,
        gpu: &mut Gpu<P>,
        payload: &BitVec,
        seed: u64,
        launch_skew: Cycle,
    ) -> (TransmissionReport, Vec<ChannelTrace>) {
        let gpu_cfg = gpu.config().clone();
        let line_bytes = u64::from(gpu_cfg.mem.line_bytes);
        gpu.clear_records();

        // Build per-channel streams: preamble ++ striped chunk.
        let preamble = self.preamble();
        let chunks = self.stripe(payload);
        let mut sender_map: HashMap<usize, Arc<Vec<bool>>> = HashMap::new();
        let mut recv_lengths: HashMap<usize, usize> = HashMap::new();
        for (spec, chunk) in self.channels.iter().zip(&chunks) {
            let mut stream = preamble.clone();
            stream.extend_from_slice(chunk);
            let stream = Arc::new(stream);
            for &sm in &spec.sender_sms {
                sender_map.insert(sm, Arc::clone(&stream));
            }
            recv_lengths.insert(spec.receiver_sm, stream.len());
        }
        let assignments: Assignments = Arc::new(sender_map);

        // Preload both working sets so every timed access is an L2 hit.
        let region = self.proto.region_lines();
        let sms = gpu_cfg.num_sms() as u64;
        gpu.preload_range(SENDER_BASE, sms * region);
        gpu.preload_range(RECEIVER_BASE, sms * region);

        let sender = SenderKernel::new(
            self.proto.clone(),
            assignments,
            self.blocks_per_kernel,
            line_bytes,
            seed,
        );
        let receiver = ReceiverKernel::new(
            self.proto.clone(),
            Arc::new(recv_lengths),
            self.blocks_per_kernel,
            line_bytes,
            seed,
        );
        gpu.launch(Box::new(sender), StreamId::new(0));
        if launch_skew > 0 {
            gpu.run_for(launch_skew);
        }
        let receiver_id = gpu.launch(Box::new(receiver), StreamId::new(1));

        let stream_bits = preamble.len() + chunks.iter().map(Vec::len).max().unwrap_or(0);
        // Generous: under heavy external interference (the §5 noise
        // study) every slot can slip, so budget several slots per bit.
        let budget = u64::from(self.proto.sync_window()) * 2
            + launch_skew
            + (stream_bits as u64 + 4) * u64::from(self.proto.slot_cycles) * 6
            + 200_000;
        let outcome = gpu.run_until_idle(budget);
        // A run that never drains (e.g. a jammed NoC) is not a panic —
        // it decodes whatever the receiver managed to record, and the
        // report's outcome field says `Failed`.
        self.decode(gpu, receiver_id, payload, &chunks, outcome.is_idle())
    }

    fn decode<P: Probe>(
        &self,
        gpu: &Gpu<P>,
        receiver_id: KernelId,
        payload: &BitVec,
        chunks: &[Vec<bool>],
        completed: bool,
    ) -> (TransmissionReport, Vec<ChannelTrace>) {
        let gpu_cfg = gpu.config();
        // Collect per-receiver-SM latencies in slot order.
        let mut by_sm: HashMap<usize, Vec<(u32, u64, Cycle)>> = HashMap::new();
        let mut first_cycle = Cycle::MAX;
        let mut last_cycle = 0;
        for r in gpu.recorder().for_kernel(receiver_id) {
            by_sm
                .entry(r.sm.index())
                .or_default()
                .push((r.tag, r.value, r.cycle));
            first_cycle = first_cycle.min(r.cycle);
            last_cycle = last_cycle.max(r.cycle);
        }

        let mut per_channel = Vec::with_capacity(self.channels.len());
        let mut traces = Vec::with_capacity(self.channels.len());
        let mut short_trace = false;
        for (spec, chunk) in self.channels.iter().zip(chunks) {
            let arrival = by_sm.remove(&spec.receiver_sm).unwrap_or_default();
            traces.push(ChannelTrace {
                label: spec.label.clone(),
                receiver_sm: spec.receiver_sm,
                samples: arrival.iter().map(|&(tag, v, _)| (tag, v)).collect(),
                expected_samples: self.proto.preamble_bits + chunk.len(),
                chunk: chunk.clone(),
            });
            let mut slots = arrival;
            slots.sort_by_key(|&(tag, _, _)| tag);
            let latencies: Vec<u64> = slots.iter().map(|&(_, v, _)| v).collect();
            if latencies.len() < self.proto.preamble_bits + chunk.len() {
                short_trace = true;
            }
            let (threshold, decoded_bits) =
                decode_stream(&latencies, self.proto.preamble_bits, chunk.len());
            let sent = BitVec::from_bits(chunk.iter().copied());
            let decoded = BitVec::from_bits(decoded_bits);
            let errors = decoded.hamming_distance(&sent);
            per_channel.push(ChannelOutcome {
                label: spec.label.clone(),
                receiver_sm: spec.receiver_sm,
                latencies,
                threshold,
                decoded,
                sent,
                errors,
            });
        }

        // De-stripe back into payload order.
        let n = self.channels.len();
        let mut received = BitVec::new();
        for i in 0..payload.len() {
            let bit = per_channel[i % n].decoded.get(i / n).unwrap_or(false);
            received.push(bit);
        }
        let errors = received.hamming_distance(payload);
        let error_rate = if payload.is_empty() {
            0.0
        } else {
            errors as f64 / payload.len() as f64
        };
        let elapsed_cycles = if first_cycle == Cycle::MAX {
            0
        } else {
            last_cycle - first_cycle + u64::from(self.proto.slot_cycles)
        };
        let total_bits: usize = per_channel.iter().map(|c| c.latencies.len()).sum();
        let secs = gpu_cfg.cycles_to_seconds(elapsed_cycles.max(1));
        let outcome = if !completed || error_rate > 0.25 {
            TransmissionOutcome::Failed
        } else if errors == 0 && !short_trace {
            TransmissionOutcome::Clean
        } else if short_trace {
            TransmissionOutcome::Degraded(DegradationReason::SamplesMissing)
        } else {
            TransmissionOutcome::Degraded(DegradationReason::BitErrors)
        };
        let report = TransmissionReport {
            sent: payload.clone(),
            received,
            errors,
            error_rate,
            elapsed_cycles,
            bandwidth_bps: total_bits as f64 / secs,
            payload_bandwidth_bps: payload.len() as f64 / secs,
            channels_used: n,
            per_channel,
            outcome,
        };
        (report, traces)
    }
}

/// Calibrates a threshold from the alternating preamble and slices the
/// payload bits out of `latencies`. Returns `(threshold, payload_bits)`.
///
/// Preamble slots alternate `0, 1, 0, 1, …`; the threshold is the
/// midpoint between the mean `0` (quiet) and mean `1` (contended)
/// latencies. A dead channel yields a degenerate threshold and the
/// decoded bits collapse to one value — i.e. ~50 % error on random data,
/// which is exactly how Fig 13 reports a failed channel.
///
/// The returned bit vector is **always exactly `payload_len` long**: a
/// trace shorter than `preamble_bits + payload_len` (the receiver kernel
/// died early, or the measurement path lost samples) is padded with
/// `false` so downstream de-striping and error accounting stay aligned.
/// Callers that can exploit the distinction between "measured 0" and
/// "never measured" should use [`decode_stream_symbols`], which marks
/// the padded tail as explicit erasures instead of guessing.
pub fn decode_stream(
    latencies: &[u64],
    preamble_bits: usize,
    payload_len: usize,
) -> (f64, Vec<bool>) {
    let (threshold, symbols) = decode_stream_symbols(latencies, preamble_bits, payload_len);
    let bits = symbols
        .into_iter()
        .map(|s| matches!(s, FecSymbol::One))
        .collect();
    (threshold, bits)
}

/// [`decode_stream`] with erasure-aware output: slots past the end of a
/// short trace come back as [`FecSymbol::Erased`] rather than a guessed
/// `0`, so an FEC layer can treat them as located losses. The result
/// always holds exactly `payload_len` symbols.
pub fn decode_stream_symbols(
    latencies: &[u64],
    preamble_bits: usize,
    payload_len: usize,
) -> (f64, Vec<FecSymbol>) {
    let pre = &latencies[..preamble_bits.min(latencies.len())];
    let mut quiet = 0.0;
    let mut quiet_n = 0.0;
    let mut loud = 0.0;
    let mut loud_n = 0.0;
    for (i, &l) in pre.iter().enumerate() {
        if i % 2 == 0 {
            quiet += l as f64;
            quiet_n += 1.0;
        } else {
            loud += l as f64;
            loud_n += 1.0;
        }
    }
    let quiet_mean = if quiet_n > 0.0 { quiet / quiet_n } else { 0.0 };
    let loud_mean = if loud_n > 0.0 { loud / loud_n } else { 0.0 };
    let threshold = (quiet_mean + loud_mean) / 2.0;
    let mut symbols: Vec<FecSymbol> = latencies
        .iter()
        .skip(preamble_bits)
        .take(payload_len)
        .map(|&l| FecSymbol::from((l as f64) > threshold))
        .collect();
    symbols.resize(payload_len, FecSymbol::Erased);
    (threshold, symbols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnc_common::rng::experiment_rng;

    fn volta() -> GpuConfig {
        GpuConfig::volta_v100()
    }

    #[test]
    fn decode_stream_thresholds_on_preamble() {
        // Preamble 0,1,0,1 with latencies 100/200; payload follows.
        let lat = vec![100, 200, 100, 200, 105, 195, 100];
        let (thr, bits) = decode_stream(&lat, 4, 3);
        assert!((thr - 150.0).abs() < 1e-9);
        assert_eq!(bits, vec![false, true, false]);
    }

    #[test]
    fn decode_stream_dead_channel_collapses() {
        let lat = vec![100; 12];
        let (_, bits) = decode_stream(&lat, 4, 8);
        // All equal to the threshold → decoded all-false.
        assert!(bits.iter().all(|&b| !b));
    }

    #[test]
    fn stripe_round_robins_bits() {
        let cfg = volta();
        let plan = ChannelPlan::tpc(&cfg, ProtocolConfig::tpc(1), &[0, 1]);
        let payload = BitVec::from_bits([true, false, true, true, false]);
        let chunks = plan.stripe(&payload);
        assert_eq!(chunks[0], vec![true, true, false]);
        assert_eq!(chunks[1], vec![false, true]);
    }

    #[test]
    fn single_tpc_channel_transmits_a_byte_reliably() {
        let cfg = volta();
        let plan = ChannelPlan::tpc(&cfg, ProtocolConfig::tpc(4), &[0]);
        let mut rng = experiment_rng("chan-test", 1);
        let payload = BitVec::random(&mut rng, 24);
        let report = plan.transmit(&cfg, &payload, 3);
        assert_eq!(report.received.len(), 24);
        assert!(
            report.error_rate < 0.05,
            "TPC channel too lossy: {} ({} errors)\nlat: {:?}",
            report.error_rate,
            report.errors,
            report.per_channel[0].latencies
        );
        assert!(report.bandwidth_bps > 100_000.0);
    }

    #[test]
    fn channel_on_any_tpc_works() {
        // The attack must not depend on TPC0 specifically.
        let cfg = volta();
        let plan = ChannelPlan::tpc(&cfg, ProtocolConfig::tpc(4), &[17]);
        let mut rng = experiment_rng("chan-test", 2);
        let payload = BitVec::random(&mut rng, 16);
        let report = plan.transmit(&cfg, &payload, 5);
        assert!(report.error_rate < 0.05, "error {}", report.error_rate);
    }

    #[test]
    fn multi_tpc_stripes_and_reassembles() {
        let cfg = volta();
        let plan = ChannelPlan::multi_tpc(&cfg, ProtocolConfig::tpc(4));
        assert_eq!(plan.channels().len(), 40);
        let mut rng = experiment_rng("chan-test", 3);
        let payload = BitVec::random(&mut rng, 120); // 3 bits per channel
        let report = plan.transmit(&cfg, &payload, 7);
        assert_eq!(report.received.len(), 120);
        assert!(
            report.error_rate < 0.05,
            "multi-TPC error {}",
            report.error_rate
        );
        assert_eq!(report.channels_used, 40);
    }

    #[test]
    fn gpc_channel_transmits() {
        let cfg = volta();
        let membership: Vec<Vec<TpcId>> = (0..cfg.num_gpcs)
            .map(|g| cfg.tpcs_of_gpc(gnc_common::ids::GpcId::new(g)))
            .collect();
        let plan = ChannelPlan::gpc(&cfg, ProtocolConfig::gpc(4), &membership, &[0]);
        let mut rng = experiment_rng("chan-test", 4);
        let payload = BitVec::random(&mut rng, 16);
        let report = plan.transmit(&cfg, &payload, 9);
        assert!(
            report.error_rate < 0.10,
            "GPC channel too lossy: {}\nlat: {:?} thr {}",
            report.error_rate,
            report.per_channel[0].latencies,
            report.per_channel[0].threshold
        );
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn empty_plan_rejected() {
        let cfg = volta();
        let _ = ChannelPlan::from_specs(&cfg, ProtocolConfig::tpc(1), Vec::new());
    }
}
