//! Contention characterisation (§3.4, §4.2, §5 — Figs 5, 8, 11, 12, 13).
//!
//! These experiments quantify *why* the channel works: writes saturate
//! the TPC channel (2×) while reads do not; reads contend on the GPC
//! reply path once four or more TPCs are active; contention seen by a
//! probe grows linearly in its sibling's traffic (the leakage that the
//! receiver demodulates); and uncoalesced multi-request bursts are what
//! make the signal robust to misalignment.

use crate::channel::ChannelPlan;
use crate::protocol::ProtocolConfig;
use crate::reverse::run_active_sms;
use gnc_common::bits::BitVec;
use gnc_common::ids::{StreamId, TpcId};
use gnc_common::rng::experiment_rng;
use gnc_common::{Cycle, GpuConfig};
use gnc_sim::kernel::AccessKind;
use gnc_sim::workloads::{StreamConfig, StreamKernel};
use serde::{Deserialize, Serialize};

/// Fig 5(a): TPC-channel contention by access type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TpcContention {
    /// Probe slowdown when its TPC sibling streams writes (paper: ~2×).
    pub write_slowdown: f64,
    /// Probe slowdown when its TPC sibling streams reads (paper: ~1×).
    pub read_slowdown: f64,
}

/// Fig 5(a): measures the probe SM's slowdown with a co-located sibling
/// streaming the same access kind, for writes and reads.
pub fn tpc_contention(cfg: &GpuConfig, batches: u32, seed: u64) -> TpcContention {
    let slowdown = |kind: AccessKind| -> f64 {
        let solo = run_active_sms(cfg, &[0], kind, 4, batches, seed)[0].1;
        let both = run_active_sms(cfg, &[0, 1], kind, 4, batches, seed)
            .iter()
            .find(|(sm, _)| *sm == 0)
            .expect("probe measured")
            .1;
        both as f64 / solo as f64
    };
    TpcContention {
        write_slowdown: slowdown(AccessKind::Write),
        read_slowdown: slowdown(AccessKind::Read),
    }
}

/// Fig 5(b): GPC-channel contention versus number of activated TPCs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpcContention {
    /// `write_slowdown[n-1]` = probe slowdown with `n` TPCs of the GPC
    /// active, streaming writes (paper: ≤ ~1.15× at 7).
    pub write_slowdown: Vec<f64>,
    /// Same for reads (paper: flat to 3 TPCs, ≈2.14× at 7).
    pub read_slowdown: Vec<f64>,
}

/// Fig 5(b): activates 1..=n_max TPCs of one GPC (`members` from the
/// recovered mapping) and measures the first member's slowdown for both
/// access kinds, normalised to the single-TPC run.
pub fn gpc_contention(
    cfg: &GpuConfig,
    members: &[TpcId],
    batches: u32,
    seed: u64,
) -> GpcContention {
    let run = |kind: AccessKind| -> Vec<f64> {
        let probe_sm = 2 * members[0].index();
        let mut base = None;
        (1..=members.len())
            .map(|n| {
                let active: Vec<usize> = members[..n].iter().map(|t| 2 * t.index()).collect();
                let t = run_active_sms(cfg, &active, kind, 4, batches, seed)
                    .iter()
                    .find(|(sm, _)| *sm == probe_sm)
                    .expect("probe measured")
                    .1 as f64;
                let b = *base.get_or_insert(t);
                t / b
            })
            .collect()
    };
    GpcContention {
        write_slowdown: run(AccessKind::Write),
        read_slowdown: run(AccessKind::Read),
    }
}

/// Runs the probe kernel concurrently with an interferer that issues a
/// fraction of the probe's traffic, returning the probe's execution time
/// (the Fig 8 / Fig 11 primitive).
#[allow(clippy::too_many_arguments)]
pub fn probe_with_interferer(
    cfg: &GpuConfig,
    probe_sm: usize,
    probe_kind: AccessKind,
    probe_batches: u32,
    interferer_sms: &[usize],
    interferer_kind: AccessKind,
    interferer_batches: u32,
    seed: u64,
) -> Cycle {
    let mut gpu = gnc_sim::pooled_gpu(cfg, seed, None).expect("valid config");
    let warps = 4;
    let mut probe_cfg = StreamConfig::writer(cfg.num_sms(), warps, probe_batches);
    probe_cfg.kind = probe_kind;
    probe_cfg.target_sms = Some(vec![probe_sm]);
    let probe_kernel = StreamKernel::new(probe_cfg, cfg);
    let (base, lines) = probe_kernel.working_set();
    gpu.preload_range(base, lines);

    let mut intf_cfg = StreamConfig::writer(cfg.num_sms(), warps, interferer_batches);
    intf_cfg.kind = interferer_kind;
    intf_cfg.target_sms = Some(interferer_sms.to_vec());
    intf_cfg.base_addr = 0x0400_0000; // disjoint working set
    let intf_kernel = StreamKernel::new(intf_cfg, cfg);
    let (ibase, ilines) = intf_kernel.working_set();
    gpu.preload_range(ibase, ilines);

    let probe_id = gpu.launch(Box::new(probe_kernel), StreamId::new(0));
    gpu.launch(Box::new(intf_kernel), StreamId::new(1));
    let budget = 50_000
        + u64::from(probe_batches + interferer_batches)
            * 64
            * warps as u64
            * (1 + interferer_sms.len() as u64)
            * 4;
    let outcome = gpu.run_until_idle(budget);
    assert!(outcome.is_idle(), "probe run did not finish: {outcome:?}");
    let span = gpu
        .block_spans(probe_id)
        .iter()
        .find(|s| s.sm.index() == probe_sm)
        .copied()
        .expect("probe block placed");
    span.finished_at.expect("finished") - span.placed_at
}

/// One point of the Fig 8 / Fig 11 fraction sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakagePoint {
    /// Interferer traffic as a fraction of the probe's.
    pub fraction: f64,
    /// Probe execution time normalised to the zero-fraction run.
    pub normalized: f64,
}

/// Fig 8: the probe SM streams writes; an interferer SM issues `fraction
/// × probe` writes. Sharing a TPC mux (SM1) the probe slows linearly;
/// an SM in another TPC (SM12) leaves it flat.
pub fn leakage_sweep(
    cfg: &GpuConfig,
    interferer_sm: usize,
    fractions: &[f64],
    probe_batches: u32,
    seed: u64,
) -> Vec<LeakagePoint> {
    leakage_sweep_kind(
        cfg,
        0,
        AccessKind::Write,
        &[interferer_sm],
        AccessKind::Write,
        fractions,
        probe_batches,
        seed,
    )
}

/// Fig 11's generalised form: arbitrary probe/interferer SM sets and
/// access kinds.
#[allow(clippy::too_many_arguments)]
pub fn leakage_sweep_kind(
    cfg: &GpuConfig,
    probe_sm: usize,
    probe_kind: AccessKind,
    interferer_sms: &[usize],
    interferer_kind: AccessKind,
    fractions: &[f64],
    probe_batches: u32,
    seed: u64,
) -> Vec<LeakagePoint> {
    let base = probe_with_interferer(
        cfg,
        probe_sm,
        probe_kind,
        probe_batches,
        interferer_sms,
        interferer_kind,
        0,
        seed,
    ) as f64;
    // Each fraction is an independent GPU trial — fan out on the pool.
    gnc_common::par::parallel_map(fractions, |&f| {
        let batches = (f * f64::from(probe_batches)).round() as u32;
        let t = probe_with_interferer(
            cfg,
            probe_sm,
            probe_kind,
            probe_batches,
            interferer_sms,
            interferer_kind,
            batches,
            seed,
        ) as f64;
        LeakagePoint {
            fraction: f,
            normalized: t / base,
        }
    })
}

/// Fig 12 (operationalised): channel error rate versus requests per
/// access under heavy intra-slot jitter. With a single request per
/// access the sender/receiver bursts rarely overlap; with 32 they almost
/// always do.
pub fn alignment_sweep(
    cfg: &GpuConfig,
    requests: &[u32],
    payload_bits: usize,
    seed: u64,
) -> Vec<(u32, f64)> {
    requests
        .iter()
        .map(|&r| {
            let mut proto = ProtocolConfig::tpc(1);
            proto.requests_per_access = r;
            // Misalignment: a bounded launch/scheduling skew of the
            // order of a burst length, as in Fig 12's illustration — a
            // few tens of cycles either way between the sender's and
            // receiver's request trains.
            proto.jitter_cycles = proto.slot_cycles / 16;
            let plan = ChannelPlan::tpc(cfg, proto, &[0]);
            let mut rng = experiment_rng("alignment", seed ^ u64::from(r));
            let payload = BitVec::random(&mut rng, payload_bits);
            let report = plan.transmit(cfg, &payload, seed ^ u64::from(r));
            (r, report.error_rate)
        })
        .collect()
}

/// §5 "Impact of Noise": the effect of a third, unrelated kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseImpact {
    /// Channel error without the third kernel.
    pub clean_error: f64,
    /// Channel error with an L2-thrashing third kernel co-resident.
    pub noisy_error: f64,
    /// L2 misses observed during the noisy run (evidence the covert
    /// working set was evicted to DRAM).
    pub noisy_l2_misses: u64,
}

/// §5: runs the TPC channel with and without a third kernel that streams
/// a multi-megabyte working set through the L2 from every other SM. The
/// paper: "if a third kernel shares the L2 capacity and causes the
/// covert channel kernels to access the main memory, the noise from
/// main memory accesses will become dominant".
pub fn third_kernel_noise(cfg: &GpuConfig, payload_bits: usize, seed: u64) -> NoiseImpact {
    let proto = ProtocolConfig::tpc(4);
    let plan = ChannelPlan::tpc(cfg, proto, &[0]);
    let mut rng = experiment_rng("third-kernel", seed);
    let payload = BitVec::random(&mut rng, payload_bits);

    let clean_error = plan.transmit(cfg, &payload, seed).error_rate;

    let mut gpu = gnc_sim::pooled_gpu(cfg, seed, None).expect("valid config");
    // The third kernel: every SM except the covert pair streams reads
    // over a working set far larger than its L2 share, evicting the
    // covert channel's preloaded lines throughout the transmission.
    let mut noise_cfg = StreamConfig::writer(cfg.num_sms(), 2, 300);
    noise_cfg.kind = AccessKind::Read;
    noise_cfg.target_sms = Some((2..cfg.num_sms()).step_by(2).collect());
    noise_cfg.base_addr = 0x4000_0000;
    noise_cfg.region_lines = 512;
    let noise_kernel = StreamKernel::new(noise_cfg, cfg);
    gpu.launch(Box::new(noise_kernel), StreamId::new(2));
    let report = plan.transmit_on(&mut gpu, &payload, seed);
    NoiseImpact {
        clean_error,
        noisy_error: report.error_rate,
        noisy_l2_misses: gpu.memory().total_stats().misses,
    }
}

/// Fig 13: channel error rate for every (sender, receiver) coalescing
/// combination. Row-major: `[uncoalesced sender?][uncoalesced receiver?]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoalescingMatrix {
    /// error[(s, r)] where `true` = uncoalesced.
    pub coalesced_both: f64,
    /// Coalesced sender, uncoalesced receiver.
    pub coalesced_sender_only: f64,
    /// Uncoalesced sender, coalesced receiver.
    pub coalesced_receiver_only: f64,
    /// Both uncoalesced (the paper's working configuration, ~0.1 %).
    pub uncoalesced_both: f64,
}

/// Fig 13: runs the TPC channel under all four coalescing combinations.
pub fn coalescing_matrix(
    cfg: &GpuConfig,
    iterations: u32,
    payload_bits: usize,
    seed: u64,
) -> CoalescingMatrix {
    let run = |sender_unc: bool, recv_unc: bool| -> f64 {
        let mut proto = ProtocolConfig::tpc(iterations);
        proto.sender_uncoalesced = sender_unc;
        proto.receiver_uncoalesced = recv_unc;
        // The paper's error bars include real-machine timing noise;
        // emulate the warp-scheduler jitter component.
        proto.jitter_cycles = 64;
        let plan = ChannelPlan::tpc(cfg, proto, &[0]);
        let mut rng = experiment_rng(
            "coalescing",
            seed ^ (u64::from(sender_unc) << 1) ^ u64::from(recv_unc),
        );
        let payload = BitVec::random(&mut rng, payload_bits);
        plan.transmit(cfg, &payload, seed).error_rate
    };
    CoalescingMatrix {
        coalesced_both: run(false, false),
        coalesced_sender_only: run(false, true),
        coalesced_receiver_only: run(true, false),
        uncoalesced_both: run(true, true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn volta() -> GpuConfig {
        GpuConfig::volta_v100()
    }

    #[test]
    fn fig5a_writes_double_reads_do_not() {
        let cfg = volta();
        let c = tpc_contention(&cfg, 30, 1);
        assert!(
            (1.8..2.2).contains(&c.write_slowdown),
            "write {}",
            c.write_slowdown
        );
        assert!(c.read_slowdown < 1.25, "read {}", c.read_slowdown);
    }

    #[test]
    fn fig5b_reads_contend_past_three_tpcs_writes_stay_small() {
        let cfg = volta();
        let members = cfg.tpcs_of_gpc(gnc_common::ids::GpcId::new(0));
        let c = gpc_contention(&cfg, &members, 24, 2);
        assert_eq!(c.read_slowdown.len(), 7);
        // Reads: flat through 3 active TPCs…
        for n in 0..3 {
            assert!(
                c.read_slowdown[n] < 1.15,
                "read n={} slowdown {}",
                n + 1,
                c.read_slowdown[n]
            );
        }
        // …and ≈2.1–2.4× at 7 (paper: 2.14×).
        assert!(
            (1.9..2.6).contains(&c.read_slowdown[6]),
            "read n=7 slowdown {}",
            c.read_slowdown[6]
        );
        // Writes: bounded by the GPC speedup (paper: ~15 %).
        assert!(
            c.write_slowdown[6] < 1.35,
            "write n=7 slowdown {}",
            c.write_slowdown[6]
        );
        assert!(
            c.write_slowdown[6] > 1.05,
            "writes should show mild contention"
        );
    }

    #[test]
    fn fig8_sibling_scales_linearly_distant_sm_flat() {
        let cfg = volta();
        let fractions = [0.25, 0.5, 0.75, 1.0];
        let sibling = leakage_sweep(&cfg, 1, &fractions, 40, 3);
        let distant = leakage_sweep(&cfg, 12, &fractions, 40, 3);
        // Sibling: roughly 1 + f.
        for p in &sibling {
            let expected = 1.0 + p.fraction;
            assert!(
                (p.normalized - expected).abs() < 0.25,
                "sibling f={} normalized {} (expected ≈{expected})",
                p.fraction,
                p.normalized
            );
        }
        // Distant SM: flat within 10 %.
        for p in &distant {
            assert!(
                p.normalized < 1.1,
                "distant f={} normalized {}",
                p.fraction,
                p.normalized
            );
        }
    }

    #[test]
    fn fig11_gpc_slope_much_shallower_than_tpc() {
        let cfg = volta();
        let members = cfg.tpcs_of_gpc(gnc_common::ids::GpcId::new(0));
        let same_gpc: Vec<usize> = members[1..6].iter().map(|t| 2 * t.index()).collect();
        let other_gpc: Vec<usize> = [1usize, 7, 13, 19, 25].iter().map(|&t| 2 * t).collect();
        let fractions = [0.5, 1.0];
        let same = leakage_sweep_kind(
            &cfg,
            0,
            AccessKind::Read,
            &same_gpc,
            AccessKind::Read,
            &fractions,
            40,
            5,
        );
        let diff = leakage_sweep_kind(
            &cfg,
            0,
            AccessKind::Read,
            &other_gpc,
            AccessKind::Read,
            &fractions,
            40,
            5,
        );
        // Same-GPC senders measurably slow the probe; different-GPC do
        // not. Per sender SM, the GPC slope is much shallower than the
        // TPC channel's 1+f (five senders produce less than five TPC
        // siblings' worth of slowdown — the speedup absorbs most of it).
        assert!(
            same[1].normalized > diff[1].normalized + 0.03,
            "same {} vs diff {}",
            same[1].normalized,
            diff[1].normalized
        );
        let per_sender_slope = (same[1].normalized - 1.0) / 5.0;
        assert!(
            per_sender_slope < 0.6,
            "per-sender GPC slope {per_sender_slope} not shallower than TPC's ~1.0"
        );
        assert!(
            diff[1].normalized < 1.1,
            "different-GPC must be flat: {}",
            diff[1].normalized
        );
    }

    #[test]
    fn fig12_more_requests_more_robust() {
        let cfg = volta();
        let sweep = alignment_sweep(&cfg, &[1, 32], 48, 6);
        let err_1 = sweep[0].1;
        let err_32 = sweep[1].1;
        assert!(
            err_1 > err_32 + 0.1,
            "single-request error {err_1} should far exceed 32-request error {err_32}"
        );
        assert!(err_32 < 0.20, "32-request error {err_32}");
    }

    #[test]
    fn third_kernel_raises_error_via_l2_eviction() {
        let cfg = volta();
        let impact = third_kernel_noise(&cfg, 24, 9);
        assert!(
            impact.clean_error < 0.05,
            "clean error {}",
            impact.clean_error
        );
        assert!(
            impact.noisy_error > impact.clean_error,
            "third kernel should hurt: clean {} noisy {}",
            impact.clean_error,
            impact.noisy_error
        );
        assert!(impact.noisy_l2_misses > 1_000, "expected L2 thrashing");
    }

    #[test]
    fn fig13_coalesced_sender_kills_the_channel() {
        let cfg = volta();
        let m = coalescing_matrix(&cfg, 4, 48, 7);
        // Coalesced sender: no usable channel (paper: >50 % error; in
        // the model the residual 5-flit-per-instruction trickle leaves a
        // sliver of signal, so "dead" reads as ≥ ~25 % on random data).
        assert!(
            m.coalesced_both > 0.25,
            "coalesced-sender error {}",
            m.coalesced_both
        );
        assert!(
            m.coalesced_sender_only > 0.25,
            "coalesced-sender error {}",
            m.coalesced_sender_only
        );
        // Fully uncoalesced: near-perfect.
        assert!(
            m.uncoalesced_both < 0.05,
            "uncoalesced error {}",
            m.uncoalesced_both
        );
        // Coalesced receiver with uncoalesced sender: worse than fully
        // uncoalesced (paper: ~10 % vs ~0.1 %).
        assert!(
            m.coalesced_receiver_only >= m.uncoalesced_both,
            "receiver coalescing should not improve the channel"
        );
    }
}
