//! Secure arbitration (§6, Fig 15).
//!
//! The covert channel exists because round-robin arbitration is only
//! *locally* fair: a lone requester gets the whole channel, so the
//! receiver observes the sender's demand. This module evaluates the
//! §6 alternatives on the simulator the same way the paper does on
//! GPGPU-Sim + BookSim:
//!
//! * [`arbitration_sweep`] — Fig 15: SM0's normalised execution time as
//!   SM1's traffic fraction grows, under RR / CRR / SRR (and age-based).
//!   RR and CRR rise linearly; SRR is flat.
//! * [`channel_error_under`] — the end-to-end check: the actual covert
//!   channel collapses to coin-flipping under SRR.
//! * [`srr_overhead`] — the §6 cost analysis: up to ~2× bandwidth loss
//!   for memory-intensive workloads, negligible for compute-intensive.

use crate::channel::ChannelPlan;
use crate::characterize::{leakage_sweep, LeakagePoint};
use crate::protocol::ProtocolConfig;
use crate::reverse::run_active_sms;
use gnc_common::bits::BitVec;
use gnc_common::config::{Arbitration, SchedulerPolicy};
use gnc_common::ids::StreamId;
use gnc_common::rng::experiment_rng;
use gnc_common::GpuConfig;
use gnc_sim::kernel::AccessKind;
use gnc_sim::workloads::ComputeKernel;
use serde::{Deserialize, Serialize};

/// Fig 15 result set: one fraction sweep per arbitration policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArbitrationSweep {
    /// `(policy, points)` in the order the policies were given.
    pub curves: Vec<(Arbitration, Vec<LeakagePoint>)>,
}

/// Fig 15: for each policy, run the SM0-vs-SM1 fraction sweep. Each
/// curve is normalised to its own zero-fraction run (so SRR's constant
/// halved bandwidth reads as a flat 1.0, as in the paper's figure).
///
/// ```no_run
/// use gnc_common::config::Arbitration;
/// use gnc_common::GpuConfig;
/// use gnc_covert::countermeasure::arbitration_sweep;
///
/// let cfg = GpuConfig::volta_v100();
/// let sweep = arbitration_sweep(&cfg, &Arbitration::ALL, &[0.5, 1.0], 40, 0);
/// for (policy, points) in &sweep.curves {
///     println!("{}: {:?}", policy.label(), points);
/// }
/// ```
pub fn arbitration_sweep(
    cfg: &GpuConfig,
    policies: &[Arbitration],
    fractions: &[f64],
    probe_batches: u32,
    seed: u64,
) -> ArbitrationSweep {
    let curves = policies
        .iter()
        .map(|&policy| {
            let mut cfg = cfg.clone();
            cfg.noc.arbitration = policy;
            (
                policy,
                leakage_sweep(&cfg, 1, fractions, probe_batches, seed),
            )
        })
        .collect();
    ArbitrationSweep { curves }
}

/// Runs the TPC covert channel under `policy` and returns the payload
/// error rate: ≈0 under RR/CRR/age-based, ≈0.5 (dead channel) under SRR.
pub fn channel_error_under(
    cfg: &GpuConfig,
    policy: Arbitration,
    payload_bits: usize,
    seed: u64,
) -> f64 {
    let mut cfg = cfg.clone();
    cfg.noc.arbitration = policy;
    let plan = ChannelPlan::tpc(&cfg, ProtocolConfig::tpc(4), &[0]);
    let mut rng = experiment_rng("arb-channel", seed ^ policy as u64);
    let payload = BitVec::random(&mut rng, payload_bits);
    plan.transmit(&cfg, &payload, seed).error_rate
}

/// Runs the TPC covert channel under a block-scheduler `policy`.
/// Under [`SchedulerPolicy::StreamIsolated`] the spy can never co-locate
/// with the trojan's TPC, so its gated blocks land elsewhere and exit —
/// the channel collapses to guessing. This is the §6 "alternative thread
/// block scheduling" countermeasure (GPUGuard-style partitioning).
pub fn channel_error_under_scheduler(
    cfg: &GpuConfig,
    policy: SchedulerPolicy,
    payload_bits: usize,
    seed: u64,
) -> f64 {
    let mut cfg = cfg.clone();
    cfg.scheduler = policy;
    let plan = ChannelPlan::tpc(&cfg, ProtocolConfig::tpc(4), &[0]);
    let mut rng = experiment_rng("sched-channel", seed ^ policy as u64);
    let payload = BitVec::random(&mut rng, payload_bits);
    plan.transmit(&cfg, &payload, seed).error_rate
}

/// §6's cost analysis for one workload class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Memory-intensive slowdown of SRR over RR (paper: up to ~2× — a
    /// 50–60 % performance loss).
    pub memory_intensive_slowdown: f64,
    /// Compute-intensive slowdown (paper: negligible).
    pub compute_intensive_slowdown: f64,
}

/// Measures the SRR performance cost against the RR baseline for a
/// memory-intensive streaming workload and a compute-only workload.
pub fn srr_overhead(cfg: &GpuConfig, batches: u32, seed: u64) -> OverheadReport {
    let mem_time = |policy: Arbitration| -> f64 {
        let mut cfg = cfg.clone();
        cfg.noc.arbitration = policy;
        run_active_sms(&cfg, &[0], AccessKind::Write, 4, batches, seed)[0].1 as f64
    };
    let compute_time = |policy: Arbitration| -> f64 {
        let mut cfg = cfg.clone();
        cfg.noc.arbitration = policy;
        let mut gpu = gnc_sim::pooled_gpu(&cfg, seed, None).expect("valid config");
        let k = gpu.launch(Box::new(ComputeKernel::new(2, 4, 5_000)), StreamId::new(0));
        let outcome = gpu.run_until_idle(100_000);
        assert!(outcome.is_idle(), "compute kernel did not finish");
        let (s, e) = gpu.kernel_span(k);
        let (s, e) = (
            s.expect("idle run implies a start cycle"),
            e.expect("idle run implies an end cycle"),
        );
        (e - s) as f64
    };
    OverheadReport {
        memory_intensive_slowdown: mem_time(Arbitration::StrictRoundRobin)
            / mem_time(Arbitration::RoundRobin),
        compute_intensive_slowdown: compute_time(Arbitration::StrictRoundRobin)
            / compute_time(Arbitration::RoundRobin),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn volta() -> GpuConfig {
        GpuConfig::volta_v100()
    }

    #[test]
    fn fig15_rr_and_crr_rise_srr_flat() {
        let cfg = volta();
        let sweep = arbitration_sweep(
            &cfg,
            &[
                Arbitration::RoundRobin,
                Arbitration::CoarseRoundRobin,
                Arbitration::StrictRoundRobin,
            ],
            &[0.5, 1.0],
            40,
            1,
        );
        let curve = |p: Arbitration| -> &Vec<LeakagePoint> {
            &sweep.curves.iter().find(|(q, _)| *q == p).unwrap().1
        };
        let rr = curve(Arbitration::RoundRobin);
        let crr = curve(Arbitration::CoarseRoundRobin);
        let srr = curve(Arbitration::StrictRoundRobin);
        // RR and CRR: ≈ 1 + f.
        assert!(
            (rr[1].normalized - 2.0).abs() < 0.25,
            "RR {}",
            rr[1].normalized
        );
        assert!(
            (crr[1].normalized - 2.0).abs() < 0.25,
            "CRR {}",
            crr[1].normalized
        );
        // SRR: flat to within ~10 % — the request-channel observable is
        // gone (a small residue remains through the unsecured write-ack
        // reply path, which the paper's request-side SRR also leaves).
        for p in srr {
            assert!(
                (p.normalized - 1.0).abs() < 0.10,
                "SRR f={} normalized {}",
                p.fraction,
                p.normalized
            );
        }
    }

    #[test]
    fn age_based_does_not_mitigate() {
        // §6: global fairness by age does not remove local contention.
        let cfg = volta();
        let sweep = arbitration_sweep(&cfg, &[Arbitration::AgeBased], &[1.0], 40, 2);
        let point = &sweep.curves[0].1[0];
        assert!(
            point.normalized > 1.7,
            "age-based should still leak: {}",
            point.normalized
        );
    }

    #[test]
    fn srr_kills_the_covert_channel() {
        let cfg = volta();
        let rr = channel_error_under(&cfg, Arbitration::RoundRobin, 32, 3);
        let srr = channel_error_under(&cfg, Arbitration::StrictRoundRobin, 32, 3);
        assert!(rr < 0.05, "RR error {rr}");
        assert!(
            srr > 0.30,
            "SRR must reduce the channel to guessing, got {srr}"
        );
    }

    #[test]
    fn stream_isolation_prevents_colocation_and_kills_the_channel() {
        let cfg = volta();
        let baseline =
            channel_error_under_scheduler(&cfg, SchedulerPolicy::PaperInterleaved, 32, 5);
        let isolated = channel_error_under_scheduler(&cfg, SchedulerPolicy::StreamIsolated, 32, 5);
        assert!(baseline < 0.05, "baseline error {baseline}");
        assert!(
            isolated > 0.30,
            "isolated scheduler must break co-location, got {isolated}"
        );
    }

    #[test]
    fn srr_costs_memory_workloads_not_compute() {
        let cfg = volta();
        let report = srr_overhead(&cfg, 40, 4);
        // Paper: up to 2× reduction in memory bandwidth (≈60 % loss)…
        assert!(
            (1.6..2.4).contains(&report.memory_intensive_slowdown),
            "memory slowdown {}",
            report.memory_intensive_slowdown
        );
        // …but negligible for compute-bound kernels.
        assert!(
            report.compute_intensive_slowdown < 1.05,
            "compute slowdown {}",
            report.compute_intensive_slowdown
        );
    }
}
