//! Multi-level channel communication (§5, Fig 14).
//!
//! Instead of binary contention / no-contention, the sender modulates
//! *how much* of its warp traffic is coalesced: 0 %, 25 %, 50 %, or
//! 100 % of accesses hit distinct lines (0, 8, 16, or 32 unique requests
//! per instruction), producing four distinguishable latency levels at
//! the receiver — 2 bits per slot. The paper measures ≈1.6× bandwidth
//! gain at a proportionally higher error rate.

use crate::channel::ChannelSpec;
use crate::protocol::{
    LevelAssignments, ProtocolConfig, ReceiverKernel, SenderKernel, RECEIVER_BASE, SENDER_BASE,
};
use gnc_common::bits::SymbolVec;
use gnc_common::ids::StreamId;
use gnc_common::{Cycle, GpuConfig};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Unique-lines-per-access for each 2-bit symbol value (§5: 0 %, 25 %,
/// 50 %, 100 % of the warp's accesses).
pub const SYMBOL_LEVELS: [u32; 4] = [0, 8, 16, 32];

/// Outcome of one multi-level transmission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiLevelReport {
    /// Symbols as sent.
    pub sent: SymbolVec,
    /// Symbols as decoded.
    pub received: SymbolVec,
    /// Symbol error rate.
    pub symbol_error_rate: f64,
    /// Per-slot receiver latencies (preamble included).
    pub latencies: Vec<u64>,
    /// The three calibrated decision thresholds.
    pub thresholds: [f64; 3],
    /// Bits per second achieved (2 bits per slot over the measured
    /// window).
    pub bandwidth_bps: f64,
    /// Bandwidth relative to a binary channel with the same slot length
    /// (ideal: 2.0; the paper reports ≈1.6× after protocol overheads).
    pub gain_over_binary: f64,
}

/// A single multi-level TPC channel.
#[derive(Debug, Clone)]
pub struct MultiLevelChannel {
    proto: ProtocolConfig,
    spec: ChannelSpec,
    preamble_symbols: usize,
}

impl MultiLevelChannel {
    /// A multi-level channel over one TPC (sender on the even SM,
    /// receiver on the odd SM).
    ///
    /// # Panics
    ///
    /// Panics if the protocol's preamble length is not a multiple of 4
    /// (the staircase calibration needs every level represented).
    pub fn tpc(mut proto: ProtocolConfig, tpc: usize) -> Self {
        assert_eq!(
            proto.preamble_bits % 4,
            0,
            "multi-level preamble must cycle all four levels"
        );
        // A single sender warp keeps intermediate levels below channel
        // saturation so the four contention intensities stay separable;
        // more warps would clip levels 1–3 to the same latency.
        proto.sender_warps = 1;
        let preamble_symbols = proto.preamble_bits;
        Self {
            proto,
            spec: ChannelSpec {
                label: format!("TPC{tpc}-multilevel"),
                sender_sms: vec![2 * tpc],
                receiver_sm: 2 * tpc + 1,
            },
            preamble_symbols,
        }
    }

    /// Transmits `symbols` and decodes them back.
    pub fn transmit(
        &self,
        gpu_cfg: &GpuConfig,
        symbols: &SymbolVec,
        seed: u64,
    ) -> MultiLevelReport {
        let mut gpu = gnc_sim::pooled_gpu(gpu_cfg, seed, None).expect("valid GPU config");
        let line_bytes = u64::from(gpu_cfg.mem.line_bytes);

        // Stream: calibration staircase (0,1,2,3 repeated) ++ payload.
        let mut levels: Vec<u32> = (0..self.preamble_symbols)
            .map(|i| SYMBOL_LEVELS[i % 4])
            .collect();
        levels.extend(
            symbols
                .as_slice()
                .iter()
                .map(|&s| SYMBOL_LEVELS[s as usize]),
        );
        let n_slots = levels.len();
        let levels = Arc::new(levels);
        let mut level_map = HashMap::new();
        for &sm in &self.spec.sender_sms {
            level_map.insert(sm, Arc::clone(&levels));
        }
        let level_map: LevelAssignments = Arc::new(level_map);
        let mut recv_lengths = HashMap::new();
        recv_lengths.insert(self.spec.receiver_sm, n_slots);

        let region = self.proto.region_lines();
        let sms = gpu_cfg.num_sms() as u64;
        gpu.preload_range(SENDER_BASE, sms * region);
        gpu.preload_range(RECEIVER_BASE, sms * region);

        let blocks = gpu_cfg.num_tpcs();
        let sender =
            SenderKernel::with_levels(self.proto.clone(), level_map, blocks, line_bytes, seed);
        let receiver = ReceiverKernel::new(
            self.proto.clone(),
            Arc::new(recv_lengths),
            blocks,
            line_bytes,
            seed,
        );
        gpu.launch(Box::new(sender), StreamId::new(0));
        let receiver_id = gpu.launch(Box::new(receiver), StreamId::new(1));
        let budget = u64::from(self.proto.sync_window())
            + (n_slots as u64 + 4) * u64::from(self.proto.slot_cycles) * 2
            + 50_000;
        let outcome = gpu.run_until_idle(budget);
        debug_assert!(
            outcome.is_idle(),
            "transmission did not finish: {outcome:?}"
        );

        // Collect latencies in slot order.
        let mut slots: Vec<(u32, u64, Cycle)> = gpu
            .recorder()
            .for_kernel(receiver_id)
            .filter(|r| r.sm.index() == self.spec.receiver_sm)
            .map(|r| (r.tag, r.value, r.cycle))
            .collect();
        slots.sort_by_key(|&(tag, _, _)| tag);
        let latencies: Vec<u64> = slots.iter().map(|&(_, v, _)| v).collect();

        // Calibrate: mean latency per level from the staircase preamble.
        let mut level_means = [0.0f64; 4];
        let mut level_counts = [0usize; 4];
        for (i, &l) in latencies.iter().take(self.preamble_symbols).enumerate() {
            level_means[i % 4] += l as f64;
            level_counts[i % 4] += 1;
        }
        for (m, c) in level_means.iter_mut().zip(level_counts) {
            if c > 0 {
                *m /= c as f64;
            }
        }
        let thresholds = [
            (level_means[0] + level_means[1]) / 2.0,
            (level_means[1] + level_means[2]) / 2.0,
            (level_means[2] + level_means[3]) / 2.0,
        ];
        let decoded: Vec<u8> = latencies
            .iter()
            .skip(self.preamble_symbols)
            .take(symbols.len())
            .map(|&l| {
                let l = l as f64;
                if l < thresholds[0] {
                    0
                } else if l < thresholds[1] {
                    1
                } else if l < thresholds[2] {
                    2
                } else {
                    3
                }
            })
            .collect();
        let received = SymbolVec::from_symbols(decoded);
        let symbol_error_rate = received.symbol_error_rate(symbols);

        let first = slots.first().map(|&(_, _, c)| c).unwrap_or(0);
        let last = slots.last().map(|&(_, _, c)| c).unwrap_or(0);
        let elapsed = last - first + u64::from(self.proto.slot_cycles);
        let secs = gpu_cfg.cycles_to_seconds(elapsed.max(1));
        let bits = 2.0 * n_slots as f64;
        MultiLevelReport {
            sent: symbols.clone(),
            received,
            symbol_error_rate,
            latencies,
            thresholds,
            bandwidth_bps: bits / secs,
            gain_over_binary: 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnc_common::rng::experiment_rng;

    #[test]
    fn staircase_pattern_produces_four_latency_levels() {
        let cfg = GpuConfig::volta_v100();
        let chan = MultiLevelChannel::tpc(ProtocolConfig::tpc(4), 0);
        // Fig 14's '0102030102…' staircase.
        let symbols = SymbolVec::staircase(24);
        let report = chan.transmit(&cfg, &symbols, 1);
        assert!(
            report.symbol_error_rate < 0.25,
            "staircase error {} (thr {:?}, lat {:?})",
            report.symbol_error_rate,
            report.thresholds,
            report.latencies
        );
        // The thresholds must be strictly ordered — four separated
        // levels.
        assert!(report.thresholds[0] < report.thresholds[1]);
        assert!(report.thresholds[1] < report.thresholds[2]);
    }

    #[test]
    fn random_symbols_round_trip() {
        let cfg = GpuConfig::volta_v100();
        let chan = MultiLevelChannel::tpc(ProtocolConfig::tpc(4), 3);
        let mut rng = experiment_rng("mlevel", 0);
        let symbols = SymbolVec::random(&mut rng, 32);
        let report = chan.transmit(&cfg, &symbols, 2);
        assert_eq!(report.received.len(), 32);
        assert!(
            report.symbol_error_rate < 0.30,
            "error {}",
            report.symbol_error_rate
        );
    }

    #[test]
    fn multilevel_outpaces_binary_channel() {
        // §5: ~1.6× bandwidth at equal slot length (ideal 2×; we assert
        // a real gain, not the exact constant).
        let cfg = GpuConfig::volta_v100();
        let proto = ProtocolConfig::tpc(4);
        let binary_bps = proto.bits_per_second(&cfg);
        let chan = MultiLevelChannel::tpc(proto, 0);
        let symbols = SymbolVec::staircase(24);
        let report = chan.transmit(&cfg, &symbols, 3);
        assert!(
            report.bandwidth_bps > binary_bps * 1.4,
            "multilevel {} vs binary {}",
            report.bandwidth_bps,
            binary_bps
        );
    }

    #[test]
    #[should_panic(expected = "cycle all four levels")]
    fn preamble_must_cover_all_levels() {
        let mut proto = ProtocolConfig::tpc(1);
        proto.preamble_bits = 6;
        let _ = MultiLevelChannel::tpc(proto, 0);
    }
}
