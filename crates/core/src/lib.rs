//! The paper's primary contribution: the GPU NoC interconnect covert
//! channel, end to end.
//!
//! Everything here runs against the from-scratch GPU simulator in
//! [`gnc_sim`] (the hardware substitute documented in DESIGN.md):
//!
//! * [`reverse`] — reverse engineering of the on-chip network (§3):
//!   which SMs share a TPC channel (Fig 2), which TPCs share a GPC
//!   channel (Fig 3), and recovery of the full logical→physical mapping
//!   (Fig 4) — blind, without reading the simulator's ground truth.
//! * [`sync`] — the clock-register synchronization study (§4.1, Fig 6).
//! * [`characterize`] — contention characterisation (Figs 5, 8, 11, 12).
//! * [`protocol`] — Algorithm 2: the sender/receiver warp programs, the
//!   timing-slot discipline, and clock-based resynchronisation.
//! * [`channel`] — channel orchestration: TPC channels, GPC channels,
//!   multi-channel striping, transmission, decoding, and reporting
//!   (Figs 9, 10, 13).
//! * [`encoding`] — the multi-level (2-bit) extension (§5, Fig 14).
//! * [`robust`] — the noise-hardened receiver: adaptive windowed
//!   thresholds, erasure-aware FEC, and a CRC-framed ACK/NACK
//!   retransmission loop for fault-injected runs.
//! * [`sidechannel`] — the §5 side-channel sketch: a spy metering a
//!   victim's L2 access intensity through NoC contention alone.
//! * [`baseline`] — the prior-art comparator: a serial L2 prime+probe
//!   covert channel measured on the same simulator (Table 2's contrast).
//! * [`countermeasure`] — the secure-arbitration study (§6, Fig 15) and
//!   the SRR performance-overhead analysis.
//! * [`metrics`] — report types and the Table 2 comparison generator.
//!
//! # Quickstart
//!
//! ```
//! use gnc_common::bits::BitVec;
//! use gnc_common::GpuConfig;
//! use gnc_covert::channel::ChannelPlan;
//! use gnc_covert::protocol::ProtocolConfig;
//!
//! let gpu_cfg = GpuConfig::volta_v100();
//! let proto = ProtocolConfig::tpc(4);
//! // One covert channel over TPC0 (sender on SM0, receiver on SM1).
//! let plan = ChannelPlan::tpc(&gpu_cfg, proto, &[0]);
//! let payload = BitVec::from_bytes(b"!");
//! let report = plan.transmit(&gpu_cfg, &payload, 0);
//! assert_eq!(report.received.len(), payload.len());
//! assert!(report.error_rate < 0.05, "error rate {}", report.error_rate);
//! ```

pub mod baseline;
pub mod channel;
pub mod characterize;
pub mod countermeasure;
pub mod encoding;
pub mod metrics;
pub mod protocol;
pub mod reverse;
pub mod robust;
pub mod sidechannel;
pub mod sync;

pub use channel::{
    ChannelPlan, ChannelTrace, DegradationReason, TransmissionOutcome, TransmissionReport,
};
pub use protocol::{ChannelKind, ProtocolConfig, SyncMode};
pub use robust::{
    adaptive_decode, compare_decoders, deliver, transmit_reliable, AdaptiveDecode,
    DecoderComparison, ReliableReport, RobustOptions,
};
