//! Report types and the Table 2 comparison generator.
//!
//! Table 2 of the paper qualitatively compares covert channels by shared
//! hardware, parallelism, locality, directness, synchronization, error
//! rate, and bandwidth. The prior-work rows are reproduced verbatim as
//! published; the four "this work" rows are *measured* on the simulator
//! by running the corresponding channel configurations.

use crate::baseline::PrimeProbeChannel;
use crate::channel::ChannelPlan;
use crate::protocol::ProtocolConfig;
use gnc_common::bits::BitVec;
use gnc_common::ids::GpcId;
use gnc_common::rng::experiment_rng;
use gnc_common::GpuConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Serial/parallel classification (Fig 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parallelism {
    /// Prime-then-probe style alternation.
    Serial,
    /// Sender and receiver act concurrently.
    Parallel,
}

/// Local/global resource classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Locality {
    /// Shared by co-located cores only.
    Local,
    /// Shared chip- or system-wide.
    Global,
}

/// Direct/indirect contention control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Directness {
    /// The cores control the contended resource directly.
    Direct,
    /// Contention is mediated (scheduler, pipelines, replacement state).
    Indirect,
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Work the row describes.
    pub work: String,
    /// Hardware resource exploited.
    pub shared_hw: String,
    /// Serial or parallel.
    pub parallelism: Parallelism,
    /// Local or global resource.
    pub locality: Locality,
    /// Direct or indirect control.
    pub directness: Directness,
    /// Synchronization mechanism.
    pub synchronization: String,
    /// Error rate: measured for our rows, as published for prior work
    /// (`None` where the original reports N/A).
    pub error_rate: Option<f64>,
    /// Bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// Whether the numbers were measured in this reproduction.
    pub measured_here: bool,
}

impl fmt::Display for ComparisonRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} {:<18} {:>8} {:>6} {:>8} | err {:>6} | {:>10.1} kbps{}",
            self.work,
            self.shared_hw,
            match self.parallelism {
                Parallelism::Serial => "serial",
                Parallelism::Parallel => "parallel",
            },
            match self.locality {
                Locality::Local => "local",
                Locality::Global => "global",
            },
            match self.directness {
                Directness::Direct => "direct",
                Directness::Indirect => "indirect",
            },
            self.error_rate
                .map_or("N/A".to_owned(), |e| format!("{:.2}%", e * 100.0)),
            self.bandwidth_bps / 1000.0,
            if self.measured_here {
                "  [measured]"
            } else {
                ""
            },
        )
    }
}

/// The published prior-work rows of Table 2.
pub fn prior_work_rows() -> Vec<ComparisonRow> {
    let row = |work: &str,
               hw: &str,
               par: Parallelism,
               loc: Locality,
               dir: Directness,
               sync: &str,
               err: Option<f64>,
               bps: f64| ComparisonRow {
        work: work.to_owned(),
        shared_hw: hw.to_owned(),
        parallelism: par,
        locality: loc,
        directness: dir,
        synchronization: sync.to_owned(),
        error_rate: err,
        bandwidth_bps: bps,
        measured_here: false,
    };
    vec![
        row(
            "Wu et al. [68]",
            "CPU memory bus",
            Parallelism::Parallel,
            Locality::Global,
            Directness::Direct,
            "self-clocking (diff. Manchester)",
            None,
            38_000.0,
        ),
        row(
            "DRAMA [53]",
            "DRAM row buffer",
            Parallelism::Parallel,
            Locality::Global,
            Directness::Direct,
            "wall clock / clock signal",
            Some(0.041),
            411_000.0,
        ),
        row(
            "Liu et al. [37]",
            "CPU LLC",
            Parallelism::Serial,
            Locality::Global,
            Directness::Indirect,
            "asynchronous",
            Some(0.022),
            1_200_000.0,
        ),
        row(
            "Gruss et al. [19]",
            "CPU shared memory",
            Parallelism::Serial,
            Locality::Global,
            Directness::Indirect,
            "none",
            Some(0.0084),
            3_900_000.0,
        ),
        row(
            "Sullivan et al. [62]",
            "memory order buffer",
            Parallelism::Parallel,
            Locality::Global,
            Directness::Indirect,
            "none",
            Some(0.087),
            1_490_000.0,
        ),
        row(
            "Naghibijouybari [42] L1",
            "GPU L1 cache",
            Parallelism::Serial,
            Locality::Local,
            Directness::Indirect,
            "prime+probe handshake",
            Some(0.0),
            4_250_000.0,
        ),
        row(
            "Naghibijouybari [42] SFU",
            "GPU functional unit",
            Parallelism::Parallel,
            Locality::Local,
            Directness::Indirect,
            "none",
            None,
            1_300_000.0,
        ),
        row(
            "Naghibijouybari [42] mem",
            "GPU global memory",
            Parallelism::Parallel,
            Locality::Global,
            Directness::Indirect,
            "none",
            None,
            41_000.0,
        ),
    ]
}

/// Measures the four "this work" rows (single/multi TPC, single/multi
/// GPC) on the simulator and returns the complete Table 2.
///
/// `payload_bits` trades accuracy for runtime; the GPC rows need the
/// recovered `membership` (pass the ground truth in tests or the output
/// of [`crate::reverse::recover_mapping`] in the honest pipeline).
pub fn table2(
    cfg: &GpuConfig,
    membership: &[Vec<gnc_common::ids::TpcId>],
    payload_bits: usize,
    seed: u64,
) -> Vec<ComparisonRow> {
    let mut rows = prior_work_rows();
    let mut rng = experiment_rng("table2", seed);
    let mut ours = |work: &str, hw: &str, plan: ChannelPlan, bits: usize| {
        let payload = BitVec::random(&mut rng, bits);
        let report = plan.transmit(cfg, &payload, seed);
        rows.push(ComparisonRow {
            work: work.to_owned(),
            shared_hw: hw.to_owned(),
            parallelism: Parallelism::Parallel,
            locality: Locality::Local,
            directness: Directness::Direct,
            synchronization: "hardware clock register".to_owned(),
            error_rate: Some(report.error_rate),
            bandwidth_bps: report.bandwidth_bps,
            measured_here: true,
        });
    };
    ours(
        "This work (TPC)",
        "GPU TPC channel",
        ChannelPlan::tpc(cfg, ProtocolConfig::tpc(4), &[0]),
        payload_bits,
    );
    ours(
        "This work (multi-TPC)",
        "GPU TPC channel",
        ChannelPlan::multi_tpc(cfg, ProtocolConfig::tpc(5)),
        payload_bits * 40,
    );
    ours(
        "This work (GPC)",
        "GPU GPC channel",
        ChannelPlan::gpc(cfg, ProtocolConfig::gpc(4), membership, &[0]),
        payload_bits,
    );
    let all_gpcs: Vec<usize> = (0..cfg.num_gpcs).collect();
    ours(
        "This work (multi-GPC)",
        "GPU GPC channel",
        ChannelPlan::gpc(cfg, ProtocolConfig::gpc(4), membership, &all_gpcs),
        payload_bits * 6,
    );
    // The serial cache baseline, measured on the same simulator for an
    // apples-to-apples Table 2 contrast.
    let pp = PrimeProbeChannel::default();
    let payload = BitVec::random(&mut rng, payload_bits);
    let report = pp.transmit(cfg, &payload, seed);
    rows.push(ComparisonRow {
        work: "L2 prime+probe (baseline)".to_owned(),
        shared_hw: "GPU L2 cache set".to_owned(),
        parallelism: Parallelism::Serial,
        locality: Locality::Global,
        directness: Directness::Indirect,
        synchronization: "hardware clock register".to_owned(),
        error_rate: Some(report.error_rate),
        bandwidth_bps: report.bandwidth_bps,
        measured_here: true,
    });
    rows
}

/// Ground-truth membership helper for tests and the harness when the
/// caller skips the reverse-engineering step.
pub fn ground_truth_membership(cfg: &GpuConfig) -> Vec<Vec<gnc_common::ids::TpcId>> {
    (0..cfg.num_gpcs)
        .map(|g| cfg.tpcs_of_gpc(GpcId::new(g)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_rows_match_published_table() {
        let rows = prior_work_rows();
        assert_eq!(rows.len(), 8);
        let drama = rows.iter().find(|r| r.work.starts_with("DRAMA")).unwrap();
        assert_eq!(drama.bandwidth_bps, 411_000.0);
        assert_eq!(drama.error_rate, Some(0.041));
        assert!(!drama.measured_here);
    }

    #[test]
    fn table2_measures_four_own_rows() {
        let cfg = GpuConfig::volta_v100();
        let membership = ground_truth_membership(&cfg);
        let rows = table2(&cfg, &membership, 16, 1);
        let ours: Vec<&ComparisonRow> = rows.iter().filter(|r| r.measured_here).collect();
        assert_eq!(ours.len(), 5);
        for row in &ours {
            assert!(row.bandwidth_bps > 0.0, "{}: zero bandwidth", row.work);
            assert!(row.error_rate.is_some());
        }
        // The multi-TPC row is the headline: it must beat every prior row.
        let multi_tpc = ours
            .iter()
            .find(|r| r.work.contains("multi-TPC"))
            .expect("multi-TPC row");
        let best_prior = rows
            .iter()
            .filter(|r| !r.measured_here)
            .map(|r| r.bandwidth_bps)
            .fold(0.0f64, f64::max);
        assert!(
            multi_tpc.bandwidth_bps > best_prior,
            "multi-TPC {} must exceed best prior {}",
            multi_tpc.bandwidth_bps,
            best_prior
        );
    }

    #[test]
    fn row_display_is_informative() {
        let rows = prior_work_rows();
        let s = rows[0].to_string();
        assert!(s.contains("Wu et al."));
        assert!(s.contains("kbps"));
    }
}
