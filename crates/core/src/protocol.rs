//! Algorithm 2: the interconnect covert-channel protocol.
//!
//! A transmission is a sequence of timing slots of `T` cycles, agreed
//! between sender and receiver in advance. In every slot the receiver
//! issues a burst of L2 accesses and times it; the sender either floods
//! the shared channel (bit `1`) or stays silent (bit `0`). Both sides
//! pace themselves on their local 32-bit clock register: its low bits
//! mark the slot boundaries, and — because co-located SMs have almost no
//! clock skew (§4.1) — no explicit handshake is ever needed.
//!
//! Two pacing disciplines are implemented, matching Fig 9. Slot pacing
//! is a software busy-wait whose lateness is quantized by the pacing
//! loop's iteration cost (a [`ProtocolConfig`] parameter), and the two
//! kernels' loops differ — so the per-slot lateness *differential*
//! accumulates:
//!
//! * [`SyncMode::SlotOnly`] — after the initial alignment, each side
//!   counts `T` cycles per slot locally; the differential drift (and any
//!   slot overrun) accumulates until `1`s read as no-contention —
//!   Fig 9(a).
//! * [`SyncMode::ClockAligned`] — the same, but every `sync_period` bits
//!   both sides re-align on the clock's low bits
//!   (`clock & (sync_period·T − 1) == 0`), resetting accumulated error —
//!   Fig 9(b). Initial alignment is two-step (window midpoint, then
//!   boundary) so that launching right on a boundary cannot leave the
//!   two sides a full window apart.

use gnc_common::config::GpuConfig;
use gnc_common::ids::{BlockId, WarpId};
use gnc_common::rng::experiment_rng;
use gnc_sim::kernel::{AccessKind, KernelProgram, WarpContext, WarpProgram, WarpStep};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Base byte address of the senders' preloaded working set.
pub const SENDER_BASE: u64 = 0;
/// Base byte address of the receivers' preloaded working set.
pub const RECEIVER_BASE: u64 = 0x0100_0000;

/// Which hierarchical channel the protocol runs over (§4.4 vs §4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelKind {
    /// Two SMs of one TPC; contention weapon: **writes** (§3.4).
    Tpc,
    /// TPCs of one GPC; contention weapon: **reads** (§3.4).
    Gpc,
}

impl ChannelKind {
    /// The memory access direction the **sender** floods with — the
    /// access type that actually produces contention on this channel
    /// (§3.4): writes saturate the TPC request channel, reads saturate
    /// the GPC reply channel.
    pub fn access_kind(self) -> AccessKind {
        match self {
            ChannelKind::Tpc => AccessKind::Write,
            ChannelKind::Gpc => AccessKind::Read,
        }
    }

    /// The access direction the **receiver** measures with — the same
    /// weapon as the sender's (§3.4): the TPC receiver times *stores*
    /// (their 2-flit request packets are what the shared request channel
    /// serialises, so their completion time exposes the contention),
    /// while the GPC receiver times *loads* (its read replies share the
    /// GPC reply channel with the senders'). A TPC receiver timing loads
    /// instead would learn nothing: a load burst's latency is dominated
    /// by its own reply ejection, which the sender cannot touch.
    pub fn receiver_kind(self) -> AccessKind {
        match self {
            ChannelKind::Tpc => AccessKind::Write,
            ChannelKind::Gpc => AccessKind::Read,
        }
    }

    /// Default sender warp count. The paper activates 5 warps for the
    /// TPC sender and 8 per SM for the GPC sender (to overcome the GPC
    /// bandwidth speedup, §4.5). In this model a *single* TPC sender
    /// warp already saturates the shared channel for the whole
    /// measurement window (its LSU feeds 2-flit packets into a
    /// 1-flit/cycle channel), and the GPC sender — which runs on up to
    /// six SMs simultaneously — needs only 2 warps per SM. See DESIGN.md
    /// for the bandwidth-scale argument.
    pub fn default_sender_warps(self) -> usize {
        match self {
            ChannelKind::Tpc => 1,
            ChannelKind::Gpc => 2,
        }
    }
}

/// Slot pacing discipline (Fig 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncMode {
    /// Count `T` cycles per slot locally; drift accumulates.
    SlotOnly,
    /// Re-align on the clock's low bits every `sync_period` bits.
    ClockAligned {
        /// Bits between re-alignments (power of two).
        sync_period: u32,
    },
}

/// Full parameterisation of one covert-channel transmission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Channel level (TPC or GPC).
    pub kind: ChannelKind,
    /// Timing slot length `T` in cycles (power of two so slot boundaries
    /// are visible in the clock's low bits).
    pub slot_cycles: u32,
    /// Memory operations per bit ("iterations", Fig 10's x-axis): each
    /// receiver measurement and each sender flood burst comprises
    /// `iterations × requests_per_access` accesses.
    pub iterations: u32,
    /// Warps the sender runs per SM.
    pub sender_warps: usize,
    /// Iterations per sender burst when different from the receiver's
    /// (`None` = same) — lets experiments shape the sender's flood
    /// independently of the receiver's measurement depth.
    pub sender_iterations: Option<u32>,
    /// Busy-wait loop granularity of the sender's pacing code, in
    /// cycles. Slot pacing is a software loop
    /// (`while (clock() - start < T);`) whose wait lands on the next
    /// loop-iteration boundary, so each slot starts up to one iteration
    /// late. The two sides' loop bodies differ, so their granularities
    /// differ — and under [`SyncMode::SlotOnly`] the *differential*
    /// lateness accumulates into the drift of Fig 9(a); periodic
    /// re-alignment on the clock register (Fig 9(b)) resets it.
    pub sender_pacing_quantum: u32,
    /// Busy-wait loop granularity of the receiver's pacing code.
    pub receiver_pacing_quantum: u32,
    /// Pacing discipline.
    pub mode: SyncMode,
    /// Whether the sender's accesses are uncoalesced (32 lines per
    /// instruction) or coalesced (1 line) — Fig 13's knob.
    pub sender_uncoalesced: bool,
    /// Same knob for the receiver.
    pub receiver_uncoalesced: bool,
    /// Accesses per memory instruction (SIMT width, 32).
    pub requests_per_access: u32,
    /// Maximum random delay of the receiver's measurement within its
    /// slot, modelling warp-scheduling non-determinism (Fig 12's
    /// alignment problem).
    pub jitter_cycles: u32,
    /// Alternating `0101…` calibration bits prepended to every channel's
    /// stream; the decoder derives its latency threshold from them.
    pub preamble_bits: usize,
    /// Mean of the exponential measurement-interference noise added to
    /// every recorded latency. Real GPUs overlay the deterministic
    /// contention signal with scheduler/DRAM-refresh/pipeline
    /// interference whose tail is well modelled as exponential; a mean
    /// of 16 cycles reproduces Fig 10(a)'s error-vs-iterations curve
    /// (error ≈ e^(−margin/mean): ~13 % at 1 iteration, ~0 at 4).
    pub noise_mean_cycles: u32,
    /// Estimated uncontended burst duration (pacing pad and sender
    /// stagger).
    pub nominal_batch_cycles: u32,
    /// Cycles before the slot end at which the sender stops issuing new
    /// bursts so it does not bleed into the next slot.
    pub guard_cycles: u32,
}

impl ProtocolConfig {
    fn auto(kind: ChannelKind, iterations: u32) -> Self {
        let iterations = iterations.max(1);
        let warps = kind.default_sender_warps() as u32;
        // One uncontended burst serialises 2 flits × 32 packets × k on a
        // 1 flit/cycle channel (scattered 4-byte accesses); under
        // contention the receiver gets half the channel. The slot must
        // also fit the sender's aggregate burst (warps × 64k flits
        // sharing the channel with the receiver), plus the ~200-cycle L2
        // round trip and margin for jitter.
        let nominal = 64 * iterations + 220;
        let contended = 128 * iterations + 300;
        let sender_span = match kind {
            // TPC: sender warps + the receiver share one 1 flit/cycle
            // channel.
            ChannelKind::Tpc => (warps + 1) * 64 * iterations + 300,
            // GPC: up to six sender SMs' read replies drain through the
            // 3 flit/cycle GPC reply channel.
            ChannelKind::Gpc => 6 * warps * 64 * iterations / 3 + 300,
        };
        let slot_cycles = contended.max(sender_span).next_power_of_two();
        Self {
            kind,
            slot_cycles,
            iterations,
            sender_warps: kind.default_sender_warps(),
            sender_iterations: None,
            sender_pacing_quantum: 12,
            receiver_pacing_quantum: 8,
            mode: SyncMode::ClockAligned { sync_period: 8 },
            sender_uncoalesced: true,
            receiver_uncoalesced: true,
            requests_per_access: 32,
            jitter_cycles: 24,
            preamble_bits: 16,
            noise_mean_cycles: 16,
            nominal_batch_cycles: nominal,
            guard_cycles: nominal,
        }
    }

    /// TPC-channel defaults for the given iteration count (§4.4).
    pub fn tpc(iterations: u32) -> Self {
        Self::auto(ChannelKind::Tpc, iterations)
    }

    /// GPC-channel defaults for the given iteration count (§4.5).
    pub fn gpc(iterations: u32) -> Self {
        Self::auto(ChannelKind::Gpc, iterations)
    }

    /// The clock window used for initial (and periodic, in
    /// [`SyncMode::ClockAligned`]) alignment.
    pub fn sync_window(&self) -> u32 {
        match self.mode {
            SyncMode::ClockAligned { sync_period } => {
                self.slot_cycles * sync_period.max(1).next_power_of_two()
            }
            // Slot-only still aligns once at the start; use a window wide
            // enough that both kernels arrive within one period.
            SyncMode::SlotOnly => self.slot_cycles * 64,
        }
    }

    /// Cache lines each sender/receiver burst region spans.
    pub fn region_lines(&self) -> u64 {
        u64::from(self.iterations) * u64::from(self.requests_per_access).max(1)
    }

    /// Raw channel rate in bits per second at `core_clock_hz`, before
    /// errors: one bit per slot.
    pub fn bits_per_second(&self, cfg: &GpuConfig) -> f64 {
        cfg.core_clock_hz as f64 / f64::from(self.slot_cycles)
    }

    /// Builds the burst address list for one bit's worth of accesses.
    ///
    /// `levels` scales the number of *distinct lines per access* for the
    /// multi-level channel (§5): 32 = fully uncoalesced, 8 = 25 %, 1 =
    /// coalesced, 0 = silent.
    pub fn burst_addresses(
        &self,
        base: u64,
        uncoalesced: bool,
        line_bytes: u64,
        unique_per_access: u32,
    ) -> Vec<u64> {
        let requests = u64::from(self.requests_per_access.max(1));
        let mut addrs = Vec::with_capacity((self.iterations * self.requests_per_access) as usize);
        for it in 0..u64::from(self.iterations) {
            let it_base = base + it * requests * line_bytes;
            if uncoalesced {
                // Spread the warp's accesses over `unique_per_access`
                // distinct lines (32 = fully uncoalesced; 8/16 = the §5
                // multi-level dials): many small packets.
                let lines = u64::from(unique_per_access.min(self.requests_per_access)).max(1);
                for r in 0..requests {
                    let line = r % lines;
                    let word = r / lines;
                    addrs.push(it_base + line * line_bytes + word * 4);
                }
            } else {
                // Fully coalesced: every access falls in one line → a
                // single full-line packet per instruction.
                for r in 0..requests {
                    addrs.push(it_base + r * 4);
                }
            }
        }
        addrs
    }
}

/// Per-SM channel assignment shared by a kernel's warps.
///
/// Maps the SM index (learned from `%smid` at runtime) to the bit stream
/// that channel carries. SMs not in the map exit immediately.
pub type Assignments = Arc<HashMap<usize, Arc<Vec<bool>>>>;

/// The sender (trojan) kernel: one block per TPC, warps flood the shared
/// channel during `1` slots.
pub struct SenderKernel {
    proto: ProtocolConfig,
    assignments: Assignments,
    /// Multi-level extension (§5): per-SM symbol schedules expressed as
    /// distinct-lines-per-access; overrides `assignments` when set.
    levels: Option<LevelAssignments>,
    blocks: usize,
    line_bytes: u64,
    seed: u64,
}

/// Per-SM multi-level schedules: SM index → per-slot contention level
/// (distinct lines per access; 0 = silent).
pub type LevelAssignments = Arc<HashMap<usize, Arc<Vec<u32>>>>;

impl SenderKernel {
    /// Builds the sender for `blocks` thread blocks over `assignments`.
    pub fn new(
        proto: ProtocolConfig,
        assignments: Assignments,
        blocks: usize,
        line_bytes: u64,
        seed: u64,
    ) -> Self {
        Self {
            proto,
            assignments,
            levels: None,
            blocks,
            line_bytes,
            seed,
        }
    }

    /// Builds a multi-level sender (§5): each slot's contention level is
    /// taken from `levels` instead of a binary bit stream.
    pub fn with_levels(
        proto: ProtocolConfig,
        levels: LevelAssignments,
        blocks: usize,
        line_bytes: u64,
        seed: u64,
    ) -> Self {
        Self {
            proto,
            assignments: Arc::new(HashMap::new()),
            levels: Some(levels),
            blocks,
            line_bytes,
            seed,
        }
    }
}

impl KernelProgram for SenderKernel {
    fn name(&self) -> &str {
        "covert-sender"
    }

    fn num_blocks(&self) -> usize {
        self.blocks
    }

    fn warps_per_block(&self) -> usize {
        self.proto.sender_warps
    }

    fn create_warp(&self, _block: BlockId, warp: WarpId) -> Box<dyn WarpProgram> {
        let _ = warp;
        Box::new(SenderWarp {
            proto: self.proto.clone(),
            assignments: Arc::clone(&self.assignments),
            level_map: self.levels.clone(),
            line_bytes: self.line_bytes,
            stagger: 0,
            bits: None,
            levels: None,
            bit_idx: 0,
            slot_anchor: 0,
            phase: Phase::Resolve,
            _seed: self.seed,
        })
    }
}

/// The receiver (spy) kernel: one block per TPC, a single measuring warp.
pub struct ReceiverKernel {
    proto: ProtocolConfig,
    /// SM index → number of bits to receive.
    lengths: Arc<HashMap<usize, usize>>,
    blocks: usize,
    line_bytes: u64,
    seed: u64,
}

impl ReceiverKernel {
    /// Builds the receiver for `blocks` thread blocks; `lengths` maps
    /// each receiving SM to its stream length.
    pub fn new(
        proto: ProtocolConfig,
        lengths: Arc<HashMap<usize, usize>>,
        blocks: usize,
        line_bytes: u64,
        seed: u64,
    ) -> Self {
        Self {
            proto,
            lengths,
            blocks,
            line_bytes,
            seed,
        }
    }
}

impl KernelProgram for ReceiverKernel {
    fn name(&self) -> &str {
        "covert-receiver"
    }

    fn num_blocks(&self) -> usize {
        self.blocks
    }

    fn warps_per_block(&self) -> usize {
        1
    }

    fn create_warp(&self, block: BlockId, _warp: WarpId) -> Box<dyn WarpProgram> {
        Box::new(ReceiverWarp {
            proto: self.proto.clone(),
            lengths: Arc::clone(&self.lengths),
            line_bytes: self.line_bytes,
            n_bits: None,
            bit_idx: 0,
            slot_anchor: 0,
            phase: Phase::Resolve,
            rng: experiment_rng("receiver-jitter", self.seed ^ (block.index() as u64) << 8),
        })
    }
}

/// Computes the busy-wait sleep to the next slot boundary, rounded up
/// to the pacing loop's iteration `quantum`, and the resulting (possibly
/// drifted) anchor of the next slot. Overruns start the next slot late.
fn paced_sleep(clock32: u32, anchor: u32, slot: u32, quantum: u32) -> (u32, u32) {
    let elapsed = clock32.wrapping_sub(anchor);
    if elapsed < slot {
        let exact = slot - elapsed;
        let quantized = exact.div_ceil(quantum.max(1)) * quantum.max(1);
        // The next slot starts where the quantized wait actually lands.
        (quantized, anchor.wrapping_add(elapsed + quantized))
    } else {
        // Overran the slot entirely: start the next one immediately.
        (1, clock32.wrapping_add(1))
    }
}

/// Draws an exponential interference delay with the given mean, capped
/// (a measurement can be disturbed, not indefinitely delayed).
fn exponential_noise(rng: &mut gnc_common::rng::DetRng, mean: u32, cap: u32) -> u64 {
    if mean == 0 {
        return 0;
    }
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let sample = (-u.ln() * f64::from(mean)).round() as u64;
    sample.min(u64::from(cap.max(1)))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Resolve,
    /// Reached the window midpoint; next stop is the actual boundary.
    /// Two-step sync guarantees both sides wake at the *same* boundary
    /// even when one launches within a cycle of a boundary (otherwise
    /// that side would catch it immediately and run a full window ahead).
    Halfway,
    Synced,
    SlotStart,
    Working,
    Measure,
    RecordLatency,
    Pace,
    Realigned,
}

struct SenderWarp {
    proto: ProtocolConfig,
    assignments: Assignments,
    level_map: Option<LevelAssignments>,
    line_bytes: u64,
    stagger: u32,
    bits: Option<Arc<Vec<bool>>>,
    /// Multi-level extension: per-symbol distinct-lines-per-access; when
    /// set, overrides `bits` (see `encoding`).
    levels: Option<Arc<Vec<u32>>>,
    bit_idx: usize,
    slot_anchor: u32,
    phase: Phase,
    _seed: u64,
}

impl SenderWarp {
    fn stream_len(&self) -> usize {
        if let Some(l) = &self.levels {
            l.len()
        } else {
            self.bits.as_ref().map_or(0, |b| b.len())
        }
    }

    fn current_level(&self) -> u32 {
        if let Some(levels) = &self.levels {
            levels[self.bit_idx]
        } else if self.bits.as_ref().is_some_and(|b| b[self.bit_idx]) {
            self.proto.requests_per_access
        } else {
            0
        }
    }
}

impl WarpProgram for SenderWarp {
    fn step(&mut self, ctx: &WarpContext) -> WarpStep {
        loop {
            match self.phase {
                Phase::Resolve => {
                    if let Some(level_map) = &self.level_map {
                        match level_map.get(&ctx.sm.index()) {
                            Some(levels) => self.levels = Some(Arc::clone(levels)),
                            None => return WarpStep::Finish,
                        }
                    } else {
                        match self.assignments.get(&ctx.sm.index()) {
                            Some(bits) => self.bits = Some(Arc::clone(bits)),
                            None => return WarpStep::Finish,
                        }
                    }
                    self.phase = Phase::Halfway;
                    return WarpStep::UntilClock {
                        mask: self.proto.sync_window() - 1,
                        target: self.proto.sync_window() / 2,
                    };
                }
                Phase::Halfway => {
                    self.phase = Phase::Synced;
                    return WarpStep::UntilClock {
                        mask: self.proto.sync_window() - 1,
                        target: 0,
                    };
                }
                Phase::Synced => {
                    // Woken exactly on a sync boundary.
                    self.slot_anchor = ctx.clock32;
                    self.phase = Phase::SlotStart;
                    if self.stagger > 0 {
                        let s = self.stagger;
                        self.stagger = 0;
                        return WarpStep::Sleep(s);
                    }
                }
                Phase::SlotStart => {
                    if self.bit_idx >= self.stream_len() {
                        return WarpStep::Finish;
                    }
                    self.phase = if self.current_level() > 0 {
                        Phase::Working
                    } else {
                        Phase::Pace
                    };
                }
                Phase::Working => {
                    // Algorithm 2: a fixed amount of L2 work per `1` bit,
                    // then busy-wait for the slot remainder. Skip the
                    // burst if this warp drifted too close to the slot
                    // end to finish in time.
                    let elapsed = ctx.clock32.wrapping_sub(self.slot_anchor);
                    self.phase = Phase::Pace;
                    if elapsed.saturating_add(self.proto.guard_cycles) < self.proto.slot_cycles {
                        let base = SENDER_BASE
                            + (ctx.sm.index() as u64) * self.proto.region_lines() * self.line_bytes;
                        let mut burst_proto = self.proto.clone();
                        if let Some(k) = self.proto.sender_iterations {
                            burst_proto.iterations = k.max(1);
                        }
                        return WarpStep::Memory {
                            kind: self.proto.kind.access_kind(),
                            addrs: burst_proto.burst_addresses(
                                base,
                                self.proto.sender_uncoalesced,
                                self.line_bytes,
                                self.current_level(),
                            ),
                            wait: true,
                        };
                    }
                }
                Phase::Pace => {
                    self.bit_idx += 1;
                    let realign = match self.proto.mode {
                        SyncMode::ClockAligned { sync_period } => {
                            self.bit_idx.is_multiple_of(sync_period.max(1) as usize)
                        }
                        SyncMode::SlotOnly => false,
                    };
                    if realign {
                        self.phase = Phase::Realigned;
                        return WarpStep::UntilClock {
                            mask: self.proto.sync_window() - 1,
                            target: 0,
                        };
                    }
                    self.phase = Phase::SlotStart;
                    let (sleep, next_anchor) = paced_sleep(
                        ctx.clock32,
                        self.slot_anchor,
                        self.proto.slot_cycles,
                        self.proto.sender_pacing_quantum,
                    );
                    self.slot_anchor = next_anchor;
                    return WarpStep::Sleep(sleep);
                }
                Phase::Realigned => {
                    self.slot_anchor = ctx.clock32;
                    self.phase = Phase::SlotStart;
                }
                Phase::Measure | Phase::RecordLatency => {
                    unreachable!("sender never measures")
                }
            }
        }
    }
}

struct ReceiverWarp {
    proto: ProtocolConfig,
    lengths: Arc<HashMap<usize, usize>>,
    line_bytes: u64,
    n_bits: Option<usize>,
    bit_idx: usize,
    slot_anchor: u32,
    phase: Phase,
    rng: gnc_common::rng::DetRng,
}

impl WarpProgram for ReceiverWarp {
    fn step(&mut self, ctx: &WarpContext) -> WarpStep {
        loop {
            match self.phase {
                Phase::Resolve => {
                    match self.lengths.get(&ctx.sm.index()) {
                        Some(&n) => self.n_bits = Some(n),
                        None => return WarpStep::Finish,
                    }
                    self.phase = Phase::Halfway;
                    return WarpStep::UntilClock {
                        mask: self.proto.sync_window() - 1,
                        target: self.proto.sync_window() / 2,
                    };
                }
                Phase::Halfway => {
                    self.phase = Phase::Synced;
                    return WarpStep::UntilClock {
                        mask: self.proto.sync_window() - 1,
                        target: 0,
                    };
                }
                Phase::Synced => {
                    self.slot_anchor = ctx.clock32;
                    self.phase = Phase::SlotStart;
                }
                Phase::SlotStart => {
                    if self.bit_idx >= self.n_bits.unwrap_or(0) {
                        return WarpStep::Finish;
                    }
                    self.phase = Phase::Measure;
                    if self.proto.jitter_cycles > 0 {
                        let j = self.rng.gen_range(0..=self.proto.jitter_cycles);
                        if j > 0 {
                            return WarpStep::Sleep(j);
                        }
                    }
                }
                Phase::Measure => {
                    let base = RECEIVER_BASE
                        + (ctx.sm.index() as u64) * self.proto.region_lines() * self.line_bytes;
                    self.phase = Phase::RecordLatency;
                    return WarpStep::Memory {
                        kind: self.proto.kind.receiver_kind(),
                        addrs: self.proto.burst_addresses(
                            base,
                            self.proto.receiver_uncoalesced,
                            self.line_bytes,
                            self.proto.requests_per_access,
                        ),
                        wait: true,
                    };
                }
                Phase::RecordLatency => {
                    self.phase = Phase::Pace;
                    let noise = exponential_noise(
                        &mut self.rng,
                        self.proto.noise_mean_cycles,
                        self.proto.slot_cycles / 2,
                    );
                    return WarpStep::Record {
                        tag: self.bit_idx as u32,
                        value: ctx.last_mem_latency + noise,
                    };
                }
                Phase::Pace => {
                    self.bit_idx += 1;
                    let realign = match self.proto.mode {
                        SyncMode::ClockAligned { sync_period } => {
                            self.bit_idx.is_multiple_of(sync_period.max(1) as usize)
                        }
                        SyncMode::SlotOnly => false,
                    };
                    if realign {
                        self.phase = Phase::Realigned;
                        return WarpStep::UntilClock {
                            mask: self.proto.sync_window() - 1,
                            target: 0,
                        };
                    }
                    self.phase = Phase::SlotStart;
                    let (sleep, next_anchor) = paced_sleep(
                        ctx.clock32,
                        self.slot_anchor,
                        self.proto.slot_cycles,
                        self.proto.receiver_pacing_quantum,
                    );
                    self.slot_anchor = next_anchor;
                    return WarpStep::Sleep(sleep);
                }
                Phase::Realigned => {
                    self.slot_anchor = ctx.clock32;
                    self.phase = Phase::SlotStart;
                }
                Phase::Working => unreachable!("receiver never floods"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_slot_sizes_are_powers_of_two_and_fit_contended_bursts() {
        for k in 1..=5 {
            let p = ProtocolConfig::tpc(k);
            assert!(p.slot_cycles.is_power_of_two());
            assert!(p.slot_cycles >= 128 * k + 300, "k={k} slot too small");
            assert!(p.guard_cycles < p.slot_cycles, "guard must fit in slot");
        }
    }

    #[test]
    fn paper_iteration_counts_hit_paper_bandwidths() {
        let cfg = GpuConfig::volta_v100();
        // Fig 10(a): single TPC channel ≈ 2.4 Mbps at 1 iteration and
        // ≈ 1 Mbps at 4 iterations.
        let k1 = ProtocolConfig::tpc(1).bits_per_second(&cfg);
        assert!((2.0e6..2.8e6).contains(&k1), "k=1 rate {k1}");
        let k4 = ProtocolConfig::tpc(4).bits_per_second(&cfg);
        assert!((0.9e6..1.4e6).contains(&k4), "k=4 rate {k4}");
        // Fig 10(b): 40 channels at 5 iterations with the multi-channel
        // slot (doubled for reply-path sharing) ≈ 24 Mbps.
        let mut multi = ProtocolConfig::tpc(5);
        multi.slot_cycles *= 2;
        let aggregate = multi.bits_per_second(&cfg) * 40.0;
        assert!(
            (20.0e6..28.0e6).contains(&aggregate),
            "aggregate {aggregate}"
        );
    }

    #[test]
    fn kind_selects_access_direction() {
        assert_eq!(ChannelKind::Tpc.access_kind(), AccessKind::Write);
        assert_eq!(ChannelKind::Gpc.access_kind(), AccessKind::Read);
        assert_eq!(ChannelKind::Tpc.receiver_kind(), AccessKind::Write);
        assert_eq!(ChannelKind::Gpc.receiver_kind(), AccessKind::Read);
        assert_eq!(ChannelKind::Tpc.default_sender_warps(), 1);
        assert_eq!(ChannelKind::Gpc.default_sender_warps(), 2);
    }

    #[test]
    fn exponential_noise_has_the_configured_scale() {
        let mut rng = experiment_rng("noise", 0);
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| exponential_noise(&mut rng, 16, 10_000))
            .sum();
        let mean = total as f64 / f64::from(n);
        assert!((14.0..18.0).contains(&mean), "noise mean {mean}");
        let beyond: usize = (0..n)
            .filter(|_| exponential_noise(&mut rng, 16, 10_000) > 32)
            .count();
        let frac = beyond as f64 / f64::from(n);
        // P(X > 2·mean) = e^-2 ≈ 13.5 %.
        assert!((0.10..0.18).contains(&frac), "tail fraction {frac}");
    }

    #[test]
    fn paced_sleep_quantizes_and_tracks_drift() {
        // Mid-slot, exact fit: wait rounds up to the quantum grid.
        let (sleep, anchor) = super::paced_sleep(100, 0, 512, 8);
        assert_eq!(sleep, 416); // 412 rounded up to a multiple of 8
        assert_eq!(anchor, 516); // drifted 4 cycles past the ideal 512
                                 // Overrun: next slot starts right away.
        let (sleep, anchor) = super::paced_sleep(600, 0, 512, 8);
        assert_eq!(sleep, 1);
        assert_eq!(anchor, 601);
        // Quantum 1 = exact pacing.
        let (sleep, anchor) = super::paced_sleep(100, 0, 512, 1);
        assert_eq!(sleep, 412);
        assert_eq!(anchor, 512);
    }

    #[test]
    fn zero_noise_is_silent() {
        let mut rng = experiment_rng("noise", 1);
        assert_eq!(exponential_noise(&mut rng, 0, 100), 0);
    }

    #[test]
    fn sync_window_is_slot_multiple() {
        let p = ProtocolConfig::tpc(2);
        let w = p.sync_window();
        assert_eq!(w % p.slot_cycles, 0);
        assert!(w.is_power_of_two());
    }

    #[test]
    fn burst_addresses_uncoalesced_hits_distinct_lines() {
        let p = ProtocolConfig::tpc(3);
        let addrs = p.burst_addresses(0, true, 128, 32);
        assert_eq!(addrs.len(), 96);
        let lines: std::collections::HashSet<u64> = addrs.iter().map(|a| a / 128).collect();
        assert_eq!(lines.len(), 96);
    }

    #[test]
    fn burst_addresses_coalesced_is_one_line_per_instruction() {
        let p = ProtocolConfig::tpc(3);
        let addrs = p.burst_addresses(0, false, 128, 32);
        assert_eq!(addrs.len(), 96); // 3 instructions × 32 accesses
        let lines: std::collections::HashSet<u64> = addrs.iter().map(|a| a / 128).collect();
        assert_eq!(lines.len(), 3); // …but only one line each
    }

    #[test]
    fn burst_addresses_partial_levels() {
        // Multi-level symbol 1 → 8 distinct lines per instruction (25 %).
        let p = ProtocolConfig::tpc(2);
        let addrs = p.burst_addresses(0, true, 128, 8);
        assert_eq!(addrs.len(), 64); // 2 instructions × 32 accesses
        let lines: std::collections::HashSet<u64> = addrs.iter().map(|a| a / 128).collect();
        assert_eq!(lines.len(), 16); // 8 distinct lines per instruction
    }

    #[test]
    fn unassigned_sender_sm_finishes_immediately() {
        let proto = ProtocolConfig::tpc(1);
        let kernel = SenderKernel::new(proto, Arc::new(HashMap::new()), 1, 128, 0);
        let mut warp = kernel.create_warp(BlockId::new(0), WarpId::new(0));
        let ctx = WarpContext {
            now: 0,
            clock32: 0,
            sm: gnc_common::ids::SmId::new(7),
            kernel: gnc_common::ids::KernelId::new(0),
            block: BlockId::new(0),
            warp: WarpId::new(0),
            last_mem_latency: 0,
        };
        assert_eq!(warp.step(&ctx), WarpStep::Finish);
    }

    #[test]
    fn assigned_sender_syncs_first() {
        let proto = ProtocolConfig::tpc(1);
        let mut map = HashMap::new();
        map.insert(0usize, Arc::new(vec![true, false]));
        let kernel = SenderKernel::new(proto.clone(), Arc::new(map), 1, 128, 0);
        let mut warp = kernel.create_warp(BlockId::new(0), WarpId::new(0));
        let ctx = WarpContext {
            now: 0,
            clock32: 1, // not aligned
            sm: gnc_common::ids::SmId::new(0),
            kernel: gnc_common::ids::KernelId::new(0),
            block: BlockId::new(0),
            warp: WarpId::new(0),
            last_mem_latency: 0,
        };
        // Two-step sync: first the window midpoint…
        match warp.step(&ctx) {
            WarpStep::UntilClock { mask, target } => {
                assert_eq!(mask, proto.sync_window() - 1);
                assert_eq!(target, proto.sync_window() / 2);
            }
            other => panic!("expected midpoint wait, got {other:?}"),
        }
        // …then the boundary itself.
        match warp.step(&ctx) {
            WarpStep::UntilClock { mask, target } => {
                assert_eq!(mask, proto.sync_window() - 1);
                assert_eq!(target, 0);
            }
            other => panic!("expected boundary wait, got {other:?}"),
        }
    }
}
