//! Reverse engineering the GPU on-chip network (§3).
//!
//! Everything here treats the simulated GPU as a black box, exactly as
//! the paper treats the V100: kernels are launched on *all* SMs and gate
//! themselves on `%smid` (Algorithm 1), execution times are measured
//! from the outside, and the TPC/GPC structure is inferred purely from
//! contention — never read from the simulator's ground-truth
//! configuration.
//!
//! * [`tpc_pairing_sweep`] — Fig 2: run the write benchmark on SM0 plus
//!   one other SM; the TPC sibling shows ~2× slowdown.
//! * [`discover_tpc_pairs`] — applies the sweep across probe SMs to
//!   recover the SMi/SMi+1 pairing rule (§3.2).
//! * [`gpc_scan`] — Fig 3: activate the probe TPC, one candidate TPC,
//!   and five random TPCs (one SM each, streaming reads) and average the
//!   probe's execution time over many trials; same-GPC candidates raise
//!   the mean.
//! * [`recover_mapping`] — Fig 4: repeat the scan probe-by-probe until
//!   every TPC is assigned to a GPC group.

use gnc_common::ids::{SmId, StreamId, TpcId};
use gnc_common::rng::experiment_rng;
use gnc_common::stats::OnlineStats;
use gnc_common::telemetry::Probe;
use gnc_common::{Cycle, GpuConfig};
use gnc_sim::gpu::Gpu;
use gnc_sim::kernel::AccessKind;
use gnc_sim::workloads::{StreamConfig, StreamKernel};
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Runs Algorithm 1 with exactly `active_sms` doing the streaming work
/// and returns each active SM's block execution time in cycles.
///
/// `kind` selects writes (TPC discovery) or reads (GPC discovery);
/// `batches` controls run length.
///
/// # Panics
///
/// Panics if the run does not finish within its cycle budget (a
/// simulator bug, not a measurement outcome).
pub fn run_active_sms(
    cfg: &GpuConfig,
    active_sms: &[usize],
    kind: AccessKind,
    warps: usize,
    batches: u32,
    seed: u64,
) -> Vec<(usize, Cycle)> {
    let mut gpu = gnc_sim::pooled_gpu(cfg, seed, None).expect("valid config");
    run_active_sms_on(&mut gpu, active_sms, kind, warps, batches)
}

/// [`run_active_sms`] on an existing GPU (lets callers pre-attach a
/// telemetry probe or fault plan). The GPU should be freshly built.
///
/// # Panics
///
/// Panics if the run does not finish within its cycle budget (a
/// simulator bug, not a measurement outcome).
pub fn run_active_sms_on<P: Probe>(
    gpu: &mut Gpu<P>,
    active_sms: &[usize],
    kind: AccessKind,
    warps: usize,
    batches: u32,
) -> Vec<(usize, Cycle)> {
    let cfg = gpu.config().clone();
    let mut sc = StreamConfig::writer(cfg.num_sms(), warps, batches);
    sc.kind = kind;
    sc.target_sms = Some(active_sms.to_vec());
    let kernel = StreamKernel::new(sc, &cfg);
    let (base, lines) = kernel.working_set();
    gpu.preload_range(base, lines);
    let k = gpu.launch(Box::new(kernel), StreamId::new(0));
    let budget = 20_000 + u64::from(batches) * 64 * warps as u64 * 8 * active_sms.len() as u64;
    let outcome = gpu.run_until_idle(budget);
    assert!(outcome.is_idle(), "benchmark did not finish: {outcome:?}");
    let spans = gpu.block_spans(k);
    active_sms
        .iter()
        .map(|&sm| {
            let span = spans
                .iter()
                .find(|s| s.sm == SmId::new(sm))
                .unwrap_or_else(|| panic!("no block placed on SM{sm}"));
            (
                sm,
                span.finished_at.expect("kernel finished") - span.placed_at,
            )
        })
        .collect()
}

/// One point of the Fig 2 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TpcSweepPoint {
    /// The SM co-running with the probe.
    pub other_sm: usize,
    /// Probe execution time in cycles.
    pub probe_cycles: Cycle,
    /// Probe time normalised to its solo run.
    pub normalized: f64,
}

/// Fig 2: the probe SM runs the write benchmark alone, then concurrently
/// with every other SM in turn. Returns one point per other SM.
pub fn tpc_pairing_sweep(
    cfg: &GpuConfig,
    probe_sm: usize,
    batches: u32,
    seed: u64,
) -> Vec<TpcSweepPoint> {
    let warps = 4;
    let solo = run_active_sms(cfg, &[probe_sm], AccessKind::Write, warps, batches, seed)[0].1;
    let others: Vec<usize> = (0..cfg.num_sms()).filter(|&s| s != probe_sm).collect();
    parallel_map(&others, |&other| {
        let t = run_active_sms(
            cfg,
            &[probe_sm, other],
            AccessKind::Write,
            warps,
            batches,
            seed,
        )
        .iter()
        .find(|(sm, _)| *sm == probe_sm)
        .expect("probe measured")
        .1;
        TpcSweepPoint {
            other_sm: other,
            probe_cycles: t,
            normalized: t as f64 / solo as f64,
        }
    })
}

/// Extracts the TPC sibling of the probe from a Fig 2 sweep: the unique
/// SM whose co-run slows the probe by ≥ 1.5×.
///
/// Returns `None` when zero or several SMs qualify (no clean pairing).
pub fn sibling_from_sweep(sweep: &[TpcSweepPoint]) -> Option<usize> {
    let hits: Vec<usize> = sweep
        .iter()
        .filter(|p| p.normalized >= 1.5)
        .map(|p| p.other_sm)
        .collect();
    match hits.as_slice() {
        [single] => Some(*single),
        _ => None,
    }
}

/// §3.2's conclusion, recovered blind: for each probe SM, find its TPC
/// sibling. Returns the recovered `(probe, sibling)` pairs.
pub fn discover_tpc_pairs(
    cfg: &GpuConfig,
    probes: &[usize],
    batches: u32,
    seed: u64,
) -> Vec<(usize, usize)> {
    probes
        .iter()
        .filter_map(|&probe| {
            let sweep = tpc_pairing_sweep(cfg, probe, batches, seed);
            sibling_from_sweep(&sweep).map(|sib| (probe, sib))
        })
        .collect()
}

/// Result of the Fig 3 scan for one probe TPC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpcScan {
    /// The probe TPC.
    pub probe_tpc: usize,
    /// Mean probe execution time per candidate TPC (index = candidate;
    /// the probe's own entry is NaN).
    pub candidate_means: Vec<f64>,
    /// Per-candidate raw samples (Fig 3's scatter).
    pub samples: Vec<Vec<f64>>,
}

impl GpcScan {
    /// Candidates classified as same-GPC: means above the midpoint of
    /// the observed mean range (Fig 3(b)'s visual threshold).
    pub fn same_gpc_candidates(&self) -> Vec<usize> {
        let finite: Vec<f64> = self
            .candidate_means
            .iter()
            .copied()
            .filter(|m| m.is_finite())
            .collect();
        let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let threshold = (lo + hi) / 2.0;
        if !threshold.is_finite() || (hi - lo) / lo.max(1.0) < 0.005 {
            // No contention structure visible at all.
            return Vec::new();
        }
        self.candidate_means
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_finite() && **m > threshold)
            .map(|(c, _)| c)
            .collect()
    }
}

/// Fig 3: for each candidate TPC, co-activate {probe, candidate, 5
/// random others} (one SM each, streaming reads) `trials` times and
/// record the probe's execution time.
pub fn gpc_scan(
    cfg: &GpuConfig,
    probe_tpc: usize,
    trials: usize,
    batches: u32,
    seed: u64,
) -> GpcScan {
    let num_tpcs = cfg.num_tpcs();
    let candidates: Vec<usize> = (0..num_tpcs).filter(|&c| c != probe_tpc).collect();
    let per_candidate = parallel_map(&candidates, |&cand| {
        let mut stats = OnlineStats::new();
        let mut samples = Vec::with_capacity(trials);
        for trial in 0..trials {
            let mut rng = experiment_rng(
                "gpc-scan",
                seed ^ ((probe_tpc as u64) << 40) ^ ((cand as u64) << 20) ^ trial as u64,
            );
            let mut pool: Vec<usize> = (0..num_tpcs)
                .filter(|&t| t != probe_tpc && t != cand)
                .collect();
            pool.shuffle(&mut rng);
            let mut active_tpcs = vec![probe_tpc, cand];
            active_tpcs.extend(pool.into_iter().take(5));
            let active_sms: Vec<usize> = active_tpcs.iter().map(|&t| 2 * t).collect();
            let t = run_active_sms(
                cfg,
                &active_sms,
                AccessKind::Read,
                4,
                batches,
                seed ^ trial as u64,
            )
            .iter()
            .find(|(sm, _)| *sm == 2 * probe_tpc)
            .expect("probe measured")
            .1;
            stats.push(t as f64);
            samples.push(t as f64);
        }
        (cand, stats.mean(), samples)
    });
    let mut candidate_means = vec![f64::NAN; num_tpcs];
    let mut samples = vec![Vec::new(); num_tpcs];
    for (cand, mean, s) in per_candidate {
        candidate_means[cand] = mean;
        samples[cand] = s;
    }
    GpcScan {
        probe_tpc,
        candidate_means,
        samples,
    }
}

/// The recovered logical→physical mapping (Fig 4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveredMapping {
    /// Groups of TPCs sharing a GPC, each sorted ascending; group order
    /// is by smallest member.
    pub groups: Vec<Vec<TpcId>>,
}

impl RecoveredMapping {
    /// Compares against a configuration's ground truth (a test oracle;
    /// the recovery itself never looks at it).
    pub fn matches_ground_truth(&self, cfg: &GpuConfig) -> bool {
        let mut truth: Vec<Vec<TpcId>> = (0..cfg.num_gpcs)
            .map(|g| cfg.tpcs_of_gpc(gnc_common::ids::GpcId::new(g)))
            .collect();
        truth.sort_by_key(|g| g.first().map(|t| t.index()));
        let mut mine = self.groups.clone();
        mine.sort_by_key(|g| g.first().map(|t| t.index()));
        mine == truth
    }

    /// The group (GPC) index containing `tpc`, if recovered.
    pub fn group_of(&self, tpc: TpcId) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(&tpc))
    }

    /// Membership in the `Vec<Vec<TpcId>>` shape
    /// [`crate::channel::ChannelPlan::gpc`] expects.
    pub fn membership(&self) -> Vec<Vec<TpcId>> {
        self.groups.clone()
    }
}

/// Pairwise co-activation statistics: `mean[i][j]` is the average
/// execution time TPC `i` observed across random-7-TPC trials in which
/// TPC `j` was also active. Same-GPC pairs show elevated means because
/// some trials happen to activate four or more of their GPC's TPCs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoactivationMatrix {
    /// Row-major mean exec times; `NaN` where no sample exists.
    pub mean: Vec<Vec<f64>>,
}

impl CoactivationMatrix {
    /// The `count` most-correlated partners of `tpc`, best first,
    /// by symmetric score.
    pub fn top_partners(&self, tpc: usize, count: usize) -> Vec<usize> {
        let n = self.mean.len();
        let mut scored: Vec<(usize, f64)> = (0..n)
            .filter(|&j| j != tpc)
            .map(|j| {
                let a = self.mean[tpc][j];
                let b = self.mean[j][tpc];
                let score = match (a.is_finite(), b.is_finite()) {
                    (true, true) => a + b,
                    (true, false) => 2.0 * a,
                    (false, true) => 2.0 * b,
                    (false, false) => f64::NEG_INFINITY,
                };
                (j, score)
            })
            .collect();
        scored.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("no NaN scores"));
        scored.into_iter().take(count).map(|(j, _)| j).collect()
    }
}

/// Phase 1 of the Fig 4 recovery: `runs` trials each activate 9 random
/// TPCs (one SM each, streaming reads) and record *every* active TPC's
/// execution time, so one run contributes 72 ordered pair samples. Nine
/// actives make it likelier that a same-GPC pair is joined by two more
/// of its GPC (the ≥4-reader contention knee), strengthening the signal
/// per trial.
pub fn coactivation_matrix(
    cfg: &GpuConfig,
    runs: usize,
    batches: u32,
    seed: u64,
) -> CoactivationMatrix {
    let n = cfg.num_tpcs();
    let trials: Vec<u64> = (0..runs as u64).collect();
    let per_run = parallel_map(&trials, |&r| {
        let mut rng = experiment_rng("coactivation", seed ^ r);
        let mut pool: Vec<usize> = (0..n).collect();
        pool.shuffle(&mut rng);
        let active: Vec<usize> = pool.into_iter().take(9).collect();
        let sms: Vec<usize> = active.iter().map(|&t| 2 * t).collect();
        let times = run_active_sms(cfg, &sms, AccessKind::Read, 4, batches, seed ^ r);
        (active, times)
    });
    let mut sum = vec![vec![0.0f64; n]; n];
    let mut cnt = vec![vec![0u32; n]; n];
    for (active, times) in per_run {
        for &(sm, t) in &times {
            let i = sm / 2;
            for &j in &active {
                if j != i {
                    sum[i][j] += t as f64;
                    cnt[i][j] += 1;
                }
            }
        }
    }
    let mean = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    if cnt[i][j] > 0 {
                        sum[i][j] / f64::from(cnt[i][j])
                    } else {
                        f64::NAN
                    }
                })
                .collect()
        })
        .collect();
    CoactivationMatrix { mean }
}

/// Fig 4: full mapping recovery in two phases (plus a repair pass).
///
/// ```no_run
/// use gnc_common::GpuConfig;
/// use gnc_covert::reverse::recover_mapping;
///
/// let cfg = GpuConfig::volta_v100();
/// let mapping = recover_mapping(&cfg, 400, 10, 0);
/// assert!(mapping.matches_ground_truth(&cfg));
/// ```
///
/// Phase 1 samples a [`CoactivationMatrix`] from `runs` random trials.
/// Phase 2 verifies each probe's membership *directed*: with the probe
/// plus its three strongest phase-1 partners held active, adding one
/// more TPC of the same GPC pushes the active same-GPC count past the
/// contention knee (≥ 4 reading TPCs, §3.4) and elevates the probe's
/// execution time deterministically — a crisp, trial-free classifier.
/// A final phase-3 pass (`repair_splintered_groups`) re-merges
/// undersized groups that a noisy phase-1 matrix splintered.
pub fn recover_mapping(cfg: &GpuConfig, runs: usize, batches: u32, seed: u64) -> RecoveredMapping {
    let n = cfg.num_tpcs();
    let matrix = coactivation_matrix(cfg, runs, batches, seed);
    let mut assigned = vec![false; n];
    let mut groups: Vec<Vec<TpcId>> = Vec::new();
    while let Some(probe) = (0..n).find(|&t| !assigned[t]) {
        let ranked = matrix.top_partners(probe, 4);
        let candidates: Vec<usize> = (0..n).filter(|&t| t != probe).collect();
        let verdicts = parallel_map(&candidates, |&t| {
            // Helpers: the probe's 3 best partners, excluding `t` itself.
            let helpers: Vec<usize> = ranked.iter().copied().filter(|&h| h != t).take(3).collect();
            let probe_exec = |extra: Option<usize>| -> f64 {
                let mut active: Vec<usize> = vec![2 * probe];
                active.extend(helpers.iter().map(|&h| 2 * h));
                if let Some(e) = extra {
                    active.push(2 * e);
                }
                run_active_sms(cfg, &active, AccessKind::Read, 4, batches, seed)
                    .iter()
                    .find(|(sm, _)| *sm == 2 * probe)
                    .expect("probe measured")
                    .1 as f64
            };
            let baseline = probe_exec(None);
            let with_t = probe_exec(Some(t));
            (t, with_t > baseline * 1.08)
        });
        let mut members: Vec<usize> = verdicts
            .into_iter()
            .filter(|&(t, same)| same && !assigned[t])
            .map(|(t, _)| t)
            .collect();
        members.push(probe);
        members.sort_unstable();
        for &m in &members {
            assigned[m] = true;
        }
        groups.push(members.into_iter().map(TpcId::new).collect());
    }
    repair_splintered_groups(cfg, batches, seed, &mut groups);
    groups.sort_by_key(|g| g.first().map(|t| t.index()));
    RecoveredMapping { groups }
}

/// Phase 3 (repair): merges splintered groups back together.
///
/// The phase-2 helpers come from the noisy phase-1 matrix; a weak helper
/// set keeps the probe's baseline *under* the ≥4-reader contention knee,
/// so genuine co-members test negative and splinter into a spurious
/// extra group. The GPC count is public architectural knowledge, so
/// `groups.len() > num_gpcs` is a detectable inconsistency. Each stray
/// (smallest group first) is re-tested against every established group
/// using three *confirmed* members as helpers — the verdict is then
/// exactly the crisp 4-vs-5-reader experiment of phase 2, without the
/// helper-quality gamble — and merged into the best host that clears
/// the knee. Consistent recoveries skip this entirely (zero extra
/// simulations).
fn repair_splintered_groups(
    cfg: &GpuConfig,
    batches: u32,
    seed: u64,
    groups: &mut Vec<Vec<TpcId>>,
) {
    while groups.len() > cfg.num_gpcs {
        let stray_idx = groups
            .iter()
            .enumerate()
            .min_by_key(|(_, g)| g.len())
            .map(|(i, _)| i)
            .expect("at least one group");
        let stray = groups.remove(stray_idx);
        let probe = stray[0].index();
        let hosts: Vec<usize> = (0..groups.len()).collect();
        let ratios = parallel_map(&hosts, |&gi| {
            let host = &groups[gi];
            let helpers: Vec<usize> = host.iter().take(3).map(|t| t.index()).collect();
            // The 5th reader crossing the knee: a 4th host member, or a
            // 2nd stray member when the host only has 3.
            let extra = host
                .get(3)
                .or_else(|| if stray.len() > 1 { stray.last() } else { None })
                .map(|t| t.index());
            let (Some(extra), 3) = (extra, helpers.len()) else {
                return 0.0; // too small to stage the experiment
            };
            let probe_exec = |with_extra: bool| -> f64 {
                let mut active: Vec<usize> = vec![2 * probe];
                active.extend(helpers.iter().map(|&h| 2 * h));
                if with_extra {
                    active.push(2 * extra);
                }
                run_active_sms(cfg, &active, AccessKind::Read, 4, batches, seed)
                    .iter()
                    .find(|(sm, _)| *sm == 2 * probe)
                    .expect("probe measured")
                    .1 as f64
            };
            probe_exec(true) / probe_exec(false)
        });
        let best = hosts
            .iter()
            .zip(&ratios)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(&gi, &r)| (gi, r));
        match best {
            Some((gi, ratio)) if ratio > 1.08 => {
                groups[gi].extend(stray);
                groups[gi].sort_by_key(|t| t.index());
            }
            _ => {
                // No host clears the knee: keep the stray as-is rather
                // than force a wrong merge, and stop repairing.
                groups.push(stray);
                break;
            }
        }
    }
}

/// Maps `f` over `items` on the workspace trial pool (runs are
/// independent GPU instances), preserving order. Thin re-export of
/// [`gnc_common::par::parallel_map`] so every sweep in this crate honours
/// the global `--jobs` setting.
pub(crate) use gnc_common::par::parallel_map;

#[cfg(test)]
mod tests {
    use super::*;

    fn volta() -> GpuConfig {
        GpuConfig::volta_v100()
    }

    #[test]
    fn fig2_sibling_shows_2x_and_others_do_not() {
        let cfg = volta();
        let sweep = tpc_pairing_sweep(&cfg, 0, 20, 1);
        let sib = sweep.iter().find(|p| p.other_sm == 1).expect("SM1 point");
        assert!(
            (1.8..2.2).contains(&sib.normalized),
            "sibling slowdown {}",
            sib.normalized
        );
        for p in &sweep {
            if p.other_sm != 1 {
                assert!(
                    p.normalized < 1.2,
                    "SM{} unexpectedly slows the probe: {}",
                    p.other_sm,
                    p.normalized
                );
            }
        }
        assert_eq!(sibling_from_sweep(&sweep), Some(1));
    }

    #[test]
    fn tpc_pairs_follow_even_odd_rule() {
        let cfg = volta();
        // Spot-check a few probes rather than all 80 (runtime).
        let pairs = discover_tpc_pairs(&cfg, &[7, 24], 20, 2);
        assert_eq!(pairs, vec![(7, 6), (24, 25)]);
    }

    #[test]
    fn gpc_scan_elevates_ground_truth_members_on_average() {
        // At a statistically light trial count we assert the Fig 3
        // *shape*: ground-truth co-members average higher than
        // non-members (exact-set recovery is covered by the directed
        // `recover_mapping` test below).
        let cfg = volta();
        let scan = gpc_scan(&cfg, 0, 20, 10, 3);
        let truth = [6usize, 12, 18, 24, 30, 36];
        let mean_of = |set: &dyn Fn(usize) -> bool| -> f64 {
            let vals: Vec<f64> = scan
                .candidate_means
                .iter()
                .enumerate()
                .filter(|(c, m)| *c != 0 && m.is_finite() && set(*c))
                .map(|(_, m)| *m)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let members = mean_of(&|c| truth.contains(&c));
        let others = mean_of(&|c| !truth.contains(&c));
        assert!(
            members > others * 1.01,
            "member mean {members} not above non-member mean {others}"
        );
    }

    #[test]
    fn coactivation_matrix_ranks_true_partners_first() {
        let cfg = volta();
        let matrix = coactivation_matrix(&cfg, 400, 10, 4);
        // TPC0's three strongest partners must be real GPC0 members.
        let top = matrix.top_partners(0, 3);
        let truth = [6usize, 12, 18, 24, 30, 36];
        let correct = top.iter().filter(|t| truth.contains(t)).count();
        assert!(correct >= 2, "top partners {top:?} mostly wrong");
    }

    #[test]
    fn full_mapping_recovery_matches_ground_truth() {
        let cfg = volta();
        let mapping = recover_mapping(&cfg, 400, 10, 4);
        assert!(
            mapping.matches_ground_truth(&cfg),
            "recovered {:?}",
            mapping.groups
        );
        // The §3.3 irregularity is observed blind: the group containing
        // TPC5 is {5, 11, 17, 23, 29, 39}.
        let g5 = mapping.group_of(TpcId::new(5)).expect("TPC5 assigned");
        let members: Vec<usize> = mapping.groups[g5].iter().map(|t| t.index()).collect();
        assert_eq!(members, vec![5, 11, 17, 23, 29, 39]);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u32> = (0..37).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }
}
