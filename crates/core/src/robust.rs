//! Noise-resilient decoding and reliable delivery (§5 robustness).
//!
//! The baseline receiver of [`crate::channel`] decodes with a single
//! static threshold calibrated once from the preamble, and trusts that
//! every slot produced exactly one latency sample. Under fault injection
//! ([`gnc_common::fault`]) both assumptions break: background bursts and
//! L2 hot-spots move the latency populations mid-transmission, and the
//! measurement path drops or duplicates samples — which shifts every
//! subsequent bit of the naive slot-ordered view (one dropped sample
//! garbles the rest of the stream).
//!
//! This module is the hardened stack:
//!
//! * [`adaptive_decode`] — decodes the *tagged* trace: duplicates are
//!   collapsed, missing slots become explicit erasures, the threshold is
//!   recalibrated per window, and samples too close to the threshold are
//!   erased rather than guessed;
//! * [`transmit_reliable`] — wraps a [`ChannelPlan`] in a CRC-framed
//!   ACK/NACK loop with bounded retries and exponential slot backoff,
//!   with Hamming(7,4) + erasure decoding underneath;
//! * [`deliver`] — the `Result`-typed front door, mapping a jammed
//!   channel onto [`SimError::ChannelJammed`].

use crate::channel::{
    ChannelPlan, ChannelTrace, DegradationReason, TransmissionOutcome, TransmissionReport,
};
use gnc_common::bits::BitVec;
use gnc_common::fault::{FaultConfig, FaultPlan, FaultStats};
use gnc_common::fec::{fec_decode, fec_decode_symbols, fec_encode, FecSymbol};
use gnc_common::{Cycle, GpuConfig, SimError};

/// Tuning knobs of the hardened receiver and the retry loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustOptions {
    /// Payload slots per adaptive-threshold window.
    pub window: usize,
    /// Fraction of the estimated quiet/loud gap around the threshold
    /// inside which a sample is erased instead of sliced.
    pub erasure_margin: f64,
    /// Retransmissions after the initial attempt.
    pub max_retries: u32,
    /// Backoff after the first NACK, in slots; doubles per retry.
    pub backoff_slots: u64,
}

impl Default for RobustOptions {
    fn default() -> Self {
        Self {
            window: 16,
            erasure_margin: 0.18,
            max_retries: 3,
            backoff_slots: 64,
        }
    }
}

/// Output of the adaptive windowed decoder for one channel.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveDecode {
    /// One symbol per payload slot (never shorter than the chunk the
    /// channel carried — lost slots come back as erasures).
    pub symbols: Vec<FecSymbol>,
    /// The same slots hard-decided: low-confidence samples are sliced by
    /// the threshold instead of erased (only truly missing slots stay
    /// erased). The per-block fallback when `symbols` carries more
    /// erasures than the code can consume.
    pub hard_symbols: Vec<FecSymbol>,
    /// The threshold used for each window, in window order.
    pub thresholds: Vec<f64>,
    /// Symbols emitted as erasures (missing or low-confidence).
    pub erasures: usize,
    /// Duplicate samples collapsed (same slot tag observed again).
    pub duplicates: usize,
    /// Payload slots with no sample at all.
    pub missing: usize,
    /// Whether the preamble was unusable and the decoder had to
    /// resynchronize its calibration from the payload itself.
    pub resynchronized: bool,
}

/// Decodes one channel's raw tagged trace with duplicate collapsing,
/// erasure marking, and per-window threshold recalibration.
///
/// Slot tags index the sender's modulation schedule, so the decoder
/// never loses alignment the way a sample-ordered decoder does: a
/// dropped sample costs exactly one (erased) symbol instead of shifting
/// the remainder of the stream.
pub fn adaptive_decode(
    trace: &ChannelTrace,
    preamble_bits: usize,
    opts: &RobustOptions,
) -> AdaptiveDecode {
    let expected = trace.expected_samples;
    let mut slots: Vec<Option<u64>> = vec![None; expected];
    let mut duplicates = 0usize;
    for &(tag, value) in &trace.samples {
        match slots.get_mut(tag as usize) {
            Some(slot @ None) => *slot = Some(value),
            // Keep the first arrival; a duplicated measurement re-reads
            // the same window, so later copies carry no new signal.
            Some(Some(_)) | None => duplicates += 1,
        }
    }
    let payload_len = expected.saturating_sub(preamble_bits);
    let missing = slots[preamble_bits..]
        .iter()
        .filter(|s| s.is_none())
        .count();

    // Initial calibration: the alternating preamble when enough of it
    // survived, otherwise (preamble loss) resynchronize from a
    // two-quantile split of every sample we did get.
    let mut quiet_sum = 0.0;
    let mut quiet_n = 0u32;
    let mut loud_sum = 0.0;
    let mut loud_n = 0u32;
    for (i, slot) in slots[..preamble_bits.min(expected)].iter().enumerate() {
        if let Some(v) = slot {
            if i % 2 == 0 {
                quiet_sum += *v as f64;
                quiet_n += 1;
            } else {
                loud_sum += *v as f64;
                loud_n += 1;
            }
        }
    }
    let mut resynchronized = false;
    let (mut quiet, mut loud) = if quiet_n >= 2 && loud_n >= 2 {
        (quiet_sum / f64::from(quiet_n), loud_sum / f64::from(loud_n))
    } else {
        resynchronized = true;
        let mut present: Vec<u64> = slots.iter().flatten().copied().collect();
        present.sort_unstable();
        if present.len() < 2 {
            // Nothing to calibrate from: every payload slot is an
            // erasure.
            return AdaptiveDecode {
                symbols: vec![FecSymbol::Erased; payload_len],
                hard_symbols: vec![FecSymbol::Erased; payload_len],
                thresholds: Vec::new(),
                erasures: payload_len,
                duplicates,
                missing,
                resynchronized: true,
            };
        }
        let half = present.len() / 2;
        let lower = present[..half].iter().sum::<u64>() as f64 / half as f64;
        let upper = present[half..].iter().sum::<u64>() as f64 / (present.len() - half) as f64;
        (lower, upper)
    };

    let mut symbols = Vec::with_capacity(payload_len);
    let mut hard_symbols = Vec::with_capacity(payload_len);
    let mut thresholds = Vec::new();
    let mut erasures = 0usize;
    let window = opts.window.max(1);
    let payload_slots = &slots[preamble_bits.min(expected)..];
    for chunk in payload_slots.chunks(window) {
        // Per-window recalibration: classify this window's samples by
        // the current threshold, then blend the class means into the
        // running population estimates. Slow drift of either population
        // (clock drift, sustained background load) is tracked instead
        // of accumulating into bit errors.
        let mid = (quiet + loud) / 2.0;
        let mut wq = 0.0;
        let mut wqn = 0u32;
        let mut wl = 0.0;
        let mut wln = 0u32;
        for v in chunk.iter().flatten() {
            if (*v as f64) > mid {
                wl += *v as f64;
                wln += 1;
            } else {
                wq += *v as f64;
                wqn += 1;
            }
        }
        if wqn > 0 {
            quiet = 0.5 * quiet + 0.5 * (wq / f64::from(wqn));
        }
        if wln > 0 {
            loud = 0.5 * loud + 0.5 * (wl / f64::from(wln));
        }
        let threshold = (quiet + loud) / 2.0;
        let gap = (loud - quiet).abs().max(1.0);
        thresholds.push(threshold);
        for slot in chunk {
            match slot {
                Some(v) => {
                    let v = *v as f64;
                    let hard = FecSymbol::from(v > threshold);
                    hard_symbols.push(hard);
                    if (v - threshold).abs() < opts.erasure_margin * gap {
                        symbols.push(FecSymbol::Erased);
                        erasures += 1;
                    } else {
                        symbols.push(hard);
                    }
                }
                None => {
                    symbols.push(FecSymbol::Erased);
                    hard_symbols.push(FecSymbol::Erased);
                    erasures += 1;
                }
            }
        }
    }
    symbols.resize(payload_len, FecSymbol::Erased);
    hard_symbols.resize(payload_len, FecSymbol::Erased);
    AdaptiveDecode {
        symbols,
        hard_symbols,
        thresholds,
        erasures,
        duplicates,
        missing,
        resynchronized,
    }
}

/// De-stripes per-channel symbol streams back into frame order
/// (channel `i` carried bits `i, i+n, i+2n, …`). Positions a channel
/// could not produce come back as erasures.
pub fn destripe_symbols(per_channel: &[Vec<FecSymbol>], frame_len: usize) -> Vec<FecSymbol> {
    let n = per_channel.len().max(1);
    (0..frame_len)
        .map(|i| {
            per_channel
                .get(i % n)
                .and_then(|c| c.get(i / n))
                .copied()
                .unwrap_or(FecSymbol::Erased)
        })
        .collect()
}

/// Width of the frame check sequence appended by [`transmit_reliable`].
pub const CRC_BITS: usize = 16;

/// Per 7-symbol FEC block, keeps the margin-erased stream while its
/// erasure count stays within what Hamming(7,4) can consume (two), and
/// falls back to the hard-decided stream otherwise — a heavily-faulted
/// block decodes better from biased guesses than from zero-filled
/// erasures.
pub fn blend_block_symbols(soft: &[FecSymbol], hard: &[FecSymbol]) -> Vec<FecSymbol> {
    soft.chunks(7)
        .zip(hard.chunks(7))
        .flat_map(|(s, h)| {
            let erased = s.iter().filter(|x| matches!(x, FecSymbol::Erased)).count();
            if erased <= 2 { s } else { h }.iter().copied()
        })
        .collect()
}

/// CRC-16/CCITT-FALSE (polynomial 0x1021, init 0xFFFF) over a bit
/// stream — the integrity check of the ACK/NACK framing. A jammed
/// channel hands the decoder near-random frames every retry, so the
/// false-ACK probability has to be far below what 8 check bits give.
pub fn crc16(bits: &BitVec) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for bit in bits.iter() {
        let fed = (crc >> 15) ^ u16::from(bit);
        crc <<= 1;
        if fed != 0 {
            crc ^= 0x1021;
        }
    }
    crc
}

fn frame_payload(payload: &BitVec) -> BitVec {
    let mut frame = payload.clone();
    let crc = crc16(payload);
    for i in (0..CRC_BITS).rev() {
        frame.push(crc & (1 << i) != 0);
    }
    frame
}

fn split_frame(frame: &BitVec, payload_len: usize) -> (BitVec, u16) {
    let payload = BitVec::from_bits(frame.iter().take(payload_len));
    let mut crc = 0u16;
    for bit in frame.iter().skip(payload_len).take(CRC_BITS) {
        crc = crc << 1 | u16::from(bit);
    }
    (payload, crc)
}

/// Outcome of one [`transmit_reliable`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliableReport {
    /// Health of the delivery as a whole.
    pub outcome: TransmissionOutcome,
    /// Transmission attempts made (1 = no retry needed).
    pub attempts: u32,
    /// The delivered payload (best effort when `outcome` is `Failed`).
    pub delivered: BitVec,
    /// Whether the final attempt's CRC checked out.
    pub crc_ok: bool,
    /// Residual bit errors of `delivered` against the true payload.
    pub residual_errors: usize,
    /// Total cycles spent, including retransmissions and backoff gaps.
    pub elapsed_cycles: Cycle,
    /// FEC blocks corrected on the final attempt.
    pub fec_corrected_blocks: usize,
    /// Erased channel bits consumed by FEC on the final attempt.
    pub fec_erased_bits: usize,
    /// Fault counters accumulated across all attempts (when faults were
    /// injected).
    pub fault_stats: Option<FaultStats>,
    /// The naive-decoder report of every attempt, for comparison.
    pub attempt_reports: Vec<TransmissionReport>,
}

/// Transmits `payload` with the full hardened stack: CRC framing,
/// Hamming(7,4) encoding, adaptive windowed decoding with erasures, and
/// an ACK/NACK retransmission loop with exponential slot backoff.
///
/// `faults` optionally wires a [`FaultConfig`] into the simulated GPU;
/// each retry re-seeds the fault pattern (`seed + attempt`), modelling
/// the retry landing in a different interference window — which is the
/// whole point of backing off. Everything is deterministic in
/// `(plan, payload, seed, faults)`.
pub fn transmit_reliable(
    plan: &ChannelPlan,
    gpu_cfg: &GpuConfig,
    payload: &BitVec,
    seed: u64,
    faults: Option<&FaultConfig>,
    opts: &RobustOptions,
) -> ReliableReport {
    let frame = frame_payload(payload);
    let coded = fec_encode(&frame);
    let preamble_bits = plan.protocol().preamble_bits;
    let slot_cycles = u64::from(plan.protocol().slot_cycles);

    let mut elapsed: Cycle = 0;
    let mut attempt_reports = Vec::new();
    let mut fault_stats: Option<FaultStats> = None;
    let mut last: Option<(BitVec, u16, usize, usize, bool)> = None;
    let attempts_allowed = opts.max_retries + 1;
    for attempt in 0..attempts_allowed {
        if attempt > 0 {
            // Exponential backoff before the retry: 64, 128, 256… slots.
            elapsed += (opts.backoff_slots * slot_cycles) << (attempt - 1);
        }
        let attempt_seed = seed.wrapping_add(u64::from(attempt));
        let (report, traces) = match faults {
            Some(cfg) => {
                let cfg = cfg
                    .clone()
                    .with_seed(cfg.seed.wrapping_add(u64::from(attempt)));
                let plan_arc = FaultPlan::new(cfg);
                let out = plan.transmit_with_faults(gpu_cfg, &coded, attempt_seed, &plan_arc);
                let stats = plan_arc.stats();
                fault_stats = Some(match fault_stats {
                    Some(acc) => FaultStats {
                        noc_burst_cycles: acc.noc_burst_cycles + stats.noc_burst_cycles,
                        samples_dropped: acc.samples_dropped + stats.samples_dropped,
                        samples_duplicated: acc.samples_duplicated + stats.samples_duplicated,
                        samples_jittered: acc.samples_jittered + stats.samples_jittered,
                        glitched_clock_reads: acc.glitched_clock_reads + stats.glitched_clock_reads,
                        l2_stall_cycles: acc.l2_stall_cycles + stats.l2_stall_cycles,
                    },
                    None => stats,
                });
                out
            }
            None => gnc_sim::with_pooled_gpu(gpu_cfg, attempt_seed, None, |gpu| {
                plan.transmit_traced_on(gpu, &coded, attempt_seed)
            })
            .expect("valid GPU config"),
        };
        elapsed += report.elapsed_cycles;

        let decodes: Vec<AdaptiveDecode> = traces
            .iter()
            .map(|t| adaptive_decode(t, preamble_bits, opts))
            .collect();
        let soft: Vec<Vec<FecSymbol>> = decodes.iter().map(|d| d.symbols.clone()).collect();
        let hard: Vec<Vec<FecSymbol>> = decodes.iter().map(|d| d.hard_symbols.clone()).collect();
        let symbols = blend_block_symbols(
            &destripe_symbols(&soft, coded.len()),
            &destripe_symbols(&hard, coded.len()),
        );
        let fec = fec_decode_symbols(&symbols, frame.len());
        let (decoded_payload, crc_rx) = split_frame(&fec.payload, payload.len());
        let crc_ok = crc16(&decoded_payload) == crc_rx;
        let degraded_attempt = fec.corrected_blocks > 0
            || fec.erased_bits > 0
            || report.outcome != TransmissionOutcome::Clean;
        attempt_reports.push(report);
        last = Some((
            decoded_payload,
            crc_rx,
            fec.corrected_blocks,
            fec.erased_bits,
            degraded_attempt,
        ));
        if crc_ok {
            let (delivered, _, corrected, erased, degraded) = last.take().expect("just set");
            let outcome = if attempt > 0 {
                TransmissionOutcome::Degraded(DegradationReason::Retransmitted)
            } else if corrected > 0 || erased > 0 {
                TransmissionOutcome::Degraded(DegradationReason::FecCorrected)
            } else if degraded {
                TransmissionOutcome::Degraded(DegradationReason::SamplesMissing)
            } else {
                TransmissionOutcome::Clean
            };
            let residual_errors = delivered.hamming_distance(payload);
            return ReliableReport {
                outcome,
                attempts: attempt + 1,
                delivered,
                crc_ok: true,
                residual_errors,
                elapsed_cycles: elapsed,
                fec_corrected_blocks: corrected,
                fec_erased_bits: erased,
                fault_stats,
                attempt_reports,
            };
        }
    }
    let (delivered, _, corrected, erased, _) = last.expect("at least one attempt ran");
    let residual_errors = delivered.hamming_distance(payload);
    ReliableReport {
        outcome: TransmissionOutcome::Failed,
        attempts: attempts_allowed,
        delivered,
        crc_ok: false,
        residual_errors,
        elapsed_cycles: elapsed,
        fec_corrected_blocks: corrected,
        fec_erased_bits: erased,
        fault_stats,
        attempt_reports,
    }
}

/// [`transmit_reliable`] as a `Result`: a delivery whose final CRC never
/// checked out becomes [`SimError::ChannelJammed`].
///
/// # Errors
///
/// Returns [`SimError::ChannelJammed`] when every attempt (initial plus
/// retries) failed its integrity check.
pub fn deliver(
    plan: &ChannelPlan,
    gpu_cfg: &GpuConfig,
    payload: &BitVec,
    seed: u64,
    faults: Option<&FaultConfig>,
    opts: &RobustOptions,
) -> Result<BitVec, SimError> {
    let report = transmit_reliable(plan, gpu_cfg, payload, seed, faults, opts);
    if report.outcome.is_delivered() {
        Ok(report.delivered)
    } else {
        Err(SimError::ChannelJammed {
            label: plan
                .channels()
                .first()
                .map(|c| c.label.clone())
                .unwrap_or_default(),
            attempts: report.attempts,
        })
    }
}

/// Post-FEC bit errors of the *naive* decoder on the same transmission:
/// hard-slices the slot-ordered latencies with the static preamble
/// threshold (as [`crate::channel::decode_stream`] does), de-stripes,
/// and runs plain Hamming decoding without erasure knowledge.
pub fn naive_post_fec_errors(report: &TransmissionReport, payload: &BitVec) -> usize {
    let frame_len = payload.len() + CRC_BITS;
    let fec = fec_decode(&report.received, frame_len);
    let (decoded_payload, _) = split_frame(&fec.payload, payload.len());
    decoded_payload.hamming_distance(payload)
}

/// Both decoders run over one and the same fault-injected transmission.
#[derive(Debug, Clone)]
pub struct DecoderComparison {
    /// Post-FEC payload bit errors of the naive static-threshold decoder.
    pub naive_errors: usize,
    /// Post-FEC payload bit errors of the adaptive erasure decoder.
    pub hardened_errors: usize,
    /// Payload bits compared.
    pub payload_bits: usize,
    /// The underlying (naive) transmission report.
    pub report: TransmissionReport,
}

/// Transmits the CRC-framed, FEC-coded `payload` once under `faults`
/// and decodes the identical traces twice: naively (static threshold,
/// sample order) and hardened (adaptive windowed threshold, tag
/// alignment, erasures). The comparison every noise-sweep plot and
/// acceptance test is built on — same wire, two receivers.
pub fn compare_decoders(
    plan: &ChannelPlan,
    gpu_cfg: &GpuConfig,
    payload: &BitVec,
    seed: u64,
    faults: &FaultConfig,
    opts: &RobustOptions,
) -> DecoderComparison {
    let frame = frame_payload(payload);
    let coded = fec_encode(&frame);
    let fault_plan = FaultPlan::new(faults.clone());
    let (report, traces) = plan.transmit_with_faults(gpu_cfg, &coded, seed, &fault_plan);
    let naive_errors = naive_post_fec_errors(&report, payload);
    let preamble_bits = plan.protocol().preamble_bits;
    let decodes: Vec<AdaptiveDecode> = traces
        .iter()
        .map(|t| adaptive_decode(t, preamble_bits, opts))
        .collect();
    let soft: Vec<Vec<FecSymbol>> = decodes.iter().map(|d| d.symbols.clone()).collect();
    let hard: Vec<Vec<FecSymbol>> = decodes.iter().map(|d| d.hard_symbols.clone()).collect();
    let symbols = blend_block_symbols(
        &destripe_symbols(&soft, coded.len()),
        &destripe_symbols(&hard, coded.len()),
    );
    let fec = fec_decode_symbols(&symbols, frame.len());
    let (decoded_payload, _) = split_frame(&fec.payload, payload.len());
    let hardened_errors = decoded_payload.hamming_distance(payload);
    DecoderComparison {
        naive_errors,
        hardened_errors,
        payload_bits: payload.len(),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_from_latencies(latencies: &[u64], expected: usize) -> ChannelTrace {
        ChannelTrace {
            label: "test".into(),
            receiver_sm: 1,
            samples: latencies
                .iter()
                .enumerate()
                .map(|(i, &v)| (i as u32, v))
                .collect(),
            expected_samples: expected,
            chunk: Vec::new(),
        }
    }

    #[test]
    fn crc16_detects_corruption() {
        let payload = BitVec::from_bytes(b"hi");
        let crc = crc16(&payload);
        let mut corrupted =
            BitVec::from_bits(
                payload
                    .iter()
                    .enumerate()
                    .map(|(i, b)| if i == 3 { !b } else { b }),
            );
        assert_ne!(crc16(&corrupted), crc);
        corrupted = payload.clone();
        assert_eq!(crc16(&corrupted), crc);
    }

    #[test]
    fn frame_round_trips() {
        let payload = BitVec::from_bytes(b"\xA5\x3C");
        let frame = frame_payload(&payload);
        assert_eq!(frame.len(), payload.len() + CRC_BITS);
        let (back, crc) = split_frame(&frame, payload.len());
        assert_eq!(back, payload);
        assert_eq!(crc, crc16(&payload));
    }

    #[test]
    fn adaptive_decode_clean_trace() {
        // Preamble 0,1,0,1 at 100/200, payload 1,0,1.
        let lat = [100, 200, 100, 200, 200, 100, 200];
        let out = adaptive_decode(&trace_from_latencies(&lat, 7), 4, &RobustOptions::default());
        assert_eq!(
            out.symbols,
            vec![FecSymbol::One, FecSymbol::Zero, FecSymbol::One]
        );
        assert_eq!(out.erasures, 0);
        assert_eq!(out.missing, 0);
        assert!(!out.resynchronized);
    }

    #[test]
    fn adaptive_decode_survives_drops_and_dups() {
        // Same stream, but slot 5's sample is lost and slot 4 arrives
        // twice: tags keep everything aligned.
        let trace = ChannelTrace {
            label: "t".into(),
            receiver_sm: 1,
            samples: vec![
                (0, 100),
                (1, 200),
                (2, 100),
                (3, 200),
                (4, 200),
                (4, 205),
                (6, 200),
            ],
            expected_samples: 7,
            chunk: Vec::new(),
        };
        let out = adaptive_decode(&trace, 4, &RobustOptions::default());
        assert_eq!(
            out.symbols,
            vec![FecSymbol::One, FecSymbol::Erased, FecSymbol::One]
        );
        assert_eq!(out.duplicates, 1);
        assert_eq!(out.missing, 1);
        assert_eq!(out.erasures, 1);
    }

    #[test]
    fn adaptive_decode_resynchronizes_without_preamble() {
        // The whole preamble is lost; calibration comes from the
        // payload's own bimodal split.
        let samples: Vec<(u32, u64)> = (4..24u32)
            .map(|tag| (tag, if tag % 3 == 0 { 210 } else { 95 }))
            .collect();
        let trace = ChannelTrace {
            label: "t".into(),
            receiver_sm: 1,
            samples,
            expected_samples: 24,
            chunk: Vec::new(),
        };
        let out = adaptive_decode(&trace, 4, &RobustOptions::default());
        assert!(out.resynchronized);
        for (i, s) in out.symbols.iter().enumerate() {
            let tag = i + 4;
            let want = if tag % 3 == 0 {
                FecSymbol::One
            } else {
                FecSymbol::Zero
            };
            assert_eq!(*s, want, "slot {tag}");
        }
    }

    #[test]
    fn adaptive_decode_tracks_drifting_populations() {
        // Both populations ramp upward by 150 cycles over the payload —
        // far past the initial 150-cycle threshold. The static decoder
        // saturates to all-ones; the windowed decoder keeps up.
        let mut lat = vec![100, 200, 100, 200];
        let payload_bits: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        for (i, &bit) in payload_bits.iter().enumerate() {
            let drift = (i as u64) * 150 / 64;
            lat.push(if bit { 200 + drift } else { 100 + drift });
        }
        let expected = lat.len();
        let out = adaptive_decode(
            &trace_from_latencies(&lat, expected),
            4,
            &RobustOptions {
                window: 8,
                ..RobustOptions::default()
            },
        );
        let decoded: Vec<bool> = out
            .symbols
            .iter()
            .map(|s| matches!(s, FecSymbol::One))
            .collect();
        let adaptive_errors = decoded
            .iter()
            .zip(&payload_bits)
            .filter(|(a, b)| a != b)
            .count();
        let (_, static_bits) = crate::channel::decode_stream(&lat, 4, payload_bits.len());
        let static_errors = static_bits
            .iter()
            .zip(&payload_bits)
            .filter(|(a, b)| a != b)
            .count();
        assert!(
            adaptive_errors < static_errors,
            "adaptive {adaptive_errors} vs static {static_errors}"
        );
        assert!(adaptive_errors <= 4, "adaptive errors {adaptive_errors}");
    }

    #[test]
    fn destripe_fills_gaps_with_erasures() {
        let a = vec![FecSymbol::One, FecSymbol::Zero];
        let b = vec![FecSymbol::Zero];
        let out = destripe_symbols(&[a, b], 5);
        assert_eq!(
            out,
            vec![
                FecSymbol::One,
                FecSymbol::Zero,
                FecSymbol::Zero,
                FecSymbol::Erased,
                FecSymbol::Erased
            ]
        );
    }
}
