//! The §5 side-channel sketch: contention as an activity meter.
//!
//! "An example of a simple side channel attack based on the leakage
//! described in this work is using the NoC channel contention to measure
//! the amount of L1 miss, since there is a linear correlation between
//! the NoC channel contention and the amount of L2 accesses."
//!
//! Here a *victim* kernel runs phases of varying memory intensity on one
//! SM; a *spy* co-located on the TPC sibling samples its own L2 latency
//! every slot, with no cooperation from the victim. Averaging the spy's
//! samples per phase recovers the victim's per-phase L2 access intensity
//! up to an affine transform — the paper's claimed linear correlation.

use crate::protocol::RECEIVER_BASE;
use gnc_common::ids::{BlockId, StreamId, WarpId};
use gnc_common::stats::OnlineStats;
use gnc_common::GpuConfig;
use gnc_sim::kernel::{
    warp_addresses, AccessKind, KernelProgram, WarpContext, WarpProgram, WarpStep,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Spy sampling slot length in cycles (power of two; long enough for a
/// 32-request read probe under full contention).
const SPY_SLOT: u32 = 1024;
/// Slots per victim phase.
const SLOTS_PER_PHASE: usize = 8;
/// Byte address where the victim's working set starts.
const VICTIM_BASE: u64 = 0x0400_0000;

/// The spy's view of one victim phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseObservation {
    /// The victim's true per-slot L2 store-access count (ground truth,
    /// for evaluation only).
    pub true_intensity: u32,
    /// Mean spy probe latency across the phase's slots.
    pub observed_latency: f64,
}

/// Result of one spy session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpyReport {
    /// One observation per victim phase, in phase order.
    pub phases: Vec<PhaseObservation>,
    /// Pearson correlation between true intensity and observed latency.
    pub correlation: f64,
}

struct VictimWarp {
    intensities: Arc<Vec<u32>>,
    slot: usize,
    synced: bool,
    worked: bool,
    /// Set between the 1-cycle gap and the boundary wait, so an idle
    /// slot still consumes a full slot (a boundary-aligned UntilClock
    /// would otherwise be a free step and burn the slot instantly).
    gapped: bool,
    line_bytes: u64,
    active: Option<bool>,
    target_sm: usize,
}

impl WarpProgram for VictimWarp {
    fn step(&mut self, ctx: &WarpContext) -> WarpStep {
        let active = *self
            .active
            .get_or_insert_with(|| ctx.sm.index() == self.target_sm);
        if !active {
            return WarpStep::Finish;
        }
        if !self.synced {
            if !self.gapped {
                // Two-step sync: midpoint first, then the boundary, so a
                // launch right on a boundary cannot desynchronise the
                // pair by a whole window.
                self.gapped = true;
                return WarpStep::UntilClock {
                    mask: SPY_SLOT * 64 - 1,
                    target: SPY_SLOT * 32,
                };
            }
            self.gapped = false;
            self.synced = true;
            return WarpStep::UntilClock {
                mask: SPY_SLOT * 64 - 1,
                target: 0,
            };
        }
        let phase = self.slot / SLOTS_PER_PHASE;
        if phase >= self.intensities.len() {
            return WarpStep::Finish;
        }
        if !self.worked {
            // One slot's worth of work: `intensity` uncoalesced store
            // accesses (the victim's per-slot L2-access count — its "L1
            // miss" rate in the paper's framing).
            self.worked = true;
            let intensity = self.intensities[phase];
            if intensity > 0 {
                return WarpStep::Memory {
                    kind: AccessKind::Write,
                    addrs: warp_addresses(VICTIM_BASE, intensity.min(32), true, self.line_bytes),
                    wait: true,
                };
            }
        }
        // Align to the next slot boundary: step off the current cycle
        // first so a boundary-aligned idle slot still lasts a slot.
        if !self.gapped {
            self.gapped = true;
            return WarpStep::Sleep(1);
        }
        self.gapped = false;
        self.worked = false;
        self.slot += 1;
        WarpStep::UntilClock {
            mask: SPY_SLOT - 1,
            target: 0,
        }
    }
}

/// A victim whose memory intensity varies phase by phase — e.g. an
/// encryption kernel alternating between table lookups and arithmetic.
pub struct VictimKernel {
    intensities: Arc<Vec<u32>>,
    blocks: usize,
    line_bytes: u64,
    target_sm: usize,
}

impl VictimKernel {
    /// One victim block on `target_sm`; `intensities[p]` is the number of
    /// uncoalesced L2 store accesses issued per slot during phase `p`
    /// (0–32 — the quantity the paper says the NoC contention meters
    /// linearly).
    pub fn new(cfg: &GpuConfig, target_sm: usize, intensities: Vec<u32>) -> Self {
        Self {
            intensities: Arc::new(intensities),
            blocks: cfg.num_tpcs(),
            line_bytes: u64::from(cfg.mem.line_bytes),
            target_sm,
        }
    }

    /// Lines to preload for the victim's hottest phase.
    pub fn working_set(&self) -> (u64, u64) {
        (VICTIM_BASE, 64)
    }
}

impl KernelProgram for VictimKernel {
    fn name(&self) -> &str {
        "victim"
    }

    fn num_blocks(&self) -> usize {
        self.blocks
    }

    fn warps_per_block(&self) -> usize {
        1
    }

    fn create_warp(&self, _block: BlockId, _warp: WarpId) -> Box<dyn WarpProgram> {
        Box::new(VictimWarp {
            intensities: Arc::clone(&self.intensities),
            slot: 0,
            synced: false,
            worked: false,
            gapped: false,
            line_bytes: self.line_bytes,
            active: None,
            target_sm: self.target_sm,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpyPhase {
    Sync,
    SyncBoundary,
    Probe,
    Report,
    Align,
    Gap,
}

struct SpyWarp {
    slots: usize,
    done: usize,
    phase: SpyPhase,
    line_bytes: u64,
    active: Option<bool>,
    target_sm: usize,
}

impl WarpProgram for SpyWarp {
    fn step(&mut self, ctx: &WarpContext) -> WarpStep {
        let active = *self
            .active
            .get_or_insert_with(|| ctx.sm.index() == self.target_sm);
        if !active {
            return WarpStep::Finish;
        }
        match self.phase {
            SpyPhase::Sync => {
                self.phase = SpyPhase::SyncBoundary;
                WarpStep::UntilClock {
                    mask: SPY_SLOT * 64 - 1,
                    target: SPY_SLOT * 32,
                }
            }
            SpyPhase::SyncBoundary => {
                self.phase = SpyPhase::Probe;
                WarpStep::UntilClock {
                    mask: SPY_SLOT * 64 - 1,
                    target: 0,
                }
            }
            SpyPhase::Probe => {
                if self.done >= self.slots {
                    return WarpStep::Finish;
                }
                self.phase = SpyPhase::Report;
                let base = RECEIVER_BASE + (ctx.sm.index() as u64) * 64 * self.line_bytes;
                // Probe with scattered *stores*: their request packets
                // are what the victim's writes contend with on the
                // shared channel. (A load probe's latency would be
                // dominated by its own reply ejection and hide the
                // signal — same reason the TPC receiver writes.)
                WarpStep::Memory {
                    kind: AccessKind::Write,
                    addrs: warp_addresses(base, 32, true, self.line_bytes),
                    wait: true,
                }
            }
            SpyPhase::Report => {
                self.phase = SpyPhase::Align;
                let slot = self.done as u32;
                self.done += 1;
                WarpStep::Record {
                    tag: slot,
                    value: ctx.last_mem_latency,
                }
            }
            SpyPhase::Align => {
                self.phase = SpyPhase::Gap;
                WarpStep::Sleep(1)
            }
            SpyPhase::Gap => {
                self.phase = SpyPhase::Probe;
                WarpStep::UntilClock {
                    mask: SPY_SLOT - 1,
                    target: 0,
                }
            }
        }
    }
}

/// A spy sampling its TPC sibling's interconnect usage, one probe per
/// slot.
pub struct SpyKernel {
    slots: usize,
    blocks: usize,
    line_bytes: u64,
    target_sm: usize,
}

impl SpyKernel {
    /// A spy on `target_sm` sampling for `slots` slots.
    pub fn new(cfg: &GpuConfig, target_sm: usize, slots: usize) -> Self {
        Self {
            slots,
            blocks: cfg.num_tpcs(),
            line_bytes: u64::from(cfg.mem.line_bytes),
            target_sm,
        }
    }
}

impl KernelProgram for SpyKernel {
    fn name(&self) -> &str {
        "spy"
    }

    fn num_blocks(&self) -> usize {
        self.blocks
    }

    fn warps_per_block(&self) -> usize {
        1
    }

    fn create_warp(&self, _block: BlockId, _warp: WarpId) -> Box<dyn WarpProgram> {
        Box::new(SpyWarp {
            slots: self.slots,
            done: 0,
            phase: SpyPhase::Sync,
            line_bytes: self.line_bytes,
            active: None,
            target_sm: self.target_sm,
        })
    }
}

/// Runs the full side-channel session: the victim executes its phases on
/// SM0 while the spy samples from SM1, then the spy's per-phase means
/// are correlated against the ground truth.
///
/// ```no_run
/// use gnc_common::GpuConfig;
/// use gnc_covert::sidechannel::spy_on_victim;
///
/// let report = spy_on_victim(&GpuConfig::volta_v100(), &[0, 24, 8, 32], 0);
/// assert!(report.correlation > 0.9);
/// ```
pub fn spy_on_victim(cfg: &GpuConfig, intensities: &[u32], seed: u64) -> SpyReport {
    let mut gpu = gnc_sim::pooled_gpu(cfg, seed, None).expect("valid config");
    let victim = VictimKernel::new(cfg, 0, intensities.to_vec());
    let (vbase, vlines) = victim.working_set();
    gpu.preload_range(vbase, vlines);
    gpu.preload_range(RECEIVER_BASE, cfg.num_sms() as u64 * 64);
    let total_slots = intensities.len() * SLOTS_PER_PHASE;
    let spy = SpyKernel::new(cfg, 1, total_slots);
    gpu.launch(Box::new(victim), StreamId::new(0));
    let spy_id = gpu.launch(Box::new(spy), StreamId::new(1));
    let budget =
        u64::from(SPY_SLOT) * 64 + (total_slots as u64 + 4) * u64::from(SPY_SLOT) * 2 + 100_000;
    let outcome = gpu.run_until_idle(budget);
    assert!(
        outcome.is_idle(),
        "side-channel session did not finish: {outcome:?}"
    );

    let mut slot_latencies: Vec<(u32, u64)> = gpu
        .recorder()
        .for_kernel(spy_id)
        .map(|r| (r.tag, r.value))
        .collect();
    slot_latencies.sort_by_key(|&(tag, _)| tag);

    let phases: Vec<PhaseObservation> = intensities
        .iter()
        .enumerate()
        .map(|(p, &true_intensity)| {
            let mut stats = OnlineStats::new();
            for &(tag, lat) in &slot_latencies {
                if (tag as usize) / SLOTS_PER_PHASE == p {
                    stats.push(lat as f64);
                }
            }
            PhaseObservation {
                true_intensity,
                observed_latency: stats.mean(),
            }
        })
        .collect();

    SpyReport {
        correlation: pearson(
            &phases
                .iter()
                .map(|p| f64::from(p.true_intensity))
                .collect::<Vec<_>>(),
            &phases
                .iter()
                .map(|p| p.observed_latency)
                .collect::<Vec<_>>(),
        ),
        phases,
    }
}

/// Pearson correlation coefficient; 0 for degenerate inputs.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn spy_recovers_victim_intensity_ordering() {
        let cfg = GpuConfig::volta_v100();
        // Distinct access counts, shuffled so correlation ≠ trend.
        let intensities = [0u32, 24, 8, 32, 16];
        let report = spy_on_victim(&cfg, &intensities, 1);
        assert_eq!(report.phases.len(), 5);
        assert!(
            report.correlation > 0.9,
            "correlation {} phases {:?}",
            report.correlation,
            report.phases
        );
        // The silent phase must show the lowest latency.
        let silent = report
            .phases
            .iter()
            .find(|p| p.true_intensity == 0)
            .unwrap();
        for p in &report.phases {
            if p.true_intensity > 0 {
                assert!(p.observed_latency >= silent.observed_latency);
            }
        }
    }

    #[test]
    fn spy_on_non_sibling_sees_nothing() {
        // Control experiment: spy on SM3 (different TPC) gets a flat
        // trace — the side channel is strictly local, like the covert
        // channel (Fig 8's SM12 line).
        let cfg = GpuConfig::volta_v100();
        let mut gpu = gnc_sim::gpu::Gpu::with_clock_seed(cfg.clone(), 2).expect("valid");
        let intensities = vec![0u32, 32, 0, 32];
        let victim = VictimKernel::new(&cfg, 0, intensities.clone());
        let (vb, vl) = victim.working_set();
        gpu.preload_range(vb, vl);
        gpu.preload_range(RECEIVER_BASE, cfg.num_sms() as u64 * 64);
        let total_slots = intensities.len() * SLOTS_PER_PHASE;
        let spy = SpyKernel::new(&cfg, 3, total_slots);
        gpu.launch(Box::new(victim), StreamId::new(0));
        let spy_id = gpu.launch(Box::new(spy), StreamId::new(1));
        assert!(gpu
            .run_until_idle(u64::from(SPY_SLOT) * (total_slots as u64 * 2 + 80) + 100_000)
            .is_idle());
        let lats: Vec<u64> = gpu.recorder().for_kernel(spy_id).map(|r| r.value).collect();
        let min = *lats.iter().min().unwrap() as f64;
        let max = *lats.iter().max().unwrap() as f64;
        assert!(
            max / min < 1.15,
            "non-sibling spy saw variation {min}..{max}"
        );
    }
}
