//! The clock-register synchronization study (§4.1, Fig 6).
//!
//! The covert channel's synchronization rests on one measured property:
//! `clock()` values of co-located SMs are nearly identical (same TPC:
//! average difference under 5 cycles; same GPC: under 15), tiny next to
//! the ~200–250-cycle L2 latency, while different GPCs started counting
//! at entirely different epochs. This module runs the paper's
//! measurement kernel and summarises the skew structure.

use gnc_common::ids::{SmId, StreamId};
use gnc_common::stats::OnlineStats;
use gnc_common::GpuConfig;
use gnc_sim::workloads::{ClockReadKernel, TAG_CLOCK};
use serde::{Deserialize, Serialize};

/// One Fig 6 sample: the clock value read on each SM in a single launch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockSnapshot {
    /// `values[sm]` is the 32-bit `clock()` readout of that SM.
    pub values: Vec<u64>,
}

/// Launches the clock-read kernel across every SM and collects the
/// per-SM readings — exactly Fig 6's experiment.
pub fn clock_snapshot(cfg: &GpuConfig, seed: u64) -> ClockSnapshot {
    let mut gpu = gnc_sim::pooled_gpu(cfg, seed, None).expect("valid config");
    let k = gpu.launch(
        Box::new(ClockReadKernel::new(cfg.num_sms())),
        StreamId::new(0),
    );
    let outcome = gpu.run_until_idle(10_000);
    assert!(outcome.is_idle(), "clock kernel did not finish");
    let mut values = vec![0u64; cfg.num_sms()];
    for r in gpu.recorder().for_kernel(k) {
        if r.tag == TAG_CLOCK {
            values[r.sm.index()] = r.value;
        }
    }
    ClockSnapshot { values }
}

/// Aggregate skew statistics over repeated launches (the paper re-ran
/// the kernel 100 times).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkewStats {
    /// Average |Δclock| between the two SMs of a TPC.
    pub avg_tpc_skew: f64,
    /// Maximum |Δclock| between the two SMs of a TPC.
    pub max_tpc_skew: f64,
    /// Average |Δclock| between SM pairs within one GPC.
    pub avg_gpc_skew: f64,
    /// Maximum |Δclock| between SM pairs within one GPC.
    pub max_gpc_skew: f64,
    /// Ratio of the largest to smallest per-GPC epoch (Fig 6's ~4×
    /// spread across GPCs).
    pub gpc_epoch_ratio: f64,
}

/// Runs [`clock_snapshot`] `runs` times (distinct boot epochs) and
/// summarises the §4.1 skew statistics.
pub fn skew_stats(cfg: &GpuConfig, runs: usize, seed: u64) -> SkewStats {
    let mut tpc = OnlineStats::new();
    let mut gpc = OnlineStats::new();
    let mut epoch_ratio = OnlineStats::new();
    for run in 0..runs {
        let snap = clock_snapshot(cfg, seed + run as u64);
        // TPC siblings.
        for t in 0..cfg.num_tpcs() {
            let a = snap.values[2 * t] as f64;
            let b = snap.values[2 * t + 1] as f64;
            tpc.push((a - b).abs());
        }
        // Same-GPC pairs and per-GPC epochs.
        let mut epochs: Vec<f64> = Vec::new();
        for g in 0..cfg.num_gpcs {
            let members: Vec<usize> = (0..cfg.num_sms())
                .filter(|&s| cfg.gpc_of_sm(SmId::new(s)).index() == g)
                .collect();
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    gpc.push((snap.values[a] as f64 - snap.values[b] as f64).abs());
                }
            }
            if let Some(&first) = members.first() {
                epochs.push(snap.values[first] as f64);
            }
        }
        let hi = epochs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let lo = epochs.iter().copied().fold(f64::INFINITY, f64::min);
        if lo > 0.0 {
            epoch_ratio.push(hi / lo);
        }
    }
    SkewStats {
        avg_tpc_skew: tpc.mean(),
        max_tpc_skew: tpc.max().unwrap_or(0.0),
        avg_gpc_skew: gpc.mean(),
        max_gpc_skew: gpc.max().unwrap_or(0.0),
        gpc_epoch_ratio: epoch_ratio.mean(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_covers_every_sm() {
        let cfg = GpuConfig::volta_v100();
        let snap = clock_snapshot(&cfg, 0);
        assert_eq!(snap.values.len(), 80);
        assert!(snap.values.iter().all(|&v| v > 0));
    }

    #[test]
    fn skew_bounds_match_section_4_1() {
        let cfg = GpuConfig::volta_v100();
        let stats = skew_stats(&cfg, 20, 0);
        // The paper: average TPC skew under 5 cycles, GPC skew under 15.
        assert!(stats.avg_tpc_skew < 5.0, "TPC skew {}", stats.avg_tpc_skew);
        assert!(stats.avg_gpc_skew < 15.0, "GPC skew {}", stats.avg_gpc_skew);
        assert!(stats.max_tpc_skew <= f64::from(cfg.clock.max_tpc_skew) + 1.0);
        assert!(stats.max_gpc_skew <= f64::from(cfg.clock.max_gpc_skew) + 1.0);
    }

    #[test]
    fn gpc_epochs_are_spread_like_fig6() {
        let cfg = GpuConfig::volta_v100();
        let stats = skew_stats(&cfg, 20, 7);
        // Fig 6 shows multiple-× spread between GPC base values.
        assert!(
            stats.gpc_epoch_ratio > 1.5,
            "epoch ratio {}",
            stats.gpc_epoch_ratio
        );
    }

    #[test]
    fn skew_is_negligible_next_to_l2_latency() {
        let cfg = GpuConfig::volta_v100();
        let stats = skew_stats(&cfg, 5, 1);
        let l2 = f64::from(cfg.mem.l2_access_latency);
        assert!(stats.avg_gpc_skew < l2 / 10.0);
    }
}
