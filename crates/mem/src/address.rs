//! Physical address decomposition.
//!
//! Addresses interleave across L2 slices at cache-line granularity, so a
//! streaming kernel touches every memory partition — the property the
//! paper's synthetic benchmark relies on ("ensures that all memory
//! partitions … are accessed", §3.2) and which keeps the L2 slices out of
//! the bottleneck so that the *interconnect* is the contended resource.

use gnc_common::fastdiv::FastDivisor;
use gnc_common::ids::{McId, SliceId};
use gnc_common::GpuConfig;

/// Maps byte addresses to L2 slices, sets, and DRAM coordinates.
///
/// Every decomposition runs on each packet the simulator creates or
/// services, so the divisors are strength-reduced at construction
/// ([`FastDivisor`]) instead of paying a hardware divide per call.
#[derive(Debug, Clone)]
pub struct AddressMap {
    line_bytes: u64,
    /// `log2(line_bytes)`; line size is validated as a power of two.
    line_shift: u32,
    num_slices: FastDivisor,
    num_sets: FastDivisor,
    slices_per_mc: u64,
    banks_per_mc: FastDivisor,
}

impl AddressMap {
    /// Builds the map for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the L2 slice geometry does not yield at least one set or
    /// the line size is not a power of two (caught earlier by
    /// `GpuConfig::validate` in normal use).
    pub fn new(cfg: &GpuConfig) -> Self {
        let line_bytes = u64::from(cfg.mem.line_bytes);
        assert!(
            line_bytes.is_power_of_two(),
            "cache line size must be a power of two"
        );
        let slice_bytes = u64::from(cfg.mem.l2_slice_kb) * 1024;
        let num_sets = slice_bytes / (line_bytes * cfg.mem.l2_assoc as u64);
        assert!(num_sets > 0, "L2 slice must hold at least one set");
        Self {
            line_bytes,
            line_shift: line_bytes.trailing_zeros(),
            num_slices: FastDivisor::new(cfg.mem.num_l2_slices as u64),
            num_sets: FastDivisor::new(num_sets),
            slices_per_mc: (cfg.mem.num_l2_slices / cfg.mem.num_mcs) as u64,
            banks_per_mc: FastDivisor::new(cfg.mem.banks_per_mc as u64),
        }
    }

    /// The cache line index of `addr`.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// The base byte address of the line containing `addr`.
    #[inline]
    pub fn line_base(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }

    /// The L2 slice holding `addr` (line interleaving).
    #[inline]
    pub fn slice_of(&self, addr: u64) -> SliceId {
        SliceId::new(self.num_slices.rem(self.line_of(addr)) as usize)
    }

    /// The set index of `addr` within its slice.
    #[inline]
    pub fn set_of(&self, addr: u64) -> usize {
        self.num_sets.rem(self.num_slices.div(self.line_of(addr))) as usize
    }

    /// The tag of `addr` (line bits above the set index).
    #[inline]
    pub fn tag_of(&self, addr: u64) -> u64 {
        self.num_sets.div(self.num_slices.div(self.line_of(addr)))
    }

    /// `(set_of, tag_of)` of `addr` with the shared division done once —
    /// the L2 lookup path needs both.
    #[inline]
    pub fn set_tag_of(&self, addr: u64) -> (usize, u64) {
        let (tag, set) = self
            .num_sets
            .div_rem(self.num_slices.div(self.line_of(addr)));
        (set as usize, tag)
    }

    /// The memory controller behind `slice`.
    #[inline]
    pub fn mc_of_slice(&self, slice: SliceId) -> McId {
        McId::new(slice.index() / self.slices_per_mc as usize)
    }

    /// The DRAM bank (within its MC) servicing `addr`.
    #[inline]
    pub fn bank_of(&self, addr: u64) -> usize {
        self.banks_per_mc
            .rem(self.num_slices.div(self.line_of(addr))) as usize
    }

    /// The DRAM row (within its bank) holding `addr`.
    #[inline]
    pub fn row_of(&self, addr: u64) -> u64 {
        self.banks_per_mc
            .div(self.num_slices.div(self.line_of(addr)))
    }

    /// Number of sets per slice.
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.num_sets.divisor() as usize
    }

    /// Cache line size in bytes.
    #[inline]
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// An address guaranteed to map to `slice`, offset by `nth` lines
    /// within that slice (each increment moves to the next set).
    ///
    /// Used by workload generators that need to target or avoid specific
    /// slices deterministically.
    pub fn addr_in_slice(&self, slice: SliceId, nth: u64) -> u64 {
        (nth * self.num_slices.divisor() + slice.index() as u64) * self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        AddressMap::new(&GpuConfig::volta_v100())
    }

    #[test]
    fn volta_geometry() {
        let m = map();
        // 96 KiB / (128 B × 16 ways) = 48 sets.
        assert_eq!(m.num_sets(), 48);
        assert_eq!(m.line_bytes(), 128);
    }

    #[test]
    fn consecutive_lines_interleave_across_all_slices() {
        let m = map();
        let mut seen = vec![false; 48];
        for i in 0..48u64 {
            seen[m.slice_of(i * 128).index()] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "48 consecutive lines must cover all slices"
        );
    }

    #[test]
    fn same_line_maps_identically() {
        let m = map();
        assert_eq!(m.slice_of(0x1000), m.slice_of(0x107F));
        assert_eq!(m.set_of(0x1000), m.set_of(0x107F));
        assert_eq!(m.tag_of(0x1000), m.tag_of(0x107F));
        assert_eq!(m.line_base(0x107F), 0x1000);
    }

    #[test]
    fn tag_set_slice_reconstruct_line() {
        let m = map();
        for addr in (0..(1 << 22)).step_by(12_347) {
            let line = m.line_of(addr);
            let reconstructed = (m.tag_of(addr) * m.num_sets() as u64 + m.set_of(addr) as u64)
                * m.num_slices.divisor()
                + m.slice_of(addr).index() as u64;
            assert_eq!(line, reconstructed, "addr {addr:#x}");
            let (set, tag) = m.set_tag_of(addr);
            assert_eq!((set, tag), (m.set_of(addr), m.tag_of(addr)));
        }
    }

    #[test]
    fn addr_in_slice_round_trips() {
        let m = map();
        for s in [0usize, 7, 47] {
            for nth in [0u64, 1, 47, 48, 1000] {
                let addr = m.addr_in_slice(SliceId::new(s), nth);
                assert_eq!(m.slice_of(addr), SliceId::new(s));
            }
        }
    }

    #[test]
    fn addr_in_slice_distinct_nths_hit_distinct_lines() {
        let m = map();
        let a = m.addr_in_slice(SliceId::new(3), 0);
        let b = m.addr_in_slice(SliceId::new(3), 1);
        assert_ne!(m.line_of(a), m.line_of(b));
        // First num_sets entries land in distinct sets.
        let sets: std::collections::HashSet<usize> = (0..48)
            .map(|n| m.set_of(m.addr_in_slice(SliceId::new(3), n)))
            .collect();
        assert_eq!(sets.len(), 48);
    }

    #[test]
    fn mc_mapping_groups_two_slices() {
        let m = map();
        assert_eq!(m.mc_of_slice(SliceId::new(0)), McId::new(0));
        assert_eq!(m.mc_of_slice(SliceId::new(1)), McId::new(0));
        assert_eq!(m.mc_of_slice(SliceId::new(2)), McId::new(1));
        assert_eq!(m.mc_of_slice(SliceId::new(47)), McId::new(23));
    }

    #[test]
    fn banks_and_rows_are_in_range() {
        let cfg = GpuConfig::volta_v100();
        let m = AddressMap::new(&cfg);
        for addr in (0..(1 << 24)).step_by(52_813) {
            assert!(m.bank_of(addr) < cfg.mem.banks_per_mc);
            let _ = m.row_of(addr); // must not panic
        }
    }
}
