//! HBM2-style DRAM controller with per-bank row state.
//!
//! Timing follows Table 1 of the paper: tCL = 12, tRP = 12, tRC = 40,
//! tRAS = 28, tRCD = 12, tRRD = 3, expressed in memory-clock cycles and
//! scaled to core cycles by `mem_clock_ratio`. The model tracks, per
//! bank, the open row and the earliest cycle each command class may
//! issue, plus a shared data bus per controller — enough to give row
//! hits, row conflicts, and bus contention distinct, ordered latencies.

use gnc_common::config::{DramTiming, MemConfig};
use gnc_common::Cycle;

#[derive(Debug, Clone, Default)]
struct BankState {
    open_row: Option<u64>,
    /// Earliest core cycle the next command may issue at this bank.
    ready_at: Cycle,
    /// Core cycle of the last ACT, if any (for tRC / tRAS spacing).
    last_activate: Option<Cycle>,
}

/// The schedule one committed DRAM access received (telemetry detail for
/// [`DramController::access_traced`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccess {
    /// Core cycle the bank started servicing the access.
    pub start: Cycle,
    /// Core cycle the data finished transferring (bank busy over
    /// `[start, done)`; `ready_at` advances to `done`, so per-bank busy
    /// intervals never overlap).
    pub done: Cycle,
    /// Whether the access hit the open row.
    pub row_hit: bool,
}

/// One memory controller: a set of banks plus a shared data bus.
#[derive(Debug, Clone)]
pub struct DramController {
    banks: Vec<BankState>,
    timing: DramTiming,
    ratio: u64,
    bus_free_at: Cycle,
    /// Earliest cycle the next ACT may issue anywhere (tRRD spacing).
    next_activate_at: Cycle,
    /// Core cycles one line transfer occupies the data bus.
    burst_cycles: u64,
    accesses: u64,
    row_hits: u64,
}

impl DramController {
    /// Creates a controller for `mem`'s bank count, timing, and clock
    /// ratio.
    pub fn new(mem: &MemConfig) -> Self {
        Self {
            banks: vec![BankState::default(); mem.banks_per_mc],
            timing: mem.dram,
            ratio: u64::from(mem.mem_clock_ratio),
            bus_free_at: 0,
            next_activate_at: 0,
            burst_cycles: 4 * u64::from(mem.mem_clock_ratio),
            accesses: 0,
            row_hits: 0,
        }
    }

    fn t(&self, mem_cycles: u32) -> u64 {
        u64::from(mem_cycles) * self.ratio
    }

    /// Schedules one line access to `(bank, row)` issued at `now` and
    /// returns the core cycle at which the data has finished transferring.
    ///
    /// The access is committed: bank, ACT spacing, and bus state advance.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn access(&mut self, bank: usize, row: u64, now: Cycle) -> Cycle {
        self.access_traced(bank, row, now).done
    }

    /// [`access`](Self::access), also reporting when the bank started
    /// servicing the request and whether it hit the open row — the raw
    /// material of bank-busy telemetry.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn access_traced(&mut self, bank: usize, row: u64, now: Cycle) -> DramAccess {
        self.accesses += 1;
        let t_cl = self.t(self.timing.t_cl);
        let t_rp = self.t(self.timing.t_rp);
        let t_rc = self.t(self.timing.t_rc);
        let t_ras = self.t(self.timing.t_ras);
        let t_rcd = self.t(self.timing.t_rcd);
        let t_rrd = self.t(self.timing.t_rrd);

        let state = &mut self.banks[bank];
        let start = now.max(state.ready_at);
        let row_hit = state.open_row == Some(row);
        let data_at = if row_hit {
            self.row_hits += 1;
            start + t_cl
        } else {
            // When a row is open we must precharge first (no earlier than
            // tRAS after its ACT); a never-activated bank skips straight
            // to ACT. ACTs respect tRC per bank and tRRD per controller.
            let act_earliest = match (state.open_row, state.last_activate) {
                (Some(_), Some(act)) => {
                    let pre_at = start.max(act + t_ras);
                    (pre_at + t_rp).max(act + t_rc)
                }
                (None, Some(act)) => start.max(act + t_rc),
                _ => start,
            };
            let act_at = act_earliest.max(self.next_activate_at);
            self.next_activate_at = act_at + t_rrd;
            state.last_activate = Some(act_at);
            state.open_row = Some(row);
            act_at + t_rcd + t_cl
        };
        // The line then occupies the shared data bus.
        let bus_start = data_at.max(self.bus_free_at);
        let done = bus_start + self.burst_cycles;
        self.bus_free_at = done;
        self.banks[bank].ready_at = done;
        DramAccess {
            start,
            done,
            row_hit,
        }
    }

    /// Restores the controller to its just-constructed state in place:
    /// all rows close, every bank and the shared bus become ready at
    /// cycle zero, and counters clear. The bank vector is retained.
    pub fn reset(&mut self) {
        for bank in &mut self.banks {
            *bank = BankState::default();
        }
        self.bus_free_at = 0;
        self.next_activate_at = 0;
        self.accesses = 0;
        self.row_hits = 0;
    }

    /// Total accesses serviced.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Accesses that hit an open row.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl() -> DramController {
        DramController::new(&MemConfig::default())
    }

    #[test]
    fn first_access_pays_activate_plus_cas() {
        let mut c = ctrl();
        let done = c.access(0, 5, 0);
        // ratio 2: (tRCD 12 + tCL 12) × 2 + burst 8 = 56; no precharge on
        // a fresh bank.
        assert_eq!(done, 56);
        assert_eq!(c.accesses(), 1);
        assert_eq!(c.row_hits(), 0);
    }

    #[test]
    fn row_hit_is_fast() {
        let mut c = ctrl();
        let first = c.access(0, 5, 0);
        let second = c.access(0, 5, first);
        // tCL × 2 + burst 8 = 32 beyond the issue time.
        assert_eq!(second - first, 32);
        assert_eq!(c.row_hits(), 1);
    }

    #[test]
    fn row_conflict_is_slower_than_row_hit() {
        let mut c = ctrl();
        let first = c.access(0, 5, 0);
        let mut hit = c.clone();
        let hit_done = hit.access(0, 5, first);
        let conflict_done = c.access(0, 6, first);
        assert!(conflict_done > hit_done);
    }

    #[test]
    fn trc_spacing_between_activates() {
        let mut c = ctrl();
        c.access(0, 1, 0);
        let before = c.banks[0].last_activate.unwrap();
        c.access(0, 2, 0); // row conflict → new ACT
        let after = c.banks[0].last_activate.unwrap();
        assert!(
            after >= before + 40 * 2,
            "ACT-to-ACT spacing {} violates tRC",
            after - before
        );
    }

    #[test]
    fn trrd_spacing_across_banks() {
        let mut c = ctrl();
        c.access(0, 1, 0);
        c.access(1, 1, 0);
        let a0 = c.banks[0].last_activate.unwrap();
        let a1 = c.banks[1].last_activate.unwrap();
        assert!(a1 >= a0 + 3 * 2, "cross-bank ACT spacing violates tRRD");
    }

    #[test]
    fn independent_banks_overlap_but_share_the_bus() {
        let mut c = ctrl();
        let a = c.access(0, 1, 0);
        let b = c.access(1, 1, 0);
        // Bank 1's activate overlaps bank 0's (offset only by tRRD), but
        // its burst queues behind bank 0's on the shared bus.
        assert_eq!(b, a + 8);
    }

    #[test]
    fn bank_serialises_back_to_back_requests() {
        let mut c = ctrl();
        let first = c.access(0, 1, 0);
        // Issued "in the past": still serialised after the first access.
        let second = c.access(0, 1, 0);
        assert!(second > first);
    }

    #[test]
    fn streaming_row_hits_have_constant_service_time() {
        // Back-to-back same-row accesses reach steady state: one CAS +
        // burst per access (tCL × 2 + 8 = 32 core cycles apart).
        let mut c = ctrl();
        let mut last = c.access(0, 1, 0);
        let mut gaps = Vec::new();
        for _ in 0..10 {
            let next = c.access(0, 1, 0);
            gaps.push(next - last);
            last = next;
        }
        assert!(gaps.iter().all(|&g| g == 32), "gaps {gaps:?}");
    }
}
