//! One L2 cache slice.
//!
//! Each slice is set-associative with true-LRU replacement, a fixed-depth
//! access pipeline (the ~150-cycle L2 latency that dominates the paper's
//! 200–250-cycle round trip), MSHR-based miss handling with same-line
//! merging, and write-allocate semantics. Covert-channel kernels preload
//! their working set (see [`L2Slice::preload`]) so every timed access is
//! a hit — the paper loads all data into the L2 so that latency varies
//! only with NoC contention (§4.2).

use crate::address::AddressMap;
use crate::dram::DramController;
use gnc_common::hash::FastHashMap;
use gnc_common::ids::SliceId;
use gnc_common::telemetry::{NullProbe, Probe};
use gnc_common::{Cycle, GpuConfig};
use gnc_noc::delay::DelayLine;
use gnc_noc::event::NextEvent;
use gnc_noc::packet::{Packet, PacketKind};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    dirty: bool,
    lru: u64,
}

/// Counters exposed by a slice for instrumentation and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct L2Stats {
    /// Lookups performed (hits + misses, excluding MSHR merges).
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed and allocated an MSHR.
    pub misses: u64,
    /// Lookups that missed but merged into an in-flight MSHR.
    pub mshr_merges: u64,
    /// Dirty evictions written back to DRAM.
    pub writebacks: u64,
    /// Cycles the lookup stage stalled for a free MSHR.
    pub mshr_stalls: u64,
}

/// The waiters of one in-flight MSHR: the request that allocated the
/// miss inline, plus any later same-line merges. The dominant case —
/// a miss with no merges — allocates nothing (`Vec::new` is
/// allocation-free); merge overflow vectors are recycled through the
/// slice's waiter pool so steady-state merging is allocation-free too.
#[derive(Debug, Clone)]
struct WaiterList {
    first: Packet,
    rest: Vec<Packet>,
}

/// A single banked L2 slice backed by (a share of) one DRAM controller.
#[derive(Debug)]
pub struct L2Slice {
    id: SliceId,
    map: AddressMap,
    sets: Vec<Vec<Way>>,
    assoc: usize,
    lru_clock: u64,
    pipeline: DelayLine<Packet>,
    /// Lookup that could not allocate an MSHR, retried before the pipeline.
    stalled: Option<Packet>,
    mshrs: FastHashMap<u64, WaiterList>,
    mshr_capacity: usize,
    /// Recycled `WaiterList::rest` vectors (capacity > 0 only), so
    /// same-line merges reuse buffers instead of allocating per miss.
    waiter_pool: Vec<Vec<Packet>>,
    pending_fills: BinaryHeap<Reverse<(Cycle, u64)>>,
    replies: VecDeque<Packet>,
    stats: L2Stats,
    /// Optional fault injection: hot-spot windows during which this
    /// slice's lookup stage stalls (a co-tenant hammering the slice).
    fault: Option<std::sync::Arc<gnc_common::fault::FaultPlan>>,
}

impl L2Slice {
    /// Creates slice `id` under configuration `cfg`.
    pub fn new(id: SliceId, cfg: &GpuConfig) -> Self {
        let map = AddressMap::new(cfg);
        let num_sets = map.num_sets();
        Self {
            id,
            map,
            sets: vec![Vec::new(); num_sets],
            assoc: cfg.mem.l2_assoc,
            lru_clock: 0,
            pipeline: DelayLine::new(cfg.mem.l2_access_latency),
            stalled: None,
            mshrs: FastHashMap::default(),
            mshr_capacity: cfg.mem.l2_mshrs,
            waiter_pool: Vec::new(),
            pending_fills: BinaryHeap::new(),
            replies: VecDeque::new(),
            stats: L2Stats::default(),
            fault: None,
        }
    }

    /// Attaches a fault plan; the plan's hot-spot windows for this
    /// slice's id will stall the lookup stage.
    pub fn set_fault_plan(&mut self, plan: std::sync::Arc<gnc_common::fault::FaultPlan>) {
        self.fault = Some(plan);
    }

    /// This slice's identifier.
    pub fn id(&self) -> SliceId {
        self.id
    }

    /// Accepts a request packet arriving from the request fabric at `now`.
    /// It emerges from the lookup pipeline `l2_access_latency` cycles
    /// later.
    pub fn push_request(&mut self, packet: Packet, now: Cycle) {
        debug_assert!(packet.kind.is_request(), "slices only take requests");
        debug_assert_eq!(
            self.map.slice_of(packet.addr),
            self.id,
            "packet routed to wrong slice"
        );
        self.pipeline.push(now, packet);
    }

    /// Installs the line containing `addr` as clean and warm, bypassing
    /// DRAM. Models the kernels' working-set preload (§4.2: "all memory
    /// requests access data that is loaded into the L2 cache").
    pub fn preload(&mut self, addr: u64) {
        let (set, tag) = self.map.set_tag_of(addr);
        self.lru_clock += 1;
        let lru = self.lru_clock;
        let ways = &mut self.sets[set];
        if let Some(way) = ways.iter_mut().find(|w| w.tag == tag) {
            way.lru = lru;
            return;
        }
        if ways.len() < self.assoc {
            ways.push(Way {
                tag,
                dirty: false,
                lru,
            });
        } else {
            let victim = ways
                .iter_mut()
                .min_by_key(|w| w.lru)
                .expect("assoc > 0 so a victim exists");
            *victim = Way {
                tag,
                dirty: false,
                lru,
            };
        }
    }

    /// Whether the line containing `addr` is currently resident.
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.map.set_tag_of(addr);
        self.sets[set].iter().any(|w| w.tag == tag)
    }

    fn touch_hit(&mut self, addr: u64, write: bool) -> bool {
        let (set, tag) = self.map.set_tag_of(addr);
        self.lru_clock += 1;
        let lru = self.lru_clock;
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.tag == tag) {
            way.lru = lru;
            way.dirty |= write;
            true
        } else {
            false
        }
    }

    fn install_fill<P: Probe>(
        &mut self,
        line: u64,
        dram: &mut DramController,
        now: Cycle,
        mc: usize,
        probe: &mut P,
    ) {
        let addr = line * self.map.line_bytes();
        let (set, tag) = self.map.set_tag_of(addr);
        self.lru_clock += 1;
        let lru = self.lru_clock;
        let mut writeback_tag = None;
        let ways = &mut self.sets[set];
        if let Some(way) = ways.iter_mut().find(|w| w.tag == tag) {
            way.lru = lru; // racing preload already installed it
        } else if ways.len() < self.assoc {
            ways.push(Way {
                tag,
                dirty: false,
                lru,
            });
        } else {
            let victim = ways
                .iter_mut()
                .min_by_key(|w| w.lru)
                .expect("assoc > 0 so a victim exists");
            if victim.dirty {
                writeback_tag = Some(victim.tag);
            }
            *victim = Way {
                tag,
                dirty: false,
                lru,
            };
        }
        if let Some(victim_tag) = writeback_tag {
            // Fire-and-forget writeback: occupies a DRAM bank + bus.
            let victim_addr = self.reconstruct_addr(victim_tag, set);
            let bank = self.map.bank_of(victim_addr);
            let row = self.map.row_of(victim_addr);
            let acc = dram.access_traced(bank, row, now);
            probe.dram_access(now, mc, bank, acc.start, acc.done, acc.row_hit);
            self.stats.writebacks += 1;
        }
    }

    /// Rebuilds a resident line's byte address from its tag and set
    /// (inverse of the AddressMap decomposition for this slice).
    fn reconstruct_addr(&self, tag: u64, set: usize) -> u64 {
        let nth = tag * self.map.num_sets() as u64 + set as u64;
        self.map.addr_in_slice(self.id, nth)
    }

    /// Advances the slice one cycle: completes ready fills, then performs
    /// at most one lookup.
    pub fn tick(&mut self, now: Cycle, dram: &mut DramController) {
        self.tick_probed(now, dram, 0, &mut NullProbe);
    }

    /// [`tick`](Self::tick) with telemetry: lookup outcomes, MSHR
    /// occupancy, and DRAM accesses (demand fills and writebacks) report
    /// to `probe`. `mc` is the index of `dram` within the subsystem
    /// (only used to label DRAM telemetry; pass 0 when standalone).
    pub fn tick_probed<P: Probe>(
        &mut self,
        now: Cycle,
        dram: &mut DramController,
        mc: usize,
        probe: &mut P,
    ) {
        // 1. Fills whose DRAM access has completed.
        while let Some(&Reverse((ready, line))) = self.pending_fills.peek() {
            if ready > now {
                break;
            }
            self.pending_fills.pop();
            self.install_fill(line, dram, now, mc, probe);
            if let Some(mut waiters) = self.mshrs.remove(&line) {
                // Reply order matches the old Vec walk: the allocating
                // request first, then merges in arrival order.
                let write = waiters.first.kind == PacketKind::WriteRequest;
                self.touch_hit(waiters.first.addr, write);
                self.replies.push_back(waiters.first.to_reply(now));
                for req in waiters.rest.drain(..) {
                    let write = req.kind == PacketKind::WriteRequest;
                    self.touch_hit(req.addr, write);
                    self.replies.push_back(req.to_reply(now));
                }
                if waiters.rest.capacity() > 0 {
                    self.waiter_pool.push(waiters.rest);
                }
            }
        }
        // 2. One lookup per cycle, preferring a stalled retry. The
        // hot-spot probe is only consulted when a lookup is actually
        // pending: an idle lookup stage has nothing to stall, and
        // skipping the probe there is what lets `next_event` report
        // exact wake times under fault injection instead of Busy.
        if self.stalled.is_none() && self.pipeline.peek_ready(now).is_none() {
            return;
        }
        // A fault-injected hot-spot claims the lookup stage for the
        // cycle without consuming the candidate (fills above still
        // land, so no request is ever lost — everything behind the
        // hot-spot just waits and retries next cycle).
        if let Some(plan) = &self.fault {
            if plan.l2_stall(self.id.index() as u64, now) {
                return;
            }
        }
        let candidate = if self.stalled.is_some() {
            self.stalled.take()
        } else {
            self.pipeline.pop_ready(now)
        };
        let Some(req) = candidate else {
            return;
        };
        let line = self.map.line_of(req.addr);
        let write = req.kind == PacketKind::WriteRequest;
        if let Some(waiters) = self.mshrs.get_mut(&line) {
            // Merge into the in-flight miss; reply when the fill lands.
            self.stats.mshr_merges += 1;
            if waiters.rest.capacity() == 0 {
                if let Some(pooled) = self.waiter_pool.pop() {
                    waiters.rest = pooled;
                }
            }
            waiters.rest.push(req);
            return;
        }
        self.stats.accesses += 1;
        if self.touch_hit(req.addr, write) {
            self.stats.hits += 1;
            probe.l2_access(now, self.id.index(), true);
            self.replies.push_back(req.to_reply(now));
            return;
        }
        if self.mshrs.len() >= self.mshr_capacity {
            self.stats.accesses -= 1; // retried next cycle; count once
            self.stats.mshr_stalls += 1;
            self.stalled = Some(req);
            return;
        }
        self.stats.misses += 1;
        probe.l2_access(now, self.id.index(), false);
        let bank = self.map.bank_of(req.addr);
        let row = self.map.row_of(req.addr);
        let acc = dram.access_traced(bank, row, now);
        probe.dram_access(now, mc, bank, acc.start, acc.done, acc.row_hit);
        self.mshrs.insert(
            line,
            WaiterList {
                first: req,
                rest: Vec::new(),
            },
        );
        probe.mshr_occupancy(self.id.index(), self.mshrs.len());
        self.pending_fills.push(Reverse((acc.done, line)));
    }

    /// Number of ready replies waiting at the port.
    pub fn reply_len(&self) -> usize {
        self.replies.len()
    }

    /// A reference to the next ready reply, if any.
    pub fn peek_reply(&self) -> Option<&Packet> {
        self.replies.front()
    }

    /// Removes the next ready reply.
    pub fn pop_reply(&mut self) -> Option<Packet> {
        self.replies.pop_front()
    }

    /// Removes the first ready reply satisfying `injectable` (per-
    /// destination virtual channels at the reply port; see
    /// `MemorySubsystem::pop_reply_where`).
    pub fn pop_reply_where(&mut self, injectable: impl Fn(&Packet) -> bool) -> Option<Packet> {
        let idx = self.replies.iter().position(injectable)?;
        self.replies.remove(idx)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> L2Stats {
        self.stats
    }

    /// Restores the slice to its just-constructed state in place: cache
    /// contents, pipeline, MSHRs, pending fills, replies, and stats all
    /// clear; any fault plan detaches. Allocations (sets, hash-map
    /// capacity, the waiter pool) are retained for reuse.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.lru_clock = 0;
        self.pipeline.clear();
        self.stalled = None;
        self.mshrs.clear();
        self.pending_fills.clear();
        self.replies.clear();
        self.stats = L2Stats::default();
        self.fault = None;
    }

    /// True when no request is in flight anywhere in the slice.
    pub fn is_drained(&self) -> bool {
        self.pipeline.is_empty()
            && self.stalled.is_none()
            && self.mshrs.is_empty()
            && self.pending_fills.is_empty()
            && self.replies.is_empty()
    }

    /// Whether skipping this slice's [`tick`](Self::tick) at the current
    /// cycle would be observable. A drained slice ticks to a no-op even
    /// under fault injection: the hot-spot probe is only consulted when
    /// a lookup is pending, so an empty slice has nothing a hot-spot
    /// window could delay.
    pub fn needs_tick(&self) -> bool {
        !self.is_drained()
    }

    /// The earliest cycle at which [`tick`](Self::tick) can have an
    /// effect, or `Cycle::MAX` when ticking is a no-op until new
    /// requests arrive. A stalled lookup retries every cycle (reported
    /// as cycle 0 — always due). Pending replies do *not* force ticks:
    /// ticking never touches the reply queue, it only appends to it.
    /// Fault injection needs no special case — a hot-spot stall leaves
    /// the blocked lookup's ready cycle in the past, so the slice stays
    /// due until the lookup finally issues.
    pub fn next_tick(&self) -> Cycle {
        if self.stalled.is_some() {
            return 0;
        }
        let pipeline = self.pipeline.next_ready_cycle().unwrap_or(Cycle::MAX);
        match self.pending_fills.peek() {
            Some(&Reverse((ready, _))) => pipeline.min(ready),
            None => pipeline,
        }
    }

    /// When this slice next has actionable work (see [`NextEvent`]).
    ///
    /// Pending replies and a stalled lookup need service every cycle; an
    /// otherwise-quiet slice sleeps until the earlier of the next
    /// pipeline exit and the next DRAM fill. Fault injection needs no
    /// special case: a hot-spot stall leaves the blocked lookup in
    /// place, so its ready cycle stays in the past and the slice keeps
    /// reporting it until the lookup finally issues.
    pub fn next_event(&self) -> NextEvent {
        if !self.replies.is_empty() || self.stalled.is_some() {
            return NextEvent::Busy;
        }
        let pipeline = match self.pipeline.next_ready_cycle() {
            Some(ready) => NextEvent::At(ready),
            None => NextEvent::Idle,
        };
        match self.pending_fills.peek() {
            Some(&Reverse((ready, _))) => pipeline.merge(NextEvent::At(ready)),
            None => pipeline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnc_common::config::MemConfig;
    use gnc_common::ids::{SmId, WarpId};
    use gnc_noc::packet::PacketId;

    fn cfg() -> GpuConfig {
        GpuConfig::volta_v100()
    }

    fn slice_and_dram(cfg: &GpuConfig) -> (L2Slice, DramController) {
        (
            L2Slice::new(SliceId::new(0), cfg),
            DramController::new(&cfg.mem),
        )
    }

    fn req_for(slice: &L2Slice, nth: u64, kind: PacketKind, id: u64) -> Packet {
        let addr = slice.map.addr_in_slice(slice.id, nth);
        Packet {
            id: PacketId(id),
            kind,
            sm: SmId::new(0),
            warp: WarpId::new(0),
            slice: slice.id,
            addr,
            data_bytes: 128,
            injected_at: 0,
            group: id,
        }
    }

    /// Ticks until a reply pops, returning (cycle, reply).
    fn run_until_reply(
        slice: &mut L2Slice,
        dram: &mut DramController,
        start: Cycle,
        limit: Cycle,
    ) -> (Cycle, Packet) {
        for now in start..limit {
            slice.tick(now, dram);
            if let Some(r) = slice.pop_reply() {
                return (now, r);
            }
        }
        panic!("no reply within {limit} cycles");
    }

    #[test]
    fn preloaded_read_hits_after_pipeline_latency() {
        let cfg = cfg();
        let (mut slice, mut dram) = slice_and_dram(&cfg);
        let req = req_for(&slice, 0, PacketKind::ReadRequest, 1);
        slice.preload(req.addr);
        slice.push_request(req, 0);
        let (when, reply) = run_until_reply(&mut slice, &mut dram, 0, 1000);
        assert_eq!(when, u64::from(cfg.mem.l2_access_latency));
        assert_eq!(reply.kind, PacketKind::ReadReply);
        assert_eq!(slice.stats().hits, 1);
        assert_eq!(slice.stats().misses, 0);
        assert!(slice.is_drained());
    }

    #[test]
    fn cold_miss_goes_to_dram_and_fills() {
        let cfg = cfg();
        let (mut slice, mut dram) = slice_and_dram(&cfg);
        let req = req_for(&slice, 0, PacketKind::ReadRequest, 1);
        let addr = req.addr;
        slice.push_request(req, 0);
        let (when, reply) = run_until_reply(&mut slice, &mut dram, 0, 5000);
        assert!(
            when > u64::from(cfg.mem.l2_access_latency),
            "miss must be slower than a hit"
        );
        assert_eq!(reply.kind, PacketKind::ReadReply);
        assert_eq!(slice.stats().misses, 1);
        assert!(slice.contains(addr), "line must be resident after fill");
        assert!(slice.is_drained());
    }

    #[test]
    fn same_line_misses_merge_in_mshr() {
        let cfg = cfg();
        let (mut slice, mut dram) = slice_and_dram(&cfg);
        let a = req_for(&slice, 0, PacketKind::ReadRequest, 1);
        let mut b = a.clone();
        b.id = PacketId(2);
        slice.push_request(a, 0);
        slice.push_request(b, 1);
        let mut replies = Vec::new();
        for now in 0..5000 {
            slice.tick(now, &mut dram);
            while let Some(r) = slice.pop_reply() {
                replies.push(r.id);
            }
            if replies.len() == 2 {
                break;
            }
        }
        assert_eq!(replies.len(), 2);
        assert_eq!(slice.stats().misses, 1, "only one DRAM access");
        assert_eq!(slice.stats().mshr_merges, 1);
        assert_eq!(dram.accesses(), 1);
    }

    #[test]
    fn write_marks_line_dirty_and_acks() {
        let cfg = cfg();
        let (mut slice, mut dram) = slice_and_dram(&cfg);
        let req = req_for(&slice, 0, PacketKind::WriteRequest, 1);
        slice.preload(req.addr);
        slice.push_request(req, 0);
        let (_, reply) = run_until_reply(&mut slice, &mut dram, 0, 1000);
        assert_eq!(reply.kind, PacketKind::WriteAck);
        assert_eq!(slice.stats().hits, 1);
    }

    #[test]
    fn capacity_eviction_writes_back_dirty_lines() {
        let cfg = cfg();
        let (mut slice, mut dram) = slice_and_dram(&cfg);
        // Dirty one line in set 0, then stream enough distinct lines
        // through the same set to evict it.
        let hot = req_for(&slice, 0, PacketKind::WriteRequest, 0);
        slice.preload(hot.addr);
        slice.push_request(hot, 0);
        let sets = slice.map.num_sets() as u64;
        let mut now = 0;
        for k in 1..=cfg.mem.l2_assoc as u64 {
            // nth = k * num_sets keeps the same set with a different tag.
            let req = req_for(&slice, k * sets, PacketKind::ReadRequest, k);
            slice.push_request(req, now);
            now += 1;
        }
        for t in 0..20_000 {
            slice.tick(t, &mut dram);
            while slice.pop_reply().is_some() {}
        }
        assert!(
            slice.stats().writebacks >= 1,
            "dirty eviction must write back"
        );
    }

    #[test]
    fn mshr_exhaustion_stalls_lookups() {
        let mut cfg = cfg();
        cfg.mem.l2_mshrs = 2;
        let (mut slice, mut dram) = slice_and_dram(&cfg);
        for k in 0..4u64 {
            let req = req_for(&slice, k, PacketKind::ReadRequest, k);
            slice.push_request(req, 0);
        }
        for now in 0..20_000 {
            slice.tick(now, &mut dram);
            while slice.pop_reply().is_some() {}
        }
        assert!(slice.stats().mshr_stalls > 0, "expected MSHR stalls");
        assert_eq!(slice.stats().misses, 4, "all four lines eventually fetched");
        assert!(slice.is_drained());
    }

    #[test]
    fn lru_keeps_recently_used_lines() {
        let cfg = cfg();
        let (mut slice, _) = slice_and_dram(&cfg);
        let sets = slice.map.num_sets() as u64;
        // Fill one set to capacity.
        let addrs: Vec<u64> = (0..cfg.mem.l2_assoc as u64)
            .map(|k| slice.map.addr_in_slice(slice.id, k * sets))
            .collect();
        for &a in &addrs {
            slice.preload(a);
        }
        // Touch line 0 again, then insert a new line: victim must be
        // line 1 (the least recently used), not line 0.
        slice.preload(addrs[0]);
        let newcomer = slice
            .map
            .addr_in_slice(slice.id, cfg.mem.l2_assoc as u64 * sets);
        slice.preload(newcomer);
        assert!(slice.contains(addrs[0]));
        assert!(!slice.contains(addrs[1]));
        assert!(slice.contains(newcomer));
    }

    #[test]
    fn distinct_mem_config_changes_pipeline_latency() {
        let mut cfg = cfg();
        cfg.mem = MemConfig {
            l2_access_latency: 10,
            ..cfg.mem
        };
        let (mut slice, mut dram) = slice_and_dram(&cfg);
        let req = req_for(&slice, 0, PacketKind::ReadRequest, 1);
        slice.preload(req.addr);
        slice.push_request(req, 0);
        let (when, _) = run_until_reply(&mut slice, &mut dram, 0, 100);
        assert_eq!(when, 10);
    }
}
