//! GPU memory-system model.
//!
//! The covert channel's signal is the round-trip latency of L2 accesses
//! (§4.2): the paper's kernels bypass L1, pre-load their working set into
//! L2, and then time L2 hits whose latency is perturbed only by NoC
//! contention. This crate provides that L2 — 48 banked slices with MSHRs
//! — plus the HBM2-style DRAM behind it (Table 1 timing) so that misses,
//! evictions, and the "third kernel" noise scenario of §5 behave
//! credibly.
//!
//! * [`address`] — line interleaving across slices and set indexing.
//! * [`l2`] — one set-associative L2 slice with an access pipeline,
//!   MSHR-based miss handling, and write-allocate semantics.
//! * [`dram`] — a bank-state HBM2 controller (tCL/tRP/tRC/tRAS/tRCD/tRRD).
//! * [`subsystem`] — the assembled memory system consumed by the engine.
//!
//! # Example
//!
//! ```
//! use gnc_common::GpuConfig;
//! use gnc_mem::address::AddressMap;
//!
//! let cfg = GpuConfig::volta_v100();
//! let map = AddressMap::new(&cfg);
//! // Consecutive lines interleave across the 48 slices.
//! assert_ne!(map.slice_of(0), map.slice_of(128));
//! ```

pub mod address;
pub mod dram;
pub mod l2;
pub mod subsystem;

pub use address::AddressMap;
pub use l2::{L2Slice, L2Stats};
pub use subsystem::MemorySubsystem;
