//! The assembled memory system: 48 L2 slices over 24 DRAM controllers.
//!
//! The engine pushes requests popped from the request fabric into the
//! owning slice, ticks the subsystem once per cycle, and drains ready
//! replies into the reply fabric (with backpressure — replies stay queued
//! in the slice until the fabric accepts them).

use crate::address::AddressMap;
use crate::dram::DramController;
use crate::l2::{L2Slice, L2Stats};
use gnc_common::ids::SliceId;
use gnc_common::telemetry::{NullProbe, Probe};
use gnc_common::{Cycle, GpuConfig};
use gnc_noc::event::NextEvent;
use gnc_noc::packet::Packet;

/// All L2 slices and memory controllers of the GPU.
#[derive(Debug)]
pub struct MemorySubsystem {
    slices: Vec<L2Slice>,
    drams: Vec<DramController>,
    map: AddressMap,
    slices_per_mc: usize,
    /// Per-slice work flags: `false` proves the slice is drained (its
    /// tick is a no-op, even under fault injection); `true` is
    /// conservative and is re-derived from [`L2Slice::needs_tick`] after
    /// each tick. Lets the hot loops skip quiet slices without touching
    /// them.
    active: Vec<bool>,
    /// Ready replies waiting at each slice's port (dense mirror of
    /// [`L2Slice::reply_len`], same skip-without-touching purpose).
    reply_counts: Vec<u32>,
}

impl MemorySubsystem {
    /// Builds the memory system for `cfg`.
    pub fn new(cfg: &GpuConfig) -> Self {
        let slices = (0..cfg.mem.num_l2_slices)
            .map(|s| L2Slice::new(SliceId::new(s), cfg))
            .collect();
        let drams = (0..cfg.mem.num_mcs)
            .map(|_| DramController::new(&cfg.mem))
            .collect();
        Self {
            slices,
            drams,
            map: AddressMap::new(cfg),
            slices_per_mc: cfg.mem.num_l2_slices / cfg.mem.num_mcs,
            active: vec![false; cfg.mem.num_l2_slices],
            reply_counts: vec![0; cfg.mem.num_l2_slices],
        }
    }

    /// Attaches a fault plan to every L2 slice (hot-spot stalls). Work
    /// flags are re-derived from [`L2Slice::needs_tick`] on the next
    /// tick: hot-spot windows only matter while a lookup is pending, so
    /// drained slices still skip.
    pub fn set_fault_plan(&mut self, plan: &std::sync::Arc<gnc_common::fault::FaultPlan>) {
        for (s, slice) in self.slices.iter_mut().enumerate() {
            slice.set_fault_plan(std::sync::Arc::clone(plan));
            self.active[s] = slice.needs_tick();
        }
    }

    /// The address map shared with the rest of the GPU.
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Number of slices.
    pub fn num_slices(&self) -> usize {
        self.slices.len()
    }

    /// Routes a request popped from the fabric into its slice at `now`.
    pub fn push_request(&mut self, packet: Packet, now: Cycle) {
        self.active[packet.slice.index()] = true;
        self.slices[packet.slice.index()].push_request(packet, now);
    }

    /// Warms the line containing `addr` in its owning slice.
    pub fn preload(&mut self, addr: u64) {
        let slice = self.map.slice_of(addr);
        self.slices[slice.index()].preload(addr);
    }

    /// Warms `lines` consecutive cache lines starting at `base`.
    pub fn preload_range(&mut self, base: u64, lines: u64) {
        let lb = self.map.line_bytes();
        for i in 0..lines {
            self.preload(base + i * lb);
        }
    }

    /// Whether `addr`'s line is resident in its slice.
    pub fn contains(&self, addr: u64) -> bool {
        self.slices[self.map.slice_of(addr).index()].contains(addr)
    }

    /// Advances every slice that has work by one cycle. Drained slices
    /// are skipped — their tick is a no-op (see [`L2Slice::needs_tick`]).
    pub fn tick(&mut self, now: Cycle) {
        self.tick_probed(now, &mut NullProbe);
    }

    /// [`tick`](Self::tick) with telemetry: each slice reports lookup
    /// outcomes, MSHR occupancy, and DRAM bank activity to `probe`.
    pub fn tick_probed<P: Probe>(&mut self, now: Cycle, probe: &mut P) {
        for s in 0..self.slices.len() {
            if !self.active[s] {
                continue;
            }
            let slice = &mut self.slices[s];
            let mc = s / self.slices_per_mc;
            let dram = &mut self.drams[mc];
            slice.tick_probed(now, dram, mc, probe);
            self.active[s] = slice.needs_tick();
            self.reply_counts[s] = slice.reply_len() as u32;
        }
    }

    /// Whether `slice` has a ready reply waiting at its port.
    pub fn has_reply(&self, slice: SliceId) -> bool {
        self.reply_counts[slice.index()] > 0
    }

    /// A reference to the next reply waiting at `slice`.
    pub fn peek_reply(&self, slice: SliceId) -> Option<&Packet> {
        self.slices[slice.index()].peek_reply()
    }

    /// Removes the next reply waiting at `slice`.
    pub fn pop_reply(&mut self, slice: SliceId) -> Option<Packet> {
        let popped = self.slices[slice.index()].pop_reply();
        if popped.is_some() {
            self.reply_counts[slice.index()] -= 1;
        }
        popped
    }

    /// Removes the first reply at `slice` for which `injectable` returns
    /// true, skipping over blocked heads — the slice's reply port keeps a
    /// virtual channel per destination GPC, so one congested GPC must not
    /// head-of-line-block replies bound for the others.
    pub fn pop_reply_where(
        &mut self,
        slice: SliceId,
        injectable: impl Fn(&Packet) -> bool,
    ) -> Option<Packet> {
        let popped = self.slices[slice.index()].pop_reply_where(injectable);
        if popped.is_some() {
            self.reply_counts[slice.index()] -= 1;
        }
        popped
    }

    /// Counter snapshot for `slice`.
    pub fn slice_stats(&self, slice: SliceId) -> L2Stats {
        self.slices[slice.index()].stats()
    }

    /// Aggregated counters over all slices.
    pub fn total_stats(&self) -> L2Stats {
        let mut total = L2Stats::default();
        for s in &self.slices {
            let st = s.stats();
            total.accesses += st.accesses;
            total.hits += st.hits;
            total.misses += st.misses;
            total.mshr_merges += st.mshr_merges;
            total.writebacks += st.writebacks;
            total.mshr_stalls += st.mshr_stalls;
        }
        total
    }

    /// True when every slice is idle and reply-free. Only slices whose
    /// work flag is set are inspected — a clear flag proves drained.
    pub fn is_drained(&self) -> bool {
        self.active
            .iter()
            .enumerate()
            .all(|(s, &a)| !a || self.slices[s].is_drained())
    }

    /// The earliest [`NextEvent`] across every slice. Slices whose work
    /// flag is clear are drained, hence [`NextEvent::Idle`].
    pub fn next_event(&self) -> NextEvent {
        self.slices
            .iter()
            .enumerate()
            .filter(|&(s, _)| self.active[s])
            .fold(NextEvent::Idle, |acc, (_, s)| acc.merge(s.next_event()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnc_common::ids::{SmId, WarpId};
    use gnc_noc::packet::{PacketId, PacketKind};

    fn cfg() -> GpuConfig {
        GpuConfig::volta_v100()
    }

    fn request(mem: &MemorySubsystem, addr: u64, id: u64, kind: PacketKind) -> Packet {
        Packet {
            id: PacketId(id),
            kind,
            sm: SmId::new(0),
            warp: WarpId::new(0),
            slice: mem.address_map().slice_of(addr),
            addr,
            data_bytes: 128,
            injected_at: 0,
            group: id,
        }
    }

    #[test]
    fn requests_route_to_owning_slice() {
        let cfg = cfg();
        let mut mem = MemorySubsystem::new(&cfg);
        mem.preload(0);
        mem.preload(128);
        let r0 = request(&mem, 0, 1, PacketKind::ReadRequest);
        let r1 = request(&mem, 128, 2, PacketKind::ReadRequest);
        assert_ne!(r0.slice, r1.slice);
        let (s0, s1) = (r0.slice, r1.slice);
        mem.push_request(r0, 0);
        mem.push_request(r1, 0);
        let mut got = Vec::new();
        for now in 0..2000 {
            mem.tick(now);
            for s in [s0, s1] {
                if let Some(p) = mem.pop_reply(s) {
                    got.push(p.id);
                }
            }
            if got.len() == 2 {
                break;
            }
        }
        got.sort();
        assert_eq!(got, vec![PacketId(1), PacketId(2)]);
        assert!(mem.is_drained());
    }

    #[test]
    fn preload_range_warms_every_line() {
        let cfg = cfg();
        let mut mem = MemorySubsystem::new(&cfg);
        mem.preload_range(0, 96);
        for i in 0..96u64 {
            assert!(mem.contains(i * 128), "line {i} must be warm");
        }
        assert!(!mem.contains(96 * 128));
    }

    #[test]
    fn preloaded_hits_never_touch_dram() {
        let cfg = cfg();
        let mut mem = MemorySubsystem::new(&cfg);
        mem.preload_range(0, 480);
        for i in 0..480u64 {
            let p = request(&mem, i * 128, i, PacketKind::WriteRequest);
            mem.push_request(p, 0);
        }
        for now in 0..5000 {
            mem.tick(now);
            for s in 0..mem.num_slices() {
                while mem.pop_reply(SliceId::new(s)).is_some() {}
            }
        }
        let total = mem.total_stats();
        assert_eq!(total.hits, 480);
        assert_eq!(total.misses, 0);
        assert!(mem.is_drained());
    }

    #[test]
    fn stats_aggregate_across_slices() {
        let cfg = cfg();
        let mut mem = MemorySubsystem::new(&cfg);
        mem.preload(0);
        mem.push_request(request(&mem, 0, 1, PacketKind::ReadRequest), 0);
        for now in 0..400 {
            mem.tick(now);
        }
        let slice = mem.address_map().slice_of(0);
        assert_eq!(mem.slice_stats(slice).hits, 1);
        assert_eq!(mem.total_stats().hits, 1);
    }
}
