//! The assembled memory system: 48 L2 slices over 24 DRAM controllers.
//!
//! The engine pushes requests popped from the request fabric into the
//! owning slice, ticks the subsystem once per cycle, and drains ready
//! replies into the reply fabric (with backpressure — replies stay queued
//! in the slice until the fabric accepts them).

use crate::address::AddressMap;
use crate::dram::DramController;
use crate::l2::{L2Slice, L2Stats};
use gnc_common::ids::SliceId;
use gnc_common::telemetry::{NullProbe, Probe};
use gnc_common::{Cycle, GpuConfig};
use gnc_noc::event::{ComponentId, EventCalendar, NextEvent, Wake};
use gnc_noc::fabric::ReplyFabric;
use gnc_noc::packet::Packet;
use gnc_noc::OccupancyMask;

/// All L2 slices and memory controllers of the GPU.
#[derive(Debug)]
pub struct MemorySubsystem {
    slices: Vec<L2Slice>,
    drams: Vec<DramController>,
    map: AddressMap,
    slices_per_mc: usize,
    /// Per-slice wake-up calendar (mirrors [`L2Slice::next_tick`]):
    /// slices due every cycle sit in the busy set, quiet ones park a
    /// timed entry, drained ones cost nothing. The tick walks the due
    /// bits in slice order — the same ascending order the old full scan
    /// visited — so it touches only slices whose tick can have an
    /// effect, without rescanning the other 47 wake cycles.
    cal: EventCalendar,
    /// Ready replies waiting at each slice's port (dense mirror of
    /// [`L2Slice::reply_len`], same skip-without-touching purpose).
    reply_counts: Vec<u32>,
    /// Bit `s` set iff `reply_counts[s] > 0`: the drain walks set bits
    /// in slice order instead of scanning all 48 counters.
    reply_mask: OccupancyMask,
    /// Sum of `reply_counts`: lets the reply-drain phase and the
    /// drained check skip the per-slice scan entirely.
    total_replies: usize,
}

impl MemorySubsystem {
    /// Builds the memory system for `cfg`.
    pub fn new(cfg: &GpuConfig) -> Self {
        let slices = (0..cfg.mem.num_l2_slices)
            .map(|s| L2Slice::new(SliceId::new(s), cfg))
            .collect();
        let drams = (0..cfg.mem.num_mcs)
            .map(|_| DramController::new(&cfg.mem))
            .collect();
        Self {
            slices,
            drams,
            map: AddressMap::new(cfg),
            slices_per_mc: cfg.mem.num_l2_slices / cfg.mem.num_mcs,
            cal: EventCalendar::new(cfg.mem.num_l2_slices),
            reply_counts: vec![0; cfg.mem.num_l2_slices],
            reply_mask: OccupancyMask::new(cfg.mem.num_l2_slices),
            total_replies: 0,
        }
    }

    /// Attaches a fault plan to every L2 slice (hot-spot stalls). Wake
    /// cycles are re-derived from [`L2Slice::next_tick`]: hot-spot
    /// windows only matter while a lookup is pending, so drained slices
    /// still sleep.
    pub fn set_fault_plan(&mut self, plan: &std::sync::Arc<gnc_common::fault::FaultPlan>) {
        for (s, slice) in self.slices.iter_mut().enumerate() {
            slice.set_fault_plan(std::sync::Arc::clone(plan));
            let next = slice.next_tick();
            self.cal.reschedule(
                s as ComponentId,
                if next == Cycle::MAX {
                    NextEvent::Idle
                } else {
                    NextEvent::At(next)
                },
            );
        }
    }

    /// The address map shared with the rest of the GPU.
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Number of slices.
    pub fn num_slices(&self) -> usize {
        self.slices.len()
    }

    /// Routes a request popped from the fabric into its slice at `now`.
    pub fn push_request(&mut self, packet: Packet, now: Cycle) {
        let s = packet.slice.index();
        self.slices[s].push_request(packet, now);
        // New work can only move a slice's wake-up earlier. A wake at or
        // before `now` means the slice must tick in this very cycle's
        // memory phase, which the busy bit guarantees.
        let next = self.slices[s].next_tick();
        if next <= now {
            self.cal.make_busy(s as ComponentId);
        } else if next != Cycle::MAX {
            self.cal.notify_at(s as ComponentId, next);
        }
    }

    /// Warms the line containing `addr` in its owning slice.
    pub fn preload(&mut self, addr: u64) {
        let slice = self.map.slice_of(addr);
        self.slices[slice.index()].preload(addr);
    }

    /// Warms `lines` consecutive cache lines starting at `base`.
    pub fn preload_range(&mut self, base: u64, lines: u64) {
        let lb = self.map.line_bytes();
        for i in 0..lines {
            self.preload(base + i * lb);
        }
    }

    /// Whether `addr`'s line is resident in its slice.
    pub fn contains(&self, addr: u64) -> bool {
        self.slices[self.map.slice_of(addr).index()].contains(addr)
    }

    /// Advances every slice that is due at `now` by one cycle. Slices
    /// whose wake cycle lies in the future are skipped — their tick is
    /// provably a no-op (see [`L2Slice::next_tick`]), fault injection
    /// included.
    pub fn tick(&mut self, now: Cycle) {
        self.tick_probed(now, &mut NullProbe);
    }

    /// [`tick`](Self::tick) with telemetry: each slice reports lookup
    /// outcomes, MSHR occupancy, and DRAM bank activity to `probe`.
    pub fn tick_probed<P: Probe>(&mut self, now: Cycle, probe: &mut P) {
        self.cal.promote_due(now);
        for w in 0..self.cal.busy_words().len() {
            // Snapshot one word: a slice's reschedule may clear its own
            // (already-visited) bit, never set another slice's.
            let mut bits = self.cal.busy_words()[w];
            while bits != 0 {
                let s = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let slice = &mut self.slices[s];
                let mc = s / self.slices_per_mc;
                let dram = &mut self.drams[mc];
                let before = self.reply_counts[s] as usize;
                slice.tick_probed(now, dram, mc, probe);
                let after = slice.reply_len();
                self.total_replies += after - before;
                self.reply_counts[s] = after as u32;
                if before == 0 && after > 0 {
                    self.reply_mask.set(s);
                }
                let next = slice.next_tick();
                self.cal.reschedule_near(
                    s as ComponentId,
                    if next == Cycle::MAX {
                        NextEvent::Idle
                    } else {
                        NextEvent::At(next)
                    },
                    now,
                );
            }
        }
    }

    /// Whether `slice` has a ready reply waiting at its port.
    pub fn has_reply(&self, slice: SliceId) -> bool {
        self.reply_counts[slice.index()] > 0
    }

    /// A reference to the next reply waiting at `slice`.
    pub fn peek_reply(&self, slice: SliceId) -> Option<&Packet> {
        self.slices[slice.index()].peek_reply()
    }

    /// Removes the next reply waiting at `slice`.
    pub fn pop_reply(&mut self, slice: SliceId) -> Option<Packet> {
        let popped = self.slices[slice.index()].pop_reply();
        if popped.is_some() {
            self.reply_counts[slice.index()] -= 1;
            self.total_replies -= 1;
            if self.reply_counts[slice.index()] == 0 {
                self.reply_mask.clear(slice.index());
            }
        }
        popped
    }

    /// Removes the first reply at `slice` for which `injectable` returns
    /// true, skipping over blocked heads — the slice's reply port keeps a
    /// virtual channel per destination GPC, so one congested GPC must not
    /// head-of-line-block replies bound for the others.
    pub fn pop_reply_where(
        &mut self,
        slice: SliceId,
        injectable: impl Fn(&Packet) -> bool,
    ) -> Option<Packet> {
        let popped = self.slices[slice.index()].pop_reply_where(injectable);
        if popped.is_some() {
            self.reply_counts[slice.index()] -= 1;
            self.total_replies -= 1;
            if self.reply_counts[slice.index()] == 0 {
                self.reply_mask.clear(slice.index());
            }
        }
        popped
    }

    /// Injects every ready reply the reply fabric will currently accept,
    /// slice by slice in id order — the engine's reply-inject phase,
    /// batched here so quiet machines skip it with one counter read.
    /// Within a slice the reply port keeps a virtual channel per
    /// destination GPC (see [`pop_reply_where`](Self::pop_reply_where)):
    /// one congested GPC must not head-of-line-block the others.
    pub fn drain_replies_probed<P: Probe>(&mut self, fabric: &mut ReplyFabric, probe: &mut P) {
        if self.total_replies == 0 {
            return;
        }
        for w in 0..self.reply_mask.words().len() {
            // Snapshot one word: injections may clear bits of visited
            // slices, never set new ones.
            let mut bits = self.reply_mask.words()[w];
            while bits != 0 {
                let s = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let slice_id = SliceId::new(s);
                while let Some(p) =
                    self.slices[s].pop_reply_where(|p| fabric.can_inject(slice_id, p.sm))
                {
                    self.reply_counts[s] -= 1;
                    self.total_replies -= 1;
                    if self.reply_counts[s] == 0 {
                        self.reply_mask.clear(s);
                    }
                    fabric
                        .inject_at_slice_probed(slice_id, p, probe)
                        .expect("injectability just checked");
                }
            }
        }
    }

    /// Restores the subsystem to its just-constructed state in place:
    /// every slice and controller resets (fault plans detach), the wake
    /// calendar empties, and the reply mirrors zero. Allocations are
    /// retained for reuse.
    pub fn reset(&mut self) {
        for slice in &mut self.slices {
            slice.reset();
        }
        for dram in &mut self.drams {
            dram.reset();
        }
        self.cal.reset();
        self.reply_counts.fill(0);
        self.reply_mask.clear_all();
        self.total_replies = 0;
    }

    /// Counter snapshot for `slice`.
    pub fn slice_stats(&self, slice: SliceId) -> L2Stats {
        self.slices[slice.index()].stats()
    }

    /// Aggregated counters over all slices.
    pub fn total_stats(&self) -> L2Stats {
        let mut total = L2Stats::default();
        for s in &self.slices {
            let st = s.stats();
            total.accesses += st.accesses;
            total.hits += st.hits;
            total.misses += st.misses;
            total.mshr_merges += st.mshr_merges;
            total.writebacks += st.writebacks;
            total.mshr_stalls += st.mshr_stalls;
        }
        total
    }

    /// True when every slice is idle and reply-free. Two counter reads
    /// decide it: a slice with any in-flight request keeps a finite wake
    /// cycle (MSHRs always have a pending fill), and replies are summed
    /// in `total_replies`. A positive claim is cross-checked against the
    /// full per-slice scan even in release builds — the check is off the
    /// hot path (it only runs when the machine looks idle) and a
    /// corrupted wake-cycle mirror here would silently end a simulation
    /// early, the worst possible failure mode for a timing study.
    pub fn is_drained(&self) -> bool {
        if self.total_replies != 0 || !self.cal.is_idle() {
            return false;
        }
        assert!(
            self.slices.iter().all(L2Slice::is_drained),
            "memory wake cycles claim drained but a slice holds requests"
        );
        true
    }

    /// The earliest [`NextEvent`] across every slice. Pending replies
    /// need service every cycle (Busy); otherwise the slice calendar's
    /// earliest wake-up is exact. A stalled lookup reports wake cycle 0,
    /// i.e. a timestamp never in the future — the driver treats it as
    /// due every cycle, matching the old per-slice Busy report.
    pub fn next_event(&mut self) -> NextEvent {
        if self.total_replies > 0 {
            return NextEvent::Busy;
        }
        match self.cal.next_wake() {
            Wake::Now => NextEvent::Busy,
            Wake::At(c) => NextEvent::At(c),
            Wake::Never => NextEvent::Idle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnc_common::ids::{SmId, WarpId};
    use gnc_noc::packet::{PacketId, PacketKind};

    fn cfg() -> GpuConfig {
        GpuConfig::volta_v100()
    }

    fn request(mem: &MemorySubsystem, addr: u64, id: u64, kind: PacketKind) -> Packet {
        Packet {
            id: PacketId(id),
            kind,
            sm: SmId::new(0),
            warp: WarpId::new(0),
            slice: mem.address_map().slice_of(addr),
            addr,
            data_bytes: 128,
            injected_at: 0,
            group: id,
        }
    }

    #[test]
    fn requests_route_to_owning_slice() {
        let cfg = cfg();
        let mut mem = MemorySubsystem::new(&cfg);
        mem.preload(0);
        mem.preload(128);
        let r0 = request(&mem, 0, 1, PacketKind::ReadRequest);
        let r1 = request(&mem, 128, 2, PacketKind::ReadRequest);
        assert_ne!(r0.slice, r1.slice);
        let (s0, s1) = (r0.slice, r1.slice);
        mem.push_request(r0, 0);
        mem.push_request(r1, 0);
        let mut got = Vec::new();
        for now in 0..2000 {
            mem.tick(now);
            for s in [s0, s1] {
                if let Some(p) = mem.pop_reply(s) {
                    got.push(p.id);
                }
            }
            if got.len() == 2 {
                break;
            }
        }
        got.sort();
        assert_eq!(got, vec![PacketId(1), PacketId(2)]);
        assert!(mem.is_drained());
    }

    #[test]
    fn preload_range_warms_every_line() {
        let cfg = cfg();
        let mut mem = MemorySubsystem::new(&cfg);
        mem.preload_range(0, 96);
        for i in 0..96u64 {
            assert!(mem.contains(i * 128), "line {i} must be warm");
        }
        assert!(!mem.contains(96 * 128));
    }

    #[test]
    fn preloaded_hits_never_touch_dram() {
        let cfg = cfg();
        let mut mem = MemorySubsystem::new(&cfg);
        mem.preload_range(0, 480);
        for i in 0..480u64 {
            let p = request(&mem, i * 128, i, PacketKind::WriteRequest);
            mem.push_request(p, 0);
        }
        for now in 0..5000 {
            mem.tick(now);
            for s in 0..mem.num_slices() {
                while mem.pop_reply(SliceId::new(s)).is_some() {}
            }
        }
        let total = mem.total_stats();
        assert_eq!(total.hits, 480);
        assert_eq!(total.misses, 0);
        assert!(mem.is_drained());
    }

    #[test]
    fn stats_aggregate_across_slices() {
        let cfg = cfg();
        let mut mem = MemorySubsystem::new(&cfg);
        mem.preload(0);
        mem.push_request(request(&mem, 0, 1, PacketKind::ReadRequest), 0);
        for now in 0..400 {
            mem.tick(now);
        }
        let slice = mem.address_map().slice_of(0);
        assert_eq!(mem.slice_stats(slice).hits, 1);
        assert_eq!(mem.total_stats().hits, 1);
    }
}
