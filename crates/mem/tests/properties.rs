//! Property-based tests for the memory system.

use gnc_common::config::MemConfig;
use gnc_common::ids::{SliceId, SmId, WarpId};
use gnc_common::GpuConfig;
use gnc_mem::address::AddressMap;
use gnc_mem::dram::DramController;
use gnc_mem::l2::L2Slice;
use gnc_noc::packet::{Packet, PacketId, PacketKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Address decomposition is a bijection on line indices.
    #[test]
    fn address_map_round_trips(addr in 0u64..(1 << 40)) {
        let cfg = GpuConfig::volta_v100();
        let map = AddressMap::new(&cfg);
        let line = map.line_of(addr);
        let rebuilt = (map.tag_of(addr) * map.num_sets() as u64 + map.set_of(addr) as u64)
            * cfg.mem.num_l2_slices as u64
            + map.slice_of(addr).index() as u64;
        prop_assert_eq!(line, rebuilt);
        prop_assert!(map.slice_of(addr).index() < cfg.mem.num_l2_slices);
        prop_assert!(map.set_of(addr) < map.num_sets());
    }

    /// DRAM access completion times are strictly increasing per bank and
    /// never precede the issue time.
    #[test]
    fn dram_times_are_causal(
        ops in proptest::collection::vec((0usize..4, 0u64..8), 1..40),
    ) {
        let mut ctrl = DramController::new(&MemConfig::default());
        let mut last_done = vec![0u64; 4];
        let mut now = 0u64;
        for (bank, row) in ops {
            let done = ctrl.access(bank, row, now);
            prop_assert!(done > now, "completion {done} not after issue {now}");
            prop_assert!(done > last_done[bank], "bank {bank} reordered");
            last_done[bank] = done;
            now += 3;
        }
    }

    /// Every request pushed into an L2 slice produces exactly one reply
    /// with a matching id and the right reply kind, regardless of
    /// hit/miss mix.
    #[test]
    fn l2_replies_once_per_request(
        requests in proptest::collection::vec((0u64..64, any::<bool>(), any::<bool>()), 1..32),
    ) {
        let cfg = GpuConfig::volta_v100();
        let mut slice = L2Slice::new(SliceId::new(0), &cfg);
        let mut dram = DramController::new(&cfg.mem);
        let map = AddressMap::new(&cfg);
        let mut expected = Vec::new();
        for (i, &(nth, write, preload)) in requests.iter().enumerate() {
            let addr = map.addr_in_slice(SliceId::new(0), nth);
            if preload {
                slice.preload(addr);
            }
            let kind = if write { PacketKind::WriteRequest } else { PacketKind::ReadRequest };
            slice.push_request(
                Packet {
                    id: PacketId(i as u64),
                    kind,
                    sm: SmId::new(0),
                    warp: WarpId::new(0),
                    slice: SliceId::new(0),
                    addr,
                    data_bytes: 4,
                    injected_at: 0,
                    group: i as u64,
                },
                i as u64,
            );
            expected.push((PacketId(i as u64), kind.reply_kind()));
        }
        let mut got = Vec::new();
        for now in 0..100_000u64 {
            slice.tick(now, &mut dram);
            while let Some(r) = slice.pop_reply() {
                got.push((r.id, r.kind));
            }
            if got.len() == expected.len() && slice.is_drained() {
                break;
            }
        }
        got.sort_by_key(|(id, _)| id.0);
        prop_assert_eq!(got, expected);
        prop_assert!(slice.is_drained());
    }

    /// Cache residency: after a fill, re-accessing the same line is a
    /// hit (stats monotonicity).
    #[test]
    fn second_access_hits(nth in 0u64..256) {
        let cfg = GpuConfig::volta_v100();
        let mut slice = L2Slice::new(SliceId::new(0), &cfg);
        let mut dram = DramController::new(&cfg.mem);
        let map = AddressMap::new(&cfg);
        let addr = map.addr_in_slice(SliceId::new(0), nth);
        for round in 0..2u64 {
            slice.push_request(
                Packet {
                    id: PacketId(round),
                    kind: PacketKind::ReadRequest,
                    sm: SmId::new(0),
                    warp: WarpId::new(0),
                    slice: SliceId::new(0),
                    addr,
                    data_bytes: 4,
                    injected_at: 0,
                    group: round,
                },
                round * 10_000,
            );
            for now in (round * 10_000)..((round + 1) * 10_000) {
                slice.tick(now, &mut dram);
                if slice.pop_reply().is_some() {
                    break;
                }
            }
        }
        let stats = slice.stats();
        prop_assert_eq!(stats.misses, 1);
        prop_assert_eq!(stats.hits, 1);
    }
}
