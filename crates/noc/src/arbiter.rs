//! Mux arbitration policies (§2.3, §6).
//!
//! The covert channel exists because the baseline round-robin arbiter is
//! *locally fair*: a lone requester receives the full channel bandwidth,
//! so the receiver can observe whether the sender is competing. §6
//! evaluates three alternatives; all four are implemented here behind the
//! [`Arbiter`] trait and are selectable per
//! [`gnc_common::config::Arbitration`].

use gnc_common::config::Arbitration;
use gnc_common::Cycle;

/// Metadata about the head flit available at one mux input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArbHead {
    /// Cycle at which the head packet entered this subnet (age-based
    /// arbitration keys on this).
    pub age: Cycle,
    /// Coarse arbitration group of the head packet (one group per warp
    /// memory instruction; CRR grants a whole group consecutively).
    pub group: u64,
}

/// One-flit-slot arbitration decision.
///
/// The mux calls [`Arbiter::grant`] once per flit slot of output
/// bandwidth per cycle. `global_slot` is `cycle * bandwidth + slot`, a
/// monotonically increasing slot counter that strict round-robin uses for
/// time-division ownership. `heads[i]` is `Some` when input `i` has a
/// flit ready to transmit.
///
/// Implementations must be deterministic: the simulator's reproducibility
/// depends on it.
pub trait Arbiter: std::fmt::Debug + Send {
    /// Chooses the input that transmits in this flit slot, or `None` if
    /// the slot goes unused (all inputs idle, or — under strict RR — the
    /// slot's owner is idle).
    fn grant(&mut self, global_slot: u64, heads: &[Option<ArbHead>]) -> Option<usize>;
}

/// Creates the arbiter implementing `policy`.
pub fn make_arbiter(policy: Arbitration) -> Box<dyn Arbiter> {
    match policy {
        Arbitration::RoundRobin => Box::new(RoundRobinArbiter::new()),
        Arbitration::CoarseRoundRobin => Box::new(CoarseRoundRobinArbiter::new()),
        Arbitration::StrictRoundRobin => Box::new(StrictRoundRobinArbiter::new()),
        Arbitration::AgeBased => Box::new(AgeBasedArbiter::new()),
    }
}

/// Locally-fair round-robin (the baseline the paper attacks).
///
/// Scans inputs starting after the last grantee and grants the first one
/// with a flit ready; a lone requester therefore receives the entire
/// channel bandwidth, which is exactly the property the covert channel
/// measures.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinArbiter {
    next: usize,
}

impl RoundRobinArbiter {
    /// Creates the arbiter with its pointer at input 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Arbiter for RoundRobinArbiter {
    fn grant(&mut self, _global_slot: u64, heads: &[Option<ArbHead>]) -> Option<usize> {
        let n = heads.len();
        // Scan next..n then 0..next: division-free cyclic order.
        for i in (self.next..n).chain(0..self.next) {
            if heads[i].is_some() {
                self.next = if i + 1 == n { 0 } else { i + 1 };
                return Some(i);
            }
        }
        None
    }
}

/// Coarse-grain round-robin (§6, "CRR"): per-warp-group arbitration.
///
/// Once an input wins, it keeps the grant while its head packets belong
/// to the same group (the packets of one warp instruction), amortising
/// arbitration — "network coalescing". §6 shows this does **not** remove
/// the covert channel, because the total flit count on the channel is
/// unchanged.
#[derive(Debug, Clone, Default)]
pub struct CoarseRoundRobinArbiter {
    next: usize,
    current: Option<(usize, u64)>,
}

impl CoarseRoundRobinArbiter {
    /// Creates the arbiter with no group in progress.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Arbiter for CoarseRoundRobinArbiter {
    fn grant(&mut self, _global_slot: u64, heads: &[Option<ArbHead>]) -> Option<usize> {
        if let Some((input, group)) = self.current {
            match heads.get(input).copied().flatten() {
                Some(head) if head.group == group => return Some(input),
                _ => self.current = None,
            }
        }
        let n = heads.len();
        for i in (self.next..n).chain(0..self.next) {
            if let Some(head) = heads[i] {
                self.next = if i + 1 == n { 0 } else { i + 1 };
                self.current = Some((i, head.group));
                return Some(i);
            }
        }
        None
    }
}

/// Strict round-robin (§6, "SRR"): time-division multiplexing.
///
/// Flit slot `s` belongs to input `s mod n` whether or not that input has
/// anything to send. An idle owner's slot is *wasted*, never granted to
/// another input, so no input can observe another's demand — the paper's
/// effective countermeasure.
#[derive(Debug, Clone, Default)]
pub struct StrictRoundRobinArbiter;

impl StrictRoundRobinArbiter {
    /// Creates the arbiter.
    pub fn new() -> Self {
        Self
    }
}

impl Arbiter for StrictRoundRobinArbiter {
    fn grant(&mut self, global_slot: u64, heads: &[Option<ArbHead>]) -> Option<usize> {
        let owner = (global_slot % heads.len() as u64) as usize;
        heads[owner].map(|_| owner)
    }
}

/// Globally-fair age-based arbitration [Abts & Weisser 2007].
///
/// Grants the input whose head packet is oldest. §6 argues this does not
/// mitigate the channel (contending requests are generated at similar
/// times, so local contention persists); it is included so the claim can
/// be tested.
#[derive(Debug, Clone, Default)]
pub struct AgeBasedArbiter;

impl AgeBasedArbiter {
    /// Creates the arbiter.
    pub fn new() -> Self {
        Self
    }
}

impl Arbiter for AgeBasedArbiter {
    fn grant(&mut self, _global_slot: u64, heads: &[Option<ArbHead>]) -> Option<usize> {
        heads
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.map(|h| (i, h.age)))
            .min_by_key(|&(i, age)| (age, i))
            .map(|(i, _)| i)
    }
}

/// Dense occupancy bitmask over a fixed index range.
///
/// One bit per slot. Inside the mux it tracks which input queues hold a
/// head flit, replacing the `&[Option<ArbHead>]` slice on the per-flit
/// hot path: a round-robin grant is a rotate-and-count-zeros instead of
/// an `Option` walk. The fabrics and the memory subsystem reuse it to
/// track which of their components are busy, so the per-cycle loops
/// walk only live components (in index order — identical visit order to
/// a full scan that skips idle entries) instead of scanning every
/// busy counter.
#[derive(Debug, Clone)]
pub struct OccupancyMask {
    words: Vec<u64>,
    len: usize,
}

impl OccupancyMask {
    /// Creates an all-clear mask over `len` slots.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64).max(1)],
            len,
        }
    }

    /// Number of slots covered (set or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bit is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    #[inline]
    pub fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    #[inline]
    pub fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 != 0
    }

    /// Clears every bit without reallocating — the in-place reset used
    /// by [`Gpu::reset`]-style machine reuse (word count and `len` are
    /// config-derived, so they survive the reset).
    #[inline]
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// The raw words, low bit = slot 0. Drain loops that clear bits as
    /// they visit copy one word at a time from this slice: the copy is a
    /// snapshot, so clearing an already-visited bit cannot perturb the
    /// walk, and no bit can be *set* mid-drain (draining only empties).
    #[inline]
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates set bits in ascending index order.
    #[inline]
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            std::iter::successors(if bits == 0 { None } else { Some(bits) }, |&b| {
                let rest = b & (b - 1);
                if rest == 0 {
                    None
                } else {
                    Some(rest)
                }
            })
            .map(move |b| w * 64 + b.trailing_zeros() as usize)
        })
    }

    /// Lowest set bit at index `from` or above, if any.
    #[inline]
    pub fn first_at_or_after(&self, from: usize) -> Option<usize> {
        let mut word = from / 64;
        if word >= self.words.len() {
            return None;
        }
        let masked = self.words[word] & (!0u64 << (from % 64));
        if masked != 0 {
            return Some(word * 64 + masked.trailing_zeros() as usize);
        }
        word += 1;
        while word < self.words.len() {
            if self.words[word] != 0 {
                return Some(word * 64 + self.words[word].trailing_zeros() as usize);
            }
            word += 1;
        }
        None
    }

    /// First set bit in cyclic scan order starting at `from`: the lowest
    /// bit at or above `from`, else the lowest set bit overall. Matches
    /// the `(next..n).chain(0..next)` walk of [`RoundRobinArbiter`].
    #[inline]
    pub fn first_cyclic(&self, from: usize) -> Option<usize> {
        self.first_at_or_after(from)
            .or_else(|| self.first_at_or_after(0))
    }

    /// Whether bit `i` is set and is the *only* set bit — the lone-
    /// occupant test behind the closed-form grant runs.
    #[inline]
    #[must_use]
    pub fn is_lone(&self, i: usize) -> bool {
        let bit_word = i / 64;
        let bit = 1u64 << (i % 64);
        self.words
            .iter()
            .enumerate()
            .all(|(w, &word)| word == if w == bit_word { bit } else { 0 })
    }
}

/// A batched arbitration decision from [`InlineArbiter::grant_run`]:
/// `winner` transmits `flits` of the next `slots` consecutive flit
/// slots (under strict RR, `slots` also covers the idle-owner slots
/// wasted before and between the winner's turns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct GrantRun {
    pub winner: usize,
    pub flits: u32,
    pub slots: u32,
}

/// Unboxed arbitration state driving the mask-based grant path.
///
/// Decision-for-decision identical to the boxed [`Arbiter`]
/// implementations above (the `simulator_fidelity` bit-identity tests
/// and the policy equivalence tests below depend on it); the enum
/// dispatch replaces a virtual call per flit slot, and the occupancy
/// mask plus SoA head columns replace the `Option<ArbHead>` slice.
#[derive(Debug, Clone)]
pub(crate) enum InlineArbiter {
    RoundRobin {
        next: usize,
    },
    CoarseRoundRobin {
        next: usize,
        current: Option<(usize, u64)>,
    },
    StrictRoundRobin,
    AgeBased,
}

impl InlineArbiter {
    pub(crate) fn new(policy: Arbitration) -> Self {
        match policy {
            Arbitration::RoundRobin => InlineArbiter::RoundRobin { next: 0 },
            Arbitration::CoarseRoundRobin => InlineArbiter::CoarseRoundRobin {
                next: 0,
                current: None,
            },
            Arbitration::StrictRoundRobin => InlineArbiter::StrictRoundRobin,
            Arbitration::AgeBased => InlineArbiter::AgeBased,
        }
    }

    /// Restores the arbiter to its just-constructed state in place
    /// (pointer at input 0, no group in progress). The policy variant is
    /// config-derived and retained.
    pub(crate) fn reset(&mut self) {
        match self {
            InlineArbiter::RoundRobin { next } => *next = 0,
            InlineArbiter::CoarseRoundRobin { next, current } => {
                *next = 0;
                *current = None;
            }
            InlineArbiter::StrictRoundRobin | InlineArbiter::AgeBased => {}
        }
    }

    /// Chooses the input transmitting in this flit slot (see
    /// [`Arbiter::grant`] for the contract). `head_age` / `head_group`
    /// are only read at indices whose occupancy bit is set.
    ///
    /// The hot path no longer calls this — [`grant_run`](Self::grant_run)
    /// batches whole runs of slots — but it stays as the per-flit
    /// reference the equivalence tests replay against.
    #[inline]
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn grant(
        &mut self,
        global_slot: u64,
        occ: &OccupancyMask,
        head_age: &[Cycle],
        head_group: &[u64],
    ) -> Option<usize> {
        match self {
            InlineArbiter::RoundRobin { next } => {
                let i = occ.first_cyclic(*next)?;
                *next = if i + 1 == occ.len() { 0 } else { i + 1 };
                Some(i)
            }
            InlineArbiter::CoarseRoundRobin { next, current } => {
                if let Some((input, group)) = *current {
                    if occ.get(input) && head_group[input] == group {
                        return Some(input);
                    }
                    *current = None;
                }
                let i = occ.first_cyclic(*next)?;
                *next = if i + 1 == occ.len() { 0 } else { i + 1 };
                *current = Some((i, head_group[i]));
                Some(i)
            }
            InlineArbiter::StrictRoundRobin => {
                let owner = (global_slot % occ.len() as u64) as usize;
                occ.get(owner).then_some(owner)
            }
            InlineArbiter::AgeBased => {
                // Ascending-index scan keeping the strict minimum matches
                // the boxed arbiter's (age, index) tie-break.
                let mut best: Option<usize> = None;
                let mut probe = occ.first_at_or_after(0);
                while let Some(i) = probe {
                    if best.is_none_or(|b| head_age[i] < head_age[b]) {
                        best = Some(i);
                    }
                    probe = occ.first_at_or_after(i + 1);
                }
                best
            }
        }
    }

    /// Batched grant: decides the winner of the flit slot `global_slot`
    /// and how many of the next `avail` slots it keeps winning, assuming
    /// the occupancy and head columns stay fixed for the whole run. The
    /// caller guarantees that by capping the run at the winner's
    /// remaining head flits (`flits <= head_remaining[winner]`), so no
    /// head can change before the run's last slot.
    ///
    /// Calling [`grant`](Self::grant) `slots` times instead would grant
    /// `winner` in exactly `flits` of those slots (wasting the rest,
    /// which only strict RR ever does) and leave the arbiter in the same
    /// state this call leaves it in — the decision-identity contract the
    /// `batched_grants_match_per_flit_loop` property test pins.
    ///
    /// Returns `None` when none of the next `avail` slots can grant
    /// (idle mask, or no strict-RR owner is occupied in range); the
    /// caller treats that as the rest of the cycle going unused.
    ///
    /// `avail` must be at least 1.
    #[inline(always)]
    pub(crate) fn grant_run(
        &mut self,
        global_slot: u64,
        avail: u32,
        occ: &OccupancyMask,
        head_remaining: &[u32],
        head_age: &[Cycle],
        head_group: &[u64],
    ) -> Option<GrantRun> {
        match self {
            InlineArbiter::RoundRobin { next } => {
                let w = occ.first_cyclic(*next)?;
                *next = if w + 1 == occ.len() { 0 } else { w + 1 };
                // A lone occupant keeps winning every slot (the paper's
                // §2.3 full-bandwidth property); under competition the
                // pointer moves on after one flit. Only pay for the
                // loneliness scan when a longer run is even possible.
                let flits = if avail > 1 && head_remaining[w] > 1 && occ.is_lone(w) {
                    avail.min(head_remaining[w])
                } else {
                    1
                };
                Some(GrantRun {
                    winner: w,
                    flits,
                    slots: flits,
                })
            }
            InlineArbiter::CoarseRoundRobin { next, current } => {
                // CRR holds the grant while the winner's head group is
                // unchanged, so a whole head batches even under
                // competition. Re-granting per flit would take the
                // `current` fast path every time and never touch `next`.
                if let Some((input, group)) = *current {
                    if occ.get(input) && head_group[input] == group {
                        let flits = avail.min(head_remaining[input]);
                        return Some(GrantRun {
                            winner: input,
                            flits,
                            slots: flits,
                        });
                    }
                    *current = None;
                }
                let w = occ.first_cyclic(*next)?;
                *next = if w + 1 == occ.len() { 0 } else { w + 1 };
                *current = Some((w, head_group[w]));
                let flits = avail.min(head_remaining[w]);
                Some(GrantRun {
                    winner: w,
                    flits,
                    slots: flits,
                })
            }
            InlineArbiter::StrictRoundRobin => {
                // Slot ownership is pure modular arithmetic: slot `s`
                // belongs to input `s % n`. Find the first occupied
                // owner at or after this slot's owner in cyclic order.
                let n = occ.len();
                let owner = (global_slot % n as u64) as usize;
                let w = occ.first_cyclic(owner)?;
                let dist = u32::try_from(if w >= owner { w - owner } else { w + n - owner })
                    .expect("mux input counts fit u32");
                if dist >= avail {
                    return None;
                }
                let n32 = u32::try_from(n).expect("mux input counts fit u32");
                // The scan is only worth it when the winner could own a
                // second in-range slot and has a second flit to send.
                if head_remaining[w] > 1 && avail - dist > n32 && occ.is_lone(w) {
                    // The winner owns every n-th slot; idle owners'
                    // slots between them are wasted, never re-granted.
                    let possible = 1 + (avail - dist - 1) / n32;
                    let flits = possible.min(head_remaining[w]);
                    Some(GrantRun {
                        winner: w,
                        flits,
                        slots: dist + (flits - 1) * n32 + 1,
                    })
                } else {
                    Some(GrantRun {
                        winner: w,
                        flits: 1,
                        slots: dist + 1,
                    })
                }
            }
            InlineArbiter::AgeBased => {
                // The (age, index) argmin over fixed heads is the same
                // every slot — ties included — so the winner's whole
                // head batches.
                let mut best: Option<usize> = None;
                let mut probe = occ.first_at_or_after(0);
                while let Some(i) = probe {
                    if best.is_none_or(|b| head_age[i] < head_age[b]) {
                        best = Some(i);
                    }
                    probe = occ.first_at_or_after(i + 1);
                }
                let w = best?;
                let flits = avail.min(head_remaining[w]);
                Some(GrantRun {
                    winner: w,
                    flits,
                    slots: flits,
                })
            }
        }
    }

    /// Applies the state transition of granting `winner` while it is the
    /// only occupied input with head group `group` — what a cross-cycle
    /// grant run replays each cycle instead of calling
    /// [`grant_run`](Self::grant_run): RR re-arms its scan pointer past
    /// the winner; CRR locks onto the winner's current group (re-arming
    /// the pointer only on a group change, exactly like the per-flit
    /// scan). Strict RR never sustains a cross-cycle run and age-based
    /// arbitration is stateless.
    #[inline]
    pub(crate) fn note_uncontested_grant(&mut self, winner: usize, group: u64, n: usize) {
        match self {
            InlineArbiter::RoundRobin { next } => {
                *next = if winner + 1 == n { 0 } else { winner + 1 };
            }
            InlineArbiter::CoarseRoundRobin { next, current } => {
                if *current != Some((winner, group)) {
                    *next = if winner + 1 == n { 0 } else { winner + 1 };
                    *current = Some((winner, group));
                }
            }
            InlineArbiter::StrictRoundRobin | InlineArbiter::AgeBased => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head(age: Cycle, group: u64) -> Option<ArbHead> {
        Some(ArbHead { age, group })
    }

    #[test]
    fn rr_alternates_between_two_busy_inputs() {
        let mut arb = RoundRobinArbiter::new();
        let heads = [head(0, 0), head(0, 1)];
        let grants: Vec<usize> = (0..6).map(|s| arb.grant(s, &heads).unwrap()).collect();
        assert_eq!(grants, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn rr_gives_lone_requester_full_bandwidth() {
        let mut arb = RoundRobinArbiter::new();
        let heads = [None, head(0, 1), None];
        for s in 0..8 {
            assert_eq!(arb.grant(s, &heads), Some(1));
        }
    }

    #[test]
    fn rr_returns_none_when_idle() {
        let mut arb = RoundRobinArbiter::new();
        assert_eq!(arb.grant(0, &[None, None]), None);
    }

    #[test]
    fn rr_pointer_resumes_after_gap() {
        let mut arb = RoundRobinArbiter::new();
        let busy = [head(0, 0), head(0, 1), head(0, 2)];
        assert_eq!(arb.grant(0, &busy), Some(0));
        // Input 1 goes idle; scan should continue to 2, not restart at 0.
        assert_eq!(arb.grant(1, &[head(0, 0), None, head(0, 2)]), Some(2));
        assert_eq!(arb.grant(2, &busy), Some(0));
    }

    #[test]
    fn srr_wastes_idle_owner_slots() {
        let mut arb = StrictRoundRobinArbiter::new();
        // Only input 1 is busy; it still only gets its own slots.
        let heads = [None, head(0, 0)];
        let grants: Vec<Option<usize>> = (0..6).map(|s| arb.grant(s, &heads)).collect();
        assert_eq!(grants, vec![None, Some(1), None, Some(1), None, Some(1)]);
    }

    #[test]
    fn srr_partitions_fairly_under_load() {
        let mut arb = StrictRoundRobinArbiter::new();
        let heads = [head(0, 0), head(0, 1), head(0, 2)];
        let mut counts = [0usize; 3];
        for s in 0..300 {
            counts[arb.grant(s, &heads).unwrap()] += 1;
        }
        assert_eq!(counts, [100, 100, 100]);
    }

    #[test]
    fn crr_holds_grant_within_a_group() {
        let mut arb = CoarseRoundRobinArbiter::new();
        // Input 0 transmits group 7 for several slots even though input 1
        // is waiting.
        let both = [head(0, 7), head(0, 9)];
        assert_eq!(arb.grant(0, &both), Some(0));
        assert_eq!(arb.grant(1, &both), Some(0));
        assert_eq!(arb.grant(2, &both), Some(0));
        // Input 0's group changes → grant moves to input 1.
        let switched = [head(5, 8), head(0, 9)];
        assert_eq!(arb.grant(3, &switched), Some(1));
        assert_eq!(arb.grant(4, &switched), Some(1));
    }

    #[test]
    fn crr_releases_grant_when_input_drains() {
        let mut arb = CoarseRoundRobinArbiter::new();
        assert_eq!(arb.grant(0, &[head(0, 7), head(0, 9)]), Some(0));
        // Input 0 empties: grant must fall through to input 1.
        assert_eq!(arb.grant(1, &[None, head(0, 9)]), Some(1));
    }

    #[test]
    fn age_based_prefers_oldest() {
        let mut arb = AgeBasedArbiter::new();
        assert_eq!(
            arb.grant(0, &[head(10, 0), head(3, 1), head(7, 2)]),
            Some(1)
        );
        // Tie breaks to the lower index.
        assert_eq!(arb.grant(1, &[head(5, 0), head(5, 1)]), Some(0));
        assert_eq!(arb.grant(2, &[None, None]), None);
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn inline_arbiter_matches_boxed_for_all_policies() {
        // The mux's hot path uses InlineArbiter; the boxed trait objects
        // remain the specification. Drive both with the same churning
        // head pattern and require identical grants — including across
        // the 64-bit word boundary of the occupancy mask (n = 70).
        for policy in Arbitration::ALL {
            for n in [1usize, 2, 7, 48, 70] {
                let mut rng: u64 = 0x9E37_79B9_7F4A_7C15 ^ n as u64;
                let mut boxed = make_arbiter(policy);
                let mut inline = InlineArbiter::new(policy);
                let mut heads: Vec<Option<ArbHead>> = vec![None; n];
                let mut occ = OccupancyMask::new(n);
                let mut head_age = vec![0u64; n];
                let mut head_group = vec![0u64; n];
                for slot in 0..2000u64 {
                    for _ in 0..3 {
                        let i = (xorshift(&mut rng) % n as u64) as usize;
                        if xorshift(&mut rng) % 3 == 0 {
                            heads[i] = None;
                            occ.clear(i);
                        } else {
                            let age = xorshift(&mut rng) % 16;
                            let group = xorshift(&mut rng) % 4;
                            heads[i] = head(age, group);
                            occ.set(i);
                            head_age[i] = age;
                            head_group[i] = group;
                        }
                    }
                    assert_eq!(
                        boxed.grant(slot, &heads),
                        inline.grant(slot, &occ, &head_age, &head_group),
                        "{policy:?}/{n} inputs diverged at slot {slot}: {heads:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn occupancy_mask_cyclic_scan() {
        let mut occ = OccupancyMask::new(70);
        assert_eq!(occ.first_cyclic(0), None);
        occ.set(3);
        occ.set(65);
        assert_eq!(occ.first_at_or_after(0), Some(3));
        assert_eq!(occ.first_at_or_after(4), Some(65));
        assert_eq!(occ.first_at_or_after(66), None);
        assert_eq!(occ.first_cyclic(66), Some(3));
        assert_eq!(occ.first_cyclic(64), Some(65));
        assert!(occ.get(65));
        occ.clear(65);
        assert!(!occ.get(65));
        assert_eq!(occ.first_cyclic(4), Some(3));
    }

    #[test]
    fn factory_builds_every_policy() {
        for policy in Arbitration::ALL {
            let mut arb = make_arbiter(policy);
            // Smoke: a lone busy input is granted eventually within one
            // round of slots.
            let heads = [head(0, 0), None];
            let granted = (0..2).any(|s| arb.grant(s, &heads) == Some(0));
            assert!(granted, "{policy:?} never granted the busy input");
        }
    }

    /// Mux-shaped state for driving the two grant engines side by side:
    /// occupancy + head columns, with randomized head installs and a
    /// random chance of a queued successor on completion.
    struct Muxlet {
        arb: InlineArbiter,
        occ: OccupancyMask,
        head_remaining: Vec<u32>,
        head_age: Vec<Cycle>,
        head_group: Vec<u64>,
        rng: u64,
    }

    impl Muxlet {
        fn new(policy: Arbitration, n: usize, seed: u64) -> Self {
            Self {
                arb: InlineArbiter::new(policy),
                occ: OccupancyMask::new(n),
                head_remaining: vec![0; n],
                head_age: vec![0; n],
                head_group: vec![0; n],
                rng: seed,
            }
        }

        fn install_head(&mut self, i: usize) {
            let r = xorshift(&mut self.rng);
            self.occ.set(i);
            self.head_remaining[i] = 1 + (r % 7) as u32;
            self.head_age[i] = (r >> 8) % 16;
            self.head_group[i] = (r >> 16) % 4;
        }

        /// New arrivals at idle inputs, drawn once per cycle.
        fn refill(&mut self) {
            for i in 0..self.head_remaining.len() {
                if !self.occ.get(i) && xorshift(&mut self.rng) % 4 == 0 {
                    self.install_head(i);
                }
            }
        }

        /// The head just drained: half the time another packet was queued
        /// behind it (mid-cycle head change), otherwise the input idles.
        fn on_complete(&mut self, i: usize) {
            if xorshift(&mut self.rng) % 2 == 0 {
                self.install_head(i);
            } else {
                self.occ.clear(i);
            }
        }

        fn is_idle(&self) -> bool {
            self.occ.first_at_or_after(0).is_none()
        }

        /// The reference engine: one `grant` call per flit slot.
        fn tick_per_flit(
            &mut self,
            now: u64,
            bandwidth: u32,
            budget: u32,
            grants: &mut Vec<usize>,
        ) {
            for flit_slot in 0..budget {
                if self.is_idle() {
                    break;
                }
                let gs = now * u64::from(bandwidth) + u64::from(flit_slot);
                let Some(w) = self
                    .arb
                    .grant(gs, &self.occ, &self.head_age, &self.head_group)
                else {
                    continue;
                };
                grants.push(w);
                self.head_remaining[w] -= 1;
                if self.head_remaining[w] == 0 {
                    self.on_complete(w);
                }
            }
        }

        /// The batched engine: closed-form runs via `grant_run`.
        fn tick_batched(&mut self, now: u64, bandwidth: u32, budget: u32, grants: &mut Vec<usize>) {
            let slot_base = now * u64::from(bandwidth);
            let mut used = 0u32;
            while used < budget {
                if self.is_idle() {
                    break;
                }
                let Some(run) = self.arb.grant_run(
                    slot_base + u64::from(used),
                    budget - used,
                    &self.occ,
                    &self.head_remaining,
                    &self.head_age,
                    &self.head_group,
                ) else {
                    break;
                };
                for _ in 0..run.flits {
                    grants.push(run.winner);
                }
                self.head_remaining[run.winner] -= run.flits;
                used += run.slots;
                if self.head_remaining[run.winner] == 0 {
                    self.on_complete(run.winner);
                }
            }
        }
    }

    #[test]
    fn grant_run_matches_per_flit_grant() {
        // The batched engine's contract: identical granted-flit sequence
        // and identical end state to calling `grant` once per slot, under
        // every policy, input count, bandwidth, random head churn,
        // mid-cycle head exhaustion, and fault-stolen slots (budget <
        // bandwidth). The muxlets share RNG seeds, so their random draws
        // stay aligned exactly as long as the grant sequences agree.
        for policy in Arbitration::ALL {
            for n in [1usize, 2, 7, 48, 70] {
                for bandwidth in [1u32, 3, 6] {
                    let seed = 0xDEAD_BEEF ^ ((n as u64) << 8) ^ u64::from(bandwidth);
                    let mut a = Muxlet::new(policy, n, seed);
                    let mut b = Muxlet::new(policy, n, seed);
                    let mut rng_budget = seed.rotate_left(17);
                    for now in 0..600u64 {
                        a.refill();
                        b.refill();
                        // Fault bursts steal slots off the top of a cycle.
                        let steal = (xorshift(&mut rng_budget) % u64::from(bandwidth + 1)) as u32;
                        let budget = bandwidth - steal;
                        if budget == 0 {
                            continue;
                        }
                        let mut grants_a = Vec::new();
                        let mut grants_b = Vec::new();
                        a.tick_per_flit(now, bandwidth, budget, &mut grants_a);
                        b.tick_batched(now, bandwidth, budget, &mut grants_b);
                        assert_eq!(
                            grants_a, grants_b,
                            "{policy:?}/{n} inputs/bw {bandwidth} diverged at cycle {now}"
                        );
                        assert_eq!(a.head_remaining, b.head_remaining);
                        assert_eq!(
                            format!("{:?}", a.arb),
                            format!("{:?}", b.arb),
                            "{policy:?}/{n}/bw {bandwidth}: arbiter state diverged at {now}"
                        );
                    }
                }
            }
        }
    }
}
