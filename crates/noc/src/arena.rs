//! Slab arena for packets resident inside a mux.
//!
//! A [`ConcentratorMux`](crate::mux::ConcentratorMux) used to move whole
//! [`Packet`] structs (~80 B) through its input queues and output delay
//! line, copying each packet on every stage hop. The arena pins a packet
//! in one slot for its entire residence in the mux; queues and delay
//! lines carry 4-byte slot ids instead, and the per-flit arbitration hot
//! path never touches packet memory at all — it reads the parallel
//! structure-of-arrays flit-length column.

use crate::packet::Packet;

/// Slab of packet slots with a free list, plus the flit-length column
/// the grant loop reads (structure-of-arrays: lengths live apart from
/// the packets so arbitration stays in one small array).
#[derive(Debug, Clone, Default)]
pub(crate) struct PacketArena {
    slots: Vec<Option<Packet>>,
    flits: Vec<u32>,
    free: Vec<u32>,
}

impl PacketArena {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Stores `packet` (with its precomputed flit length) and returns
    /// its slot id, reusing a freed slot when one exists.
    #[inline]
    pub(crate) fn insert(&mut self, packet: Packet, flits: u32) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = Some(packet);
            self.flits[slot as usize] = flits;
            return slot;
        }
        let slot = u32::try_from(self.slots.len()).expect("mux arena exceeds u32 slots");
        self.slots.push(Some(packet));
        self.flits.push(flits);
        slot
    }

    /// The packet in `slot`.
    ///
    /// # Panics
    ///
    /// Panics on a vacant slot: slot ids are only ever held by exactly
    /// one queue or delay line, so a vacant lookup is a use-after-free.
    #[inline]
    pub(crate) fn get(&self, slot: u32) -> &Packet {
        self.slots[slot as usize]
            .as_ref()
            .expect("arena slot vacated while still referenced")
    }

    /// Flit length of the packet in `slot`.
    #[inline]
    pub(crate) fn flits(&self, slot: u32) -> u32 {
        self.flits[slot as usize]
    }

    /// Removes and returns the packet in `slot`, recycling the slot.
    ///
    /// # Panics
    ///
    /// Panics on a vacant slot (double free).
    #[inline]
    pub(crate) fn take(&mut self, slot: u32) -> Packet {
        let packet = self.slots[slot as usize]
            .take()
            .expect("arena slot vacated while still referenced");
        self.free.push(slot);
        packet
    }

    /// Removes every packet in `slots` (in order), handing each to
    /// `sink`, then recycles all the slots with a single free-list
    /// extend — the batched retire path for drain loops that pop a run
    /// of completed packets in one call.
    ///
    /// # Panics
    ///
    /// Panics on a vacant slot (double free), like [`take`](Self::take).
    pub(crate) fn take_batch(&mut self, slots: &[u32], mut sink: impl FnMut(Packet)) {
        for &slot in slots {
            let packet = self.slots[slot as usize]
                .take()
                .expect("arena slot vacated while still referenced");
            sink(packet);
        }
        self.free.extend_from_slice(slots);
    }

    /// Empties the arena in place, keeping the slab and free-list
    /// allocations — the in-place reset used by machine reuse.
    pub(crate) fn clear(&mut self) {
        self.slots.clear();
        self.flits.clear();
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketId, PacketKind};
    use gnc_common::ids::{SliceId, SmId, WarpId};

    fn pkt(id: u64) -> Packet {
        Packet {
            id: PacketId(id),
            kind: PacketKind::ReadRequest,
            sm: SmId::new(0),
            warp: WarpId::new(0),
            slice: SliceId::new(0),
            addr: 0,
            data_bytes: 4,
            injected_at: 0,
            group: id,
        }
    }

    #[test]
    fn slots_are_recycled() {
        let mut arena = PacketArena::new();
        let a = arena.insert(pkt(1), 1);
        let b = arena.insert(pkt(2), 5);
        assert_ne!(a, b);
        assert_eq!(arena.get(a).id, PacketId(1));
        assert_eq!(arena.flits(b), 5);
        assert_eq!(arena.take(a).id, PacketId(1));
        // The freed slot is reused before the slab grows.
        let c = arena.insert(pkt(3), 2);
        assert_eq!(c, a);
        assert_eq!(arena.get(c).id, PacketId(3));
        assert_eq!(arena.flits(c), 2);
        assert_eq!(arena.take(b).id, PacketId(2));
        assert_eq!(arena.take(c).id, PacketId(3));
    }

    #[test]
    #[should_panic(expected = "vacated while still referenced")]
    fn double_free_is_detected() {
        let mut arena = PacketArena::new();
        let a = arena.insert(pkt(1), 1);
        let _ = arena.take(a);
        let _ = arena.take(a);
    }
}
