//! Input-queued crossbar between the GPC channels and the L2 slices.
//!
//! Publicly available block diagrams of NVIDIA GPUs show a crossbar in the
//! middle of the chip; the paper concludes it interconnects the GPCs with
//! the partitioned L2 (§3.1). It is modelled as one [`ConcentratorMux`]
//! per output port: output contention is arbitrated, distinct outputs are
//! independent (non-blocking fabric).

use crate::arbiter::OccupancyMask;
use crate::event::NextEvent;
use crate::mux::ConcentratorMux;
use crate::packet::Packet;
use gnc_common::config::{Arbitration, NocConfig};
use gnc_common::telemetry::{Component, NullProbe, Probe};
use gnc_common::Cycle;

/// An `n_in × n_out` crossbar with per-output arbitration.
#[derive(Debug)]
pub struct Crossbar {
    outputs: Vec<ConcentratorMux>,
    n_inputs: usize,
    /// Packets inside each output mux (queued + output pipeline). Zero
    /// proves that output's tick, pop, and next_event are no-ops, so the
    /// hot loops skip the mux without touching it.
    busy: Vec<u32>,
    /// Bit `o` set iff `busy[o] > 0`: the per-cycle loops walk set bits
    /// in index order instead of scanning every counter.
    mask: OccupancyMask,
    /// Total packets resident anywhere in the crossbar (the sum of
    /// `busy`), so [`is_drained`](Self::is_drained) is one compare
    /// instead of a sweep over every output mux.
    resident: u32,
}

impl Crossbar {
    /// Creates a crossbar.
    ///
    /// * `n_inputs` / `n_outputs` — port counts.
    /// * `bandwidth` — per-output bandwidth in flits/cycle.
    /// * `latency` — traversal latency in cycles.
    /// * `depth` — per-(input, output) queue depth in packets.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero (delegated to [`ConcentratorMux`]).
    pub fn new(
        n_inputs: usize,
        n_outputs: usize,
        bandwidth: u32,
        latency: u32,
        depth: usize,
        policy: Arbitration,
        noc: &NocConfig,
    ) -> Self {
        assert!(n_outputs > 0, "crossbar needs at least one output");
        Self {
            outputs: (0..n_outputs)
                .map(|o| {
                    let mut mux =
                        ConcentratorMux::new(n_inputs, bandwidth, latency, depth, policy, noc);
                    mux.set_label(Component::xbar_out(o));
                    mux
                })
                .collect(),
            n_inputs,
            busy: vec![0; n_outputs],
            mask: OccupancyMask::new(n_outputs),
            resident: 0,
        }
    }

    /// Number of input ports.
    pub fn num_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of output ports.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Whether `(input, output)` can take another packet.
    #[inline]
    pub fn can_accept(&self, input: usize, output: usize) -> bool {
        self.outputs[output].can_accept(input)
    }

    /// Queues `packet` from `input` toward `output`.
    ///
    /// # Errors
    ///
    /// Returns the packet when the virtual queue is full (backpressure).
    #[inline]
    pub fn try_push(&mut self, input: usize, output: usize, packet: Packet) -> Result<(), Packet> {
        self.try_push_probed(input, output, packet, &mut NullProbe)
    }

    /// [`try_push`](Self::try_push) with telemetry: the output mux
    /// reports under the [`Component::xbar_out`] label.
    ///
    /// # Errors
    ///
    /// Returns the packet when the virtual queue is full (backpressure).
    pub fn try_push_probed<P: Probe>(
        &mut self,
        input: usize,
        output: usize,
        packet: Packet,
        probe: &mut P,
    ) -> Result<(), Packet> {
        let pushed =
            self.outputs[output].try_push_probed(input, packet, Component::xbar_out(output), probe);
        if pushed.is_ok() {
            if self.busy[output] == 0 {
                self.mask.set(output);
            }
            self.busy[output] += 1;
            self.resident += 1;
        }
        pushed
    }

    /// Advances every output arbiter that holds a packet by one cycle
    /// (empty outputs tick to a no-op and are skipped).
    #[inline]
    pub fn tick(&mut self, now: Cycle) {
        self.tick_probed(now, &mut NullProbe);
    }

    /// [`tick`](Self::tick) with telemetry: per-port grants and forwards
    /// report under the [`Component::xbar_out`] label.
    pub fn tick_probed<P: Probe>(&mut self, now: Cycle, probe: &mut P) {
        for o in self.mask.iter_set() {
            self.outputs[o].tick_probed(now, Component::xbar_out(o), probe);
        }
    }

    /// Whether any packet is queued at or in flight toward `output`.
    pub fn output_busy(&self, output: usize) -> bool {
        self.busy[output] > 0
    }

    /// Removes the next packet delivered at `output`, if ready at `now`.
    #[inline]
    pub fn pop_delivered(&mut self, output: usize, now: Cycle) -> Option<Packet> {
        let popped = self.outputs[output].pop_delivered(now);
        if popped.is_some() {
            self.busy[output] -= 1;
            if self.busy[output] == 0 {
                self.mask.clear(output);
            }
            self.resident -= 1;
        }
        popped
    }

    /// Pops every packet already delivered at any output (in output
    /// order) into `sink`. Equivalent to a full `pop_delivered` sweep
    /// over all outputs, but walks only busy ones and retires each
    /// output's delivered slots through the arena in one batch.
    pub fn drain_delivered<F: FnMut(Packet)>(&mut self, now: Cycle, mut sink: F) {
        for w in 0..self.mask.words().len() {
            // Snapshot one word: pops may clear bits of already-visited
            // outputs, never set new ones.
            let mut bits = self.mask.words()[w];
            while bits != 0 {
                let o = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let drained = self.outputs[o].drain_delivered(now, &mut sink);
                if drained > 0 {
                    let drained = u32::try_from(drained).expect("queue depths fit u32");
                    self.busy[o] -= drained;
                    self.resident -= drained;
                    if self.busy[o] == 0 {
                        self.mask.clear(o);
                    }
                }
            }
        }
    }

    /// Restores the crossbar to its just-constructed state in place
    /// (see [`ConcentratorMux::reset`]).
    pub fn reset(&mut self) {
        for mux in &mut self.outputs {
            mux.reset();
        }
        self.busy.fill(0);
        self.mask.clear_all();
        self.resident = 0;
    }

    /// True when nothing is queued or in flight anywhere. O(1): the
    /// resident counter tracks every push, pop, and drain.
    pub fn is_drained(&self) -> bool {
        self.resident == 0
    }

    /// The earliest [`NextEvent`] across every output mux.
    /// [`NextEvent::Busy`] dominates the merge, so the scan stops at the
    /// first busy output — same result, O(1) under load.
    pub fn next_event(&self) -> NextEvent {
        let mut ev = NextEvent::Idle;
        for o in self.mask.iter_set() {
            match self.outputs[o].next_event() {
                NextEvent::Busy => return NextEvent::Busy,
                e => ev = ev.merge(e),
            }
        }
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketId, PacketKind};
    use gnc_common::ids::{SliceId, SmId, WarpId};

    fn pkt(id: u64) -> Packet {
        Packet {
            id: PacketId(id),
            kind: PacketKind::ReadRequest,
            sm: SmId::new(0),
            warp: WarpId::new(0),
            slice: SliceId::new(0),
            addr: 0,
            data_bytes: 128,
            injected_at: 0,
            group: id,
        }
    }

    fn xbar() -> Crossbar {
        Crossbar::new(
            2,
            3,
            1,
            0,
            4,
            Arbitration::RoundRobin,
            &NocConfig::default(),
        )
    }

    #[test]
    fn distinct_outputs_do_not_interfere() {
        let mut x = xbar();
        x.try_push(0, 0, pkt(1)).unwrap();
        x.try_push(1, 2, pkt(2)).unwrap();
        x.tick(0);
        // Both single-flit packets cross in the same cycle because they
        // target different outputs.
        assert_eq!(x.pop_delivered(0, 0).unwrap().id, PacketId(1));
        assert_eq!(x.pop_delivered(2, 0).unwrap().id, PacketId(2));
        assert!(x.pop_delivered(1, 0).is_none());
        assert!(x.is_drained());
    }

    #[test]
    fn same_output_serialises() {
        let mut x = xbar();
        x.try_push(0, 1, pkt(1)).unwrap();
        x.try_push(1, 1, pkt(2)).unwrap();
        x.tick(0);
        assert!(x.pop_delivered(1, 0).is_some());
        assert!(x.pop_delivered(1, 0).is_none()); // second flit next cycle
        x.tick(1);
        assert!(x.pop_delivered(1, 1).is_some());
    }

    #[test]
    fn backpressure_per_virtual_queue() {
        let mut x = Crossbar::new(
            1,
            1,
            1,
            0,
            1,
            Arbitration::RoundRobin,
            &NocConfig::default(),
        );
        x.try_push(0, 0, pkt(1)).unwrap();
        assert!(!x.can_accept(0, 0));
        assert!(x.try_push(0, 0, pkt(2)).is_err());
    }

    #[test]
    fn dimensions_are_reported() {
        let x = xbar();
        assert_eq!(x.num_inputs(), 2);
        assert_eq!(x.num_outputs(), 3);
    }
}
