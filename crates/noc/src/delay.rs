//! Constant-latency FIFO delay lines.
//!
//! Every channel pipeline stage in the fabric (SM→TPC wires, TPC→GPC
//! wires, crossbar traversal) is modelled as a delay line: items become
//! visible to the downstream consumer a fixed number of cycles after they
//! were pushed, in FIFO order.

use gnc_common::Cycle;
use std::collections::VecDeque;

/// A FIFO whose items become poppable `latency` cycles after insertion.
///
/// Because the latency is constant, insertion order equals readiness
/// order, so a plain deque suffices.
#[derive(Debug, Clone)]
pub struct DelayLine<T> {
    latency: u32,
    /// Readiness of the current front item, `Cycle::MAX` when empty.
    /// Polling consumers probe their delay lines every cycle and mostly
    /// miss; this keeps the miss path to a single compare instead of a
    /// deque front load.
    next_ready: Cycle,
    items: VecDeque<(Cycle, T)>,
}

impl<T> DelayLine<T> {
    /// Creates a delay line with the given latency in cycles.
    pub fn new(latency: u32) -> Self {
        Self {
            latency,
            next_ready: Cycle::MAX,
            items: VecDeque::new(),
        }
    }

    /// The configured latency.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Inserts an item at `now`; it becomes poppable at
    /// `now + latency`.
    pub fn push(&mut self, now: Cycle, item: T) {
        let ready = now + Cycle::from(self.latency);
        if self.items.is_empty() {
            self.next_ready = ready;
        }
        self.items.push_back((ready, item));
    }

    /// Inserts an item that becomes poppable at the explicit cycle
    /// `ready_at` (used by stages with data-dependent service times).
    ///
    /// # Panics
    ///
    /// Panics if `ready_at` is earlier than the readiness of the current
    /// tail, which would violate FIFO order. The check is a single
    /// compare, so it stays on in release builds — a delay line that
    /// reorders readiness would silently corrupt every latency the
    /// simulator measures.
    pub fn push_ready_at(&mut self, ready_at: Cycle, item: T) {
        assert!(
            self.items.back().is_none_or(|(t, _)| *t <= ready_at),
            "push_ready_at must preserve FIFO readiness order"
        );
        if self.items.is_empty() {
            self.next_ready = ready_at;
        }
        self.items.push_back((ready_at, item));
    }

    /// A reference to the front item if it is ready at `now`.
    pub fn peek_ready(&self, now: Cycle) -> Option<&T> {
        if now < self.next_ready {
            return None;
        }
        self.items.front().map(|(_, item)| item)
    }

    /// Removes and returns the front item if it is ready at `now`.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        if now < self.next_ready {
            return None;
        }
        let (_, item) = self.items.pop_front()?;
        self.next_ready = self.items.front().map_or(Cycle::MAX, |(ready, _)| *ready);
        Some(item)
    }

    /// The cycle at which the front item becomes ready, if any.
    ///
    /// Because readiness is FIFO-ordered, this is the earliest cycle at
    /// which *any* item in the line becomes poppable — the delay line's
    /// next event for fast-forwarding schedulers.
    pub fn next_ready_cycle(&self) -> Option<Cycle> {
        self.items.front().map(|(ready, _)| *ready)
    }

    /// Number of items in flight (ready or not).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the delay line holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drops every in-flight item, keeping the allocation and latency —
    /// the in-place reset used by machine reuse.
    pub fn clear(&mut self) {
        self.next_ready = Cycle::MAX;
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_age_before_becoming_ready() {
        let mut line = DelayLine::new(3);
        line.push(10, "a");
        assert!(line.peek_ready(10).is_none());
        assert!(line.peek_ready(12).is_none());
        assert_eq!(line.peek_ready(13), Some(&"a"));
        assert_eq!(line.pop_ready(13), Some("a"));
        assert!(line.is_empty());
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut line = DelayLine::new(1);
        line.push(0, 1);
        line.push(0, 2);
        line.push(1, 3);
        assert_eq!(line.pop_ready(1), Some(1));
        assert_eq!(line.pop_ready(1), Some(2));
        assert_eq!(line.pop_ready(1), None); // item 3 ready at 2
        assert_eq!(line.pop_ready(2), Some(3));
    }

    #[test]
    fn zero_latency_is_immediate() {
        let mut line = DelayLine::new(0);
        line.push(5, "x");
        assert_eq!(line.pop_ready(5), Some("x"));
    }

    #[test]
    fn explicit_ready_time() {
        let mut line = DelayLine::new(2);
        line.push_ready_at(20, "late");
        assert!(line.pop_ready(19).is_none());
        assert_eq!(line.pop_ready(20), Some("late"));
    }

    #[test]
    fn pop_does_not_skip_unready_head() {
        let mut line = DelayLine::new(5);
        line.push(0, "head");
        line.push(0, "tail");
        assert_eq!(line.len(), 2);
        assert!(line.pop_ready(4).is_none());
        assert_eq!(line.len(), 2);
    }
}
