//! Next-event reporting and the event calendar for event-driven loops.
//!
//! Each fabric and memory component can report when it next has work to
//! do ([`NextEvent`]). The engine-v2 core extends the report into a
//! per-component [`EventCalendar`]: a binary-heap wake-up queue keyed by
//! `(Cycle, ComponentId)` that the `Gpu` run loop owns. Components
//! *push* their next wake-up into the calendar whenever their state
//! changes, instead of being polled on every jump attempt; a cycle in
//! which no component is due is provably a no-op for the whole machine,
//! so the driver jumps straight over it without changing any observable
//! behaviour.

use crate::arbiter::OccupancyMask;
use gnc_common::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A component's claim about when it next needs a `tick`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextEvent {
    /// The component has actionable work *this* cycle (or cannot bound
    /// when it will); the driver must keep ticking cycle-by-cycle.
    Busy,
    /// The component holds no state at all and never needs a tick until
    /// new work arrives from outside.
    Idle,
    /// The component is quiescent until this cycle: every tick strictly
    /// before it is a no-op for this component.
    At(Cycle),
}

impl NextEvent {
    /// Combines two components' reports into the fabric-wide earliest
    /// event. [`NextEvent::Busy`] dominates; [`NextEvent::Idle`] is the
    /// identity; two timestamps merge to the earlier one.
    #[must_use]
    pub fn merge(self, other: NextEvent) -> NextEvent {
        match (self, other) {
            (NextEvent::Busy, _) | (_, NextEvent::Busy) => NextEvent::Busy,
            (NextEvent::Idle, e) | (e, NextEvent::Idle) => e,
            (NextEvent::At(a), NextEvent::At(b)) => NextEvent::At(a.min(b)),
        }
    }
}

/// Index of one schedulable component in an [`EventCalendar`]. The
/// driver assigns the ids (the `Gpu` engine uses a fixed layout: kernel
/// lifecycle, the two fabrics, the memory system, then one id per SM).
pub type ComponentId = u32;

/// When an [`EventCalendar`] next has a due component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// At least one component is busy: the driver must process the
    /// current cycle.
    Now,
    /// Nothing is busy; the earliest scheduled wake-up is at this cycle.
    At(Cycle),
    /// Nothing is busy and nothing is scheduled: every remaining cycle
    /// is a no-op until external work arrives.
    Never,
}

/// A per-component wake-up queue: a binary heap keyed by
/// `(Cycle, ComponentId)` with lazy deletion, plus a busy set that keeps
/// cycle-by-cycle components out of the heap entirely.
///
/// # Push-vs-poll contract
///
/// The calendar is *pushed*, never polled: a component's entry changes
/// only at the two points where its state can change —
///
/// 1. **Processing time.** After the driver services a due component it
///    calls [`reschedule`](Self::reschedule) with the component's fresh
///    [`NextEvent`] report. This is the only call that may move a
///    wake-up *later* (the component consumed its work) or drop it.
/// 2. **External events.** When one component hands work to another
///    (a reply delivered to an SM, a block placed, a kernel freed), the
///    giver calls [`make_busy`](Self::make_busy) /
///    [`notify_at`](Self::notify_at) for the receiver. These calls only
///    ever move a wake-up *earlier* — new work cannot make a component
///    quiescent — which is what makes the min-merge sound.
///
/// # Invariants
///
/// * Any component with possible effect at cycle `c` is either busy or
///   has a live heap entry at or before `c`; hence a jump to
///   [`next_wake`](Self::next_wake) skips only provably dead cycles.
/// * `scheduled[comp]` mirrors the earliest *live* heap entry for
///   `comp`; heap entries that disagree are stale and are dropped
///   lazily on peek (same-cycle entries order by component id, so
///   two components waking together are both due, deterministically).
/// * Busy components are processed every cycle without heap traffic;
///   in a saturated machine the calendar costs O(1) per cycle.
#[derive(Debug, Clone)]
pub struct EventCalendar {
    heap: BinaryHeap<Reverse<(Cycle, ComponentId)>>,
    /// Earliest live heap entry per component; `Cycle::MAX` means none.
    scheduled: Vec<Cycle>,
    /// One bit per busy component: drivers walk set bits in id order to
    /// find due components without scanning every id.
    busy: OccupancyMask,
    num_busy: usize,
    /// Components with a live scheduled wake-up (`scheduled != MAX`).
    /// Kept exact so [`is_idle`](Self::is_idle) answers from two counter
    /// reads — stale heap entries never inflate it.
    live_scheduled: usize,
}

impl EventCalendar {
    /// Creates a calendar for `components` schedulable components, all
    /// initially idle (nothing busy, nothing scheduled).
    pub fn new(components: usize) -> Self {
        Self {
            heap: BinaryHeap::new(),
            scheduled: vec![Cycle::MAX; components],
            busy: OccupancyMask::new(components),
            num_busy: 0,
            live_scheduled: 0,
        }
    }

    /// Restores the calendar to its just-constructed state in place:
    /// drops every heap entry, scheduled wake-up, and busy bit, keeping
    /// all allocations. The component count is config-derived and
    /// retained.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.scheduled.fill(Cycle::MAX);
        self.busy.clear_all();
        self.num_busy = 0;
        self.live_scheduled = 0;
    }

    /// Number of schedulable components this calendar was sized for.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.scheduled.len()
    }

    /// True when nothing is busy and nothing holds a live wake-up: every
    /// remaining cycle is a no-op until external work arrives. Exact —
    /// lazily deleted heap entries do not count.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.num_busy == 0 && self.live_scheduled == 0
    }

    /// Marks `comp` busy: due every cycle until its next
    /// [`reschedule`](Self::reschedule) says otherwise. Idempotent.
    #[inline]
    pub fn make_busy(&mut self, comp: ComponentId) {
        let c = comp as usize;
        if !self.busy.get(c) {
            self.busy.set(c);
            self.num_busy += 1;
        }
    }

    /// External notification that `comp` has work at `at`. Only moves
    /// the component's wake-up earlier; a later `at` than what is
    /// already scheduled is ignored (the earlier entry stands and the
    /// component will re-report when processed).
    #[inline]
    pub fn notify_at(&mut self, comp: ComponentId, at: Cycle) {
        let c = comp as usize;
        if self.busy.get(c) || at >= self.scheduled[c] {
            return;
        }
        if self.scheduled[c] == Cycle::MAX {
            self.live_scheduled += 1;
        }
        self.scheduled[c] = at;
        self.heap.push(Reverse((at, comp)));
    }

    /// Processing-time reschedule from the component's fresh report.
    /// Unlike [`notify_at`](Self::notify_at) this may move the wake-up
    /// later or drop it — the component just consumed its work, so its
    /// own report is the new ground truth.
    pub fn reschedule(&mut self, comp: ComponentId, report: NextEvent) {
        let c = comp as usize;
        match report {
            NextEvent::Busy => {
                self.make_busy(comp);
                return;
            }
            NextEvent::Idle => {
                // Any heap entries for comp become stale.
                if self.scheduled[c] != Cycle::MAX {
                    self.live_scheduled -= 1;
                    self.scheduled[c] = Cycle::MAX;
                }
            }
            NextEvent::At(at) => {
                if self.scheduled[c] != at {
                    if self.scheduled[c] == Cycle::MAX {
                        self.live_scheduled += 1;
                    }
                    self.scheduled[c] = at;
                    self.heap.push(Reverse((at, comp)));
                }
            }
        }
        if self.busy.get(c) {
            self.busy.clear(c);
            self.num_busy -= 1;
        }
    }

    /// [`reschedule`](Self::reschedule) for a component that was just
    /// processed at `now`, folding near-term wake-ups into the busy set:
    /// a report of `At(now + 1)` (or earlier — an overdue stall site)
    /// makes the component due on the very next processed cycle, exactly
    /// like `Busy`, so the heap round-trip — push here, pop in the next
    /// cycle's [`promote_due`](Self::promote_due) — buys nothing. The
    /// component's next processing reschedules it again, so busy-ness
    /// never outlives the report. Due-ness per cycle is identical to
    /// the plain reschedule; only the bookkeeping route differs.
    #[inline]
    pub fn reschedule_near(&mut self, comp: ComponentId, report: NextEvent, now: Cycle) {
        match report {
            NextEvent::At(at) if at <= now + 1 => self.make_busy(comp),
            r => self.reschedule(comp, r),
        }
    }

    /// Whether `comp` must be processed at `now`.
    #[inline]
    pub fn is_due(&self, comp: ComponentId, now: Cycle) -> bool {
        let c = comp as usize;
        self.busy.get(c) || self.scheduled[c] <= now
    }

    /// Promotes every component whose scheduled wake-up has arrived
    /// (`at <= now`) into the busy set, consuming its heap entry. After
    /// this, "due at `now`" and "busy" coincide, so a driver can walk
    /// the busy bits instead of checking each component's schedule.
    /// Stale heap entries encountered on the way are dropped.
    pub fn promote_due(&mut self, now: Cycle) {
        while let Some(&Reverse((at, comp))) = self.heap.peek() {
            if self.scheduled[comp as usize] != at {
                self.heap.pop();
                continue;
            }
            if at > now {
                break;
            }
            self.heap.pop();
            self.scheduled[comp as usize] = Cycle::MAX;
            self.live_scheduled -= 1;
            self.make_busy(comp);
        }
    }

    /// The busy set's raw words, low bit = component 0. Phase loops
    /// snapshot one word at a time: processing a component may clear its
    /// (already-visited) bit; bits set mid-walk belong to components
    /// woken for this same cycle by an earlier phase, which the walk
    /// must NOT revisit — hence the snapshot, not a live borrow.
    #[inline]
    pub fn busy_words(&self) -> &[u64] {
        self.busy.words()
    }

    /// When the machine next has a due component. Pops stale heap
    /// entries (lazy deletion) but leaves live ones in place — they go
    /// stale when their component is processed and rescheduled.
    pub fn next_wake(&mut self) -> Wake {
        debug_assert_eq!(self.num_busy, self.busy.iter_set().count());
        debug_assert_eq!(
            self.live_scheduled,
            self.scheduled.iter().filter(|&&c| c != Cycle::MAX).count()
        );
        if self.num_busy > 0 {
            return Wake::Now;
        }
        while let Some(&Reverse((at, comp))) = self.heap.peek() {
            if self.scheduled[comp as usize] == at {
                return Wake::At(at);
            }
            self.heap.pop();
        }
        Wake::Never
    }
}

#[cfg(test)]
mod tests {
    use super::NextEvent::{At, Busy, Idle};
    use super::{EventCalendar, Wake};

    #[test]
    fn busy_dominates() {
        assert_eq!(Busy.merge(Idle), Busy);
        assert_eq!(At(5).merge(Busy), Busy);
        assert_eq!(Busy.merge(Busy), Busy);
    }

    #[test]
    fn idle_is_identity() {
        assert_eq!(Idle.merge(Idle), Idle);
        assert_eq!(Idle.merge(At(9)), At(9));
        assert_eq!(At(9).merge(Idle), At(9));
    }

    #[test]
    fn timestamps_take_the_minimum() {
        assert_eq!(At(7).merge(At(3)), At(3));
        assert_eq!(At(3).merge(At(7)), At(3));
    }

    #[test]
    fn calendar_busy_set_bypasses_heap() {
        let mut cal = EventCalendar::new(3);
        assert_eq!(cal.next_wake(), Wake::Never);
        cal.make_busy(1);
        cal.make_busy(1); // idempotent
        assert_eq!(cal.next_wake(), Wake::Now);
        assert!(cal.is_due(1, 0));
        assert!(!cal.is_due(0, 0));
        cal.reschedule(1, Idle);
        assert_eq!(cal.next_wake(), Wake::Never);
        assert!(!cal.is_due(1, 0));
    }

    #[test]
    fn calendar_same_cycle_wakeups_are_all_due() {
        // Two components parked on the same cycle: the wake is that
        // cycle and BOTH are due when the driver processes it — ordering
        // within the cycle is the driver's fixed phase order, never heap
        // pop order.
        let mut cal = EventCalendar::new(4);
        cal.reschedule(2, At(5));
        cal.reschedule(1, At(5));
        cal.reschedule(3, At(9));
        assert_eq!(cal.next_wake(), Wake::At(5));
        assert!(cal.is_due(1, 5));
        assert!(cal.is_due(2, 5));
        assert!(!cal.is_due(3, 5));
        assert!(!cal.is_due(1, 4));
        // Both reschedule after processing; the calendar moves on.
        cal.reschedule(1, Idle);
        cal.reschedule(2, At(12));
        assert_eq!(cal.next_wake(), Wake::At(9));
    }

    #[test]
    fn calendar_stale_entries_are_lazily_deleted() {
        let mut cal = EventCalendar::new(2);
        cal.reschedule(0, At(10));
        // Processing moves the wake-up later: the @10 heap entry is now
        // stale and must not wake the driver.
        cal.reschedule(0, At(20));
        assert!(!cal.is_due(0, 10));
        assert_eq!(cal.next_wake(), Wake::At(20));
        // Going idle strands the @20 entry too.
        cal.reschedule(0, Idle);
        assert_eq!(cal.next_wake(), Wake::Never);
        // An earlier external notify resurrects scheduling cleanly.
        cal.notify_at(0, 7);
        assert_eq!(cal.next_wake(), Wake::At(7));
        // A later notify is ignored — the earlier entry stands.
        cal.notify_at(0, 9);
        assert_eq!(cal.next_wake(), Wake::At(7));
        assert!(cal.is_due(0, 7));
    }

    #[test]
    fn calendar_busy_report_round_trip() {
        let mut cal = EventCalendar::new(1);
        cal.reschedule(0, Busy);
        assert_eq!(cal.next_wake(), Wake::Now);
        // A busy component ignores external notifies (already due now).
        cal.notify_at(0, 3);
        cal.reschedule(0, At(8));
        assert_eq!(cal.next_wake(), Wake::At(8));
    }
}
