//! Next-event reporting for fast-forwarding simulation loops.
//!
//! Each fabric and memory component can report when it next has work to
//! do. A driver (the `Gpu` run loop) merges the reports: if *every*
//! component is waiting on a known future timestamp, the driver may jump
//! the clock straight to the earliest such timestamp instead of ticking
//! through dead cycles — without changing any observable behaviour,
//! because ticks in the skipped window are provably no-ops.

use gnc_common::Cycle;

/// A component's claim about when it next needs a `tick`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextEvent {
    /// The component has actionable work *this* cycle (or cannot bound
    /// when it will); the driver must keep ticking cycle-by-cycle.
    Busy,
    /// The component holds no state at all and never needs a tick until
    /// new work arrives from outside.
    Idle,
    /// The component is quiescent until this cycle: every tick strictly
    /// before it is a no-op for this component.
    At(Cycle),
}

impl NextEvent {
    /// Combines two components' reports into the fabric-wide earliest
    /// event. [`NextEvent::Busy`] dominates; [`NextEvent::Idle`] is the
    /// identity; two timestamps merge to the earlier one.
    #[must_use]
    pub fn merge(self, other: NextEvent) -> NextEvent {
        match (self, other) {
            (NextEvent::Busy, _) | (_, NextEvent::Busy) => NextEvent::Busy,
            (NextEvent::Idle, e) | (e, NextEvent::Idle) => e,
            (NextEvent::At(a), NextEvent::At(b)) => NextEvent::At(a.min(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::NextEvent::{At, Busy, Idle};

    #[test]
    fn busy_dominates() {
        assert_eq!(Busy.merge(Idle), Busy);
        assert_eq!(At(5).merge(Busy), Busy);
        assert_eq!(Busy.merge(Busy), Busy);
    }

    #[test]
    fn idle_is_identity() {
        assert_eq!(Idle.merge(Idle), Idle);
        assert_eq!(Idle.merge(At(9)), At(9));
        assert_eq!(At(9).merge(Idle), At(9));
    }

    #[test]
    fn timestamps_take_the_minimum() {
        assert_eq!(At(7).merge(At(3)), At(3));
        assert_eq!(At(3).merge(At(7)), At(3));
    }
}
