//! The assembled request and reply networks.
//!
//! The request subnet concentrates upward through the hierarchy the paper
//! reverse-engineered (Fig 1): each pair of SMs shares a TPC mux, each
//! GPC's TPCs share a GPC mux with speedup, and the GPC channels meet the
//! L2 slices over a crossbar. The reply subnet carries data back: slices
//! feed a per-GPC reply channel (the bandwidth the GPC *read* channel
//! contends for, §3.4), which fans out to per-SM ejection ports (so read
//! replies do not contend *within* a TPC, matching Fig 5(a)).
//!
//! The configured arbitration policy (§6) applies to the **TPC request
//! muxes** — the concentration point between co-located SMs that the
//! paper attacks and then defends with strict round-robin. The GPC mux,
//! crossbar, and reply subnet always use locally-fair round-robin: the
//! GPC mux has speedup (6 flit/cycle over seven 1-flit/cycle inputs), so
//! time-slicing it would cap every TPC at 6/7 of its own channel rate
//! and re-introduce a demand-dependent observable — the opposite of the
//! countermeasure's intent — while time-partitioning 48 slice ports has
//! no correspondence to the paper's per-core temporal partitioning.

use crate::arbiter::OccupancyMask;
use crate::crossbar::Crossbar;
use crate::event::NextEvent;
use crate::mux::ConcentratorMux;
use crate::packet::Packet;
use gnc_common::config::Arbitration;
use gnc_common::fault::FaultPlan;
use gnc_common::ids::{GpcId, SliceId, SmId, TpcId};
use gnc_common::telemetry::{Component, NullProbe, Probe};
use gnc_common::{Cycle, GpuConfig};
use std::sync::Arc;

/// The SM → L2 request network.
#[derive(Debug)]
pub struct RequestFabric {
    tpc_muxes: Vec<ConcentratorMux>,
    gpc_muxes: Vec<ConcentratorMux>,
    xbar: Crossbar,
    /// For each TPC: (owning GPC, input index at that GPC's mux).
    gpc_port_of_tpc: Vec<(GpcId, usize)>,
    sms_per_tpc: usize,
    /// Packets injected but not yet popped at a slice. Zero means every
    /// queue and delay line in the subnet is empty, so ticks are no-ops.
    in_flight: usize,
    /// Packets inside each TPC mux (queued + output pipeline). A zero
    /// entry proves that mux's tick, pop, and next_event are no-ops, so
    /// the hot loops skip the mux without touching it.
    tpc_busy: Vec<u32>,
    /// Bit `t` set iff `tpc_busy[t] > 0`: the per-cycle loops walk set
    /// bits in index order instead of scanning all 40 counters.
    tpc_mask: OccupancyMask,
    /// Packets inside each GPC mux (same contract as `tpc_busy`; only a
    /// handful of GPCs, so a plain counter scan stays cheap).
    gpc_busy: Vec<u32>,
}

impl RequestFabric {
    /// Wires the request network for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation invariants this fabric relies on
    /// (call [`GpuConfig::validate`] first for a graceful error).
    pub fn new(cfg: &GpuConfig) -> Self {
        let noc = &cfg.noc;
        let tpc_muxes = (0..cfg.num_tpcs())
            .map(|t| {
                let mut mux = ConcentratorMux::new(
                    cfg.sms_per_tpc,
                    noc.tpc_request_bw,
                    noc.sm_to_tpc_latency,
                    noc.input_queue_depth,
                    noc.arbitration,
                    noc,
                );
                mux.set_label(Component::tpc_mux(t));
                mux
            })
            .collect();
        let mut gpc_port_of_tpc = vec![(GpcId::new(0), 0); cfg.num_tpcs()];
        let mut gpc_muxes = Vec::with_capacity(cfg.num_gpcs);
        for g in 0..cfg.num_gpcs {
            let members = cfg.tpcs_of_gpc(GpcId::new(g));
            for (port, tpc) in members.iter().enumerate() {
                gpc_port_of_tpc[tpc.index()] = (GpcId::new(g), port);
            }
            let mut gpc_mux = ConcentratorMux::new(
                members.len().max(1),
                noc.gpc_request_bw,
                noc.tpc_to_gpc_latency,
                noc.input_queue_depth,
                Arbitration::RoundRobin,
                noc,
            );
            gpc_mux.set_label(Component::gpc_req_mux(g));
            gpc_muxes.push(gpc_mux);
        }
        let xbar = Crossbar::new(
            cfg.num_gpcs,
            cfg.mem.num_l2_slices,
            1,
            noc.gpc_to_slice_latency,
            noc.input_queue_depth,
            Arbitration::RoundRobin,
            noc,
        );
        Self {
            tpc_muxes,
            gpc_muxes,
            xbar,
            gpc_port_of_tpc,
            sms_per_tpc: cfg.sms_per_tpc,
            in_flight: 0,
            tpc_busy: vec![0; cfg.num_tpcs()],
            tpc_mask: OccupancyMask::new(cfg.num_tpcs()),
            gpc_busy: vec![0; cfg.num_gpcs],
        }
    }

    /// Attaches a fault plan to every shared mux of the request subnet.
    ///
    /// Each mux gets a distinct stable site id (TPC muxes at
    /// `0x1_0000 + t`, GPC muxes at `0x2_0000 + g`) so the plan's
    /// hashed burst schedule differs per mux but is reproducible
    /// per seed.
    pub fn set_fault_plan(&mut self, plan: &Arc<FaultPlan>) {
        for (t, mux) in self.tpc_muxes.iter_mut().enumerate() {
            mux.set_fault_plan(Arc::clone(plan), 0x1_0000 + t as u64);
        }
        for (g, mux) in self.gpc_muxes.iter_mut().enumerate() {
            mux.set_fault_plan(Arc::clone(plan), 0x2_0000 + g as u64);
        }
    }

    /// Number of SM injection ports.
    pub fn num_sm_ports(&self) -> usize {
        self.tpc_muxes.len() * self.sms_per_tpc
    }

    fn tpc_port_of_sm(&self, sm: SmId) -> (usize, usize) {
        (sm.index() / self.sms_per_tpc, sm.index() % self.sms_per_tpc)
    }

    /// Whether `sm` can inject another packet this cycle.
    pub fn can_inject(&self, sm: SmId) -> bool {
        let (tpc, port) = self.tpc_port_of_sm(sm);
        self.tpc_muxes[tpc].can_accept(port)
    }

    /// Injects a request packet from `sm`.
    ///
    /// # Errors
    ///
    /// Returns the packet when the TPC mux input is full (the SM's LSU
    /// must stall, which is itself part of the contention the channel
    /// measures).
    pub fn inject(&mut self, sm: SmId, packet: Packet) -> Result<(), Packet> {
        self.inject_probed(sm, packet, &mut NullProbe)
    }

    /// [`inject`](Self::inject) with telemetry: the TPC mux reports
    /// refused pushes and queue depth under its [`Component::tpc_mux`]
    /// label.
    ///
    /// # Errors
    ///
    /// Returns the packet when the TPC mux input is full.
    pub fn inject_probed<P: Probe>(
        &mut self,
        sm: SmId,
        packet: Packet,
        probe: &mut P,
    ) -> Result<(), Packet> {
        let (tpc, port) = self.tpc_port_of_sm(sm);
        let pushed =
            self.tpc_muxes[tpc].try_push_probed(port, packet, Component::tpc_mux(tpc), probe);
        if pushed.is_ok() {
            self.in_flight += 1;
            if self.tpc_busy[tpc] == 0 {
                self.tpc_mask.set(tpc);
            }
            self.tpc_busy[tpc] += 1;
        }
        pushed
    }

    /// Advances the whole request subnet by one cycle. Stages whose busy
    /// counter is zero are provably no-ops and are skipped untouched.
    pub fn tick(&mut self, now: Cycle) {
        self.tick_probed(now, &mut NullProbe);
    }

    /// [`tick`](Self::tick) with telemetry: every mux reports grants,
    /// forwards, queue depths, and head-of-line blocking to `probe`.
    pub fn tick_probed<P: Probe>(&mut self, now: Cycle, probe: &mut P) {
        self.xbar.tick_probed(now, probe);
        // GPC outputs → crossbar inputs.
        for g in 0..self.gpc_muxes.len() {
            if self.gpc_busy[g] == 0 {
                continue;
            }
            while let Some(head) = self.gpc_muxes[g].peek_delivered(now) {
                let out = head.slice.index();
                if !self.xbar.can_accept(g, out) {
                    // Head-of-line blocking until the queue drains: the
                    // GPC channel's delivered packet could not enter the
                    // crossbar this cycle.
                    probe.push_denied(Component::xbar_out(out), g);
                    break;
                }
                let packet = self.gpc_muxes[g]
                    .pop_delivered(now)
                    .expect("peeked packet exists");
                self.gpc_busy[g] -= 1;
                self.xbar
                    .try_push_probed(g, out, packet, probe)
                    .expect("capacity just checked");
            }
        }
        for (g, mux) in self.gpc_muxes.iter_mut().enumerate() {
            if self.gpc_busy[g] > 0 {
                mux.tick_probed(now, Component::gpc_req_mux(g), probe);
            }
        }
        // TPC outputs → GPC inputs. Walk busy TPCs only, one snapshot
        // word at a time: transfers may clear bits of visited TPCs,
        // never set new ones.
        for w in 0..self.tpc_mask.words().len() {
            let mut bits = self.tpc_mask.words()[w];
            while bits != 0 {
                let t = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let (gpc, port) = self.gpc_port_of_tpc[t];
                loop {
                    if self.tpc_muxes[t].peek_delivered(now).is_none() {
                        break;
                    }
                    if !self.gpc_muxes[gpc.index()].can_accept(port) {
                        probe.push_denied(Component::gpc_req_mux(gpc.index()), port);
                        break;
                    }
                    let packet = self.tpc_muxes[t]
                        .pop_delivered(now)
                        .expect("peeked packet exists");
                    self.tpc_busy[t] -= 1;
                    if self.tpc_busy[t] == 0 {
                        self.tpc_mask.clear(t);
                    }
                    self.gpc_muxes[gpc.index()]
                        .try_push_probed(port, packet, Component::gpc_req_mux(gpc.index()), probe)
                        .expect("capacity just checked");
                    self.gpc_busy[gpc.index()] += 1;
                }
            }
        }
        for t in self.tpc_mask.iter_set() {
            self.tpc_muxes[t].tick_probed(now, Component::tpc_mux(t), probe);
        }
    }

    /// Whether any packet is queued at or in flight toward `slice`'s
    /// crossbar output (cheap gate for the arrival-drain loop).
    pub fn has_arrivals(&self, slice: SliceId) -> bool {
        self.xbar.output_busy(slice.index())
    }

    /// Removes the next request arriving at `slice`, if ready at `now`.
    pub fn pop_at_slice(&mut self, slice: SliceId, now: Cycle) -> Option<Packet> {
        let popped = self.xbar.pop_delivered(slice.index(), now);
        if popped.is_some() {
            self.in_flight -= 1;
        }
        popped
    }

    /// Pops every request already delivered at any slice port (in slice
    /// order) into `sink`. Equivalent to a [`pop_at_slice`]
    /// (Self::pop_at_slice) sweep over all slices, but walks only busy
    /// crossbar outputs.
    pub fn drain_arrivals<F: FnMut(Packet)>(&mut self, now: Cycle, mut sink: F) {
        let mut drained = 0usize;
        self.xbar.drain_delivered(now, |p| {
            drained += 1;
            sink(p);
        });
        self.in_flight -= drained;
    }

    /// Packets injected but not yet delivered to a slice. When zero the
    /// whole subnet is empty and [`tick`](Self::tick) is a no-op.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// The earliest [`NextEvent`] across every stage of the subnet.
    /// Empty muxes report [`NextEvent::Idle`] (the merge identity), so
    /// only busy ones are consulted; [`NextEvent::Busy`] dominates the
    /// merge, so the scan stops at the first busy stage — same result,
    /// O(1) under load.
    pub fn next_event(&self) -> NextEvent {
        let mut ev = self.xbar.next_event();
        if ev == NextEvent::Busy {
            return NextEvent::Busy;
        }
        for (g, mux) in self.gpc_muxes.iter().enumerate() {
            if self.gpc_busy[g] > 0 {
                match mux.next_event() {
                    NextEvent::Busy => return NextEvent::Busy,
                    e => ev = ev.merge(e),
                }
            }
        }
        for t in self.tpc_mask.iter_set() {
            match self.tpc_muxes[t].next_event() {
                NextEvent::Busy => return NextEvent::Busy,
                e => ev = ev.merge(e),
            }
        }
        ev
    }

    /// The TPC-level mux of `tpc` (stats inspection).
    pub fn tpc_mux(&self, tpc: TpcId) -> &ConcentratorMux {
        &self.tpc_muxes[tpc.index()]
    }

    /// The GPC-level mux of `gpc` (stats inspection).
    pub fn gpc_mux(&self, gpc: GpcId) -> &ConcentratorMux {
        &self.gpc_muxes[gpc.index()]
    }

    /// True when no packet is queued or in flight anywhere in the subnet.
    ///
    /// # Panics
    ///
    /// Panics — release builds included — when the in-flight counter
    /// claims the subnet is drained but a component still holds packets.
    /// Declaring idle with packets in flight would silently truncate
    /// every result derived from the run, so the conservation check must
    /// not compile out; it is cheap because the full component scan runs
    /// only on claimed-drained evaluations, which the engine reaches a
    /// handful of times per run. (The inverse desync — a nonzero counter
    /// over empty components — wedges the run instead, which the cycle
    /// budget catches.)
    pub fn is_drained(&self) -> bool {
        if self.in_flight != 0 {
            return false;
        }
        assert!(
            self.tpc_muxes.iter().all(ConcentratorMux::is_drained)
                && self.gpc_muxes.iter().all(ConcentratorMux::is_drained)
                && self.xbar.is_drained(),
            "request-fabric in-flight counter out of sync: \
             counter claims drained but a component holds packets"
        );
        true
    }

    /// Test-only hook: zeroes the in-flight counter without touching the
    /// muxes, desynchronising counter and ground truth so the release-mode
    /// conservation check in [`is_drained`](Self::is_drained) can be
    /// exercised. Hidden from docs; never call outside tests.
    #[doc(hidden)]
    pub fn corrupt_in_flight_counter_for_test(&mut self) {
        self.in_flight = 0;
    }

    /// Restores the subnet to its just-constructed state in place: every
    /// mux resets (dropping packets and fault plans, keeping
    /// allocations), counters zero, masks clear. The config-derived
    /// wiring tables (`gpc_port_of_tpc`, `sms_per_tpc`) are retained.
    pub fn reset(&mut self) {
        for mux in &mut self.tpc_muxes {
            mux.reset();
        }
        for mux in &mut self.gpc_muxes {
            mux.reset();
        }
        self.xbar.reset();
        self.in_flight = 0;
        self.tpc_busy.fill(0);
        self.tpc_mask.clear_all();
        self.gpc_busy.fill(0);
    }
}

/// The L2 → SM reply network.
#[derive(Debug)]
pub struct ReplyFabric {
    /// One reply channel per GPC, fed by all L2 slices.
    gpc_muxes: Vec<ConcentratorMux>,
    /// Per-SM fan-out buffers between the GPC channel and the ejection
    /// ports. The GPC reply channel demultiplexes per destination SM, so
    /// a backed-up ejector must not head-of-line-block replies bound for
    /// *other* SMs — otherwise SMs that share nothing but the GPC would
    /// falsely contend (violating Fig 5's flat-to-3-TPCs read curve).
    sm_staging: Vec<std::collections::VecDeque<Packet>>,
    /// Per-SM ejection ports.
    sm_ejectors: Vec<ConcentratorMux>,
    /// Ground-truth GPC of each SM (reply routing).
    gpc_of_sm: Vec<GpcId>,
    /// Replies injected but not yet popped at an SM. Zero means the
    /// whole subnet is empty, so ticks are no-ops.
    in_flight: usize,
    /// Replies inside each GPC reply mux (queued + output pipeline). A
    /// zero entry proves that mux's tick, pop, and next_event are
    /// no-ops, so the hot loops skip the mux without touching it.
    gpc_busy: Vec<u32>,
    /// Replies inside each SM's staging buffer + ejection port (same
    /// contract as `gpc_busy`).
    sm_busy: Vec<u32>,
    /// Bit `s` set iff `sm_busy[s] > 0`: the per-cycle loops walk set
    /// bits in index order instead of scanning all 80 counters twice.
    sm_mask: OccupancyMask,
}

impl ReplyFabric {
    /// Wires the reply network for `cfg`.
    pub fn new(cfg: &GpuConfig) -> Self {
        let noc = &cfg.noc;
        let gpc_muxes = (0..cfg.num_gpcs)
            .map(|g| {
                let mut mux = ConcentratorMux::new(
                    cfg.mem.num_l2_slices,
                    noc.gpc_reply_bw,
                    noc.gpc_to_slice_latency,
                    noc.input_queue_depth,
                    Arbitration::RoundRobin,
                    noc,
                );
                mux.set_label(Component::gpc_reply_mux(g));
                mux
            })
            .collect();
        let sm_ejectors = (0..cfg.num_sms())
            .map(|s| {
                let mut mux = ConcentratorMux::new(
                    1,
                    noc.sm_reply_bw,
                    noc.tpc_to_gpc_latency + noc.sm_to_tpc_latency,
                    noc.input_queue_depth,
                    Arbitration::RoundRobin,
                    noc,
                );
                mux.set_label(Component::sm_ejector(s));
                mux
            })
            .collect();
        let gpc_of_sm = (0..cfg.num_sms())
            .map(|s| cfg.gpc_of_sm(SmId::new(s)))
            .collect();
        Self {
            gpc_muxes,
            sm_staging: (0..cfg.num_sms())
                .map(|_| std::collections::VecDeque::new())
                .collect(),
            sm_ejectors,
            gpc_of_sm,
            in_flight: 0,
            gpc_busy: vec![0; cfg.num_gpcs],
            sm_busy: vec![0; cfg.num_sms()],
            sm_mask: OccupancyMask::new(cfg.num_sms()),
        }
    }

    /// Attaches a fault plan to the shared reply channels (GPC reply
    /// muxes at site `0x3_0000 + g`, SM ejection ports at
    /// `0x4_0000 + s`).
    pub fn set_fault_plan(&mut self, plan: &Arc<FaultPlan>) {
        for (g, mux) in self.gpc_muxes.iter_mut().enumerate() {
            mux.set_fault_plan(Arc::clone(plan), 0x3_0000 + g as u64);
        }
        for (s, ej) in self.sm_ejectors.iter_mut().enumerate() {
            ej.set_fault_plan(Arc::clone(plan), 0x4_0000 + s as u64);
        }
    }

    /// Whether `slice` can inject a reply destined for `sm`'s GPC.
    pub fn can_inject(&self, slice: SliceId, sm: SmId) -> bool {
        self.gpc_muxes[self.gpc_of_sm[sm.index()].index()].can_accept(slice.index())
    }

    /// Injects a reply packet at `slice`.
    ///
    /// # Errors
    ///
    /// Returns the packet when the GPC reply channel input is full; the
    /// slice holds the reply and retries (backpressure into L2).
    pub fn inject_at_slice(&mut self, slice: SliceId, packet: Packet) -> Result<(), Packet> {
        self.inject_at_slice_probed(slice, packet, &mut NullProbe)
    }

    /// [`inject_at_slice`](Self::inject_at_slice) with telemetry: the
    /// GPC reply channel reports refused pushes and queue depth under
    /// its [`Component::gpc_reply_mux`] label.
    ///
    /// # Errors
    ///
    /// Returns the packet when the GPC reply channel input is full.
    pub fn inject_at_slice_probed<P: Probe>(
        &mut self,
        slice: SliceId,
        packet: Packet,
        probe: &mut P,
    ) -> Result<(), Packet> {
        let gpc = self.gpc_of_sm[packet.sm.index()];
        let pushed = self.gpc_muxes[gpc.index()].try_push_probed(
            slice.index(),
            packet,
            Component::gpc_reply_mux(gpc.index()),
            probe,
        );
        if pushed.is_ok() {
            self.in_flight += 1;
            self.gpc_busy[gpc.index()] += 1;
        }
        pushed
    }

    /// Advances the reply subnet by one cycle. Stages whose busy counter
    /// is zero are provably no-ops and are skipped untouched.
    pub fn tick(&mut self, now: Cycle) {
        self.tick_probed(now, &mut NullProbe);
    }

    /// [`tick`](Self::tick) with telemetry: the GPC reply channels and
    /// SM ejection ports report grants, forwards, and queue depths.
    pub fn tick_probed<P: Probe>(&mut self, now: Cycle, probe: &mut P) {
        for sm in self.sm_mask.iter_set() {
            self.sm_ejectors[sm].tick_probed(now, Component::sm_ejector(sm), probe);
        }
        // GPC reply channel → per-SM staging (fan-out, no HOL blocking).
        // The batched drain delivers the same FIFO sequence as repeated
        // pops, retiring the mux's arena slots in one batch.
        let sm_staging = &mut self.sm_staging;
        let sm_busy = &mut self.sm_busy;
        let sm_mask = &mut self.sm_mask;
        for (g, mux) in self.gpc_muxes.iter_mut().enumerate() {
            if self.gpc_busy[g] == 0 {
                continue;
            }
            let drained = mux.drain_delivered(now, |packet| {
                let sm = packet.sm.index();
                if sm_busy[sm] == 0 {
                    sm_mask.set(sm);
                }
                sm_busy[sm] += 1;
                sm_staging[sm].push_back(packet);
            });
            self.gpc_busy[g] -= u32::try_from(drained).expect("queue depths fit u32");
        }
        // Staging → ejection ports, per busy SM (a set bit with an empty
        // staging buffer just means the reply already sits in the
        // ejector; the `front()` probe skips it at one load).
        for sm in self.sm_mask.iter_set() {
            while let Some(head) = self.sm_staging[sm].front() {
                if !self.sm_ejectors[sm].can_accept(0) {
                    probe.push_denied(Component::sm_ejector(sm), 0);
                    break;
                }
                let _ = head;
                let packet = self.sm_staging[sm].pop_front().expect("front exists");
                self.sm_ejectors[sm]
                    .try_push_probed(0, packet, Component::sm_ejector(sm), probe)
                    .expect("capacity just checked");
            }
        }
        for (g, mux) in self.gpc_muxes.iter_mut().enumerate() {
            if self.gpc_busy[g] > 0 {
                mux.tick_probed(now, Component::gpc_reply_mux(g), probe);
            }
        }
    }

    /// Removes the next reply arriving at `sm`, if ready at `now`.
    pub fn pop_at_sm(&mut self, sm: SmId, now: Cycle) -> Option<Packet> {
        if self.sm_busy[sm.index()] == 0 {
            return None;
        }
        let popped = self.sm_ejectors[sm.index()].pop_delivered(now);
        if popped.is_some() {
            self.in_flight -= 1;
            self.sm_busy[sm.index()] -= 1;
            if self.sm_busy[sm.index()] == 0 {
                self.sm_mask.clear(sm.index());
            }
        }
        popped
    }

    /// Pops every reply already delivered at any ejection port (in SM
    /// order) into `sink`. Equivalent to a [`pop_at_sm`](Self::pop_at_sm)
    /// sweep over every SM with replies in flight, but walks only busy
    /// ones. Replies only target SMs whose requesting blocks are still
    /// resident, so the busy set is a subset of any active-SM sweep.
    pub fn deliver_ready<F: FnMut(usize, Packet)>(&mut self, now: Cycle, mut sink: F) {
        for w in 0..self.sm_mask.words().len() {
            // Snapshot one word: pops may clear bits of already-visited
            // SMs, never set new ones.
            let mut bits = self.sm_mask.words()[w];
            while bits != 0 {
                let sm = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                while let Some(p) = self.pop_at_sm(SmId::new(sm), now) {
                    sink(sm, p);
                }
            }
        }
    }

    /// Replies injected but not yet delivered to an SM. When zero the
    /// whole subnet is empty and [`tick`](Self::tick) is a no-op.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// The earliest [`NextEvent`] across every stage of the subnet.
    /// Empty stages report [`NextEvent::Idle`] (the merge identity), so
    /// only busy ones are consulted.
    pub fn next_event(&self) -> NextEvent {
        let mut ev = NextEvent::Idle;
        for (g, mux) in self.gpc_muxes.iter().enumerate() {
            if self.gpc_busy[g] > 0 {
                match mux.next_event() {
                    NextEvent::Busy => return NextEvent::Busy,
                    e => ev = ev.merge(e),
                }
            }
        }
        for sm in self.sm_mask.iter_set() {
            if !self.sm_staging[sm].is_empty() {
                return NextEvent::Busy;
            }
            match self.sm_ejectors[sm].next_event() {
                NextEvent::Busy => return NextEvent::Busy,
                e => ev = ev.merge(e),
            }
        }
        ev
    }

    /// The reply channel of `gpc` (stats inspection).
    pub fn gpc_mux(&self, gpc: GpcId) -> &ConcentratorMux {
        &self.gpc_muxes[gpc.index()]
    }

    /// True when nothing is queued or in flight anywhere in the subnet.
    ///
    /// # Panics
    ///
    /// Panics — release builds included — when the in-flight counter
    /// claims the subnet is drained but a component still holds replies
    /// (same always-on conservation contract as
    /// [`RequestFabric::is_drained`]).
    pub fn is_drained(&self) -> bool {
        if self.in_flight != 0 {
            return false;
        }
        assert!(
            self.gpc_muxes.iter().all(ConcentratorMux::is_drained)
                && self
                    .sm_staging
                    .iter()
                    .all(std::collections::VecDeque::is_empty)
                && self.sm_ejectors.iter().all(ConcentratorMux::is_drained),
            "reply-fabric in-flight counter out of sync: \
             counter claims drained but a component holds replies"
        );
        true
    }

    /// Test-only hook: zeroes the in-flight counter without touching the
    /// muxes (see [`RequestFabric::corrupt_in_flight_counter_for_test`]).
    #[doc(hidden)]
    pub fn corrupt_in_flight_counter_for_test(&mut self) {
        self.in_flight = 0;
    }

    /// Restores the subnet to its just-constructed state in place (same
    /// contract as [`RequestFabric::reset`]); the `gpc_of_sm` routing
    /// table is config-derived and retained.
    pub fn reset(&mut self) {
        for mux in &mut self.gpc_muxes {
            mux.reset();
        }
        for staging in &mut self.sm_staging {
            staging.clear();
        }
        for ejector in &mut self.sm_ejectors {
            ejector.reset();
        }
        self.in_flight = 0;
        self.gpc_busy.fill(0);
        self.sm_busy.fill(0);
        self.sm_mask.clear_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketId, PacketKind};
    use gnc_common::ids::WarpId;

    fn cfg() -> GpuConfig {
        GpuConfig::volta_v100()
    }

    fn req(id: u64, sm: usize, slice: usize, kind: PacketKind, now: Cycle) -> Packet {
        Packet {
            id: PacketId(id),
            kind,
            sm: SmId::new(sm),
            warp: WarpId::new(0),
            slice: SliceId::new(slice),
            addr: id * 128,
            data_bytes: 128,
            injected_at: now,
            group: id,
        }
    }

    /// Runs the fabric until the packet with `id` pops at `slice`,
    /// returning the arrival cycle.
    fn run_until_arrival(
        fabric: &mut RequestFabric,
        slice: SliceId,
        id: PacketId,
        limit: Cycle,
    ) -> Cycle {
        for now in 0..limit {
            fabric.tick(now);
            while let Some(p) = fabric.pop_at_slice(slice, now) {
                if p.id == id {
                    return now;
                }
            }
        }
        panic!("packet {id} never arrived within {limit} cycles");
    }

    #[test]
    fn request_traverses_all_three_stages() {
        let cfg = cfg();
        let mut fabric = RequestFabric::new(&cfg);
        fabric
            .inject(SmId::new(0), req(1, 0, 7, PacketKind::ReadRequest, 0))
            .unwrap();
        let arrival = run_until_arrival(&mut fabric, SliceId::new(7), PacketId(1), 200);
        // Pipeline latencies 2 + 5 + 15 plus one serialization cycle per
        // stage: arrival in the low tens of cycles.
        assert!((20..60).contains(&arrival), "arrival at {arrival}");
        assert!(fabric.is_drained());
    }

    #[test]
    fn sibling_sms_share_a_tpc_mux() {
        let cfg = cfg();
        let fabric = RequestFabric::new(&cfg);
        assert_eq!(fabric.num_sm_ports(), 80);
        assert_eq!(fabric.tpc_port_of_sm(SmId::new(0)), (0, 0));
        assert_eq!(fabric.tpc_port_of_sm(SmId::new(1)), (0, 1));
        assert_eq!(fabric.tpc_port_of_sm(SmId::new(12)), (6, 0));
    }

    #[test]
    fn reply_reaches_the_issuing_sm() {
        let cfg = cfg();
        let mut fabric = ReplyFabric::new(&cfg);
        let reply = req(9, 5, 3, PacketKind::ReadReply, 0);
        fabric.inject_at_slice(SliceId::new(3), reply).unwrap();
        let mut arrived = None;
        for now in 0..200 {
            fabric.tick(now);
            if let Some(p) = fabric.pop_at_sm(SmId::new(5), now) {
                arrived = Some((now, p));
                break;
            }
        }
        let (when, p) = arrived.expect("reply must arrive");
        assert_eq!(p.id, PacketId(9));
        assert!(when < 60, "reply took {when} cycles");
        assert!(fabric.is_drained());
    }

    #[test]
    fn replies_route_by_destination_sm_not_slice() {
        let cfg = cfg();
        let mut fabric = ReplyFabric::new(&cfg);
        // Same slice, two SMs in different GPCs.
        fabric
            .inject_at_slice(SliceId::new(0), req(1, 0, 0, PacketKind::WriteAck, 0))
            .unwrap();
        fabric
            .inject_at_slice(SliceId::new(0), req(2, 2, 0, PacketKind::WriteAck, 0))
            .unwrap();
        let mut got = Vec::new();
        for now in 0..200 {
            fabric.tick(now);
            if let Some(p) = fabric.pop_at_sm(SmId::new(0), now) {
                got.push((p.id, 0));
            }
            if let Some(p) = fabric.pop_at_sm(SmId::new(2), now) {
                got.push((p.id, 2));
            }
        }
        got.sort();
        assert_eq!(got, vec![(PacketId(1), 0), (PacketId(2), 2)]);
    }

    #[test]
    fn fabric_honours_config_tpc_gpc_wiring() {
        let cfg = cfg();
        let fabric = RequestFabric::new(&cfg);
        // TPC39 lives in GPC5 per the ground truth; its port index is 5
        // (sixth member of the GPC after 5, 11, 17, 23, 29).
        assert_eq!(fabric.gpc_port_of_tpc[39], (GpcId::new(5), 5));
        assert_eq!(fabric.gpc_port_of_tpc[0], (GpcId::new(0), 0));
        assert_eq!(fabric.gpc_port_of_tpc[6], (GpcId::new(0), 1));
    }

    #[test]
    fn read_requests_do_not_saturate_the_tpc_channel() {
        // Reads are single-flit requests: two sibling SMs issuing reads
        // at LSU rate leave the 1 flit/cycle TPC channel unsaturated
        // relative to write traffic — the §3.4 asymmetry at fabric level.
        let cfg = cfg();
        let throughput = |kind: PacketKind, data: u32| -> u64 {
            let mut fabric = RequestFabric::new(&cfg);
            let mut delivered = 0u64;
            let mut next_id = 0u64;
            for now in 0..2000u64 {
                for sm in [0usize, 1] {
                    let slice = (next_id % 48) as usize;
                    let mut p = req(next_id, sm, slice, kind, now);
                    p.data_bytes = data;
                    if fabric.inject(SmId::new(sm), p).is_ok() {
                        next_id += 1;
                    }
                }
                fabric.tick(now);
                for s in 0..48 {
                    while fabric.pop_at_slice(SliceId::new(s), now).is_some() {
                        delivered += 1;
                    }
                }
            }
            delivered
        };
        let reads = throughput(PacketKind::ReadRequest, 4);
        let writes = throughput(PacketKind::WriteRequest, 4);
        // 1-flit reads move ~2x as many packets as 2-flit writes through
        // the same channel.
        assert!(
            reads as f64 > writes as f64 * 1.7,
            "reads {reads} vs writes {writes}"
        );
    }

    #[test]
    fn reply_fabric_has_no_head_of_line_coupling() {
        // SM0's ejector is deliberately left undrained; replies bound for
        // SM2 (same GPC) must keep flowing — per-SM staging prevents
        // head-of-line blocking (the Fig 5a flat-read guarantee).
        let cfg = cfg();
        let mut fabric = ReplyFabric::new(&cfg);
        let mut next_id = 0u64;
        let mut sm2_got = 0u64;
        for now in 0..600u64 {
            for sm in [0usize, 2] {
                let slice = (next_id % 48) as usize;
                let mut p = req(next_id, sm, slice, PacketKind::ReadReply, now);
                p.data_bytes = 4;
                if fabric.inject_at_slice(SliceId::new(slice), p).is_ok() {
                    next_id += 1;
                }
            }
            fabric.tick(now);
            // Never pop SM0; always pop SM2.
            while fabric.pop_at_sm(SmId::new(2), now).is_some() {
                sm2_got += 1;
            }
        }
        // SM2 drains at its ejector rate (~0.5 pkt/cycle for 2-flit
        // replies) despite SM0's stall.
        assert!(sm2_got > 200, "SM2 only received {sm2_got} replies");
    }

    #[test]
    fn concurrent_writes_from_siblings_halve_throughput() {
        // End-to-end Fig 2 mechanism at fabric level: saturating writers
        // on SM0+SM1 (same TPC) vs SM0+SM12 (different TPC and GPC).
        let cfg = cfg();
        let throughput = |other_sm: usize| -> u64 {
            let mut fabric = RequestFabric::new(&cfg);
            let mut delivered = 0u64;
            let mut next_id = 0u64;
            for now in 0..3000u64 {
                for sm in [0usize, other_sm] {
                    // Spray across slices like the paper's benchmark.
                    let slice = (next_id % 48) as usize;
                    let p = req(next_id, sm, slice, PacketKind::WriteRequest, now);
                    if fabric.inject(SmId::new(sm), p).is_ok() {
                        next_id += 1;
                    }
                }
                fabric.tick(now);
                for s in 0..48 {
                    while let Some(p) = fabric.pop_at_slice(SliceId::new(s), now) {
                        if p.sm == SmId::new(0) {
                            delivered += 1;
                        }
                    }
                }
            }
            delivered
        };
        let shared = throughput(1);
        let isolated = throughput(12);
        let ratio = isolated as f64 / shared as f64;
        assert!(
            (1.8..2.2).contains(&ratio),
            "expected ~2x TPC-sharing penalty, got {ratio:.2} ({shared} vs {isolated})"
        );
    }
}
