//! Hierarchical GPU on-chip network model.
//!
//! This crate implements the interconnect whose bandwidth sharing the
//! paper exploits (§2.3, §3): SM pairs concentrate into a TPC channel
//! through a 2:1 mux, TPC channels concentrate into a GPC channel with
//! speedup, GPC channels meet the 48 L2 slices over a crossbar, and a
//! separate reply subnet carries data back to per-SM ejection ports.
//!
//! The building blocks are deliberately small and composable:
//!
//! * [`packet`] — request/reply packets with flit sizes from the
//!   configured [`gnc_common::config::NocConfig`].
//! * [`arbiter`] — the four arbitration policies studied in §6
//!   (round-robin, coarse-grain RR, strict RR, age-based).
//! * [`delay`] — constant-latency FIFO delay lines (channel pipelines).
//! * [`mux`] — the concentrating mux: N bounded input FIFOs, one output
//!   channel of B flits/cycle, a pluggable arbiter, and flow control.
//! * [`crossbar`] — an input-queued crossbar built from per-output muxes.
//! * [`fabric`] — the full request and reply networks wired per
//!   [`gnc_common::GpuConfig`].
//!
//! # Example
//!
//! ```
//! use gnc_common::GpuConfig;
//! use gnc_noc::fabric::RequestFabric;
//!
//! let cfg = GpuConfig::volta_v100();
//! let fabric = RequestFabric::new(&cfg);
//! assert_eq!(fabric.num_sm_ports(), 80);
//! ```

pub mod arbiter;
mod arena;
pub mod crossbar;
pub mod delay;
pub mod event;
pub mod fabric;
pub mod mux;
pub mod packet;
mod ring;

pub use arbiter::{ArbHead, Arbiter, OccupancyMask};
pub use event::NextEvent;
pub use fabric::{ReplyFabric, RequestFabric};
pub use mux::ConcentratorMux;
pub use packet::{Packet, PacketId, PacketKind};
