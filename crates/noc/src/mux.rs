//! The concentrating mux — the shared resource at the heart of the paper.
//!
//! A [`ConcentratorMux`] joins N bounded input FIFOs onto one output
//! channel of B flits/cycle through an arbitration policy, then delays
//! completed packets by the channel pipeline latency. Instances of this
//! one component model the 2:1 SM→TPC mux, the 7:1 TPC→GPC mux with
//! speedup, each crossbar output, the GPC reply channel, and the per-SM
//! ejection port (Figure 1 of the paper).

use crate::arbiter::{InlineArbiter, OccupancyMask};
use crate::arena::PacketArena;
use crate::delay::DelayLine;
use crate::event::NextEvent;
use crate::packet::Packet;
use crate::ring::InputQueues;
use gnc_common::config::{Arbitration, NocConfig};
use gnc_common::fault::FaultPlan;
use gnc_common::telemetry::{Component, NullProbe, Probe};
use gnc_common::Cycle;
use std::sync::Arc;

/// An N-input, single-output concentrating mux with bounded input queues,
/// per-flit arbitration, and an output pipeline delay.
///
/// # Flow control
///
/// [`try_push`](Self::try_push) refuses packets when the target input
/// queue is at capacity, returning the packet to the caller; upstream
/// stages keep it queued, which yields credit-based backpressure through
/// the whole fabric.
///
/// # Internal layout
///
/// Packets live in a slab arena for their entire residence; the input
/// queues and the output delay line carry 4-byte slot ids. Arbitration
/// state is structure-of-arrays: an occupancy bitmask plus per-input
/// head columns (remaining flits, age, group), so the per-flit grant
/// loop is bit scans over a few small arrays and never touches packet
/// memory. Externally nothing changed: packets go in and come out by
/// value, and grant decisions are bit-identical to the boxed
/// [`Arbiter`](crate::arbiter::Arbiter) implementations.
///
/// # Example
///
/// ```
/// use gnc_common::config::{Arbitration, NocConfig};
/// use gnc_noc::mux::ConcentratorMux;
///
/// let noc = NocConfig::default();
/// let mux = ConcentratorMux::new(2, 1, 0, 8, Arbitration::RoundRobin, &noc);
/// assert_eq!(mux.num_inputs(), 2);
/// assert!(mux.can_accept(0));
/// ```
#[derive(Debug)]
pub struct ConcentratorMux {
    /// Per-input FIFOs of arena slot ids, flattened into one ring slab.
    inputs: InputQueues,
    bandwidth: u32,
    arbiter: InlineArbiter,
    /// Packet storage for everything queued or in the output pipeline.
    arena: PacketArena,
    /// Which inputs have a head flit ready to arbitrate.
    occ: OccupancyMask,
    /// Flits left to transmit for each input's head packet. Only indices
    /// whose occupancy bit is set are meaningful.
    head_remaining: Vec<u32>,
    /// Injection age of each input's head packet (age-based policy).
    head_age: Vec<Cycle>,
    /// Arbitration group of each input's head packet (CRR policy).
    head_group: Vec<u64>,
    output: DelayLine<u32>,
    noc: NocConfig,
    granted_flits: Vec<u64>,
    /// Reusable slot-id buffer for [`drain_delivered`]
    /// (Self::drain_delivered): delivered slots are collected here, then
    /// retired through the arena in one batch. Always empty between
    /// calls.
    retire_scratch: Vec<u32>,
    forwarded_packets: u64,
    /// Total packets across all input queues (fast idle check).
    queued: usize,
    /// Optional fault injection: background-traffic bursts at this mux
    /// steal output flit slots. The `u64` is this mux's stable site id
    /// within the fault plan's hash space.
    fault: Option<(Arc<FaultPlan>, u64)>,
    /// Telemetry label reported by the unprobed [`try_push`]
    /// (Self::try_push) / [`tick`](Self::tick) wrappers; the fabric sets
    /// it to the slot this mux fills (see [`set_label`](Self::set_label)).
    label: Component,
    /// Whether the active policy reads the head age/group columns.
    /// Coarse-RR and age-based arbitration do; plain and strict RR never
    /// look at them, so head refreshes skip loading the packet struct.
    head_meta: bool,
    /// Cached flit-slot steal for the current fault burst window, valid
    /// for cycles `< burst_until`. `burst_until == 0` forces a re-probe.
    burst_value: u32,
    burst_until: Cycle,
    /// Cross-cycle grant run: for cycles `< run_until`, input
    /// `run_winner` is the lone occupant and wins `run_budget` flit
    /// slots per cycle without re-arbitrating or re-probing the fault
    /// plan. `run_until == 0` means no active run; any occupancy or
    /// fault-window change clears it.
    run_winner: usize,
    run_budget: u32,
    run_until: Cycle,
}

impl ConcentratorMux {
    /// Creates a mux.
    ///
    /// * `n_inputs` — number of input ports.
    /// * `bandwidth` — output channel bandwidth in flits per cycle.
    /// * `latency` — pipeline latency in cycles between a packet's last
    ///   flit crossing the mux and the packet appearing at the output.
    /// * `depth` — per-input queue capacity in packets.
    /// * `policy` — arbitration policy (§6).
    ///
    /// # Panics
    ///
    /// Panics if `n_inputs`, `bandwidth`, or `depth` is zero.
    pub fn new(
        n_inputs: usize,
        bandwidth: u32,
        latency: u32,
        depth: usize,
        policy: Arbitration,
        noc: &NocConfig,
    ) -> Self {
        assert!(n_inputs > 0, "mux needs at least one input");
        assert!(bandwidth > 0, "mux needs nonzero bandwidth");
        assert!(depth > 0, "mux needs nonzero queue depth");
        Self {
            inputs: InputQueues::new(n_inputs, depth),
            bandwidth,
            arbiter: InlineArbiter::new(policy),
            arena: PacketArena::new(),
            occ: OccupancyMask::new(n_inputs),
            head_remaining: vec![0; n_inputs],
            head_age: vec![0; n_inputs],
            head_group: vec![0; n_inputs],
            output: DelayLine::new(latency),
            noc: noc.clone(),
            granted_flits: vec![0; n_inputs],
            retire_scratch: Vec::new(),
            forwarded_packets: 0,
            queued: 0,
            fault: None,
            label: Component::tpc_mux(0),
            head_meta: matches!(
                policy,
                Arbitration::CoarseRoundRobin | Arbitration::AgeBased
            ),
            burst_value: 0,
            burst_until: 0,
            run_winner: 0,
            run_budget: 0,
            run_until: 0,
        }
    }

    /// Sets the component label the unprobed [`try_push`](Self::try_push)
    /// and [`tick`](Self::tick) wrappers report telemetry under. The
    /// fabric calls this once per mux at construction so probe events can
    /// never misattribute a GPC mux or crossbar output to `tpc_mux(0)`.
    pub fn set_label(&mut self, label: Component) {
        self.label = label;
    }

    /// Refreshes the SoA head columns of `input` from the packet in
    /// `slot`, which just became the queue head. The age/group columns
    /// are only maintained for policies that read them (coarse-RR,
    /// age-based); under plain/strict RR they go stale and are never
    /// consulted.
    #[inline]
    fn set_head(&mut self, input: usize, slot: u32) {
        self.occ.set(input);
        self.head_remaining[input] = self.arena.flits(slot);
        if self.head_meta {
            let packet = self.arena.get(slot);
            self.head_age[input] = packet.injected_at;
            self.head_group[input] = packet.group;
        }
    }

    /// Attaches a fault plan; background-traffic bursts decided by the
    /// plan for `site` will steal output flit slots from this mux.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>, site: u64) {
        self.fault = Some((plan, site));
        self.burst_value = 0;
        self.burst_until = 0;
        self.run_until = 0;
    }

    /// Number of input ports.
    pub fn num_inputs(&self) -> usize {
        self.inputs.num_queues()
    }

    /// Output bandwidth in flits per cycle.
    pub fn bandwidth(&self) -> u32 {
        self.bandwidth
    }

    /// Whether input `input` has room for another packet.
    #[inline]
    pub fn can_accept(&self, input: usize) -> bool {
        self.inputs.can_accept(input)
    }

    /// Queues `packet` at `input`.
    ///
    /// # Errors
    ///
    /// Returns the packet back when the input queue is full; the caller
    /// must retry on a later cycle (backpressure).
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    #[inline]
    pub fn try_push(&mut self, input: usize, packet: Packet) -> Result<(), Packet> {
        let label = self.label;
        self.try_push_probed(input, packet, label, &mut NullProbe)
    }

    /// [`try_push`](Self::try_push) with telemetry: reports the refused
    /// push or the new queue depth to `probe` under the caller-supplied
    /// `comp` label (the mux doesn't know which fabric slot it fills).
    ///
    /// # Errors
    ///
    /// Returns the packet back when the input queue is full.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    #[inline]
    pub fn try_push_probed<P: Probe>(
        &mut self,
        input: usize,
        packet: Packet,
        comp: Component,
        probe: &mut P,
    ) -> Result<(), Packet> {
        if !self.can_accept(input) {
            probe.push_denied(comp, input);
            return Err(packet);
        }
        let flits = packet.flits(&self.noc).max(1);
        if self.inputs.is_empty(input) {
            // The packet becomes the queue head; fill the SoA head
            // columns from the value in hand rather than reloading it
            // from the arena.
            self.occ.set(input);
            self.head_remaining[input] = flits;
            if self.head_meta {
                self.head_age[input] = packet.injected_at;
                self.head_group[input] = packet.group;
            }
            // Occupancy changed: a cross-cycle grant run assumed its
            // winner was the lone occupant, so it must re-arbitrate.
            // (A push onto an already-occupied queue can't change any
            // grant decision — arbitration only sees queue heads.)
            self.run_until = 0;
        }
        let slot = self.arena.insert(packet, flits);
        self.inputs.push_back(input, slot);
        self.queued += 1;
        probe.queue_depth(comp, input, self.inputs.len(input));
        Ok(())
    }

    /// Advances the mux by one cycle: arbitrates up to `bandwidth` flit
    /// slots and moves fully transmitted packets into the output pipeline.
    ///
    /// When a fault plan is attached, background-traffic bursts occupy
    /// some (or all) of this cycle's flit slots before the queued
    /// traffic gets to arbitrate — exactly the contention a co-tenant
    /// kernel sharing the mux would create.
    #[inline]
    pub fn tick(&mut self, now: Cycle) {
        let label = self.label;
        self.tick_probed(now, label, &mut NullProbe);
    }

    /// [`tick`](Self::tick) with telemetry: reports each granted flit
    /// slot and each fully forwarded packet to `probe` under the
    /// caller-supplied `comp` label. With [`NullProbe`] this
    /// monomorphises to exactly the probe-free tick.
    ///
    /// Internally this is the batched grant engine: within a cycle,
    /// [`InlineArbiter::grant_run`] grants whole runs of consecutive flit
    /// slots in closed form instead of re-arbitrating per slot; across
    /// cycles, a stable lone-occupant mux replays a validated run
    /// ([`run_tick`](Self::run_tick)) without touching the arbiter's scan
    /// or the fault plan's hash. Grant decisions, probe event sequences,
    /// and fault statistics are bit-identical to the per-flit loop —
    /// the decision is batched, the events are replayed per flit.
    #[inline]
    pub fn tick_probed<P: Probe>(&mut self, now: Cycle, comp: Component, probe: &mut P) {
        if self.queued == 0 {
            return;
        }
        if now < self.run_until {
            self.run_tick(now, comp, probe);
        } else {
            self.tick_full(now, comp, probe);
        }
    }

    /// The general per-cycle path: probes the fault plan (through the
    /// per-window cache), then grants this cycle's flit slots in closed-
    /// form runs. Afterwards, tries to arm a cross-cycle run for the
    /// cycles ahead.
    fn tick_full<P: Probe>(&mut self, now: Cycle, comp: Component, probe: &mut P) {
        let budget = self.bandwidth.saturating_sub(self.burst_steal(now));
        if budget == 0 {
            return;
        }
        // Hoisted out of the grant loop: slots within the cycle are
        // `slot_base + used`, no per-slot multiply.
        let slot_base = now * u64::from(self.bandwidth);
        let mut used = 0u32;
        let mut last_winner = usize::MAX;
        while used < budget {
            if self.queued == 0 {
                // No arbiter can grant an idle mux; strict RR would waste
                // the remaining slots anyway.
                break;
            }
            let Some(run) = self.arbiter.grant_run(
                slot_base + u64::from(used),
                budget - used,
                &self.occ,
                &self.head_remaining,
                &self.head_age,
                &self.head_group,
            ) else {
                // Nothing grantable in the remaining slots (strict RR
                // wasting the tail of the cycle).
                break;
            };
            let winner = run.winner;
            last_winner = winner;
            self.head_remaining[winner] -= run.flits;
            self.granted_flits[winner] += u64::from(run.flits);
            if P::ENABLED {
                for _ in 0..run.flits {
                    probe.flit_granted(now, comp, winner);
                }
            }
            used += run.slots;
            if self.head_remaining[winner] == 0 {
                self.complete_head(winner, now, comp, probe);
            }
        }
        // O(1) lone-occupant gate: an input's occupancy bit is set iff
        // its queue is non-empty, so a lone set bit means the last
        // winner holds every queued packet. Only then is the (rarely
        // taken) run-arming worth entering.
        if last_winner != usize::MAX && self.occ.is_lone(last_winner) {
            self.maybe_start_run(now, last_winner);
        }
    }

    /// Replays a validated cross-cycle run for one cycle: the winner is
    /// known to be the lone occupant and the burst steal constant, so
    /// this grants `run_budget` flits with no arbiter scan, no occupancy
    /// scan, and no fault-plan hash. The arbiter's pointer state is
    /// normalised lazily per granted head via
    /// [`InlineArbiter::note_uncontested_grant`], exactly mirroring what
    /// the per-flit loop would have done — so invalidating the run at any
    /// cycle boundary leaves state the per-flit loop could have produced.
    fn run_tick<P: Probe>(&mut self, now: Cycle, comp: Component, probe: &mut P) {
        if self.burst_value > 0 {
            if let Some((plan, _)) = &self.fault {
                // Keep `FaultStats` identical to probing the plan every
                // busy cycle of the (already decided) burst window.
                plan.note_burst_cycle();
            }
        }
        let winner = self.run_winner;
        let n = self.inputs.num_queues();
        let mut avail = self.run_budget;
        loop {
            // Invariants: `avail >= 1` and the winner's occupancy bit is
            // set, so `head_remaining[winner] >= 1`.
            let take = avail.min(self.head_remaining[winner]);
            // The per-flit loop rescans on the first granted flit of each
            // head; replay that transition (idempotent within a head).
            self.arbiter
                .note_uncontested_grant(winner, self.head_group[winner], n);
            self.head_remaining[winner] -= take;
            self.granted_flits[winner] += u64::from(take);
            if P::ENABLED {
                for _ in 0..take {
                    probe.flit_granted(now, comp, winner);
                }
            }
            avail -= take;
            if self.head_remaining[winner] == 0 {
                self.complete_head(winner, now, comp, probe);
                if !self.occ.get(winner) {
                    // Queue drained: the run is over.
                    self.run_until = 0;
                    break;
                }
            }
            if avail == 0 {
                break;
            }
        }
    }

    /// Pops the completed head packet of `winner` into the output
    /// pipeline and refreshes the head columns.
    #[inline(always)]
    fn complete_head<P: Probe>(
        &mut self,
        winner: usize,
        now: Cycle,
        comp: Component,
        probe: &mut P,
    ) {
        let done = self.inputs.pop_front(winner);
        if P::ENABLED {
            let packet = self.arena.get(done);
            probe.packet_forwarded(
                now,
                comp,
                winner,
                packet.id.0,
                packet.sm.index(),
                packet.slice.index(),
                self.arena.flits(done),
            );
        }
        self.output.push(now, done);
        self.forwarded_packets += 1;
        self.queued -= 1;
        // Only the winner's queue head changed; refresh just it.
        match self.inputs.front(winner) {
            Some(next) => self.set_head(winner, next),
            None => self.occ.clear(winner),
        }
    }

    /// This cycle's burst steal, via a per-window cache: the fault plan's
    /// decision is constant within a burst window
    /// ([`FaultPlan::burst_stable_until`]), so the splitmix hash runs
    /// once per window instead of once per busy cycle. Cache hits on
    /// firing windows feed [`FaultPlan::note_burst_cycle`] so the plan's
    /// statistics stay identical to per-cycle probing.
    #[inline]
    fn burst_steal(&mut self, now: Cycle) -> u32 {
        let Some((plan, site)) = &self.fault else {
            return 0;
        };
        if now >= self.burst_until {
            self.burst_value = plan.burst_flits(*site, now);
            self.burst_until = plan.burst_stable_until(*site, now).unwrap_or(Cycle::MAX);
        } else if self.burst_value > 0 {
            plan.note_burst_cycle();
        }
        self.burst_value
    }

    /// Arms a cross-cycle grant run if the closed form holds from the
    /// next cycle on: a lone occupant input (established by the caller's
    /// O(1) gate) under a policy whose grant is then unconditional
    /// (anything but strict RR, which wastes idle owners' slots), with a
    /// nonzero budget that stays constant until the next fault burst
    /// window boundary. The run is invalidated by any [`try_push`]
    /// (Self::try_push) that changes occupancy, by draining the winner,
    /// and by the window boundary itself.
    #[inline(never)]
    fn maybe_start_run(&mut self, now: Cycle, winner: usize) {
        if matches!(self.arbiter, InlineArbiter::StrictRoundRobin) {
            return;
        }
        let until = match &self.fault {
            None => Cycle::MAX,
            // `None` from the plan means bursts can never fire.
            Some((plan, site)) => plan.burst_stable_until(*site, now).unwrap_or(Cycle::MAX),
        };
        let budget = self.bandwidth.saturating_sub(self.burst_value);
        if budget == 0 {
            return;
        }
        self.run_winner = winner;
        self.run_budget = budget;
        self.run_until = until;
    }

    /// A reference to the next delivered packet, if one has cleared the
    /// output pipeline by `now`.
    pub fn peek_delivered(&self, now: Cycle) -> Option<&Packet> {
        self.output
            .peek_ready(now)
            .map(|&slot| self.arena.get(slot))
    }

    /// Removes and returns the next delivered packet, if ready at `now`.
    #[inline]
    pub fn pop_delivered(&mut self, now: Cycle) -> Option<Packet> {
        let slot = self.output.pop_ready(now)?;
        Some(self.arena.take(slot))
    }

    /// Pops every delivered packet ready at `now` into `sink` (FIFO
    /// order — identical to repeated [`pop_delivered`]
    /// (Self::pop_delivered) calls), retiring their arena slots in one
    /// batch instead of one free-list push per packet. Returns the
    /// number of packets delivered.
    pub fn drain_delivered<F: FnMut(Packet)>(&mut self, now: Cycle, sink: F) -> usize {
        debug_assert!(self.retire_scratch.is_empty());
        while let Some(slot) = self.output.pop_ready(now) {
            self.retire_scratch.push(slot);
        }
        let drained = self.retire_scratch.len();
        self.arena.take_batch(&self.retire_scratch, sink);
        self.retire_scratch.clear();
        drained
    }

    /// Restores the mux to its just-constructed state in place: drops
    /// every queued and in-flight packet, rewinds arbitration, zeroes
    /// counters, and detaches any fault plan — keeping every allocation.
    pub fn reset(&mut self) {
        self.inputs.clear();
        self.arbiter.reset();
        self.arena.clear();
        self.occ.clear_all();
        self.head_remaining.fill(0);
        self.head_age.fill(0);
        self.head_group.fill(0);
        self.output.clear();
        self.granted_flits.fill(0);
        self.retire_scratch.clear();
        self.forwarded_packets = 0;
        self.queued = 0;
        self.fault = None;
        self.burst_value = 0;
        self.burst_until = 0;
        self.run_winner = 0;
        self.run_budget = 0;
        self.run_until = 0;
    }

    /// Flits granted to each input since construction (fairness metric).
    pub fn granted_flits(&self) -> &[u64] {
        &self.granted_flits
    }

    /// Packets fully forwarded since construction.
    pub fn forwarded_packets(&self) -> u64 {
        self.forwarded_packets
    }

    /// Number of packets currently queued at `input`.
    pub fn queue_len(&self, input: usize) -> usize {
        self.inputs.len(input)
    }

    /// True when no packets are queued or in the output pipeline.
    pub fn is_drained(&self) -> bool {
        self.queued == 0 && self.output.is_empty()
    }

    /// When this mux next has actionable work (see [`NextEvent`]).
    ///
    /// Queued packets need arbitration every cycle; an empty mux with
    /// packets in the output pipeline sleeps until the front one is
    /// deliverable.
    pub fn next_event(&self) -> NextEvent {
        if self.queued > 0 {
            return NextEvent::Busy;
        }
        match self.output.next_ready_cycle() {
            Some(ready) => NextEvent::At(ready),
            None => NextEvent::Idle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketId, PacketKind};
    use gnc_common::ids::{SliceId, SmId, WarpId};

    fn noc() -> NocConfig {
        NocConfig::default()
    }

    fn pkt(id: u64, kind: PacketKind, group: u64, age: Cycle) -> Packet {
        Packet {
            id: PacketId(id),
            kind,
            sm: SmId::new(0),
            warp: WarpId::new(0),
            slice: SliceId::new(0),
            addr: id * 128,
            data_bytes: 128, // full line: 5 flits for writes at 40 B flits
            injected_at: age,
            group,
        }
    }

    fn mux(policy: Arbitration, bandwidth: u32, latency: u32) -> ConcentratorMux {
        ConcentratorMux::new(2, bandwidth, latency, 8, policy, &noc())
    }

    #[test]
    fn background_bursts_steal_flit_slots() {
        use gnc_common::fault::FaultConfig;

        let drain = |fault: Option<Arc<FaultPlan>>| -> Cycle {
            let mut m = mux(Arbitration::RoundRobin, 1, 0);
            if let Some(plan) = fault {
                m.set_fault_plan(plan, 0x1_0000);
            }
            for id in 0..8 {
                m.try_push((id % 2) as usize, pkt(id, PacketKind::WriteRequest, 0, 0))
                    .unwrap();
            }
            let mut now = 0;
            let mut delivered = 0;
            while delivered < 8 {
                m.tick(now);
                while m.pop_delivered(now).is_some() {
                    delivered += 1;
                }
                now += 1;
                assert!(now < 10_000, "mux wedged");
            }
            now
        };

        let clean = drain(None);
        let noop = drain(Some(FaultPlan::new(FaultConfig::off())));
        assert_eq!(clean, noop, "a no-op plan must not perturb timing");
        let jam = FaultConfig {
            noc_burst_rate: 0.5,
            noc_burst_cycles: 8,
            noc_burst_flits: 1,
            ..FaultConfig::off()
        };
        let noisy = drain(Some(FaultPlan::new(jam)));
        assert!(
            noisy > clean,
            "bursts must slow the drain ({noisy} vs {clean} cycles)"
        );
        // Determinism: the same plan yields the same drain time.
        let jam2 = FaultConfig {
            noc_burst_rate: 0.5,
            noc_burst_cycles: 8,
            noc_burst_flits: 1,
            ..FaultConfig::off()
        };
        assert_eq!(noisy, drain(Some(FaultPlan::new(jam2))));
    }

    #[test]
    fn single_write_packet_takes_its_flit_count() {
        let mut m = mux(Arbitration::RoundRobin, 1, 0);
        m.try_push(0, pkt(1, PacketKind::WriteRequest, 0, 0))
            .unwrap();
        // 5 flits at 1 flit/cycle: delivered after the tick at cycle 4.
        for now in 0..4 {
            m.tick(now);
            assert!(m.peek_delivered(now).is_none(), "too early at {now}");
        }
        m.tick(4);
        assert_eq!(m.pop_delivered(4).unwrap().id, PacketId(1));
    }

    #[test]
    fn latency_delays_delivery() {
        let mut m = mux(Arbitration::RoundRobin, 1, 10);
        m.try_push(0, pkt(1, PacketKind::ReadRequest, 0, 0))
            .unwrap();
        m.tick(0); // single flit crosses at cycle 0
        assert!(m.pop_delivered(9).is_none());
        assert!(m.pop_delivered(10).is_some());
    }

    #[test]
    fn two_saturating_writers_share_bandwidth_equally() {
        // The Fig 2 mechanism: two SMs streaming writes through one TPC
        // mux each get half the channel.
        let mut m = mux(Arbitration::RoundRobin, 1, 0);
        let mut delivered = [0u32; 2];
        let mut next_id = 0u64;
        for now in 0..1000u64 {
            for input in 0..2 {
                if m.can_accept(input) {
                    let mut p = pkt(next_id, PacketKind::WriteRequest, next_id, now);
                    p.sm = SmId::new(input);
                    if m.try_push(input, p).is_ok() {
                        next_id += 1;
                    }
                }
            }
            m.tick(now);
            while let Some(p) = m.pop_delivered(now) {
                delivered[p.sm.index()] += 1;
            }
        }
        let total: u32 = delivered.iter().sum();
        // 1000 cycles / 5 flits ≈ 200 packets total, split evenly.
        assert!((195..=200).contains(&total), "total {total}");
        let diff = delivered[0].abs_diff(delivered[1]);
        assert!(diff <= 1, "unfair split {delivered:?}");
    }

    #[test]
    fn lone_writer_gets_full_bandwidth_under_rr() {
        let mut m = mux(Arbitration::RoundRobin, 1, 0);
        let mut delivered = 0u32;
        let mut next_id = 0;
        for now in 0..1000u64 {
            if m.can_accept(0) {
                m.try_push(0, pkt(next_id, PacketKind::WriteRequest, next_id, now))
                    .unwrap();
                next_id += 1;
            }
            m.tick(now);
            while m.pop_delivered(now).is_some() {
                delivered += 1;
            }
        }
        assert!((195..=200).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn lone_writer_is_halved_under_srr() {
        // The countermeasure property: SRR wastes the idle input's slots,
        // so a lone writer gets only half the channel…
        let mut m = mux(Arbitration::StrictRoundRobin, 1, 0);
        let mut delivered = 0u32;
        let mut next_id = 0;
        for now in 0..1000u64 {
            if m.can_accept(0) {
                m.try_push(0, pkt(next_id, PacketKind::WriteRequest, next_id, now))
                    .unwrap();
                next_id += 1;
            }
            m.tick(now);
            while m.pop_delivered(now).is_some() {
                delivered += 1;
            }
        }
        // …: 500 usable flit slots / 5 flits = 100 packets.
        assert!((95..=100).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn srr_throughput_is_independent_of_other_input() {
        // Run SRR twice: once with input 1 idle, once saturating. Input
        // 0's delivered count must not change — no leakage.
        let run = |other_busy: bool| -> u32 {
            let mut m = mux(Arbitration::StrictRoundRobin, 1, 0);
            let mut delivered = 0u32;
            let mut next_id = 0u64;
            for now in 0..2000u64 {
                if m.can_accept(0) {
                    let mut p = pkt(next_id, PacketKind::WriteRequest, next_id, now);
                    p.sm = SmId::new(0);
                    m.try_push(0, p).unwrap();
                    next_id += 1;
                }
                if other_busy && m.can_accept(1) {
                    let mut p = pkt(next_id, PacketKind::WriteRequest, next_id, now);
                    p.sm = SmId::new(1);
                    m.try_push(1, p).unwrap();
                    next_id += 1;
                }
                m.tick(now);
                while let Some(p) = m.pop_delivered(now) {
                    if p.sm == SmId::new(0) {
                        delivered += 1;
                    }
                }
            }
            delivered
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn backpressure_returns_packet() {
        let mut m = ConcentratorMux::new(1, 1, 0, 2, Arbitration::RoundRobin, &noc());
        assert!(m
            .try_push(0, pkt(0, PacketKind::WriteRequest, 0, 0))
            .is_ok());
        assert!(m
            .try_push(0, pkt(1, PacketKind::WriteRequest, 0, 0))
            .is_ok());
        assert!(!m.can_accept(0));
        let rejected = m.try_push(0, pkt(2, PacketKind::WriteRequest, 0, 0));
        assert_eq!(rejected.unwrap_err().id, PacketId(2));
    }

    #[test]
    fn wide_channel_moves_multiple_flits_per_cycle() {
        // Bandwidth 6: a 5-flit write completes within a single tick.
        let mut m = mux(Arbitration::RoundRobin, 6, 0);
        m.try_push(0, pkt(1, PacketKind::WriteRequest, 0, 0))
            .unwrap();
        m.tick(0);
        assert!(m.pop_delivered(0).is_some());
    }

    #[test]
    fn granted_flit_accounting() {
        let mut m = mux(Arbitration::RoundRobin, 1, 0);
        m.try_push(0, pkt(1, PacketKind::WriteRequest, 0, 0))
            .unwrap();
        m.try_push(1, pkt(2, PacketKind::ReadRequest, 1, 0))
            .unwrap();
        for now in 0..6 {
            m.tick(now);
        }
        assert_eq!(m.granted_flits(), &[5, 1]);
        assert_eq!(m.forwarded_packets(), 2);
        while m.pop_delivered(6).is_some() {}
        assert!(m.is_drained());
    }

    #[test]
    fn fifo_within_one_input() {
        let mut m = mux(Arbitration::RoundRobin, 1, 0);
        m.try_push(0, pkt(1, PacketKind::ReadRequest, 0, 0))
            .unwrap();
        m.try_push(0, pkt(2, PacketKind::ReadRequest, 0, 0))
            .unwrap();
        m.tick(0);
        m.tick(1);
        assert_eq!(m.pop_delivered(1).unwrap().id, PacketId(1));
        assert_eq!(m.pop_delivered(1).unwrap().id, PacketId(2));
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_inputs_rejected() {
        let _ = ConcentratorMux::new(0, 1, 0, 1, Arbitration::RoundRobin, &noc());
    }

    #[test]
    fn cross_cycle_run_is_invalidated_by_same_cycle_push() {
        // Cycle 0 arms a cross-cycle grant run for lone-occupant input 0.
        // A push onto (previously empty) input 1 must cancel the run in
        // the same cycle: round-robin's pointer sits past input 0, so the
        // newcomer wins cycle 1 immediately. A stale run would keep
        // granting input 0 without re-arbitrating.
        let mut m = mux(Arbitration::RoundRobin, 1, 0);
        for id in 0..4 {
            let mut p = pkt(id, PacketKind::ReadRequest, id, 0);
            p.sm = SmId::new(0);
            m.try_push(0, p).unwrap();
        }
        m.tick(0); // grants id 0; arms the run for input 0
        assert_eq!(m.pop_delivered(0).unwrap().id, PacketId(0));

        let mut newcomer = pkt(100, PacketKind::ReadRequest, 100, 1);
        newcomer.sm = SmId::new(1);
        m.try_push(1, newcomer).unwrap();
        m.tick(1);
        assert_eq!(
            m.pop_delivered(1).unwrap().id,
            PacketId(100),
            "same-cycle push must invalidate the run and win the RR grant"
        );
        m.tick(2);
        assert_eq!(m.pop_delivered(2).unwrap().id, PacketId(1));
    }

    #[test]
    fn age_based_prefers_older_packet_across_inputs() {
        let mut m = mux(Arbitration::AgeBased, 1, 0);
        m.try_push(0, pkt(1, PacketKind::ReadRequest, 0, 100))
            .unwrap();
        m.try_push(1, pkt(2, PacketKind::ReadRequest, 1, 50))
            .unwrap();
        m.tick(0);
        assert_eq!(m.pop_delivered(0).unwrap().id, PacketId(2));
    }
}
