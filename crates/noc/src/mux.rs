//! The concentrating mux — the shared resource at the heart of the paper.
//!
//! A [`ConcentratorMux`] joins N bounded input FIFOs onto one output
//! channel of B flits/cycle through an arbitration policy, then delays
//! completed packets by the channel pipeline latency. Instances of this
//! one component model the 2:1 SM→TPC mux, the 7:1 TPC→GPC mux with
//! speedup, each crossbar output, the GPC reply channel, and the per-SM
//! ejection port (Figure 1 of the paper).

use crate::arbiter::{InlineArbiter, OccupancyMask};
use crate::arena::PacketArena;
use crate::delay::DelayLine;
use crate::event::NextEvent;
use crate::packet::Packet;
use gnc_common::config::{Arbitration, NocConfig};
use gnc_common::fault::FaultPlan;
use gnc_common::telemetry::{Component, NullProbe, Probe};
use gnc_common::Cycle;
use std::collections::VecDeque;
use std::sync::Arc;

/// An N-input, single-output concentrating mux with bounded input queues,
/// per-flit arbitration, and an output pipeline delay.
///
/// # Flow control
///
/// [`try_push`](Self::try_push) refuses packets when the target input
/// queue is at capacity, returning the packet to the caller; upstream
/// stages keep it queued, which yields credit-based backpressure through
/// the whole fabric.
///
/// # Internal layout
///
/// Packets live in a slab arena for their entire residence; the input
/// queues and the output delay line carry 4-byte slot ids. Arbitration
/// state is structure-of-arrays: an occupancy bitmask plus per-input
/// head columns (remaining flits, age, group), so the per-flit grant
/// loop is bit scans over a few small arrays and never touches packet
/// memory. Externally nothing changed: packets go in and come out by
/// value, and grant decisions are bit-identical to the boxed
/// [`Arbiter`](crate::arbiter::Arbiter) implementations.
///
/// # Example
///
/// ```
/// use gnc_common::config::{Arbitration, NocConfig};
/// use gnc_noc::mux::ConcentratorMux;
///
/// let noc = NocConfig::default();
/// let mux = ConcentratorMux::new(2, 1, 0, 8, Arbitration::RoundRobin, &noc);
/// assert_eq!(mux.num_inputs(), 2);
/// assert!(mux.can_accept(0));
/// ```
#[derive(Debug)]
pub struct ConcentratorMux {
    /// Per-input FIFO of arena slot ids.
    inputs: Vec<VecDeque<u32>>,
    depth: usize,
    bandwidth: u32,
    arbiter: InlineArbiter,
    /// Packet storage for everything queued or in the output pipeline.
    arena: PacketArena,
    /// Which inputs have a head flit ready to arbitrate.
    occ: OccupancyMask,
    /// Flits left to transmit for each input's head packet. Only indices
    /// whose occupancy bit is set are meaningful.
    head_remaining: Vec<u32>,
    /// Injection age of each input's head packet (age-based policy).
    head_age: Vec<Cycle>,
    /// Arbitration group of each input's head packet (CRR policy).
    head_group: Vec<u64>,
    output: DelayLine<u32>,
    noc: NocConfig,
    granted_flits: Vec<u64>,
    /// Reusable slot-id buffer for [`drain_delivered`]
    /// (Self::drain_delivered): delivered slots are collected here, then
    /// retired through the arena in one batch. Always empty between
    /// calls.
    retire_scratch: Vec<u32>,
    forwarded_packets: u64,
    /// Total packets across all input queues (fast idle check).
    queued: usize,
    /// Optional fault injection: background-traffic bursts at this mux
    /// steal output flit slots. The `u64` is this mux's stable site id
    /// within the fault plan's hash space.
    fault: Option<(Arc<FaultPlan>, u64)>,
}

impl ConcentratorMux {
    /// Creates a mux.
    ///
    /// * `n_inputs` — number of input ports.
    /// * `bandwidth` — output channel bandwidth in flits per cycle.
    /// * `latency` — pipeline latency in cycles between a packet's last
    ///   flit crossing the mux and the packet appearing at the output.
    /// * `depth` — per-input queue capacity in packets.
    /// * `policy` — arbitration policy (§6).
    ///
    /// # Panics
    ///
    /// Panics if `n_inputs`, `bandwidth`, or `depth` is zero.
    pub fn new(
        n_inputs: usize,
        bandwidth: u32,
        latency: u32,
        depth: usize,
        policy: Arbitration,
        noc: &NocConfig,
    ) -> Self {
        assert!(n_inputs > 0, "mux needs at least one input");
        assert!(bandwidth > 0, "mux needs nonzero bandwidth");
        assert!(depth > 0, "mux needs nonzero queue depth");
        Self {
            inputs: (0..n_inputs).map(|_| VecDeque::new()).collect(),
            depth,
            bandwidth,
            arbiter: InlineArbiter::new(policy),
            arena: PacketArena::new(),
            occ: OccupancyMask::new(n_inputs),
            head_remaining: vec![0; n_inputs],
            head_age: vec![0; n_inputs],
            head_group: vec![0; n_inputs],
            output: DelayLine::new(latency),
            noc: noc.clone(),
            granted_flits: vec![0; n_inputs],
            retire_scratch: Vec::new(),
            forwarded_packets: 0,
            queued: 0,
            fault: None,
        }
    }

    /// Refreshes the SoA head columns of `input` from the packet in
    /// `slot`, which just became the queue head.
    #[inline]
    fn set_head(&mut self, input: usize, slot: u32) {
        self.occ.set(input);
        self.head_remaining[input] = self.arena.flits(slot);
        let packet = self.arena.get(slot);
        self.head_age[input] = packet.injected_at;
        self.head_group[input] = packet.group;
    }

    /// Attaches a fault plan; background-traffic bursts decided by the
    /// plan for `site` will steal output flit slots from this mux.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>, site: u64) {
        self.fault = Some((plan, site));
    }

    /// Number of input ports.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Output bandwidth in flits per cycle.
    pub fn bandwidth(&self) -> u32 {
        self.bandwidth
    }

    /// Whether input `input` has room for another packet.
    pub fn can_accept(&self, input: usize) -> bool {
        self.inputs[input].len() < self.depth
    }

    /// Queues `packet` at `input`.
    ///
    /// # Errors
    ///
    /// Returns the packet back when the input queue is full; the caller
    /// must retry on a later cycle (backpressure).
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    pub fn try_push(&mut self, input: usize, packet: Packet) -> Result<(), Packet> {
        self.try_push_probed(input, packet, Component::tpc_mux(0), &mut NullProbe)
    }

    /// [`try_push`](Self::try_push) with telemetry: reports the refused
    /// push or the new queue depth to `probe` under the caller-supplied
    /// `comp` label (the mux doesn't know which fabric slot it fills).
    ///
    /// # Errors
    ///
    /// Returns the packet back when the input queue is full.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    pub fn try_push_probed<P: Probe>(
        &mut self,
        input: usize,
        packet: Packet,
        comp: Component,
        probe: &mut P,
    ) -> Result<(), Packet> {
        if !self.can_accept(input) {
            probe.push_denied(comp, input);
            return Err(packet);
        }
        let flits = packet.flits(&self.noc).max(1);
        let was_empty = self.inputs[input].is_empty();
        let slot = self.arena.insert(packet, flits);
        if was_empty {
            self.set_head(input, slot);
        }
        self.inputs[input].push_back(slot);
        self.queued += 1;
        probe.queue_depth(comp, input, self.inputs[input].len());
        Ok(())
    }

    /// Advances the mux by one cycle: arbitrates up to `bandwidth` flit
    /// slots and moves fully transmitted packets into the output pipeline.
    ///
    /// When a fault plan is attached, background-traffic bursts occupy
    /// some (or all) of this cycle's flit slots before the queued
    /// traffic gets to arbitrate — exactly the contention a co-tenant
    /// kernel sharing the mux would create.
    pub fn tick(&mut self, now: Cycle) {
        self.tick_probed(now, Component::tpc_mux(0), &mut NullProbe);
    }

    /// [`tick`](Self::tick) with telemetry: reports each granted flit
    /// slot and each fully forwarded packet to `probe` under the
    /// caller-supplied `comp` label. With [`NullProbe`] this
    /// monomorphises to exactly the probe-free tick.
    pub fn tick_probed<P: Probe>(&mut self, now: Cycle, comp: Component, probe: &mut P) {
        if self.queued == 0 {
            return;
        }
        let mut budget = self.bandwidth;
        if let Some((plan, site)) = &self.fault {
            budget = budget.saturating_sub(plan.burst_flits(*site, now));
            if budget == 0 {
                return;
            }
        }
        for flit_slot in 0..budget {
            if self.queued == 0 {
                // No arbiter can grant an idle mux; strict RR would waste
                // the remaining slots anyway.
                break;
            }
            let global_slot = now * u64::from(self.bandwidth) + u64::from(flit_slot);
            let Some(winner) =
                self.arbiter
                    .grant(global_slot, &self.occ, &self.head_age, &self.head_group)
            else {
                continue;
            };
            self.head_remaining[winner] -= 1;
            self.granted_flits[winner] += 1;
            probe.flit_granted(now, comp, winner);
            if self.head_remaining[winner] == 0 {
                let done = self.inputs[winner]
                    .pop_front()
                    .expect("granted input must be nonempty");
                if P::ENABLED {
                    let packet = self.arena.get(done);
                    probe.packet_forwarded(
                        now,
                        comp,
                        winner,
                        packet.id.0,
                        packet.sm.index(),
                        packet.slice.index(),
                        self.arena.flits(done),
                    );
                }
                self.output.push(now, done);
                self.forwarded_packets += 1;
                self.queued -= 1;
                // Only the winner's queue head changed; refresh just it.
                match self.inputs[winner].front() {
                    Some(&next) => self.set_head(winner, next),
                    None => self.occ.clear(winner),
                }
            }
        }
    }

    /// A reference to the next delivered packet, if one has cleared the
    /// output pipeline by `now`.
    pub fn peek_delivered(&self, now: Cycle) -> Option<&Packet> {
        self.output
            .peek_ready(now)
            .map(|&slot| self.arena.get(slot))
    }

    /// Removes and returns the next delivered packet, if ready at `now`.
    pub fn pop_delivered(&mut self, now: Cycle) -> Option<Packet> {
        let slot = self.output.pop_ready(now)?;
        Some(self.arena.take(slot))
    }

    /// Pops every delivered packet ready at `now` into `sink` (FIFO
    /// order — identical to repeated [`pop_delivered`]
    /// (Self::pop_delivered) calls), retiring their arena slots in one
    /// batch instead of one free-list push per packet. Returns the
    /// number of packets delivered.
    pub fn drain_delivered<F: FnMut(Packet)>(&mut self, now: Cycle, sink: F) -> usize {
        debug_assert!(self.retire_scratch.is_empty());
        while let Some(slot) = self.output.pop_ready(now) {
            self.retire_scratch.push(slot);
        }
        let drained = self.retire_scratch.len();
        self.arena.take_batch(&self.retire_scratch, sink);
        self.retire_scratch.clear();
        drained
    }

    /// Restores the mux to its just-constructed state in place: drops
    /// every queued and in-flight packet, rewinds arbitration, zeroes
    /// counters, and detaches any fault plan — keeping every allocation.
    pub fn reset(&mut self) {
        for q in &mut self.inputs {
            q.clear();
        }
        self.arbiter.reset();
        self.arena.clear();
        self.occ.clear_all();
        self.head_remaining.fill(0);
        self.head_age.fill(0);
        self.head_group.fill(0);
        self.output.clear();
        self.granted_flits.fill(0);
        self.retire_scratch.clear();
        self.forwarded_packets = 0;
        self.queued = 0;
        self.fault = None;
    }

    /// Flits granted to each input since construction (fairness metric).
    pub fn granted_flits(&self) -> &[u64] {
        &self.granted_flits
    }

    /// Packets fully forwarded since construction.
    pub fn forwarded_packets(&self) -> u64 {
        self.forwarded_packets
    }

    /// Number of packets currently queued at `input`.
    pub fn queue_len(&self, input: usize) -> usize {
        self.inputs[input].len()
    }

    /// True when no packets are queued or in the output pipeline.
    pub fn is_drained(&self) -> bool {
        self.queued == 0 && self.output.is_empty()
    }

    /// When this mux next has actionable work (see [`NextEvent`]).
    ///
    /// Queued packets need arbitration every cycle; an empty mux with
    /// packets in the output pipeline sleeps until the front one is
    /// deliverable.
    pub fn next_event(&self) -> NextEvent {
        if self.queued > 0 {
            return NextEvent::Busy;
        }
        match self.output.next_ready_cycle() {
            Some(ready) => NextEvent::At(ready),
            None => NextEvent::Idle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketId, PacketKind};
    use gnc_common::ids::{SliceId, SmId, WarpId};

    fn noc() -> NocConfig {
        NocConfig::default()
    }

    fn pkt(id: u64, kind: PacketKind, group: u64, age: Cycle) -> Packet {
        Packet {
            id: PacketId(id),
            kind,
            sm: SmId::new(0),
            warp: WarpId::new(0),
            slice: SliceId::new(0),
            addr: id * 128,
            data_bytes: 128, // full line: 5 flits for writes at 40 B flits
            injected_at: age,
            group,
        }
    }

    fn mux(policy: Arbitration, bandwidth: u32, latency: u32) -> ConcentratorMux {
        ConcentratorMux::new(2, bandwidth, latency, 8, policy, &noc())
    }

    #[test]
    fn background_bursts_steal_flit_slots() {
        use gnc_common::fault::FaultConfig;

        let drain = |fault: Option<Arc<FaultPlan>>| -> Cycle {
            let mut m = mux(Arbitration::RoundRobin, 1, 0);
            if let Some(plan) = fault {
                m.set_fault_plan(plan, 0x1_0000);
            }
            for id in 0..8 {
                m.try_push((id % 2) as usize, pkt(id, PacketKind::WriteRequest, 0, 0))
                    .unwrap();
            }
            let mut now = 0;
            let mut delivered = 0;
            while delivered < 8 {
                m.tick(now);
                while m.pop_delivered(now).is_some() {
                    delivered += 1;
                }
                now += 1;
                assert!(now < 10_000, "mux wedged");
            }
            now
        };

        let clean = drain(None);
        let noop = drain(Some(FaultPlan::new(FaultConfig::off())));
        assert_eq!(clean, noop, "a no-op plan must not perturb timing");
        let jam = FaultConfig {
            noc_burst_rate: 0.5,
            noc_burst_cycles: 8,
            noc_burst_flits: 1,
            ..FaultConfig::off()
        };
        let noisy = drain(Some(FaultPlan::new(jam)));
        assert!(
            noisy > clean,
            "bursts must slow the drain ({noisy} vs {clean} cycles)"
        );
        // Determinism: the same plan yields the same drain time.
        let jam2 = FaultConfig {
            noc_burst_rate: 0.5,
            noc_burst_cycles: 8,
            noc_burst_flits: 1,
            ..FaultConfig::off()
        };
        assert_eq!(noisy, drain(Some(FaultPlan::new(jam2))));
    }

    #[test]
    fn single_write_packet_takes_its_flit_count() {
        let mut m = mux(Arbitration::RoundRobin, 1, 0);
        m.try_push(0, pkt(1, PacketKind::WriteRequest, 0, 0))
            .unwrap();
        // 5 flits at 1 flit/cycle: delivered after the tick at cycle 4.
        for now in 0..4 {
            m.tick(now);
            assert!(m.peek_delivered(now).is_none(), "too early at {now}");
        }
        m.tick(4);
        assert_eq!(m.pop_delivered(4).unwrap().id, PacketId(1));
    }

    #[test]
    fn latency_delays_delivery() {
        let mut m = mux(Arbitration::RoundRobin, 1, 10);
        m.try_push(0, pkt(1, PacketKind::ReadRequest, 0, 0))
            .unwrap();
        m.tick(0); // single flit crosses at cycle 0
        assert!(m.pop_delivered(9).is_none());
        assert!(m.pop_delivered(10).is_some());
    }

    #[test]
    fn two_saturating_writers_share_bandwidth_equally() {
        // The Fig 2 mechanism: two SMs streaming writes through one TPC
        // mux each get half the channel.
        let mut m = mux(Arbitration::RoundRobin, 1, 0);
        let mut delivered = [0u32; 2];
        let mut next_id = 0u64;
        for now in 0..1000u64 {
            for input in 0..2 {
                if m.can_accept(input) {
                    let mut p = pkt(next_id, PacketKind::WriteRequest, next_id, now);
                    p.sm = SmId::new(input);
                    if m.try_push(input, p).is_ok() {
                        next_id += 1;
                    }
                }
            }
            m.tick(now);
            while let Some(p) = m.pop_delivered(now) {
                delivered[p.sm.index()] += 1;
            }
        }
        let total: u32 = delivered.iter().sum();
        // 1000 cycles / 5 flits ≈ 200 packets total, split evenly.
        assert!((195..=200).contains(&total), "total {total}");
        let diff = delivered[0].abs_diff(delivered[1]);
        assert!(diff <= 1, "unfair split {delivered:?}");
    }

    #[test]
    fn lone_writer_gets_full_bandwidth_under_rr() {
        let mut m = mux(Arbitration::RoundRobin, 1, 0);
        let mut delivered = 0u32;
        let mut next_id = 0;
        for now in 0..1000u64 {
            if m.can_accept(0) {
                m.try_push(0, pkt(next_id, PacketKind::WriteRequest, next_id, now))
                    .unwrap();
                next_id += 1;
            }
            m.tick(now);
            while m.pop_delivered(now).is_some() {
                delivered += 1;
            }
        }
        assert!((195..=200).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn lone_writer_is_halved_under_srr() {
        // The countermeasure property: SRR wastes the idle input's slots,
        // so a lone writer gets only half the channel…
        let mut m = mux(Arbitration::StrictRoundRobin, 1, 0);
        let mut delivered = 0u32;
        let mut next_id = 0;
        for now in 0..1000u64 {
            if m.can_accept(0) {
                m.try_push(0, pkt(next_id, PacketKind::WriteRequest, next_id, now))
                    .unwrap();
                next_id += 1;
            }
            m.tick(now);
            while m.pop_delivered(now).is_some() {
                delivered += 1;
            }
        }
        // …: 500 usable flit slots / 5 flits = 100 packets.
        assert!((95..=100).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn srr_throughput_is_independent_of_other_input() {
        // Run SRR twice: once with input 1 idle, once saturating. Input
        // 0's delivered count must not change — no leakage.
        let run = |other_busy: bool| -> u32 {
            let mut m = mux(Arbitration::StrictRoundRobin, 1, 0);
            let mut delivered = 0u32;
            let mut next_id = 0u64;
            for now in 0..2000u64 {
                if m.can_accept(0) {
                    let mut p = pkt(next_id, PacketKind::WriteRequest, next_id, now);
                    p.sm = SmId::new(0);
                    m.try_push(0, p).unwrap();
                    next_id += 1;
                }
                if other_busy && m.can_accept(1) {
                    let mut p = pkt(next_id, PacketKind::WriteRequest, next_id, now);
                    p.sm = SmId::new(1);
                    m.try_push(1, p).unwrap();
                    next_id += 1;
                }
                m.tick(now);
                while let Some(p) = m.pop_delivered(now) {
                    if p.sm == SmId::new(0) {
                        delivered += 1;
                    }
                }
            }
            delivered
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn backpressure_returns_packet() {
        let mut m = ConcentratorMux::new(1, 1, 0, 2, Arbitration::RoundRobin, &noc());
        assert!(m
            .try_push(0, pkt(0, PacketKind::WriteRequest, 0, 0))
            .is_ok());
        assert!(m
            .try_push(0, pkt(1, PacketKind::WriteRequest, 0, 0))
            .is_ok());
        assert!(!m.can_accept(0));
        let rejected = m.try_push(0, pkt(2, PacketKind::WriteRequest, 0, 0));
        assert_eq!(rejected.unwrap_err().id, PacketId(2));
    }

    #[test]
    fn wide_channel_moves_multiple_flits_per_cycle() {
        // Bandwidth 6: a 5-flit write completes within a single tick.
        let mut m = mux(Arbitration::RoundRobin, 6, 0);
        m.try_push(0, pkt(1, PacketKind::WriteRequest, 0, 0))
            .unwrap();
        m.tick(0);
        assert!(m.pop_delivered(0).is_some());
    }

    #[test]
    fn granted_flit_accounting() {
        let mut m = mux(Arbitration::RoundRobin, 1, 0);
        m.try_push(0, pkt(1, PacketKind::WriteRequest, 0, 0))
            .unwrap();
        m.try_push(1, pkt(2, PacketKind::ReadRequest, 1, 0))
            .unwrap();
        for now in 0..6 {
            m.tick(now);
        }
        assert_eq!(m.granted_flits(), &[5, 1]);
        assert_eq!(m.forwarded_packets(), 2);
        while m.pop_delivered(6).is_some() {}
        assert!(m.is_drained());
    }

    #[test]
    fn fifo_within_one_input() {
        let mut m = mux(Arbitration::RoundRobin, 1, 0);
        m.try_push(0, pkt(1, PacketKind::ReadRequest, 0, 0))
            .unwrap();
        m.try_push(0, pkt(2, PacketKind::ReadRequest, 0, 0))
            .unwrap();
        m.tick(0);
        m.tick(1);
        assert_eq!(m.pop_delivered(1).unwrap().id, PacketId(1));
        assert_eq!(m.pop_delivered(1).unwrap().id, PacketId(2));
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_inputs_rejected() {
        let _ = ConcentratorMux::new(0, 1, 0, 1, Arbitration::RoundRobin, &noc());
    }

    #[test]
    fn age_based_prefers_older_packet_across_inputs() {
        let mut m = mux(Arbitration::AgeBased, 1, 0);
        m.try_push(0, pkt(1, PacketKind::ReadRequest, 0, 100))
            .unwrap();
        m.try_push(1, pkt(2, PacketKind::ReadRequest, 1, 50))
            .unwrap();
        m.tick(0);
        assert_eq!(m.pop_delivered(0).unwrap().id, PacketId(2));
    }
}
