//! Network packets.
//!
//! A packet is the unit that traverses the fabric; its length in flits is
//! one header flit plus the data it carries, rounded up to whole flits.
//! This is what makes memory coalescing matter for the covert channel
//! (§5): a warp of 32 *uncoalesced* 4-byte stores becomes 32 packets of
//! 2 flits each (64 flits of traffic), while the same 128 bytes fully
//! coalesced is a single 5-flit packet at 40-byte flits — about 13×
//! less channel occupancy, which is why a coalescing sender cannot
//! create observable contention (Fig 13).

use gnc_common::config::NocConfig;
use gnc_common::ids::{SliceId, SmId, WarpId};
use gnc_common::Cycle;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique packet identifier (assigned by the issuing SM's LSU).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt{}", self.0)
    }
}

/// The four packet kinds carried by the two subnets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// Read request: SM → L2 slice, header only (request subnet). Its
    /// `data_bytes` is the amount *requested*, which sizes the reply.
    ReadRequest,
    /// Write request: SM → L2 slice, header + written data (request
    /// subnet).
    WriteRequest,
    /// Read reply: L2 slice → SM, header + requested data (reply subnet).
    ReadReply,
    /// Write acknowledgement: L2 slice → SM, header only (reply subnet).
    WriteAck,
}

impl PacketKind {
    /// Whether this kind travels on the request subnet (SM → L2).
    pub fn is_request(self) -> bool {
        matches!(self, PacketKind::ReadRequest | PacketKind::WriteRequest)
    }

    /// Whether this kind carries data flits (vs header-only).
    pub fn carries_data(self) -> bool {
        matches!(self, PacketKind::WriteRequest | PacketKind::ReadReply)
    }

    /// The reply kind an L2 slice generates for a request kind.
    ///
    /// # Panics
    ///
    /// Panics when called on a reply kind.
    pub fn reply_kind(self) -> PacketKind {
        match self {
            PacketKind::ReadRequest => PacketKind::ReadReply,
            PacketKind::WriteRequest => PacketKind::WriteAck,
            other => panic!("{other:?} is already a reply kind"),
        }
    }
}

/// A packet in flight through the fabric.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Packet {
    /// Unique id; replies carry the id of the request they answer.
    pub id: PacketId,
    /// Kind, which (with `data_bytes`) determines flit length.
    pub kind: PacketKind,
    /// The SM that issued the original request (destination for replies).
    pub sm: SmId,
    /// The warp within that SM which issued the request.
    pub warp: WarpId,
    /// The L2 slice the address maps to.
    pub slice: SliceId,
    /// Byte address of the access (used for L2 indexing).
    pub addr: u64,
    /// Bytes written (writes) or requested (reads). Determines data-flit
    /// count for write requests and read replies.
    pub data_bytes: u32,
    /// Cycle at which the packet entered the current subnet; the age-based
    /// arbiter keys on this, and instrumentation uses it for latencies.
    pub injected_at: Cycle,
    /// Coarse arbitration group (§6, CRR): all packets of one warp
    /// memory instruction share a group so CRR can grant them together.
    pub group: u64,
}

impl Packet {
    /// Packet length in flits under `noc`: one header flit plus
    /// `ceil(data_bytes / flit_size)` data flits for data-carrying kinds.
    pub fn flits(&self, noc: &NocConfig) -> u32 {
        if self.kind.carries_data() {
            1 + self.data_bytes.div_ceil(noc.flit_size_bytes.max(1))
        } else {
            1
        }
    }

    /// Builds the reply an L2 slice sends back for this request, injected
    /// into the reply subnet at `now`. Read replies carry the requested
    /// bytes; write acks are header-only.
    ///
    /// # Panics
    ///
    /// Panics if `self` is already a reply.
    pub fn to_reply(&self, now: Cycle) -> Packet {
        Packet {
            id: self.id,
            kind: self.kind.reply_kind(),
            sm: self.sm,
            warp: self.warp,
            slice: self.slice,
            addr: self.addr,
            data_bytes: self.data_bytes,
            injected_at: now,
            group: self.group,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noc() -> NocConfig {
        NocConfig::default()
    }

    fn packet(kind: PacketKind, data_bytes: u32) -> Packet {
        Packet {
            id: PacketId(7),
            kind,
            sm: SmId::new(3),
            warp: WarpId::new(1),
            slice: SliceId::new(11),
            addr: 0x1000,
            data_bytes,
            injected_at: 42,
            group: 5,
        }
    }

    #[test]
    fn full_line_write_is_five_flits() {
        // 128 B at 40 B flits: header + 4 data flits.
        assert_eq!(packet(PacketKind::WriteRequest, 128).flits(&noc()), 5);
    }

    #[test]
    fn scattered_word_write_is_two_flits() {
        // A single 4 B store: header + 1 data flit. The coalescing
        // asymmetry of §5 rests on this.
        assert_eq!(packet(PacketKind::WriteRequest, 4).flits(&noc()), 2);
    }

    #[test]
    fn requests_and_acks_are_header_only() {
        assert_eq!(packet(PacketKind::ReadRequest, 128).flits(&noc()), 1);
        assert_eq!(packet(PacketKind::WriteAck, 128).flits(&noc()), 1);
    }

    #[test]
    fn read_reply_scales_with_requested_bytes() {
        assert_eq!(packet(PacketKind::ReadReply, 4).flits(&noc()), 2);
        assert_eq!(packet(PacketKind::ReadReply, 128).flits(&noc()), 5);
        assert_eq!(packet(PacketKind::ReadReply, 41).flits(&noc()), 3);
    }

    #[test]
    fn request_reply_pairing() {
        assert_eq!(PacketKind::ReadRequest.reply_kind(), PacketKind::ReadReply);
        assert_eq!(PacketKind::WriteRequest.reply_kind(), PacketKind::WriteAck);
        assert!(PacketKind::ReadRequest.is_request());
        assert!(PacketKind::WriteRequest.is_request());
        assert!(!PacketKind::ReadReply.is_request());
        assert!(!PacketKind::WriteAck.is_request());
    }

    #[test]
    #[should_panic(expected = "already a reply")]
    fn reply_of_reply_panics() {
        let _ = PacketKind::WriteAck.reply_kind();
    }

    #[test]
    fn reply_preserves_identity_and_restamps_injection() {
        let req = packet(PacketKind::ReadRequest, 64);
        let reply = req.to_reply(99);
        assert_eq!(reply.id, req.id);
        assert_eq!(reply.kind, PacketKind::ReadReply);
        assert_eq!(reply.sm, req.sm);
        assert_eq!(reply.data_bytes, 64);
        assert_eq!(reply.injected_at, 99);
        assert_eq!(reply.group, req.group);
    }

    #[test]
    fn display_of_packet_id() {
        assert_eq!(PacketId(3).to_string(), "pkt3");
    }
}
