//! Flat ring-buffer input queues for the concentrating mux.
//!
//! A mux's N bounded input FIFOs used to be N separate `VecDeque`s — N
//! scattered heap blocks, each push/pop paying `VecDeque`'s wrap and
//! capacity logic plus a pointer chase. Queue depths are small and fixed
//! at construction, so all N queues fit one contiguous slab: `cap`
//! entries per input (capacity rounded to a power of two so wrap is a
//! mask), with one packed `head|len` word of metadata per input. A
//! saturated crossbar touches 6 of these per output per cycle; keeping
//! them on a handful of shared cache lines is a measurable win.

/// N fixed-capacity FIFOs of arena slot ids in one allocation.
///
/// Capacity is per input and set at construction; `push_back` on a full
/// queue is a caller bug (the mux checks `can_accept` first).
#[derive(Debug)]
pub(crate) struct InputQueues {
    /// Slot-id storage, `1 << shift` entries per input.
    buf: Vec<u32>,
    /// Per-input `head << 16 | len`. Head is masked into the ring;
    /// len counts queued entries.
    meta: Vec<u32>,
    /// Log2 of the ring capacity per input.
    shift: u32,
    /// Ring index mask: `(1 << shift) - 1`.
    mask: u32,
    /// Usable depth per input (`<=` ring capacity).
    depth: u32,
}

impl InputQueues {
    /// Creates `n` empty queues of `depth` packets each.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `depth` is zero, or `depth` exceeds `u16::MAX / 2`
    /// (queue depths are config-sized, not data-sized).
    pub(crate) fn new(n: usize, depth: usize) -> Self {
        assert!(n > 0, "need at least one queue");
        assert!(depth > 0, "need nonzero depth");
        assert!(depth <= usize::from(u16::MAX / 2), "depth too large");
        let cap = depth.next_power_of_two();
        Self {
            buf: vec![0; n * cap],
            meta: vec![0; n],
            shift: cap.trailing_zeros(),
            mask: u32::try_from(cap - 1).expect("capacity fits u32"),
            depth: u32::try_from(depth).expect("depth fits u32"),
        }
    }

    /// Number of queues.
    pub(crate) fn num_queues(&self) -> usize {
        self.meta.len()
    }

    /// Packets queued at `i`.
    #[inline]
    pub(crate) fn len(&self, i: usize) -> usize {
        (self.meta[i] & 0xFFFF) as usize
    }

    /// Whether queue `i` holds nothing.
    #[inline]
    pub(crate) fn is_empty(&self, i: usize) -> bool {
        self.meta[i] & 0xFFFF == 0
    }

    /// Whether queue `i` has room for another packet.
    #[inline]
    pub(crate) fn can_accept(&self, i: usize) -> bool {
        self.meta[i] & 0xFFFF < self.depth
    }

    /// Appends `slot` to queue `i`. The caller has already checked
    /// [`can_accept`](Self::can_accept).
    #[inline]
    pub(crate) fn push_back(&mut self, i: usize, slot: u32) {
        let m = self.meta[i];
        let (head, len) = (m >> 16, m & 0xFFFF);
        debug_assert!(len < self.depth, "push into full queue");
        self.buf[(i << self.shift) + ((head + len) & self.mask) as usize] = slot;
        self.meta[i] = m + 1;
    }

    /// The slot at the front of queue `i`, if any.
    #[inline]
    pub(crate) fn front(&self, i: usize) -> Option<u32> {
        let m = self.meta[i];
        if m & 0xFFFF == 0 {
            return None;
        }
        Some(self.buf[(i << self.shift) + (m >> 16) as usize])
    }

    /// Removes and returns the front of queue `i`.
    ///
    /// # Panics
    ///
    /// Debug-asserts the queue is nonempty; the mux only pops inputs
    /// whose occupancy bit is set.
    #[inline]
    pub(crate) fn pop_front(&mut self, i: usize) -> u32 {
        let m = self.meta[i];
        let (head, len) = (m >> 16, m & 0xFFFF);
        debug_assert!(len > 0, "pop from empty queue");
        let slot = self.buf[(i << self.shift) + head as usize];
        self.meta[i] = (((head + 1) & self.mask) << 16) | (len - 1);
        slot
    }

    /// Empties every queue, keeping the allocation.
    pub(crate) fn clear(&mut self) {
        self.meta.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_with_wraparound() {
        let mut q = InputQueues::new(3, 3); // ring capacity rounds to 4
        for round in 0..50u32 {
            for i in 0..3 {
                assert!(q.is_empty(i));
                q.push_back(i, round * 10 + i as u32);
                q.push_back(i, round * 10 + i as u32 + 100);
                assert_eq!(q.len(i), 2);
                assert_eq!(q.front(i), Some(round * 10 + i as u32));
            }
            for i in 0..3 {
                assert_eq!(q.pop_front(i), round * 10 + i as u32);
                assert_eq!(q.pop_front(i), round * 10 + i as u32 + 100);
                assert!(q.front(i).is_none());
            }
        }
    }

    #[test]
    fn depth_bounds_acceptance_not_ring_capacity() {
        // depth 3 rides in a 4-entry ring; the 4th push must be refused
        // by can_accept even though the ring has room.
        let mut q = InputQueues::new(1, 3);
        for k in 0..3 {
            assert!(q.can_accept(0));
            q.push_back(0, k);
        }
        assert!(!q.can_accept(0));
        assert_eq!(q.len(0), 3);
    }

    #[test]
    fn clear_keeps_capacity_and_resets_state() {
        let mut q = InputQueues::new(2, 2);
        q.push_back(0, 7);
        q.push_back(1, 9);
        q.clear();
        assert!(q.is_empty(0) && q.is_empty(1));
        assert_eq!(q.num_queues(), 2);
        q.push_back(0, 11);
        assert_eq!(q.pop_front(0), 11);
    }
}
