//! Property-based tests for the NoC building blocks.

use gnc_common::config::{Arbitration, NocConfig};
use gnc_common::fault::{FaultConfig, FaultPlan};
use gnc_common::ids::{SliceId, SmId, WarpId};
use gnc_common::telemetry::{Component, Probe};
use gnc_common::Cycle;
use gnc_noc::arbiter::{make_arbiter, ArbHead, Arbiter};
use gnc_noc::delay::DelayLine;
use gnc_noc::mux::ConcentratorMux;
use gnc_noc::packet::{Packet, PacketId, PacketKind};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

fn packet(id: u64, input: usize, kind: PacketKind, data_bytes: u32, now: u64) -> Packet {
    Packet {
        id: PacketId(id),
        kind,
        sm: SmId::new(input),
        warp: WarpId::new(0),
        slice: SliceId::new(0),
        addr: id * 128,
        data_bytes,
        injected_at: now,
        group: id,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No arbiter ever grants an empty input, and every grant is in
    /// range.
    #[test]
    fn arbiters_grant_only_requesting_inputs(
        policy in prop::sample::select(Arbitration::ALL.to_vec()),
        occupancy in proptest::collection::vec(any::<bool>(), 1..12),
        slots in 1u64..200,
    ) {
        let mut arb = make_arbiter(policy);
        let heads: Vec<Option<ArbHead>> = occupancy
            .iter()
            .enumerate()
            .map(|(i, &busy)| busy.then_some(ArbHead { age: i as u64, group: i as u64 }))
            .collect();
        for s in 0..slots {
            if let Some(winner) = arb.grant(s, &heads) {
                prop_assert!(winner < heads.len());
                prop_assert!(heads[winner].is_some(), "{:?} granted idle input {}", policy, winner);
            }
        }
    }

    /// Work-conserving arbiters (everything except strict RR) always
    /// grant when at least one input is busy.
    #[test]
    fn work_conserving_arbiters_never_waste_slots(
        policy in prop::sample::select(vec![
            Arbitration::RoundRobin,
            Arbitration::CoarseRoundRobin,
            Arbitration::AgeBased,
        ]),
        busy_input in 0usize..8,
        n_inputs in 1usize..8,
    ) {
        let n = n_inputs.max(busy_input + 1);
        let mut arb = make_arbiter(policy);
        let heads: Vec<Option<ArbHead>> = (0..n)
            .map(|i| (i == busy_input).then_some(ArbHead { age: 0, group: 0 }))
            .collect();
        for s in 0..(2 * n as u64) {
            prop_assert_eq!(arb.grant(s, &heads), Some(busy_input));
        }
    }

    /// Packet conservation: everything pushed into a mux eventually pops
    /// out exactly once, in per-input FIFO order.
    #[test]
    fn mux_conserves_packets(
        policy in prop::sample::select(Arbitration::ALL.to_vec()),
        sizes in proptest::collection::vec(prop::sample::select(vec![4u32, 32, 128]), 1..24),
    ) {
        let noc = NocConfig::default();
        let mut mux = ConcentratorMux::new(3, 2, 1, 64, policy, &noc);
        let mut pushed_per_input: Vec<Vec<u64>> = vec![Vec::new(); 3];
        for (i, &bytes) in sizes.iter().enumerate() {
            let input = i % 3;
            let p = packet(i as u64, input, PacketKind::WriteRequest, bytes, 0);
            mux.try_push(input, p).expect("deep queues");
            pushed_per_input[input].push(i as u64);
        }
        let mut popped_per_input: Vec<Vec<u64>> = vec![Vec::new(); 3];
        let mut total = 0usize;
        for now in 0..10_000u64 {
            mux.tick(now);
            while let Some(p) = mux.pop_delivered(now) {
                popped_per_input[p.sm.index()].push(p.id.0);
                total += 1;
            }
            if total == sizes.len() {
                break;
            }
        }
        prop_assert_eq!(total, sizes.len(), "packets lost under {:?}", policy);
        prop_assert_eq!(popped_per_input, pushed_per_input);
        prop_assert!(mux.is_drained());
    }

    /// The mux never outpaces its configured bandwidth: delivering P
    /// packets of F flits each takes at least ceil(total_flits / bw)
    /// cycles.
    #[test]
    fn mux_respects_bandwidth(
        bw in 1u32..4,
        n_packets in 1usize..16,
    ) {
        let noc = NocConfig::default();
        let mut mux = ConcentratorMux::new(1, bw, 0, 64, Arbitration::RoundRobin, &noc);
        for i in 0..n_packets {
            let p = packet(i as u64, 0, PacketKind::WriteRequest, 128, 0);
            mux.try_push(0, p).expect("deep queue");
        }
        let total_flits = 5 * n_packets as u64;
        let min_cycles = total_flits.div_ceil(u64::from(bw));
        let mut done_at = None;
        for now in 0..10_000u64 {
            mux.tick(now);
            while mux.pop_delivered(now).is_some() {}
            if mux.is_drained() {
                done_at = Some(now + 1);
                break;
            }
        }
        let done = done_at.expect("drained");
        prop_assert!(done >= min_cycles, "drained in {done} < {min_cycles}");
        // And it should not be grossly slower either (work conserving).
        prop_assert!(done <= min_cycles + 4);
    }

    /// Delay lines preserve order and never deliver early.
    #[test]
    fn delay_line_is_fifo_and_punctual(
        latency in 0u32..20,
        gaps in proptest::collection::vec(0u64..5, 1..32),
    ) {
        let mut line = DelayLine::new(latency);
        let mut now = 0u64;
        let mut expected = Vec::new();
        for (i, &gap) in gaps.iter().enumerate() {
            now += gap;
            line.push(now, i);
            expected.push((now + u64::from(latency), i));
        }
        let mut got = Vec::new();
        for t in 0..=(now + u64::from(latency)) {
            while let Some(item) = line.pop_ready(t) {
                got.push((t, item));
            }
        }
        // Items emerge in push order…
        let order: Vec<usize> = got.iter().map(|&(_, i)| i).collect();
        prop_assert_eq!(order, (0..gaps.len()).collect::<Vec<_>>());
        // …and never before their readiness time (FIFO may delay an item
        // behind a later-pushed-but-earlier-ready head; never the
        // reverse).
        for ((t, _), (ready, _)) in got.iter().zip(&expected) {
            prop_assert!(t >= ready, "delivered at {t} before ready {ready}");
        }
        prop_assert!(line.is_empty());
    }

    /// Strict RR gives a saturating input exactly bandwidth/n throughput
    /// regardless of what the other inputs do.
    #[test]
    fn srr_throughput_is_invariant(other_busy in any::<bool>(), n_inputs in 2usize..5) {
        let noc = NocConfig::default();
        let run = |busy: bool| -> u64 {
            let mut mux = ConcentratorMux::new(n_inputs, 1, 0, 8,
                Arbitration::StrictRoundRobin, &noc);
            let mut next = 0u64;
            let mut delivered = 0u64;
            for now in 0..2_000u64 {
                if mux.can_accept(0) {
                    mux.try_push(0, packet(next, 0, PacketKind::WriteRequest, 4, now)).unwrap();
                    next += 1;
                }
                if busy {
                    for input in 1..n_inputs {
                        if mux.can_accept(input) {
                            next += 1;
                            let p = packet(next, input, PacketKind::WriteRequest, 4, now);
                            mux.try_push(input, p).unwrap();
                        }
                    }
                }
                mux.tick(now);
                while let Some(p) = mux.pop_delivered(now) {
                    if p.sm.index() == 0 {
                        delivered += 1;
                    }
                }
            }
            delivered
        };
        prop_assert_eq!(run(other_busy), run(false));
    }
}

/// Everything a probed mux reports, in order — the observable the
/// batched grant engine must reproduce bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    Flit {
        now: Cycle,
        input: usize,
    },
    Fwd {
        now: Cycle,
        input: usize,
        id: u64,
        flits: u32,
    },
    Denied {
        input: usize,
    },
    Depth {
        input: usize,
        depth: usize,
    },
    Pop {
        now: Cycle,
        id: u64,
    },
}

#[derive(Debug, Default)]
struct Recorder(Vec<Ev>);

impl Probe for Recorder {
    const ENABLED: bool = true;

    fn flit_granted(&mut self, now: Cycle, _comp: Component, input: usize) {
        self.0.push(Ev::Flit { now, input });
    }

    fn packet_forwarded(
        &mut self,
        now: Cycle,
        _comp: Component,
        input: usize,
        packet: u64,
        _sm: usize,
        _slice: usize,
        flits: u32,
    ) {
        self.0.push(Ev::Fwd {
            now,
            input,
            id: packet,
            flits,
        });
    }

    fn push_denied(&mut self, _comp: Component, input: usize) {
        self.0.push(Ev::Denied { input });
    }

    fn queue_depth(&mut self, _comp: Component, input: usize, depth: usize) {
        self.0.push(Ev::Depth { input, depth });
    }
}

/// Per-flit reference mux: bounded FIFOs of whole packets, one boxed
/// [`Arbiter`] call per flit slot, no occupancy masks, no grant runs,
/// no fault caching — the obviously-correct semantics the batched
/// engine in [`ConcentratorMux`] must be decision-identical to.
struct ReferenceMux {
    queues: Vec<VecDeque<(Packet, u32)>>,
    /// Flits of each queue head already granted.
    sent: Vec<u32>,
    arb: Box<dyn Arbiter>,
    output: VecDeque<(Cycle, Packet)>,
    bandwidth: u32,
    latency: u32,
    depth: usize,
    noc: NocConfig,
    fault: Option<(Arc<FaultPlan>, u64)>,
    events: Vec<Ev>,
}

impl ReferenceMux {
    fn new(
        n_inputs: usize,
        bandwidth: u32,
        latency: u32,
        depth: usize,
        policy: Arbitration,
        noc: &NocConfig,
    ) -> Self {
        Self {
            queues: vec![VecDeque::new(); n_inputs],
            sent: vec![0; n_inputs],
            arb: make_arbiter(policy),
            output: VecDeque::new(),
            bandwidth,
            latency,
            depth,
            noc: noc.clone(),
            fault: None,
            events: Vec::new(),
        }
    }

    fn try_push(&mut self, input: usize, packet: Packet) -> Result<(), Packet> {
        if self.queues[input].len() >= self.depth {
            self.events.push(Ev::Denied { input });
            return Err(packet);
        }
        let flits = packet.flits(&self.noc).max(1);
        self.queues[input].push_back((packet, flits));
        self.events.push(Ev::Depth {
            input,
            depth: self.queues[input].len(),
        });
        Ok(())
    }

    fn tick(&mut self, now: Cycle) {
        if self.queues.iter().all(VecDeque::is_empty) {
            return;
        }
        let steal = self
            .fault
            .as_ref()
            .map_or(0, |(plan, site)| plan.burst_flits(*site, now));
        let budget = self.bandwidth.saturating_sub(steal);
        for slot in 0..budget {
            let heads: Vec<Option<ArbHead>> = self
                .queues
                .iter()
                .map(|q| {
                    q.front().map(|(p, _)| ArbHead {
                        age: p.injected_at,
                        group: p.group,
                    })
                })
                .collect();
            let global_slot = now * u64::from(self.bandwidth) + u64::from(slot);
            let Some(winner) = self.arb.grant(global_slot, &heads) else {
                // Under strict RR the slot's owner may be idle (the slot
                // is wasted, not reassigned); later slots can still be
                // granted, so keep scanning.
                continue;
            };
            self.events.push(Ev::Flit { now, input: winner });
            self.sent[winner] += 1;
            if self.sent[winner] == self.queues[winner].front().expect("granted head").1 {
                let (packet, flits) = self.queues[winner].pop_front().expect("granted head");
                self.sent[winner] = 0;
                self.events.push(Ev::Fwd {
                    now,
                    input: winner,
                    id: packet.id.0,
                    flits,
                });
                self.output
                    .push_back((now + Cycle::from(self.latency), packet));
            }
        }
    }

    fn pop_delivered(&mut self, now: Cycle) -> Option<Packet> {
        match self.output.front() {
            Some(&(ready, _)) if ready <= now => self.output.pop_front().map(|(_, p)| p),
            _ => None,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole equivalence property: the batched grant engine
    /// (closed-form grant runs within a cycle, validated lone-occupant
    /// runs across cycles, cached fault windows) produces the *identical*
    /// observable sequence — every granted flit slot, forwarded packet,
    /// refused push, queue-depth report, and delivered packet, in order —
    /// as a per-flit reference mux driving the boxed [`Arbiter`]
    /// implementations one flit slot at a time, across all four policies,
    /// random traffic, backpressure, and fault-stolen slots.
    #[test]
    fn batched_mux_is_decision_identical_to_per_flit_reference(
        policy in prop::sample::select(Arbitration::ALL.to_vec()),
        n_inputs in 1usize..6,
        bandwidth in 1u32..5,
        latency in 0u32..3,
        depth in 1usize..5,
        seed in 1u64..u64::MAX,
        fault_on in any::<bool>(),
    ) {
        let noc = NocConfig::default();
        let mut real = ConcentratorMux::new(n_inputs, bandwidth, latency, depth, policy, &noc);
        let mut reference = ReferenceMux::new(n_inputs, bandwidth, latency, depth, policy, &noc);
        if fault_on {
            let cfg = FaultConfig {
                noc_burst_rate: 0.5,
                noc_burst_cycles: 4,
                noc_burst_flits: 1 + (seed % 2) as u32,
                ..FaultConfig::off()
            };
            // Two identical plans: the hash decisions are pure functions
            // of (config, site, window), so both muxes see the same
            // steals without sharing statistics counters.
            real.set_fault_plan(FaultPlan::new(cfg.clone()), 0xB00);
            reference.fault = Some((FaultPlan::new(cfg), 0xB00));
        }
        let comp = Component::tpc_mux(3);
        let mut probe = Recorder::default();
        let mut rng = seed;
        let mut next_id = 0u64;
        let mut xorshift = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for now in 0..400u64 {
            for input in 0..n_inputs {
                let r = xorshift();
                // Push with probability 1/2; skew toward short packets so
                // heads change often (the run-invalidation hot case).
                if r % 2 == 0 {
                    let (kind, bytes) = match (r >> 8) % 4 {
                        0 => (PacketKind::ReadRequest, 4),
                        1 => (PacketKind::WriteRequest, 4),
                        2 => (PacketKind::WriteRequest, 32),
                        _ => (PacketKind::WriteRequest, 128),
                    };
                    let mut p = packet(next_id, input, kind, bytes, now);
                    p.group = next_id / 3; // consecutive ids share CRR groups
                    let a = real.try_push_probed(input, p.clone(), comp, &mut probe);
                    let b = reference.try_push(input, p);
                    prop_assert_eq!(a.is_ok(), b.is_ok(), "push divergence at {}", now);
                    if a.is_ok() {
                        next_id += 1;
                    }
                }
            }
            real.tick_probed(now, comp, &mut probe);
            reference.tick(now);
            loop {
                let a = real.pop_delivered(now);
                let b = reference.pop_delivered(now);
                match (&a, &b) {
                    (Some(pa), Some(pb)) => {
                        prop_assert_eq!(pa.id, pb.id, "pop order diverged at {}", now);
                        probe.0.push(Ev::Pop { now, id: pa.id.0 });
                        reference.events.push(Ev::Pop { now, id: pb.id.0 });
                    }
                    (None, None) => break,
                    _ => prop_assert!(false, "pop presence diverged at {}: {:?} vs {:?}", now, a, b),
                }
            }
        }
        prop_assert_eq!(&probe.0, &reference.events, "probe event stream diverged");
    }
}

/// The conservation checks in `is_drained` are plain `assert!`s — they
/// must fire in release builds too, where a silently wrong in-flight
/// counter would otherwise end a run with packets still queued. Corrupt
/// the counter behind the fabric's back and confirm the check catches
/// the lie in whatever profile this test compiles under.
mod conservation_checks_are_always_on {
    use super::packet;
    use gnc_common::ids::SliceId;
    use gnc_common::GpuConfig;
    use gnc_noc::fabric::{ReplyFabric, RequestFabric};
    use gnc_noc::packet::PacketKind;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn request_fabric_detects_corrupted_in_flight_counter() {
        let cfg = GpuConfig::volta_v100();
        let mut fabric = RequestFabric::new(&cfg);
        let sm = gnc_common::ids::SmId::new(0);
        fabric
            .inject(sm, packet(1, 0, PacketKind::ReadRequest, 4, 0))
            .expect("empty fabric accepts");
        assert!(!fabric.is_drained(), "a queued packet means not drained");
        fabric.corrupt_in_flight_counter_for_test();
        let err = catch_unwind(AssertUnwindSafe(|| fabric.is_drained()))
            .expect_err("corrupted counter must trip the conservation check");
        assert!(
            panic_message(err).contains("counter claims drained"),
            "panic must name the counter desync"
        );
    }

    #[test]
    fn reply_fabric_detects_corrupted_in_flight_counter() {
        let cfg = GpuConfig::volta_v100();
        let mut fabric = ReplyFabric::new(&cfg);
        fabric
            .inject_at_slice(SliceId::new(0), packet(1, 0, PacketKind::ReadReply, 32, 0))
            .expect("empty fabric accepts");
        assert!(!fabric.is_drained(), "a queued reply means not drained");
        fabric.corrupt_in_flight_counter_for_test();
        let err = catch_unwind(AssertUnwindSafe(|| fabric.is_drained()))
            .expect_err("corrupted counter must trip the conservation check");
        assert!(
            panic_message(err).contains("counter claims drained"),
            "panic must name the counter desync"
        );
    }
}
