//! Property-based tests for the NoC building blocks.

use gnc_common::config::{Arbitration, NocConfig};
use gnc_common::ids::{SliceId, SmId, WarpId};
use gnc_noc::arbiter::{make_arbiter, ArbHead};
use gnc_noc::delay::DelayLine;
use gnc_noc::mux::ConcentratorMux;
use gnc_noc::packet::{Packet, PacketId, PacketKind};
use proptest::prelude::*;

fn packet(id: u64, input: usize, kind: PacketKind, data_bytes: u32, now: u64) -> Packet {
    Packet {
        id: PacketId(id),
        kind,
        sm: SmId::new(input),
        warp: WarpId::new(0),
        slice: SliceId::new(0),
        addr: id * 128,
        data_bytes,
        injected_at: now,
        group: id,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No arbiter ever grants an empty input, and every grant is in
    /// range.
    #[test]
    fn arbiters_grant_only_requesting_inputs(
        policy in prop::sample::select(Arbitration::ALL.to_vec()),
        occupancy in proptest::collection::vec(any::<bool>(), 1..12),
        slots in 1u64..200,
    ) {
        let mut arb = make_arbiter(policy);
        let heads: Vec<Option<ArbHead>> = occupancy
            .iter()
            .enumerate()
            .map(|(i, &busy)| busy.then_some(ArbHead { age: i as u64, group: i as u64 }))
            .collect();
        for s in 0..slots {
            if let Some(winner) = arb.grant(s, &heads) {
                prop_assert!(winner < heads.len());
                prop_assert!(heads[winner].is_some(), "{:?} granted idle input {}", policy, winner);
            }
        }
    }

    /// Work-conserving arbiters (everything except strict RR) always
    /// grant when at least one input is busy.
    #[test]
    fn work_conserving_arbiters_never_waste_slots(
        policy in prop::sample::select(vec![
            Arbitration::RoundRobin,
            Arbitration::CoarseRoundRobin,
            Arbitration::AgeBased,
        ]),
        busy_input in 0usize..8,
        n_inputs in 1usize..8,
    ) {
        let n = n_inputs.max(busy_input + 1);
        let mut arb = make_arbiter(policy);
        let heads: Vec<Option<ArbHead>> = (0..n)
            .map(|i| (i == busy_input).then_some(ArbHead { age: 0, group: 0 }))
            .collect();
        for s in 0..(2 * n as u64) {
            prop_assert_eq!(arb.grant(s, &heads), Some(busy_input));
        }
    }

    /// Packet conservation: everything pushed into a mux eventually pops
    /// out exactly once, in per-input FIFO order.
    #[test]
    fn mux_conserves_packets(
        policy in prop::sample::select(Arbitration::ALL.to_vec()),
        sizes in proptest::collection::vec(prop::sample::select(vec![4u32, 32, 128]), 1..24),
    ) {
        let noc = NocConfig::default();
        let mut mux = ConcentratorMux::new(3, 2, 1, 64, policy, &noc);
        let mut pushed_per_input: Vec<Vec<u64>> = vec![Vec::new(); 3];
        for (i, &bytes) in sizes.iter().enumerate() {
            let input = i % 3;
            let p = packet(i as u64, input, PacketKind::WriteRequest, bytes, 0);
            mux.try_push(input, p).expect("deep queues");
            pushed_per_input[input].push(i as u64);
        }
        let mut popped_per_input: Vec<Vec<u64>> = vec![Vec::new(); 3];
        let mut total = 0usize;
        for now in 0..10_000u64 {
            mux.tick(now);
            while let Some(p) = mux.pop_delivered(now) {
                popped_per_input[p.sm.index()].push(p.id.0);
                total += 1;
            }
            if total == sizes.len() {
                break;
            }
        }
        prop_assert_eq!(total, sizes.len(), "packets lost under {:?}", policy);
        prop_assert_eq!(popped_per_input, pushed_per_input);
        prop_assert!(mux.is_drained());
    }

    /// The mux never outpaces its configured bandwidth: delivering P
    /// packets of F flits each takes at least ceil(total_flits / bw)
    /// cycles.
    #[test]
    fn mux_respects_bandwidth(
        bw in 1u32..4,
        n_packets in 1usize..16,
    ) {
        let noc = NocConfig::default();
        let mut mux = ConcentratorMux::new(1, bw, 0, 64, Arbitration::RoundRobin, &noc);
        for i in 0..n_packets {
            let p = packet(i as u64, 0, PacketKind::WriteRequest, 128, 0);
            mux.try_push(0, p).expect("deep queue");
        }
        let total_flits = 5 * n_packets as u64;
        let min_cycles = total_flits.div_ceil(u64::from(bw));
        let mut done_at = None;
        for now in 0..10_000u64 {
            mux.tick(now);
            while mux.pop_delivered(now).is_some() {}
            if mux.is_drained() {
                done_at = Some(now + 1);
                break;
            }
        }
        let done = done_at.expect("drained");
        prop_assert!(done >= min_cycles, "drained in {done} < {min_cycles}");
        // And it should not be grossly slower either (work conserving).
        prop_assert!(done <= min_cycles + 4);
    }

    /// Delay lines preserve order and never deliver early.
    #[test]
    fn delay_line_is_fifo_and_punctual(
        latency in 0u32..20,
        gaps in proptest::collection::vec(0u64..5, 1..32),
    ) {
        let mut line = DelayLine::new(latency);
        let mut now = 0u64;
        let mut expected = Vec::new();
        for (i, &gap) in gaps.iter().enumerate() {
            now += gap;
            line.push(now, i);
            expected.push((now + u64::from(latency), i));
        }
        let mut got = Vec::new();
        for t in 0..=(now + u64::from(latency)) {
            while let Some(item) = line.pop_ready(t) {
                got.push((t, item));
            }
        }
        // Items emerge in push order…
        let order: Vec<usize> = got.iter().map(|&(_, i)| i).collect();
        prop_assert_eq!(order, (0..gaps.len()).collect::<Vec<_>>());
        // …and never before their readiness time (FIFO may delay an item
        // behind a later-pushed-but-earlier-ready head; never the
        // reverse).
        for ((t, _), (ready, _)) in got.iter().zip(&expected) {
            prop_assert!(t >= ready, "delivered at {t} before ready {ready}");
        }
        prop_assert!(line.is_empty());
    }

    /// Strict RR gives a saturating input exactly bandwidth/n throughput
    /// regardless of what the other inputs do.
    #[test]
    fn srr_throughput_is_invariant(other_busy in any::<bool>(), n_inputs in 2usize..5) {
        let noc = NocConfig::default();
        let run = |busy: bool| -> u64 {
            let mut mux = ConcentratorMux::new(n_inputs, 1, 0, 8,
                Arbitration::StrictRoundRobin, &noc);
            let mut next = 0u64;
            let mut delivered = 0u64;
            for now in 0..2_000u64 {
                if mux.can_accept(0) {
                    mux.try_push(0, packet(next, 0, PacketKind::WriteRequest, 4, now)).unwrap();
                    next += 1;
                }
                if busy {
                    for input in 1..n_inputs {
                        if mux.can_accept(input) {
                            next += 1;
                            let p = packet(next, input, PacketKind::WriteRequest, 4, now);
                            mux.try_push(input, p).unwrap();
                        }
                    }
                }
                mux.tick(now);
                while let Some(p) = mux.pop_delivered(now) {
                    if p.sm.index() == 0 {
                        delivered += 1;
                    }
                }
            }
            delivered
        };
        prop_assert_eq!(run(other_busy), run(false));
    }
}

/// The conservation checks in `is_drained` are plain `assert!`s — they
/// must fire in release builds too, where a silently wrong in-flight
/// counter would otherwise end a run with packets still queued. Corrupt
/// the counter behind the fabric's back and confirm the check catches
/// the lie in whatever profile this test compiles under.
mod conservation_checks_are_always_on {
    use super::packet;
    use gnc_common::ids::SliceId;
    use gnc_common::GpuConfig;
    use gnc_noc::fabric::{ReplyFabric, RequestFabric};
    use gnc_noc::packet::PacketKind;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn request_fabric_detects_corrupted_in_flight_counter() {
        let cfg = GpuConfig::volta_v100();
        let mut fabric = RequestFabric::new(&cfg);
        let sm = gnc_common::ids::SmId::new(0);
        fabric
            .inject(sm, packet(1, 0, PacketKind::ReadRequest, 4, 0))
            .expect("empty fabric accepts");
        assert!(!fabric.is_drained(), "a queued packet means not drained");
        fabric.corrupt_in_flight_counter_for_test();
        let err = catch_unwind(AssertUnwindSafe(|| fabric.is_drained()))
            .expect_err("corrupted counter must trip the conservation check");
        assert!(
            panic_message(err).contains("counter claims drained"),
            "panic must name the counter desync"
        );
    }

    #[test]
    fn reply_fabric_detects_corrupted_in_flight_counter() {
        let cfg = GpuConfig::volta_v100();
        let mut fabric = ReplyFabric::new(&cfg);
        fabric
            .inject_at_slice(SliceId::new(0), packet(1, 0, PacketKind::ReadReply, 32, 0))
            .expect("empty fabric accepts");
        assert!(!fabric.is_drained(), "a queued reply means not drained");
        fabric.corrupt_in_flight_counter_for_test();
        let err = catch_unwind(AssertUnwindSafe(|| fabric.is_drained()))
            .expect_err("corrupted counter must trip the conservation check");
        assert!(
            panic_message(err).contains("counter claims drained"),
            "panic must name the counter desync"
        );
    }
}
