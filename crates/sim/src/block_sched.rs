//! Thread-block placement policy (§4.3).
//!
//! The paper reverse-engineered the block scheduler: blocks interleave
//! across the GPCs first, then across the TPCs within each GPC, and only
//! after every TPC holds a block does the second SM of a TPC receive one.
//! Consequence (§4.3): launching 40 sender blocks and then 40 receiver
//! blocks places one sender and one receiver on the two SMs of every TPC
//! — exactly the co-location the TPC covert channel needs.

use gnc_common::ids::{GpcId, SmId};
use gnc_common::GpuConfig;

/// The SM visitation order used when placing blocks.
#[derive(Debug, Clone)]
pub struct PlacementPolicy {
    order: Vec<SmId>,
}

impl PlacementPolicy {
    /// Builds the §4.3 order for `cfg`: for each SM slot (first SM of a
    /// TPC, then the sibling), for each TPC round, visit the GPCs
    /// round-robin and take that GPC's next TPC.
    pub fn new(cfg: &GpuConfig) -> Self {
        let per_gpc: Vec<Vec<_>> = (0..cfg.num_gpcs)
            .map(|g| cfg.tpcs_of_gpc(GpcId::new(g)))
            .collect();
        let max_tpcs = per_gpc.iter().map(Vec::len).max().unwrap_or(0);
        let mut order = Vec::with_capacity(cfg.num_sms());
        for sm_slot in 0..cfg.sms_per_tpc {
            for round in 0..max_tpcs {
                for members in &per_gpc {
                    if let Some(tpc) = members.get(round) {
                        order.push(SmId::new(tpc.index() * cfg.sms_per_tpc + sm_slot));
                    }
                }
            }
        }
        Self { order }
    }

    /// The SM visitation order, one entry per SM slot.
    pub fn order(&self) -> &[SmId] {
        &self.order
    }

    /// The first SM in the order with spare capacity, according to
    /// `has_room`.
    pub fn next_free(&self, mut has_room: impl FnMut(SmId) -> bool) -> Option<SmId> {
        self.order.iter().copied().find(|&sm| has_room(sm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn order_covers_every_sm_exactly_once() {
        let cfg = GpuConfig::volta_v100();
        let policy = PlacementPolicy::new(&cfg);
        assert_eq!(policy.order().len(), cfg.num_sms());
        let distinct: HashSet<SmId> = policy.order().iter().copied().collect();
        assert_eq!(distinct.len(), cfg.num_sms());
    }

    #[test]
    fn first_forty_slots_are_one_sm_per_tpc() {
        let cfg = GpuConfig::volta_v100();
        let policy = PlacementPolicy::new(&cfg);
        let first: Vec<SmId> = policy.order()[..40].to_vec();
        // One SM per TPC, all even (first sibling).
        let tpcs: HashSet<usize> = first.iter().map(|s| s.index() / 2).collect();
        assert_eq!(tpcs.len(), 40);
        assert!(first.iter().all(|s| s.index() % 2 == 0));
        // Next 40 are the siblings.
        let second: Vec<SmId> = policy.order()[40..80].to_vec();
        assert!(second.iter().all(|s| s.index() % 2 == 1));
    }

    #[test]
    fn order_interleaves_across_gpcs_first() {
        let cfg = GpuConfig::volta_v100();
        let policy = PlacementPolicy::new(&cfg);
        // The first 6 placements hit 6 distinct GPCs.
        let gpcs: Vec<usize> = policy.order()[..6]
            .iter()
            .map(|&s| cfg.gpc_of_sm(s).index())
            .collect();
        let distinct: HashSet<usize> = gpcs.iter().copied().collect();
        assert_eq!(distinct.len(), 6, "first wave must span all GPCs: {gpcs:?}");
    }

    #[test]
    fn short_gpcs_drop_out_of_late_rounds() {
        let cfg = GpuConfig::volta_v100();
        let policy = PlacementPolicy::new(&cfg);
        // Rounds 0–5 produce 6 SMs each (36); round 6 only the four
        // 7-TPC GPCs contribute (4) → first slot block = 40.
        let seventh_round: Vec<usize> = policy.order()[36..40]
            .iter()
            .map(|&s| cfg.gpc_of_sm(s).index())
            .collect();
        assert_eq!(seventh_round.len(), 4);
        assert!(
            !seventh_round.contains(&4) && !seventh_round.contains(&5),
            "6-TPC GPCs must not appear in round 7: {seventh_round:?}"
        );
    }

    #[test]
    fn next_free_respects_occupancy() {
        let cfg = GpuConfig::volta_v100();
        let policy = PlacementPolicy::new(&cfg);
        let first = policy.order()[0];
        let second = policy.order()[1];
        assert_eq!(policy.next_free(|_| true), Some(first));
        assert_eq!(policy.next_free(|sm| sm != first), Some(second));
        assert_eq!(policy.next_free(|_| false), None);
    }
}
