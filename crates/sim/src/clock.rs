//! The per-SM `clock()` register model (§4.1, Fig 6).
//!
//! NVIDIA GPUs expose a 32-bit cycle counter per SM. The paper's key
//! synchronization insight is its skew structure: SMs of the same TPC
//! read nearly identical values (average difference < 5 cycles), SMs of
//! the same GPC are close (< 15 cycles), while different GPCs started
//! counting at wildly different epochs (Fig 6 shows a ~4× spread on the
//! order of 10⁹). The receiver and sender can therefore synchronise on
//! the *lower bits* of their local clocks without any communication —
//! but only because they are co-located.

use gnc_common::fault::FaultPlan;
use gnc_common::ids::SmId;
use gnc_common::rng::{experiment_rng, symmetric_skew};
use gnc_common::{Cycle, GpuConfig};
use std::sync::Arc;

/// Per-SM clock offsets drawn once at GPU construction.
#[derive(Debug, Clone)]
pub struct ClockDomain {
    /// 64-bit offset of each SM's counter relative to simulation cycle 0.
    offsets: Vec<u64>,
    /// Optional fault injection: per-SM drift plus transient glitches
    /// perturb every read.
    fault: Option<Arc<FaultPlan>>,
}

impl ClockDomain {
    /// Draws the clock epoch structure for `cfg`, deterministically from
    /// `seed`.
    ///
    /// Offsets are composed per the measured hierarchy: a large random
    /// per-GPC epoch (spread over `cfg.clock.gpc_epoch_spread`), a small
    /// per-TPC jitter bounded so same-GPC SMs stay within
    /// `max_gpc_skew`, and a tiny per-SM jitter bounded so TPC siblings
    /// stay within `max_tpc_skew`.
    pub fn new(cfg: &GpuConfig, seed: u64) -> Self {
        let mut offsets = Vec::new();
        Self::draw_offsets(cfg, seed, &mut offsets);
        Self {
            offsets,
            fault: None,
        }
    }

    /// Redraws the epoch structure for a (possibly different) `seed` in
    /// place and detaches any fault plan — the counterpart of
    /// [`new`](Self::new) for a machine being reset between trials. The
    /// RNG draw order is shared with the constructor, so a reset domain
    /// is indistinguishable from a freshly built one.
    pub fn reset(&mut self, cfg: &GpuConfig, seed: u64) {
        Self::draw_offsets(cfg, seed, &mut self.offsets);
        self.fault = None;
    }

    fn draw_offsets(cfg: &GpuConfig, seed: u64, offsets: &mut Vec<u64>) {
        let mut rng = experiment_rng("clock-domain", seed);
        use rand::Rng;
        let gpc_epochs: Vec<u64> = (0..cfg.num_gpcs)
            .map(|_| rng.gen_range(0..cfg.clock.gpc_epoch_spread.max(1)))
            .collect();
        // Budget the skews: half the TPC-level budget is per-SM jitter.
        let sm_jitter_max = cfg.clock.max_tpc_skew / 2;
        let tpc_jitter_max = (cfg
            .clock
            .max_gpc_skew
            .saturating_sub(cfg.clock.max_tpc_skew))
            / 2;
        let tpc_jitters: Vec<i64> = (0..cfg.num_tpcs())
            .map(|_| symmetric_skew(&mut rng, tpc_jitter_max))
            .collect();
        offsets.clear();
        offsets.extend((0..cfg.num_sms()).map(|s| {
            let sm = SmId::new(s);
            let gpc = cfg.gpc_of_sm(sm);
            let tpc = cfg.tpc_of_sm(sm);
            let jitter = tpc_jitters[tpc.index()] + symmetric_skew(&mut rng, sm_jitter_max);
            gpc_epochs[gpc.index()].saturating_add_signed(jitter)
        }));
    }

    /// Attaches a fault plan: subsequent reads see per-SM drift (the
    /// oscillators of distinct SMs tick at slightly different rates)
    /// and transient glitch jumps, as decided by the plan.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.fault = Some(plan);
    }

    /// The raw 64-bit counter of `sm` at simulation cycle `now` (used for
    /// plotting Fig 6; real hardware exposes only the low 32 bits).
    #[inline]
    pub fn read64(&self, sm: SmId, now: Cycle) -> u64 {
        let base = self.offsets[sm.index()].wrapping_add(now);
        match &self.fault {
            Some(plan) => base.wrapping_add_signed(plan.clock_offset(sm.index() as u64, now)),
            None => base,
        }
    }

    /// The architectural 32-bit `clock()` value of `sm` at `now`
    /// (wraps around, like the hardware register).
    #[inline]
    pub fn read32(&self, sm: SmId, now: Cycle) -> u32 {
        self.read64(sm, now) as u32
    }

    /// Number of SMs covered.
    pub fn num_sms(&self) -> usize {
        self.offsets.len()
    }

    /// Whether a fault plan perturbs reads. Without one, reads are the
    /// pure affine function `offset + now`, so future values (and clock
    /// alignment times) can be predicted exactly.
    pub fn has_fault(&self) -> bool {
        self.fault.is_some()
    }

    /// First cycle strictly after `now` at which `sm`'s read can deviate
    /// from the affine extrapolation `read(now) + (t - now)`, or `None`
    /// when it never will. On `[now, boundary)` the fault offset is
    /// constant, so clock-alignment wake times computed from the current
    /// read are exact up to the boundary — the event-driven scheduler
    /// uses this to fast-forward clock-spinning warps under faults.
    pub fn stable_until(&self, sm: SmId, now: Cycle) -> Option<Cycle> {
        match &self.fault {
            Some(plan) => plan.clock_offset_stable_until(sm.index() as u64, now),
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnc_common::ids::TpcId;

    fn domain() -> (GpuConfig, ClockDomain) {
        let cfg = GpuConfig::volta_v100();
        let dom = ClockDomain::new(&cfg, 0);
        (cfg, dom)
    }

    #[test]
    fn tpc_siblings_are_within_the_tpc_skew_bound() {
        let (cfg, dom) = domain();
        for t in 0..cfg.num_tpcs() {
            let sms = cfg.sms_of_tpc(TpcId::new(t));
            let a = dom.read64(sms[0], 0);
            let b = dom.read64(sms[1], 0);
            assert!(
                a.abs_diff(b) <= u64::from(cfg.clock.max_tpc_skew),
                "TPC{t}: skew {} exceeds bound",
                a.abs_diff(b)
            );
        }
    }

    #[test]
    fn same_gpc_sms_are_within_the_gpc_skew_bound() {
        let (cfg, dom) = domain();
        for g in 0..cfg.num_gpcs {
            let sms: Vec<SmId> = (0..cfg.num_sms())
                .map(SmId::new)
                .filter(|&s| cfg.gpc_of_sm(s).index() == g)
                .collect();
            for &a in &sms {
                for &b in &sms {
                    let d = dom.read64(a, 0).abs_diff(dom.read64(b, 0));
                    assert!(
                        d <= u64::from(cfg.clock.max_gpc_skew),
                        "GPC{g}: {a}/{b} skew {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn different_gpcs_have_large_epoch_differences() {
        let (cfg, dom) = domain();
        // At least one pair of GPCs must differ by far more than the
        // intra-GPC skew (Fig 6's 4× spread).
        let epochs: Vec<u64> = (0..cfg.num_gpcs)
            .map(|g| {
                let sm = (0..cfg.num_sms())
                    .map(SmId::new)
                    .find(|&s| cfg.gpc_of_sm(s).index() == g)
                    .expect("every GPC has SMs");
                dom.read64(sm, 0)
            })
            .collect();
        let max = epochs.iter().max().unwrap();
        let min = epochs.iter().min().unwrap();
        assert!(
            max - min > 1_000_000,
            "GPC epochs too close: spread {}",
            max - min
        );
    }

    #[test]
    fn clocks_advance_with_simulation_time() {
        let (_, dom) = domain();
        let sm = SmId::new(0);
        assert_eq!(dom.read64(sm, 100) - dom.read64(sm, 0), 100);
    }

    #[test]
    fn read32_wraps() {
        let (_, dom) = domain();
        let sm = SmId::new(0);
        let base = dom.read64(sm, 0);
        let to_wrap = u64::from(u32::MAX) - (base & 0xFFFF_FFFF) + 1;
        let before = dom.read32(sm, to_wrap - 1);
        let after = dom.read32(sm, to_wrap);
        assert_eq!(before, u32::MAX);
        assert_eq!(after, 0);
    }

    #[test]
    fn drift_faults_skew_reads_deterministically() {
        use gnc_common::fault::{FaultConfig, FaultPlan};

        let cfg = GpuConfig::volta_v100();
        let clean = ClockDomain::new(&cfg, 3);
        let mut faulty = ClockDomain::new(&cfg, 3);
        faulty.set_fault_plan(FaultPlan::new(FaultConfig {
            clock_drift_ppm: 500,
            ..FaultConfig::off()
        }));
        let now = 10_000_000;
        let drifted = (0..cfg.num_sms())
            .filter(|&s| clean.read64(SmId::new(s), now) != faulty.read64(SmId::new(s), now))
            .count();
        assert_eq!(
            drifted,
            cfg.num_sms(),
            "500 ppm over 1e7 cycles shows on every SM"
        );
        // Identical plan, identical reads.
        let mut again = ClockDomain::new(&cfg, 3);
        again.set_fault_plan(FaultPlan::new(FaultConfig {
            clock_drift_ppm: 500,
            ..FaultConfig::off()
        }));
        for s in 0..cfg.num_sms() {
            assert_eq!(
                faulty.read64(SmId::new(s), now),
                again.read64(SmId::new(s), now)
            );
        }
    }

    #[test]
    fn stable_until_bounds_offset_changes() {
        use gnc_common::fault::{FaultConfig, FaultPlan};

        let cfg = GpuConfig::volta_v100();
        let clean = ClockDomain::new(&cfg, 11);
        assert_eq!(clean.stable_until(SmId::new(0), 123), None);

        let mut faulty = ClockDomain::new(&cfg, 11);
        faulty.set_fault_plan(FaultPlan::new(FaultConfig {
            clock_drift_ppm: 700,
            clock_glitch_rate: 0.3,
            clock_glitch_cycles: 9,
            ..FaultConfig::off().with_seed(2)
        }));
        let sm = SmId::new(5);
        let mut now: Cycle = 0;
        let mut checked = 0u64;
        while checked < 50_000 {
            let boundary = faulty
                .stable_until(sm, now)
                .expect("clock faults are configured");
            assert!(boundary > now, "boundary must move forward");
            let base = faulty.read64(sm, now);
            for t in now..boundary.min(now + 2_048) {
                assert_eq!(
                    faulty.read64(sm, t),
                    base + (t - now),
                    "read deviated inside the stable interval at t={t}"
                );
                checked += 1;
            }
            now = boundary;
        }
    }

    #[test]
    fn same_seed_reproduces_same_domain() {
        let cfg = GpuConfig::volta_v100();
        let a = ClockDomain::new(&cfg, 7);
        let b = ClockDomain::new(&cfg, 7);
        for s in 0..cfg.num_sms() {
            assert_eq!(a.read64(SmId::new(s), 0), b.read64(SmId::new(s), 0));
        }
        let c = ClockDomain::new(&cfg, 8);
        assert!((0..cfg.num_sms()).any(|s| a.read64(SmId::new(s), 0) != c.read64(SmId::new(s), 0)));
    }
}
