//! The memory coalescer.
//!
//! When the threads of a warp access a contiguous block or the same cache
//! line, the hardware merges their accesses into one memory transaction
//! (§2.1). Each transaction carries only the bytes its threads actually
//! touch, which is the mechanism behind §5's coalescing results: 32
//! scattered 4-byte accesses become 32 small packets (2 flits each at
//! 40-byte flits — 64 flits of channel traffic), while the same 128
//! bytes fully coalesced is a single 5-flit packet. A coalescing sender
//! therefore cannot create observable contention (Fig 13).

/// Bytes one thread touches per access (a 32-bit word).
pub const ACCESS_BYTES: u32 = 4;

/// One coalesced memory transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Transaction {
    /// Base address of the cache line.
    pub line_base: u64,
    /// Bytes of the line actually touched (distinct 4-byte words × 4).
    pub bytes: u32,
}

/// Merges per-thread byte addresses into per-line transactions.
///
/// Returns one [`Transaction`] per distinct cache line touched, in
/// first-touch order (deterministic), each sized by the number of
/// distinct 4-byte words accessed within the line.
///
/// ```
/// use gnc_sim::coalesce::coalesce;
///
/// // All 32 threads in one line → a single 128-byte transaction.
/// let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
/// let txns = coalesce(&addrs, 128);
/// assert_eq!(txns.len(), 1);
/// assert_eq!(txns[0].bytes, 128);
///
/// // Stride of one line per thread → 4 transactions of 4 bytes each.
/// let addrs: Vec<u64> = (0..4).map(|i| i * 128).collect();
/// let txns = coalesce(&addrs, 128);
/// assert_eq!(txns.len(), 4);
/// assert!(txns.iter().all(|t| t.bytes == 4));
/// ```
pub fn coalesce(addrs: &[u64], line_bytes: u64) -> Vec<Transaction> {
    debug_assert!(
        line_bytes.is_power_of_two(),
        "line size must be a power of two"
    );
    assert!(
        line_bytes <= 128 * u64::from(ACCESS_BYTES),
        "line size exceeds the coalescer's word-mask width"
    );
    let line_mask = !(line_bytes - 1);
    // Distinct words within a line tracked as a bitmask (≤128 words per
    // line), keeping the per-address loop allocation-free.
    let mut txns: Vec<(Transaction, u128)> = Vec::new();
    for &addr in addrs {
        let base = addr & line_mask;
        let word = 1u128 << ((addr & !line_mask) / u64::from(ACCESS_BYTES));
        match txns.iter_mut().find(|(t, _)| t.line_base == base) {
            Some((txn, words)) => {
                if *words & word == 0 {
                    *words |= word;
                    txn.bytes = (txn.bytes + ACCESS_BYTES).min(line_bytes as u32);
                }
            }
            None => txns.push((
                Transaction {
                    line_base: base,
                    bytes: ACCESS_BYTES,
                },
                word,
            )),
        }
    }
    txns.into_iter().map(|(t, _)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_empty_output() {
        assert!(coalesce(&[], 128).is_empty());
    }

    #[test]
    fn fully_coalesced_warp_is_one_full_line_transaction() {
        let addrs: Vec<u64> = (0..32u64).map(|i| 0x1000 + i * 4).collect();
        let txns = coalesce(&addrs, 128);
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].line_base, 0x1000);
        assert_eq!(txns[0].bytes, 128);
    }

    #[test]
    fn fully_uncoalesced_warp_is_thirtytwo_small_transactions() {
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 128).collect();
        let txns = coalesce(&addrs, 128);
        assert_eq!(txns.len(), 32);
        assert!(txns.iter().all(|t| t.bytes == 4));
    }

    #[test]
    fn partial_coalescing_counts_distinct_lines_and_bytes() {
        // 8 threads per line over 4 lines → 4 transactions of 32 bytes
        // (the §5 multi-level encoding uses exactly this dial).
        let addrs: Vec<u64> = (0..32u64).map(|i| (i / 8) * 128 + (i % 8) * 4).collect();
        let txns = coalesce(&addrs, 128);
        assert_eq!(txns.len(), 4);
        assert!(txns.iter().all(|t| t.bytes == 32));
    }

    #[test]
    fn duplicate_words_count_once() {
        let addrs = [0x100u64, 0x100, 0x104, 0x100];
        let txns = coalesce(&addrs, 0x100);
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].bytes, 8);
    }

    #[test]
    fn order_is_first_touch() {
        let addrs = [0x300u64, 0x100, 0x300, 0x200];
        let lines: Vec<u64> = coalesce(&addrs, 0x100)
            .iter()
            .map(|t| t.line_base)
            .collect();
        assert_eq!(lines, vec![0x300, 0x100, 0x200]);
    }

    #[test]
    fn unaligned_addresses_snap_to_line_base() {
        let addrs = [0x17Fu64, 0x101];
        let txns = coalesce(&addrs, 0x100);
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].line_base, 0x100);
        // 0x17F → word 0x17C, 0x101 → word 0x100: two distinct words.
        assert_eq!(txns[0].bytes, 8);
    }

    #[test]
    fn bytes_never_exceed_line_size() {
        let addrs: Vec<u64> = (0..64u64).map(|i| i * 4).collect(); // 2 lines
        let txns = coalesce(&addrs, 128);
        assert_eq!(txns.len(), 2);
        assert!(txns.iter().all(|t| t.bytes == 128));
    }
}
