//! The whole-GPU engine.
//!
//! [`Gpu`] owns the SMs, the clock domain, the two NoC subnets, the
//! memory system, and the block scheduler, and advances them in lockstep
//! one core cycle at a time. Kernels are launched into streams
//! (cudaStream-style multiprogramming, §2.1): kernels in the same stream
//! serialise, kernels in different streams run concurrently — which is
//! how the trojan and the spy co-exist on the GPU.

use crate::block_sched::PlacementPolicy;
use crate::clock::ClockDomain;
use crate::kernel::{KernelProgram, Recorder};
use crate::sm::Sm;
use gnc_common::hash::FastHashMap;
use gnc_common::ids::{BlockId, KernelId, SmId, StreamId};
use gnc_common::telemetry::{NullProbe, Probe};
use gnc_common::{ConfigError, Cycle, GpuConfig};
use gnc_mem::subsystem::MemorySubsystem;
use gnc_noc::event::{ComponentId, EventCalendar, NextEvent, Wake};
use gnc_noc::fabric::{ReplyFabric, RequestFabric};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// GPUs constructed process-wide (the bench harness's trial counter).
static GPUS_BUILT: AtomicU64 = AtomicU64::new(0);

/// In-place [`Gpu::reset`]s performed process-wide. Together with
/// [`GPUS_BUILT`] this accounts for every trial: pooled trials reset,
/// unpooled (or shape-mismatched) trials build.
static GPUS_RESET: AtomicU64 = AtomicU64::new(0);

/// Total GPU instances constructed by this process so far. Each
/// experiment trial needs a post-construction machine, so builds plus
/// [`gpus_reset`] resets form a trial counter for throughput reporting.
pub fn gpus_built() -> u64 {
    GPUS_BUILT.load(Ordering::Relaxed)
}

/// Total in-place [`Gpu::reset`] calls so far (trials that reused a
/// pooled machine instead of constructing one).
pub fn gpus_reset() -> u64 {
    GPUS_RESET.load(Ordering::Relaxed)
}

/// Process-wide default for [`LoopMode`]; `true` selects `Naive`.
static DEFAULT_NAIVE_LOOP: AtomicBool = AtomicBool::new(false);

/// [`EventCalendar`] component ids used by the engine. The lifecycle,
/// the two subnets, and the memory system are coarse components; every
/// SM schedules individually (replies wake exactly one SM, and in a
/// memory-bound phase most SMs sleep in `WaitMem` with nothing to do).
const LIFECYCLE: ComponentId = 0;
const REQ_FABRIC: ComponentId = 1;
const REPLY_FABRIC: ComponentId = 2;
const MEM: ComponentId = 3;
const SM_BASE: ComponentId = 4;

/// How [`Gpu::run_until_idle`] advances time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopMode {
    /// Jump over provably dead cycles using the components' merged
    /// [`NextEvent`] reports (the default). Bit-identical to `Naive` —
    /// guarded by the `simulator_fidelity` equality tests.
    FastForward,
    /// Tick every cycle (the reference engine).
    Naive,
}

/// Sets the [`LoopMode`] newly constructed GPUs start in. Existing
/// instances are unaffected; see [`Gpu::set_loop_mode`].
pub fn set_default_loop_mode(mode: LoopMode) {
    DEFAULT_NAIVE_LOOP.store(mode == LoopMode::Naive, Ordering::Relaxed);
}

/// Why a run loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Everything launched has finished and the fabrics are drained.
    Idle {
        /// Cycle at which the GPU went idle.
        at: Cycle,
    },
    /// The cycle budget was exhausted first.
    Timeout {
        /// Cycle at which the run gave up.
        at: Cycle,
    },
}

impl RunOutcome {
    /// The cycle the loop stopped at.
    pub fn cycle(self) -> Cycle {
        match self {
            RunOutcome::Idle { at } | RunOutcome::Timeout { at } => at,
        }
    }

    /// Whether the GPU reached idle.
    pub fn is_idle(self) -> bool {
        matches!(self, RunOutcome::Idle { .. })
    }
}

/// Lifetime bookkeeping of one launched kernel.
struct KernelState {
    program: Box<dyn KernelProgram>,
    stream: StreamId,
    started: bool,
    pending_blocks: VecDeque<BlockId>,
    active_blocks: usize,
    finished_blocks: usize,
    launch_cycle: Cycle,
    start_cycle: Option<Cycle>,
    end_cycle: Option<Cycle>,
    block_spans: Vec<BlockSpan>,
    /// `block → index into block_spans`, so retirement does not scan the
    /// span list (blocks are placed at most once per kernel).
    span_index: FastHashMap<BlockId, usize>,
}

/// Placement and lifetime of one thread block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSpan {
    /// The block.
    pub block: BlockId,
    /// SM it ran on.
    pub sm: SmId,
    /// Cycle it was placed.
    pub placed_at: Cycle,
    /// Cycle it finished, if it has.
    pub finished_at: Option<Cycle>,
}

/// The simulated GPU.
///
/// The probe parameter `P` selects the telemetry sink. The default
/// [`NullProbe`] compiles every hook to a no-op (`P::ENABLED` is a
/// `const false`, so even the hooks' argument construction folds away);
/// [`with_probe`](Gpu::with_probe) swaps in a live collector such as
/// [`gnc_common::telemetry::Collector`].
pub struct Gpu<P: Probe = NullProbe> {
    cfg: GpuConfig,
    clock: ClockDomain,
    sms: Vec<Sm>,
    request_fabric: RequestFabric,
    reply_fabric: ReplyFabric,
    mem: MemorySubsystem,
    policy: PlacementPolicy,
    kernels: Vec<KernelState>,
    recorder: Recorder,
    now: Cycle,
    fault: Option<std::sync::Arc<gnc_common::fault::FaultPlan>>,
    loop_mode: LoopMode,
    /// Indices of SMs with resident blocks, rebuilt on placement and
    /// retirement. A block stays resident until every request it issued
    /// has drained, so this list bounds which SMs can tick to an effect
    /// or receive replies.
    active_sms: Vec<usize>,
    /// Scratch list of SMs ticked in the current gated cycle (reused
    /// across cycles to avoid per-cycle allocation); only these SMs can
    /// hold newly finished blocks, so retirement scans just them.
    ticked_sms: Vec<usize>,
    /// The fast-forward run loop's event calendar, owned by the machine
    /// so repeated [`run_until_idle`](Self::run_until_idle) calls reuse
    /// one allocation instead of rebuilding it per run.
    run_cal: EventCalendar,
    probe: P,
}

impl<P: Probe> fmt::Debug for Gpu<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gpu")
            .field("config", &self.cfg.name)
            .field("now", &self.now)
            .field("kernels", &self.kernels.len())
            .finish_non_exhaustive()
    }
}

impl Gpu {
    /// Builds a GPU from `cfg` with clock seed 0.
    ///
    /// # Errors
    ///
    /// Returns the validation error when `cfg` is inconsistent.
    pub fn new(cfg: GpuConfig) -> Result<Self, ConfigError> {
        Self::with_clock_seed(cfg, 0)
    }

    /// Builds a GPU with an explicit clock-domain seed (distinct seeds
    /// model distinct boot epochs; Fig 6 is one such draw).
    ///
    /// # Errors
    ///
    /// Returns the validation error when `cfg` is inconsistent.
    pub fn with_clock_seed(cfg: GpuConfig, clock_seed: u64) -> Result<Self, ConfigError> {
        cfg.validate()?;
        GPUS_BUILT.fetch_add(1, Ordering::Relaxed);
        let clock = ClockDomain::new(&cfg, clock_seed);
        let sms: Vec<Sm> = (0..cfg.num_sms())
            .map(|s| Sm::new(SmId::new(s), &cfg))
            .collect();
        let run_cal = EventCalendar::new(SM_BASE as usize + sms.len());
        let request_fabric = RequestFabric::new(&cfg);
        let reply_fabric = ReplyFabric::new(&cfg);
        let mem = MemorySubsystem::new(&cfg);
        let policy = PlacementPolicy::new(&cfg);
        Ok(Self {
            cfg,
            clock,
            sms,
            request_fabric,
            reply_fabric,
            mem,
            policy,
            kernels: Vec::new(),
            recorder: Recorder::new(),
            now: 0,
            fault: None,
            loop_mode: if DEFAULT_NAIVE_LOOP.load(Ordering::Relaxed) {
                LoopMode::Naive
            } else {
                LoopMode::FastForward
            },
            active_sms: Vec::new(),
            ticked_sms: Vec::new(),
            run_cal,
            probe: NullProbe,
        })
    }

    /// Builds a GPU with a fault-injection plan wired into every
    /// fault-capable subsystem: the NoC muxes of both subnets
    /// (background-traffic bursts), the clock domain (drift and
    /// glitches), the measurement path (sample jitter / drop /
    /// duplication), and the L2 slices (hot-spot stalls).
    ///
    /// The plan is seeded and order-independent, so two GPUs built with
    /// the same configuration, seeds, and workload behave bit-identically.
    ///
    /// # Errors
    ///
    /// Returns the validation error when `cfg` is inconsistent.
    pub fn with_faults(
        cfg: GpuConfig,
        clock_seed: u64,
        plan: std::sync::Arc<gnc_common::fault::FaultPlan>,
    ) -> Result<Self, ConfigError> {
        let mut gpu = Self::with_clock_seed(cfg, clock_seed)?;
        gpu.clock.set_fault_plan(std::sync::Arc::clone(&plan));
        gpu.request_fabric.set_fault_plan(&plan);
        gpu.reply_fabric.set_fault_plan(&plan);
        gpu.mem.set_fault_plan(&plan);
        gpu.recorder.set_fault_plan(std::sync::Arc::clone(&plan));
        gpu.fault = Some(plan);
        Ok(gpu)
    }
}

impl<P: Probe> Gpu<P> {
    /// Rebuilds this GPU with `probe` as its telemetry sink, preserving
    /// all simulation state. Typically called right after construction:
    /// `Gpu::new(cfg)?.with_probe(Collector::for_config(&cfg))`.
    pub fn with_probe<Q: Probe>(self, probe: Q) -> Gpu<Q> {
        Gpu {
            cfg: self.cfg,
            clock: self.clock,
            sms: self.sms,
            request_fabric: self.request_fabric,
            reply_fabric: self.reply_fabric,
            mem: self.mem,
            policy: self.policy,
            kernels: self.kernels,
            recorder: self.recorder,
            now: self.now,
            fault: self.fault,
            loop_mode: self.loop_mode,
            active_sms: self.active_sms,
            ticked_sms: self.ticked_sms,
            run_cal: self.run_cal,
            probe,
        }
    }

    /// The attached telemetry probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Mutable access to the telemetry probe (e.g. to finalise or drain
    /// a collector between experiment phases).
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Consumes the GPU and returns its probe (to harvest a collector
    /// after a run).
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// The fault plan wired into this GPU, if any.
    pub fn fault_plan(&self) -> Option<&std::sync::Arc<gnc_common::fault::FaultPlan>> {
        self.fault.as_ref()
    }

    /// Restores this machine to the state [`Gpu::with_clock_seed`] would
    /// have produced for `(same config, clock_seed)` — in place, reusing
    /// every allocation (SM queues, fabric arenas, L2 sets, MSHR maps,
    /// calendars). Clears kernels, records, and all in-flight state;
    /// redraws the clock epochs from `clock_seed`; detaches any fault
    /// plan; and re-reads the process-wide default [`LoopMode`], exactly
    /// as a fresh build does. The telemetry probe is **not** touched —
    /// callers pooling probed machines reset or harvest it themselves.
    ///
    /// A reset machine is observationally identical to a fresh one: the
    /// `reset_reuse_is_bit_identical_to_fresh_build` fidelity test pins
    /// byte-identical traces, records, and stats.
    pub fn reset(&mut self, clock_seed: u64) {
        GPUS_RESET.fetch_add(1, Ordering::Relaxed);
        self.clock.reset(&self.cfg, clock_seed);
        for sm in &mut self.sms {
            sm.reset();
        }
        self.request_fabric.reset();
        self.reply_fabric.reset();
        self.mem.reset();
        self.kernels.clear();
        self.recorder.reset();
        self.now = 0;
        self.fault = None;
        self.loop_mode = if DEFAULT_NAIVE_LOOP.load(Ordering::Relaxed) {
            LoopMode::Naive
        } else {
            LoopMode::FastForward
        };
        self.active_sms.clear();
        self.ticked_sms.clear();
        self.run_cal.reset();
    }

    /// [`reset`](Self::reset) followed by wiring `plan` into every
    /// fault-capable subsystem — the in-place counterpart of
    /// [`Gpu::with_faults`].
    pub fn reset_with_faults(
        &mut self,
        clock_seed: u64,
        plan: std::sync::Arc<gnc_common::fault::FaultPlan>,
    ) {
        self.reset(clock_seed);
        self.clock.set_fault_plan(std::sync::Arc::clone(&plan));
        self.request_fabric.set_fault_plan(&plan);
        self.reply_fabric.set_fault_plan(&plan);
        self.mem.set_fault_plan(&plan);
        self.recorder.set_fault_plan(std::sync::Arc::clone(&plan));
        self.fault = Some(plan);
    }

    /// The configuration this GPU was built from.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Number of SMs.
    pub fn num_sms(&self) -> usize {
        self.sms.len()
    }

    /// Current simulation cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The clock domain (for analysis; programs read it via the context).
    pub fn clock(&self) -> &ClockDomain {
        &self.clock
    }

    /// The instrumentation records collected so far.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Clears collected records (between experiment phases).
    pub fn clear_records(&mut self) {
        self.recorder.clear();
    }

    /// Warms `lines` cache lines starting at `base` into L2, as the
    /// paper's kernels do before timing anything (§4.2).
    pub fn preload_range(&mut self, base: u64, lines: u64) {
        self.mem.preload_range(base, lines);
    }

    /// Read access to the memory system (stats, residency checks).
    pub fn memory(&self) -> &MemorySubsystem {
        &self.mem
    }

    /// Read access to the request fabric (utilisation stats).
    pub fn request_fabric(&self) -> &RequestFabric {
        &self.request_fabric
    }

    /// Packets injected by `sm` so far.
    pub fn injected_packets(&self, sm: SmId) -> u64 {
        self.sms[sm.index()].injected_packets()
    }

    /// Launches `kernel` into `stream`; kernels in one stream serialise,
    /// kernels in different streams run concurrently.
    pub fn launch(&mut self, kernel: Box<dyn KernelProgram>, stream: StreamId) -> KernelId {
        let id = KernelId::new(self.kernels.len());
        let pending = (0..kernel.num_blocks()).map(BlockId::new).collect();
        self.kernels.push(KernelState {
            program: kernel,
            stream,
            started: false,
            pending_blocks: pending,
            active_blocks: 0,
            finished_blocks: 0,
            launch_cycle: self.now,
            start_cycle: None,
            end_cycle: None,
            block_spans: Vec::new(),
            span_index: FastHashMap::default(),
        });
        id
    }

    /// Switches this instance's run-loop strategy (see [`LoopMode`]).
    /// Both modes produce bit-identical traces; `Naive` exists as the
    /// reference for the fidelity tests and for debugging.
    pub fn set_loop_mode(&mut self, mode: LoopMode) {
        self.loop_mode = mode;
    }

    /// The run-loop strategy this instance uses.
    pub fn loop_mode(&self) -> LoopMode {
        self.loop_mode
    }

    /// Whether `kernel` has completed all blocks.
    pub fn kernel_finished(&self, kernel: KernelId) -> bool {
        self.kernels[kernel.index()].end_cycle.is_some()
    }

    /// `(start, end)` cycles of `kernel`: start = first block placed,
    /// end = last block finished. `None` until started / finished.
    pub fn kernel_span(&self, kernel: KernelId) -> (Option<Cycle>, Option<Cycle>) {
        let k = &self.kernels[kernel.index()];
        (k.start_cycle, k.end_cycle)
    }

    /// Cycle at which `kernel` was launched (queued); placement may come
    /// later if the stream or the SMs were busy.
    pub fn kernel_launch_cycle(&self, kernel: KernelId) -> Cycle {
        self.kernels[kernel.index()].launch_cycle
    }

    /// Placement and lifetime of each block of `kernel`, in placement
    /// order.
    pub fn block_spans(&self, kernel: KernelId) -> &[BlockSpan] {
        &self.kernels[kernel.index()].block_spans
    }

    fn start_eligible_kernels(&mut self) {
        for i in 0..self.kernels.len() {
            if self.kernels[i].started {
                continue;
            }
            let stream = self.kernels[i].stream;
            let blocked = self.kernels[..i]
                .iter()
                .any(|k| k.stream == stream && k.end_cycle.is_none());
            if !blocked {
                self.kernels[i].started = true;
            }
        }
    }

    /// Whether `sm` can take a block of the kernel running in `stream`
    /// under the configured scheduler policy.
    fn sm_has_room(&self, sm: SmId, stream: StreamId) -> bool {
        if self.sms[sm.index()].resident_blocks() >= self.cfg.max_blocks_per_sm {
            return false;
        }
        match self.cfg.scheduler {
            gnc_common::config::SchedulerPolicy::PaperInterleaved => true,
            gnc_common::config::SchedulerPolicy::StreamIsolated => {
                // §6 partitioning: no TPC may host blocks of two streams.
                let tpc = self.cfg.tpc_of_sm(sm);
                self.cfg.sms_of_tpc(tpc).iter().all(|&other| {
                    self.sms[other.index()]
                        .resident_kernels()
                        .all(|k| self.kernels[k.index()].stream == stream)
                })
            }
        }
    }

    fn rebuild_active_sms(&mut self) {
        self.active_sms.clear();
        self.active_sms.extend(
            self.sms
                .iter()
                .enumerate()
                .filter(|(_, sm)| sm.resident_blocks() > 0)
                .map(|(i, _)| i),
        );
    }

    /// Greedily places pending blocks; returns whether any block was
    /// placed (the active-SM list was rebuilt).
    fn place_blocks(&mut self) -> bool {
        let mut placed = false;
        // Launch-order priority, §4.3 SM visitation order, capacity from
        // the config. Placement is greedy each cycle.
        for ki in 0..self.kernels.len() {
            if !self.kernels[ki].started {
                continue;
            }
            let stream = self.kernels[ki].stream;
            while !self.kernels[ki].pending_blocks.is_empty() {
                let Some(sm) = self.policy.next_free(|sm| self.sm_has_room(sm, stream)) else {
                    break; // no SM fits this kernel; try the next kernel
                };
                let block = self.kernels[ki]
                    .pending_blocks
                    .pop_front()
                    .expect("nonempty checked");
                let kernel_id = KernelId::new(ki);
                let warps = (0..self.kernels[ki].program.warps_per_block())
                    .map(|w| {
                        self.kernels[ki]
                            .program
                            .create_warp(block, gnc_common::ids::WarpId::new(w))
                    })
                    .collect();
                self.sms[sm.index()].place_block(kernel_id, block, warps);
                placed = true;
                let k = &mut self.kernels[ki];
                k.active_blocks += 1;
                k.start_cycle.get_or_insert(self.now);
                k.span_index.insert(block, k.block_spans.len());
                k.block_spans.push(BlockSpan {
                    block,
                    sm,
                    placed_at: self.now,
                    finished_at: None,
                });
            }
        }
        if placed {
            self.rebuild_active_sms();
        }
        placed
    }

    /// Collects finished blocks from the active SMs; returns whether any
    /// block retired (kernel lifecycles may have advanced and the
    /// active-SM list was rebuilt).
    fn retire_blocks(&mut self) -> bool {
        let mut retired = false;
        for i in 0..self.active_sms.len() {
            let sm_idx = self.active_sms[i];
            retired |= self.retire_blocks_of(sm_idx);
        }
        if retired {
            self.rebuild_active_sms();
        }
        retired
    }

    /// [`retire_blocks`](Self::retire_blocks) over only the SMs ticked
    /// this cycle. A block's done-ness changes only while its SM
    /// executes (every reply delivery also wakes the SM into the same
    /// cycle's execute phase), so un-ticked SMs provably hold no newly
    /// finished blocks and the sweeps retire identically.
    fn retire_blocks_ticked(&mut self) -> bool {
        let mut retired = false;
        let ticked = std::mem::take(&mut self.ticked_sms);
        for &sm_idx in &ticked {
            retired |= self.retire_blocks_of(sm_idx);
        }
        self.ticked_sms = ticked;
        if retired {
            self.rebuild_active_sms();
        }
        retired
    }

    /// Collects `sm_idx`'s finished blocks into the kernel ledgers;
    /// returns whether any block retired.
    fn retire_blocks_of(&mut self, sm_idx: usize) -> bool {
        let mut retired = false;
        for (kernel, block) in self.sms[sm_idx].take_finished_blocks() {
            retired = true;
            let k = &mut self.kernels[kernel.index()];
            k.active_blocks -= 1;
            k.finished_blocks += 1;
            if let Some(span) = k
                .span_index
                .get(&block)
                .map(|&i| &mut k.block_spans[i])
                .filter(|s| s.finished_at.is_none())
            {
                span.finished_at = Some(self.now);
            }
            if k.finished_blocks == k.program.num_blocks() {
                k.end_cycle = Some(self.now);
            }
        }
        retired
    }

    /// Advances the GPU one core cycle.
    ///
    /// Components that provably tick to a no-op are skipped (active-set
    /// tracking): SMs with no resident work, and subnets with nothing in
    /// flight. The skips are unconditional because they are exact, fault
    /// injection included — fault decisions are pure functions of
    /// `(seed, site, window)`, so not evaluating them on idle components
    /// cannot perturb any later draw.
    pub fn tick(&mut self) {
        let now = self.now;
        // 0. Kernel lifecycle.
        self.start_eligible_kernels();
        self.place_blocks();
        // 1. Deliver replies that arrived at the SMs. Replies only ever
        // target warps with outstanding requests, whose blocks are still
        // resident, so the fabric's busy set covers every destination.
        if self.reply_fabric.in_flight() > 0 {
            let Self {
                reply_fabric,
                sms,
                probe,
                ..
            } = self;
            reply_fabric.deliver_ready(now, |sm_idx, p| {
                if P::ENABLED {
                    probe.packet_delivered(now, sm_idx);
                }
                sms[sm_idx].on_reply_probed(&p, now, probe);
            });
        }
        // 2. SMs execute and enqueue requests.
        for i in 0..self.active_sms.len() {
            let sm_idx = self.active_sms[i];
            self.sms[sm_idx].tick_probed(
                now,
                &self.clock,
                &mut self.request_fabric,
                &mut self.recorder,
                &mut self.probe,
            );
        }
        // 3. Request subnet moves.
        if self.request_fabric.in_flight() > 0 {
            self.request_fabric.tick_probed(now, &mut self.probe);
            // 4. Requests arriving at slices enter the L2 pipelines.
            let Self {
                request_fabric,
                mem,
                ..
            } = self;
            request_fabric.drain_arrivals(now, |p| mem.push_request(p, now));
        }
        // 5. Memory system advances.
        self.mem.tick_probed(now, &mut self.probe);
        // 6. Ready replies enter the reply subnet (with backpressure;
        // per-destination virtual channels, so one congested GPC cannot
        // head-of-line-block replies bound for the others).
        self.mem
            .drain_replies_probed(&mut self.reply_fabric, &mut self.probe);
        // 7. Reply subnet moves.
        if self.reply_fabric.in_flight() > 0 {
            self.reply_fabric.tick_probed(now, &mut self.probe);
        }
        // 8. Retire finished blocks.
        self.retire_blocks();
        self.now += 1;
    }

    /// One engine cycle driven by the event calendar: identical phase
    /// order to [`tick`](Self::tick), but each phase runs only when its
    /// component is due. Due-ness is maintained by pushes —
    ///
    /// * **Processing-time reschedules.** Every due component is
    ///   rescheduled from its fresh [`NextEvent`] report after its
    ///   phase, even when the phase's work gate (an in-flight counter)
    ///   was false.
    /// * **Same-cycle handoffs.** A phase that hands work to a *later*
    ///   phase of the same cycle marks the receiver due before its
    ///   due-check runs: placement wakes the SMs, an SM injecting grows
    ///   the request fabric's in-flight counter, the reply drain grows
    ///   the reply fabric's.
    /// * **Cross-cycle notifies.** A phase that hands work *backwards*
    ///   (delivery waking an SM already ticked? no — delivery runs
    ///   first; retirement freeing SM room for the next placement)
    ///   marks the receiver busy for the next cycle.
    ///
    /// Every skipped phase is provably a no-op — the component's own
    /// claim, the same one the conservation asserts and the
    /// `simulator_fidelity` equality tests guard — so the trace is
    /// bit-identical to [`tick`](Self::tick). Fault injection needs no
    /// global override: fault decisions are pure functions of
    /// `(seed, site, window)`, components with pending work report
    /// `Busy` (re-evaluating their draws every cycle), and clock-wait
    /// wake estimates are clamped to [`ClockDomain::stable_until`].
    fn tick_gated(&mut self, cal: &mut EventCalendar) {
        let now = self.now;
        // Promote arrived wake-ups into the busy set once: for the rest
        // of the cycle "due" and "busy" coincide, so the phases below
        // read busy bits instead of comparing schedules.
        cal.promote_due(now);
        // 0. Kernel lifecycle. Placement can only make progress when
        // launch()/retirement re-wakes it: an unstarted kernel becomes
        // eligible when its stream predecessor retires its last block,
        // and a placement-blocked block fits only after a retire frees
        // SM room. So after one greedy pass the lifecycle sleeps.
        if cal.is_due(LIFECYCLE, now) {
            self.start_eligible_kernels();
            if self.place_blocks() {
                // Newly placed blocks execute this very cycle; the
                // active list was just rebuilt, so wake every member.
                for &sm_idx in &self.active_sms {
                    cal.make_busy(SM_BASE + sm_idx as ComponentId);
                }
            }
            cal.reschedule(LIFECYCLE, NextEvent::Idle);
        }
        // 1. Deliver replies that arrived at the SMs; each delivery
        // wakes its SM for the execute phase below.
        let mut delivered = false;
        if cal.is_due(REPLY_FABRIC, now) && self.reply_fabric.in_flight() > 0 {
            let Self {
                reply_fabric,
                sms,
                probe,
                ..
            } = self;
            reply_fabric.deliver_ready(now, |sm_idx, p| {
                if P::ENABLED {
                    probe.packet_delivered(now, sm_idx);
                }
                sms[sm_idx].on_reply_probed(&p, now, probe);
                cal.make_busy(SM_BASE + sm_idx as ComponentId);
                delivered = true;
            });
        }
        // 2. Due SMs execute and enqueue requests.
        let rf_before = self.request_fabric.in_flight();
        let mut sm_worked = delivered;
        self.ticked_sms.clear();
        for w in 0..cal.busy_words().len() {
            // Snapshot one word: a reschedule may clear the visited bit,
            // and nothing wakes an SM mid-phase.
            let mut bits = cal.busy_words()[w];
            if w == 0 {
                bits &= !((1u64 << SM_BASE) - 1);
            }
            while bits != 0 {
                let comp = (w * 64) as ComponentId + bits.trailing_zeros() as ComponentId;
                bits &= bits - 1;
                let sm_idx = (comp - SM_BASE) as usize;
                self.sms[sm_idx].tick_probed(
                    now,
                    &self.clock,
                    &mut self.request_fabric,
                    &mut self.recorder,
                    &mut self.probe,
                );
                sm_worked = true;
                self.ticked_sms.push(sm_idx);
                cal.reschedule_near(comp, self.sms[sm_idx].next_event(now, &self.clock), now);
            }
        }
        // 3. Request subnet moves (also due when an SM just injected).
        let req_due = cal.is_due(REQ_FABRIC, now) || self.request_fabric.in_flight() > rf_before;
        if req_due {
            if self.request_fabric.in_flight() > 0 {
                self.request_fabric.tick_probed(now, &mut self.probe);
                // 4. Requests arriving at slices enter the L2 pipelines
                // (push_request moves the memory wake cycle earlier).
                let Self {
                    request_fabric,
                    mem,
                    ..
                } = self;
                request_fabric.drain_arrivals(now, |p| mem.push_request(p, now));
            }
            cal.reschedule_near(
                REQ_FABRIC,
                if self.request_fabric.in_flight() == 0 {
                    NextEvent::Idle
                } else {
                    self.request_fabric.next_event()
                },
                now,
            );
        }
        // 5. Memory system advances (gated internally on its per-slice
        // wake cycles, so this is one counter compare when quiet).
        self.mem.tick_probed(now, &mut self.probe);
        // 6. Ready replies enter the reply subnet (gated internally on
        // the subsystem's reply counter). The memory system's calendar
        // entry is refreshed unconditionally: pushes in phase 4 and the
        // drain both move it, and the reschedule is O(1) when unchanged.
        let rp_before = self.reply_fabric.in_flight();
        self.mem
            .drain_replies_probed(&mut self.reply_fabric, &mut self.probe);
        cal.reschedule_near(MEM, self.mem.next_event(), now);
        // 7. Reply subnet moves (also due when a reply just injected).
        let rep_due = cal.is_due(REPLY_FABRIC, now) || self.reply_fabric.in_flight() > rp_before;
        if rep_due {
            if self.reply_fabric.in_flight() > 0 {
                self.reply_fabric.tick_probed(now, &mut self.probe);
            }
            cal.reschedule_near(
                REPLY_FABRIC,
                if self.reply_fabric.in_flight() == 0 {
                    NextEvent::Idle
                } else {
                    self.reply_fabric.next_event()
                },
                now,
            );
        }
        // 8. Retire finished blocks. Block done-ness only changes when
        // a reply lands or an SM executes, so an all-quiet cycle skips
        // the scan. Retirement re-wakes the lifecycle (stream
        // successors, blocked placements) and parks SMs that just went
        // empty — their stale wake-ups must not keep the machine awake.
        if sm_worked && self.retire_blocks_ticked() {
            cal.make_busy(LIFECYCLE);
            for (i, sm) in self.sms.iter().enumerate() {
                if sm.resident_blocks() == 0 {
                    cal.reschedule(SM_BASE + i as ComponentId, NextEvent::Idle);
                }
            }
        }
        self.now += 1;
    }

    /// Runs for exactly `cycles` cycles.
    pub fn run_for(&mut self, cycles: Cycle) {
        for _ in 0..cycles {
            self.tick();
        }
    }

    /// Runs until every launched kernel has finished and all queues have
    /// drained, or until `max_cycles` more cycles have elapsed.
    ///
    /// In [`LoopMode::FastForward`] (the default) the run is driven by
    /// an [`EventCalendar`]: components push their next wake-up on state
    /// change, phases of a processed cycle run only for due components,
    /// and when nothing is due the loop jumps straight to the earliest
    /// scheduled wake-up — no polling, no detection lag. Every effectful
    /// cycle is still processed in the exact phase order of
    /// [`tick`](Self::tick), so traces, records, and final cycle counts
    /// are bit-identical to [`LoopMode::Naive`].
    pub fn run_until_idle(&mut self, max_cycles: Cycle) -> RunOutcome {
        let deadline = self.now + max_cycles;
        // Watchdog cadence: the supervisor's deadline/cancel check is an
        // atomic load behind a TLS lookup — cheap, but not free enough
        // for every cycle. Every 4096 loop iterations keeps the check in
        // the microsecond range while bounding how long a runaway trial
        // can overshoot its deadline.
        const CHECKPOINT_MASK: u64 = 4096 - 1;
        let mut iterations: u64 = 0;
        if self.loop_mode == LoopMode::Naive {
            while self.now < deadline {
                iterations += 1;
                if iterations & CHECKPOINT_MASK == 0 {
                    gnc_common::supervise::checkpoint();
                }
                if self.is_idle() {
                    return RunOutcome::Idle { at: self.now };
                }
                self.tick();
            }
            return if self.is_idle() {
                RunOutcome::Idle { at: self.now }
            } else {
                RunOutcome::Timeout { at: self.now }
            };
        }
        // The owned calendar is re-seeded per run (a handful of busy
        // bits, no allocation), which keeps it correct across manual
        // `tick()` calls and kernel launches between runs. Everything
        // that currently holds state starts busy; quiescent components
        // park themselves with their first reschedule. It is moved out
        // for the duration because `tick_gated` needs it alongside
        // `&mut self` (the sentinel left behind is allocation-free).
        let mut cal = std::mem::replace(&mut self.run_cal, EventCalendar::new(0));
        if cal.num_components() != SM_BASE as usize + self.sms.len() {
            // A panic unwound past a previous run and the sentinel stuck
            // around; rebuild once rather than index out of bounds.
            cal = EventCalendar::new(SM_BASE as usize + self.sms.len());
        }
        cal.reset();
        cal.make_busy(LIFECYCLE);
        if self.request_fabric.in_flight() > 0 {
            cal.make_busy(REQ_FABRIC);
        }
        if self.reply_fabric.in_flight() > 0 {
            cal.make_busy(REPLY_FABRIC);
        }
        cal.reschedule(MEM, self.mem.next_event());
        for &sm_idx in &self.active_sms {
            cal.make_busy(SM_BASE + sm_idx as ComponentId);
        }
        let early = loop {
            if self.now >= deadline {
                break None;
            }
            iterations += 1;
            if iterations & CHECKPOINT_MASK == 0 {
                gnc_common::supervise::checkpoint();
            }
            if self.is_idle() {
                break Some(RunOutcome::Idle { at: self.now });
            }
            match cal.next_wake() {
                // A busy component needs this very cycle.
                Wake::Now => {}
                Wake::At(at) => {
                    // Jump straight to the next scheduled wake-up
                    // (never past the deadline; `at <= now` means "due
                    // this cycle"). Cycles in between are provably
                    // no-ops for every component.
                    if at >= deadline {
                        self.now = deadline;
                        break None;
                    }
                    if at > self.now {
                        self.now = at;
                    }
                }
                // Nothing will ever wake by itself: the remaining naive
                // ticks are all no-ops, so burn them at once and time
                // out at the deadline exactly as the naive loop would.
                Wake::Never => {
                    self.now = deadline;
                    break None;
                }
            }
            self.tick_gated(&mut cal);
        };
        self.run_cal = cal;
        early.unwrap_or(if self.is_idle() {
            RunOutcome::Idle { at: self.now }
        } else {
            RunOutcome::Timeout { at: self.now }
        })
    }

    /// True when all kernels finished and no packet is in flight.
    pub fn is_idle(&self) -> bool {
        self.kernels.iter().all(|k| k.end_cycle.is_some())
            && self.request_fabric.is_drained()
            && self.reply_fabric.is_drained()
            && self.mem.is_drained()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{AccessKind, WarpContext, WarpProgram, WarpStep};
    use gnc_common::ids::WarpId;

    /// Kernel whose warps issue `batches` waited write batches on the
    /// selected SM only (Algorithm 1 shape: gate on %smid) and record
    /// per-batch latency, then finish.
    struct SmidGatedWriter {
        blocks: usize,
        target_sms: Vec<usize>,
        batches: u32,
    }

    struct GatedWarp {
        target_sms: Vec<usize>,
        batches: u32,
        issued: u32,
        decided: bool,
        active: bool,
        base: u64,
    }

    impl WarpProgram for GatedWarp {
        fn step(&mut self, ctx: &WarpContext) -> WarpStep {
            if !self.decided {
                self.decided = true;
                self.active = self.target_sms.contains(&ctx.sm.index());
            }
            if !self.active || self.issued >= self.batches {
                return WarpStep::Finish;
            }
            self.issued += 1;
            let base = self.base;
            self.base += 32 * 128;
            WarpStep::Memory {
                kind: AccessKind::Write,
                addrs: (0..32u64).map(|i| base + i * 128).collect(),
                wait: true,
            }
        }
    }

    impl crate::kernel::KernelProgram for SmidGatedWriter {
        fn name(&self) -> &str {
            "smid-gated-writer"
        }
        fn num_blocks(&self) -> usize {
            self.blocks
        }
        fn warps_per_block(&self) -> usize {
            1
        }
        fn create_warp(&self, block: BlockId, _warp: WarpId) -> Box<dyn WarpProgram> {
            Box::new(GatedWarp {
                target_sms: self.target_sms.clone(),
                batches: self.batches,
                issued: 0,
                decided: false,
                active: false,
                base: 0x100000 * (block.index() as u64 + 1),
            })
        }
    }

    #[test]
    fn gpu_builds_and_idles_immediately() {
        let mut gpu = Gpu::new(GpuConfig::volta_v100()).expect("valid config");
        assert!(gpu.is_idle());
        let outcome = gpu.run_until_idle(10);
        assert!(outcome.is_idle());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = GpuConfig::volta_v100();
        cfg.noc.subnets = 1;
        assert!(Gpu::new(cfg).is_err());
    }

    #[test]
    fn single_kernel_runs_to_completion() {
        let mut gpu = Gpu::new(GpuConfig::volta_v100()).expect("valid config");
        gpu.preload_range(0, 40 * 48);
        let k = gpu.launch(
            Box::new(SmidGatedWriter {
                blocks: 80,
                target_sms: vec![0],
                batches: 4,
            }),
            StreamId::new(0),
        );
        let outcome = gpu.run_until_idle(100_000);
        assert!(outcome.is_idle(), "run timed out: {outcome:?}");
        assert!(gpu.kernel_finished(k));
        let (start, end) = gpu.kernel_span(k);
        assert!(start.unwrap() < end.unwrap());
        // 80 blocks placed on 80 distinct SMs.
        let sms: std::collections::HashSet<SmId> =
            gpu.block_spans(k).iter().map(|s| s.sm).collect();
        assert_eq!(sms.len(), 80);
    }

    #[test]
    fn blocks_place_in_policy_order() {
        let mut gpu = Gpu::new(GpuConfig::volta_v100()).expect("valid config");
        let k = gpu.launch(
            Box::new(SmidGatedWriter {
                blocks: 40,
                target_sms: vec![],
                batches: 0,
            }),
            StreamId::new(0),
        );
        gpu.run_until_idle(10_000);
        let spans = gpu.block_spans(k);
        assert_eq!(spans.len(), 40);
        // 40 blocks land on one SM per TPC, all first-siblings.
        let tpcs: std::collections::HashSet<usize> =
            spans.iter().map(|s| s.sm.index() / 2).collect();
        assert_eq!(tpcs.len(), 40);
        assert!(spans.iter().all(|s| s.sm.index() % 2 == 0));
    }

    #[test]
    fn two_streams_colocate_on_tpc_siblings() {
        // §4.3's headline: 40 sender blocks then 40 receiver blocks give
        // one of each per TPC.
        let mut gpu = Gpu::new(GpuConfig::volta_v100()).expect("valid config");
        let sender = gpu.launch(
            Box::new(SmidGatedWriter {
                blocks: 40,
                target_sms: vec![],
                batches: 0,
            }),
            StreamId::new(0),
        );
        let receiver = gpu.launch(
            Box::new(SmidGatedWriter {
                blocks: 40,
                target_sms: vec![],
                batches: 0,
            }),
            StreamId::new(1),
        );
        // Tick once so both kernels place before any block finishes.
        gpu.tick();
        let sender_sms: Vec<usize> = gpu
            .block_spans(sender)
            .iter()
            .map(|s| s.sm.index())
            .collect();
        let receiver_sms: Vec<usize> = gpu
            .block_spans(receiver)
            .iter()
            .map(|s| s.sm.index())
            .collect();
        assert_eq!(sender_sms.len(), 40);
        assert_eq!(receiver_sms.len(), 40);
        for (s, r) in sender_sms.iter().zip(&receiver_sms) {
            assert_eq!(s / 2, r / 2, "sender {s} and receiver {r} not TPC-siblings");
            assert_ne!(s, r);
        }
        gpu.run_until_idle(10_000);
    }

    #[test]
    fn same_stream_kernels_serialise() {
        let mut gpu = Gpu::new(GpuConfig::volta_v100()).expect("valid config");
        gpu.preload_range(0, 40 * 48);
        let a = gpu.launch(
            Box::new(SmidGatedWriter {
                blocks: 80,
                target_sms: vec![0],
                batches: 2,
            }),
            StreamId::new(0),
        );
        let b = gpu.launch(
            Box::new(SmidGatedWriter {
                blocks: 80,
                target_sms: vec![0],
                batches: 2,
            }),
            StreamId::new(0),
        );
        assert!(gpu.run_until_idle(200_000).is_idle());
        let (_, a_end) = gpu.kernel_span(a);
        let (b_start, _) = gpu.kernel_span(b);
        assert!(
            b_start.unwrap() >= a_end.unwrap(),
            "second kernel must start after the first ends in one stream"
        );
    }

    #[test]
    fn different_stream_kernels_overlap() {
        let mut cfg = GpuConfig::volta_v100();
        cfg.max_blocks_per_sm = 2; // room for both kernels everywhere
        let mut gpu = Gpu::new(cfg).expect("valid config");
        gpu.preload_range(0, 40 * 48);
        let a = gpu.launch(
            Box::new(SmidGatedWriter {
                blocks: 80,
                target_sms: vec![0],
                batches: 8,
            }),
            StreamId::new(0),
        );
        let b = gpu.launch(
            Box::new(SmidGatedWriter {
                blocks: 80,
                target_sms: vec![1],
                batches: 8,
            }),
            StreamId::new(1),
        );
        assert!(gpu.run_until_idle(300_000).is_idle());
        let (a_start, a_end) = gpu.kernel_span(a);
        let (b_start, b_end) = gpu.kernel_span(b);
        let overlap = b_start.unwrap() < a_end.unwrap() && a_start.unwrap() < b_end.unwrap();
        assert!(overlap, "stream concurrency must overlap kernels");
    }

    #[test]
    fn stream_isolated_scheduler_keeps_tpcs_single_stream() {
        let mut cfg = GpuConfig::volta_v100();
        cfg.scheduler = gnc_common::config::SchedulerPolicy::StreamIsolated;
        let mut gpu = Gpu::new(cfg.clone()).expect("valid config");
        let mk = |batches| {
            Box::new(SmidGatedWriter {
                blocks: 40,
                target_sms: vec![0],
                batches,
            })
        };
        gpu.preload_range(0, 40 * 48);
        let a = gpu.launch(mk(6), StreamId::new(0));
        let b = gpu.launch(mk(6), StreamId::new(1));
        gpu.tick();
        // Every placed block's TPC must be exclusive to one stream.
        let a_tpcs: std::collections::HashSet<usize> = gpu
            .block_spans(a)
            .iter()
            .map(|s| s.sm.index() / 2)
            .collect();
        let b_tpcs: std::collections::HashSet<usize> = gpu
            .block_spans(b)
            .iter()
            .map(|s| s.sm.index() / 2)
            .collect();
        assert!(
            a_tpcs.is_disjoint(&b_tpcs),
            "streams share TPCs under isolation: {:?}",
            a_tpcs.intersection(&b_tpcs).collect::<Vec<_>>()
        );
        assert!(gpu.run_until_idle(200_000).is_idle());
    }

    #[test]
    fn run_until_idle_times_out_gracefully() {
        let mut gpu = Gpu::new(GpuConfig::volta_v100()).expect("valid config");
        gpu.launch(
            Box::new(SmidGatedWriter {
                blocks: 80,
                target_sms: vec![0],
                batches: 1000,
            }),
            StreamId::new(0),
        );
        let outcome = gpu.run_until_idle(100);
        assert!(matches!(outcome, RunOutcome::Timeout { .. }));
        assert_eq!(outcome.cycle(), 100);
    }
}
