//! The micro-kernel programming model.
//!
//! The paper's attack code is a handful of tiny CUDA kernels: stream
//! writes, stream reads, read the clock, spin until the clock's low bits
//! match, measure the latency of a warp's L2 accesses. Instead of an
//! instruction-set simulator, kernels here are Rust state machines: a
//! [`KernelProgram`] spawns one [`WarpProgram`] per warp, and each warp
//! program is `step`ped by its SM whenever it is unblocked, returning the
//! next [`WarpStep`] to perform. This captures the timing-relevant
//! behaviour of the paper's kernels (memory batches, busy waits, clock
//! reads) with none of the irrelevant ALU detail.

use gnc_common::ids::{BlockId, KernelId, SmId, WarpId};
use gnc_common::Cycle;
use serde::{Deserialize, Serialize};

/// Memory access direction of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Loads: 1-flit requests, 5-flit replies. The GPC channel's weapon
    /// (§3.4).
    Read,
    /// Stores: 5-flit requests, 1-flit acks. The TPC channel's weapon.
    Write,
}

/// What a warp does next, as returned by [`WarpProgram::step`].
#[derive(Debug, Clone, PartialEq)]
pub enum WarpStep {
    /// Issue a warp-wide memory burst touching `addrs` (one entry per
    /// thread access; the coalescer merges same-line entries into
    /// packets). Lists longer than the SIMT width model several
    /// back-to-back instructions — the paper's "iterations" per bit.
    ///
    /// With `wait` set the warp blocks until every reply returns, and the
    /// observed batch latency is delivered in
    /// [`WarpContext::last_mem_latency`] on the next step — the
    /// receiver's measurement primitive (Algorithm 2). Without `wait`
    /// the warp continues, throttled only by the LSU's outstanding-request
    /// cap — the sender's saturation primitive.
    Memory {
        /// Read or write.
        kind: AccessKind,
        /// Per-thread byte addresses (at most the SIMT width).
        addrs: Vec<u64>,
        /// Block until all replies arrive and record the latency.
        wait: bool,
    },
    /// Fire-and-forget memory burst with an explicit outstanding-request
    /// cap: the warp keeps executing until its in-flight packet count
    /// reaches `cap`, then blocks and resumes once it drains to `cap/2`.
    /// This is the sender's saturation primitive — the cap bounds how
    /// much traffic bleeds past a slot boundary when the sender goes
    /// quiet for a `0` bit.
    MemoryCapped {
        /// Read or write.
        kind: AccessKind,
        /// Per-thread byte addresses.
        addrs: Vec<u64>,
        /// Maximum outstanding packets for this warp.
        cap: u32,
    },
    /// Do nothing for the given number of cycles (busy wait / pacing).
    Sleep(u32),
    /// Block until `clock32() & mask == target` — the paper's local
    /// synchronization on the clock register's low bits (§4.4).
    UntilClock {
        /// Bit mask applied to the 32-bit clock.
        mask: u32,
        /// Value the masked clock must equal.
        target: u32,
    },
    /// Record `(tag, value)` into the instrumentation stream, then step
    /// again in the same cycle (records are free, like writing to a
    /// pre-allocated results buffer in the real kernels).
    Record {
        /// Program-defined meaning (e.g. "bit index").
        tag: u32,
        /// Program-defined payload (e.g. measured latency).
        value: u64,
    },
    /// The warp is finished.
    Finish,
}

/// Read-only execution context handed to [`WarpProgram::step`].
#[derive(Debug, Clone, Copy)]
pub struct WarpContext {
    /// Current simulation cycle.
    pub now: Cycle,
    /// This SM's 32-bit `clock()` value this cycle.
    pub clock32: u32,
    /// The SM executing the warp — the `%smid` register the paper's
    /// kernels read to discover their placement (§3.2).
    pub sm: SmId,
    /// The kernel this warp belongs to.
    pub kernel: KernelId,
    /// The block within the kernel grid.
    pub block: BlockId,
    /// The warp within the block.
    pub warp: WarpId,
    /// Latency, in cycles, of the last `Memory { wait: true }` batch
    /// (issue of the first packet to arrival of the last reply); 0 before
    /// any measurement.
    pub last_mem_latency: Cycle,
}

/// A per-warp state machine.
///
/// `step` is called whenever the warp is unblocked; at most one step per
/// cycle performs work, except [`WarpStep::Record`], which is free and is
/// immediately followed by another step in the same cycle.
pub trait WarpProgram: Send {
    /// Decides the warp's next action.
    fn step(&mut self, ctx: &WarpContext) -> WarpStep;
}

/// A kernel: grid dimensions plus a factory for per-warp programs.
pub trait KernelProgram: Send {
    /// Human-readable name for instrumentation.
    fn name(&self) -> &str {
        "kernel"
    }

    /// Number of thread blocks in the grid.
    fn num_blocks(&self) -> usize;

    /// Number of warps per block.
    fn warps_per_block(&self) -> usize;

    /// Creates the program for `(block, warp)`.
    fn create_warp(&self, block: BlockId, warp: WarpId) -> Box<dyn WarpProgram>;
}

/// One instrumentation record emitted via [`WarpStep::Record`] or by the
/// engine itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Cycle at which the record was emitted.
    pub cycle: Cycle,
    /// Kernel that emitted it.
    pub kernel: KernelId,
    /// SM on which the emitting warp ran.
    pub sm: SmId,
    /// Emitting block.
    pub block: BlockId,
    /// Emitting warp.
    pub warp: WarpId,
    /// Program-defined tag.
    pub tag: u32,
    /// Program-defined value.
    pub value: u64,
}

/// Collects [`Record`]s emitted during a run.
#[derive(Debug, Default)]
pub struct Recorder {
    records: Vec<Record>,
    /// Optional fault injection on the measurement path: samples can be
    /// jittered, dropped, or duplicated before they land in `records`.
    fault: Option<std::sync::Arc<gnc_common::fault::FaultPlan>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a fault plan perturbing subsequent [`push`](Self::push)
    /// calls.
    pub fn set_fault_plan(&mut self, plan: std::sync::Arc<gnc_common::fault::FaultPlan>) {
        self.fault = Some(plan);
    }

    /// Appends a record.
    ///
    /// With a fault plan attached, the measurement path becomes lossy:
    /// a sample may be silently dropped, gain measurement jitter, or be
    /// recorded twice (the failure modes of a real busy-polling
    /// receiver that misses or double-reads its timestamp window).
    /// Decisions key on the *logical identity* of the sample
    /// (SM, kernel, tag), so a given sample's fate is independent of
    /// when the simulator happens to deliver it.
    pub fn push(&mut self, record: Record) {
        let Some(plan) = &self.fault else {
            self.records.push(record);
            return;
        };
        let site = (record.sm.index() as u64) << 32 | record.kernel.index() as u64;
        let sample = u64::from(record.tag);
        if plan.drop_sample(site, sample) {
            return;
        }
        let mut record = record;
        record.value = record
            .value
            .saturating_add(plan.sample_jitter(site, sample));
        self.records.push(record);
        if plan.dup_sample(site, sample) {
            self.records.push(record);
        }
    }

    /// All records in emission order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Records emitted by `kernel`, in emission order.
    pub fn for_kernel(&self, kernel: KernelId) -> impl Iterator<Item = &Record> + '_ {
        self.records.iter().filter(move |r| r.kernel == kernel)
    }

    /// Drops all records.
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Restores the recorder to its just-constructed state: records drop
    /// (capacity retained) and any fault plan detaches — unlike
    /// [`clear`](Self::clear), which keeps the plan for the next run.
    pub fn reset(&mut self) {
        self.records.clear();
        self.fault = None;
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are held.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Convenience: builds a warp-wide address batch of `n` accesses.
///
/// * `uncoalesced` — each access targets a *different* cache line
///   (`n` packets after coalescing), the paper's default for the covert
///   channel (§5: 32 uncoalesced requests per warp).
/// * coalesced (`uncoalesced == false`) — all accesses fall into one
///   line (1 packet), which §5 shows destroys the channel.
///
/// Addresses start at `base` and lines are `line_bytes` apart.
pub fn warp_addresses(base: u64, n: u32, uncoalesced: bool, line_bytes: u64) -> Vec<u64> {
    (0..u64::from(n))
        .map(|i| {
            if uncoalesced {
                base + i * line_bytes
            } else {
                base + i * 4 // distinct words of one line
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_addresses_uncoalesced_spans_lines() {
        let addrs = warp_addresses(0, 32, true, 128);
        assert_eq!(addrs.len(), 32);
        let lines: std::collections::HashSet<u64> = addrs.iter().map(|a| a / 128).collect();
        assert_eq!(lines.len(), 32);
    }

    #[test]
    fn warp_addresses_coalesced_stays_in_one_line() {
        let addrs = warp_addresses(0, 32, false, 128);
        let lines: std::collections::HashSet<u64> = addrs.iter().map(|a| a / 128).collect();
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn faulty_recorder_drops_duplicates_and_jitters() {
        use gnc_common::fault::{FaultConfig, FaultPlan};

        let emit = |rec: &mut Recorder| {
            for tag in 0..2_000u32 {
                rec.push(Record {
                    cycle: 0,
                    kernel: KernelId::new(0),
                    sm: SmId::new(1),
                    block: BlockId::new(0),
                    warp: WarpId::new(0),
                    tag,
                    value: 100,
                });
            }
        };
        let mut clean = Recorder::new();
        emit(&mut clean);
        assert_eq!(clean.len(), 2_000);

        let cfg = FaultConfig {
            sample_drop_rate: 0.1,
            sample_dup_rate: 0.05,
            sample_jitter_cycles: 50,
            ..FaultConfig::off()
        };
        let mut noisy = Recorder::new();
        noisy.set_fault_plan(FaultPlan::new(cfg.clone()));
        emit(&mut noisy);
        assert_ne!(noisy.len(), 2_000, "drops/dups must change the count");
        assert!(noisy.records().iter().any(|r| r.value > 100), "jitter");
        // Determinism: same plan, same stream.
        let mut again = Recorder::new();
        again.set_fault_plan(FaultPlan::new(cfg));
        emit(&mut again);
        assert_eq!(noisy.records(), again.records());
    }

    #[test]
    fn recorder_filters_by_kernel() {
        let mut rec = Recorder::new();
        for k in 0..3usize {
            rec.push(Record {
                cycle: k as Cycle,
                kernel: KernelId::new(k % 2),
                sm: SmId::new(0),
                block: BlockId::new(0),
                warp: WarpId::new(0),
                tag: 0,
                value: k as u64,
            });
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.for_kernel(KernelId::new(0)).count(), 2);
        assert_eq!(rec.for_kernel(KernelId::new(1)).count(), 1);
        rec.clear();
        assert!(rec.is_empty());
    }
}
