//! Cycle-level GPU engine.
//!
//! This crate assembles the NoC fabric ([`gnc_noc`]) and the memory
//! system ([`gnc_mem`]) into a runnable GPU and adds everything the
//! paper's CUDA kernels relied on:
//!
//! * [`clock`] — the per-SM 32-bit `clock()` register with realistic
//!   skew (nearly identical within a TPC, close within a GPC, wildly
//!   different across GPCs — Fig 6).
//! * [`kernel`] — the micro-kernel programming model: a kernel spawns a
//!   [`kernel::WarpProgram`] state machine per warp; programs issue
//!   memory batches, sleep, spin on the clock, read `%smid`, and record
//!   measurements, which is exactly the vocabulary of Algorithms 1–2.
//! * [`coalesce`] — the memory coalescer (one packet per distinct cache
//!   line touched by a warp, §5).
//! * [`sm`] — the SM: resident warps, a round-robin issue scheduler, an
//!   LSU with bounded outstanding requests, and L1 bypass semantics.
//! * [`block_sched`] — the thread-block scheduler with the placement
//!   policy reverse-engineered in §4.3 (GPC-interleaved, then
//!   TPC-interleaved, siblings last).
//! * [`gpu`] — the engine: streams, concurrent kernels, the tick loop,
//!   and instrumentation.
//! * [`workloads`] — reusable synthetic kernels (streaming reads/writes,
//!   clock dumps) used by the reverse-engineering and benchmarks.
//!
//! # Example
//!
//! ```
//! use gnc_common::GpuConfig;
//! use gnc_sim::gpu::Gpu;
//!
//! # fn main() -> Result<(), gnc_common::ConfigError> {
//! let gpu = Gpu::new(GpuConfig::volta_v100())?;
//! assert_eq!(gpu.num_sms(), 80);
//! # Ok(())
//! # }
//! ```

pub mod block_sched;
pub mod clock;
pub mod coalesce;
pub mod gpu;
pub mod kernel;
pub mod pool;
pub mod sm;
pub mod workloads;

pub use gpu::{gpus_built, gpus_reset, set_default_loop_mode, Gpu, LoopMode, RunOutcome};
pub use kernel::{KernelProgram, Record, Recorder, WarpContext, WarpProgram, WarpStep};
pub use pool::{pooled_gpu, with_pooled_gpu, GpuPool, PooledGpu};
