//! Build-once/reset-many [`Gpu`] reuse.
//!
//! Constructing a [`Gpu`] allocates every queue, arena, cache set, and
//! calendar of an 80-SM machine; a sweep that builds one per trial spends
//! a large share of its wall clock in the allocator. [`Gpu::reset`]
//! restores a constructed machine to its post-`new()` state in place, so
//! a worker thread only ever pays construction once per configuration
//! shape. This module provides the per-thread cache that makes that
//! pattern ergonomic: [`with_pooled_gpu`] hands the closure a machine
//! that is indistinguishable from a freshly built one (pinned by the
//! `reset_reuse_is_bit_identical_to_fresh_build` fidelity test), reusing
//! the thread's cached instance whenever the configuration matches.
//!
//! Sweep workers are scoped threads (one per job), so the thread-local
//! pool gives exactly the intended per-(worker, config-shape) reuse: the
//! first trial on a worker builds, every later trial with the same
//! configuration resets. A panicking trial leaves its machine inside the
//! closure, so it is dropped rather than returned to the pool — the next
//! trial on that worker simply builds fresh.

use crate::gpu::Gpu;
use gnc_common::fault::FaultPlan;
use gnc_common::{ConfigError, GpuConfig};
use std::cell::RefCell;
use std::sync::Arc;

/// A cache of at most one constructed [`Gpu`], reused across trials
/// whose configuration compares equal.
#[derive(Debug, Default)]
pub struct GpuPool {
    slot: Option<Gpu>,
}

impl GpuPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a machine equivalent to `Gpu::with_clock_seed(cfg, seed)` —
    /// or, with `fault` set, `Gpu::with_faults` — resetting the cached
    /// instance in place when its configuration equals `cfg`, building
    /// fresh otherwise. Return it with [`release`](Self::release) once
    /// the trial is done.
    ///
    /// # Errors
    ///
    /// Returns the validation error when a fresh build is needed and
    /// `cfg` is inconsistent.
    pub fn acquire(
        &mut self,
        cfg: &GpuConfig,
        clock_seed: u64,
        fault: Option<&Arc<FaultPlan>>,
    ) -> Result<Gpu, ConfigError> {
        match self.slot.take() {
            Some(mut gpu) if gpu.config() == cfg => {
                match fault {
                    Some(plan) => gpu.reset_with_faults(clock_seed, Arc::clone(plan)),
                    None => gpu.reset(clock_seed),
                }
                Ok(gpu)
            }
            _ => match fault {
                Some(plan) => Gpu::with_faults(cfg.clone(), clock_seed, Arc::clone(plan)),
                None => Gpu::with_clock_seed(cfg.clone(), clock_seed),
            },
        }
    }

    /// Returns a machine to the pool for the next trial. The previous
    /// occupant, if any, is dropped.
    pub fn release(&mut self, gpu: Gpu) {
        self.slot = Some(gpu);
    }

    /// Whether a machine is currently cached.
    pub fn is_warm(&self) -> bool {
        self.slot.is_some()
    }
}

thread_local! {
    static POOL: RefCell<GpuPool> = RefCell::new(GpuPool::new());
}

/// An RAII handle on this thread's pooled machine: derefs to [`Gpu`]
/// and returns the machine to the pool on drop, so call sites read like
/// plain construction. During a panic unwind the machine is dropped
/// instead — a half-run trial must not seed the next one.
#[derive(Debug)]
pub struct PooledGpu {
    gpu: Option<Gpu>,
}

impl std::ops::Deref for PooledGpu {
    type Target = Gpu;
    fn deref(&self) -> &Gpu {
        self.gpu.as_ref().expect("present until drop")
    }
}

impl std::ops::DerefMut for PooledGpu {
    fn deref_mut(&mut self) -> &mut Gpu {
        self.gpu.as_mut().expect("present until drop")
    }
}

impl Drop for PooledGpu {
    fn drop(&mut self) {
        if std::thread::panicking() {
            return;
        }
        if let Some(gpu) = self.gpu.take() {
            POOL.with(|pool| pool.borrow_mut().release(gpu));
        }
    }
}

/// Acquires this thread's pooled machine for `cfg` as an RAII handle:
/// reset in place when the cached configuration matches, built fresh
/// otherwise. Drop-in replacement for `Gpu::with_clock_seed` /
/// `Gpu::with_faults` at call sites that use the machine locally.
///
/// # Errors
///
/// Returns the validation error when a fresh build is needed and `cfg`
/// is inconsistent.
pub fn pooled_gpu(
    cfg: &GpuConfig,
    clock_seed: u64,
    fault: Option<&Arc<FaultPlan>>,
) -> Result<PooledGpu, ConfigError> {
    let gpu = POOL.with(|pool| pool.borrow_mut().acquire(cfg, clock_seed, fault))?;
    Ok(PooledGpu { gpu: Some(gpu) })
}

/// Runs `f` on this thread's pooled machine for `cfg`: reset in place
/// when the cached configuration matches, built fresh otherwise, and
/// returned to the pool afterwards. The machine `f` sees is
/// indistinguishable from `Gpu::with_clock_seed(cfg.clone(), seed)`
/// (respectively `Gpu::with_faults`).
///
/// # Errors
///
/// Returns the validation error when a fresh build is needed and `cfg`
/// is inconsistent.
pub fn with_pooled_gpu<T>(
    cfg: &GpuConfig,
    clock_seed: u64,
    fault: Option<&Arc<FaultPlan>>,
    f: impl FnOnce(&mut Gpu) -> T,
) -> Result<T, ConfigError> {
    POOL.with(|pool| {
        let mut gpu = pool.borrow_mut().acquire(cfg, clock_seed, fault)?;
        let out = f(&mut gpu);
        // Not reached when `f` panics: the machine drops with the unwind
        // instead of re-entering the pool in a half-run state.
        pool.borrow_mut().release(gpu);
        Ok(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::gpus_reset;

    #[test]
    fn pool_resets_on_match_and_rebuilds_on_mismatch() {
        let volta = GpuConfig::volta_v100();
        let tiny = GpuConfig::tiny();
        let mut pool = GpuPool::new();
        assert!(!pool.is_warm());

        let gpu = pool.acquire(&volta, 1, None).expect("valid config");
        pool.release(gpu);
        assert!(pool.is_warm());

        let before = gpus_reset();
        let gpu = pool.acquire(&volta, 2, None).expect("valid config");
        assert_eq!(gpus_reset(), before + 1, "matching shape must reset");
        pool.release(gpu);

        let gpu = pool.acquire(&tiny, 2, None).expect("valid config");
        assert_eq!(gpus_reset(), before + 1, "shape change must rebuild");
        assert_eq!(gpu.config(), &tiny);
        pool.release(gpu);
    }

    #[test]
    fn with_pooled_gpu_reuses_the_thread_local_machine() {
        let cfg = GpuConfig::tiny();
        let first = with_pooled_gpu(&cfg, 7, None, |gpu| {
            gpu.clock().read64(gnc_common::ids::SmId::new(0), 0)
        })
        .expect("valid config");
        let before = gpus_reset();
        let second = with_pooled_gpu(&cfg, 7, None, |gpu| {
            gpu.clock().read64(gnc_common::ids::SmId::new(0), 0)
        })
        .expect("valid config");
        assert_eq!(first, second, "same seed must redraw the same clocks");
        assert!(gpus_reset() > before, "second call must reset, not build");
    }
}
