//! The streaming multiprocessor model.
//!
//! Each SM hosts resident thread blocks, steps their warp programs when
//! unblocked, coalesces warp memory instructions into packets, and feeds
//! them to the request fabric through an LSU that injects at most one
//! packet per cycle with a bounded per-warp outstanding window. L1 is
//! bypassed (`-dlcm=cg`, §4.2): every access goes to L2 over the NoC,
//! which is what makes the interconnect the observable resource.

use crate::clock::ClockDomain;
use crate::coalesce::coalesce;
use crate::kernel::{AccessKind, Record, Recorder, WarpContext, WarpProgram, WarpStep};
use gnc_common::hash::FastHashMap;
use gnc_common::ids::{BlockId, KernelId, SmId, WarpId};
use gnc_common::telemetry::{NullProbe, Probe, StallReason};
use gnc_common::{Cycle, GpuConfig};
use gnc_mem::address::AddressMap;
use gnc_noc::event::NextEvent;
use gnc_noc::fabric::RequestFabric;
use gnc_noc::packet::{Packet, PacketId, PacketKind};
use std::collections::VecDeque;

/// Safety valve: maximum free steps (records / matched clock waits) one
/// warp may take in a single cycle before the SM forces a cycle boundary.
const MAX_FREE_STEPS: u32 = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarpState {
    Ready,
    /// Blocked until every outstanding reply of a waited batch returns.
    WaitMem,
    /// Fire-and-forget stream hit the outstanding cap; resumes at half.
    Throttled,
    Sleeping {
        until: Cycle,
    },
    WaitClock {
        mask: u32,
        target: u32,
    },
    Done,
}

struct WarpSlot {
    id: WarpId,
    program: Box<dyn WarpProgram>,
    state: WarpState,
    outstanding: usize,
    /// Outstanding-packet cap for the current fire-and-forget stream.
    cap: usize,
    issue_cycle: Cycle,
    last_latency: Cycle,
    /// Cycle the warp last entered a blocked state (stall telemetry).
    blocked_at: Cycle,
}

/// A thread block resident on the SM.
struct BlockSlot {
    kernel: KernelId,
    block: BlockId,
    warps: Vec<WarpSlot>,
}

impl BlockSlot {
    fn is_done(&self) -> bool {
        self.warps
            .iter()
            .all(|w| w.state == WarpState::Done && w.outstanding == 0)
    }
}

/// One streaming multiprocessor.
pub struct Sm {
    id: SmId,
    line_bytes: u64,
    max_outstanding: usize,
    map: AddressMap,
    blocks: Vec<BlockSlot>,
    /// Warps currently in [`WarpState::Ready`]. Maintained at every
    /// state transition so [`next_event`](Self::next_event) answers Busy
    /// without scanning warps — it runs after every SM tick.
    ready_warps: usize,
    /// Warps in a timed wait ([`WarpState::Sleeping`] /
    /// [`WarpState::WaitClock`]); zero means no warp has a future wake
    /// cycle, so an un-Ready SM is Idle without a scan.
    timed_warps: usize,
    /// Set when a warp finished or a finished warp's last outstanding
    /// reply returned — the only transitions that can complete a block.
    /// [`take_finished_blocks`](Self::take_finished_blocks) skips its
    /// sweep (the per-cycle common case) while this is clear.
    maybe_finished: bool,
    lsu_queue: VecDeque<Packet>,
    in_flight: FastHashMap<PacketId, (KernelId, BlockId, usize)>,
    next_packet_seq: u64,
    packet_id_base: u64,
    /// Packets injected into the fabric (utilisation statistics).
    injected_packets: u64,
}

impl std::fmt::Debug for Sm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sm")
            .field("id", &self.id)
            .field("blocks", &self.blocks.len())
            .field("lsu_queue", &self.lsu_queue.len())
            .field("in_flight", &self.in_flight.len())
            .finish_non_exhaustive()
    }
}

impl Sm {
    /// Creates SM `id` under configuration `cfg`.
    pub fn new(id: SmId, cfg: &GpuConfig) -> Self {
        Self {
            id,
            line_bytes: u64::from(cfg.mem.line_bytes),
            max_outstanding: cfg.max_outstanding_per_warp,
            map: AddressMap::new(cfg),
            blocks: Vec::new(),
            ready_warps: 0,
            timed_warps: 0,
            maybe_finished: false,
            lsu_queue: VecDeque::new(),
            in_flight: FastHashMap::default(),
            next_packet_seq: 0,
            packet_id_base: ((id.index() as u64) + 1) << 40,
            injected_packets: 0,
        }
    }

    /// This SM's identifier.
    pub fn id(&self) -> SmId {
        self.id
    }

    /// Restores the SM to its just-constructed state in place: resident
    /// blocks, warp bookkeeping, LSU queue, in-flight window, and the
    /// packet-id sequence all clear (so a reset machine reissues the
    /// exact packet ids a fresh one would). Queue and map capacity are
    /// retained for reuse.
    pub fn reset(&mut self) {
        self.blocks.clear();
        self.ready_warps = 0;
        self.timed_warps = 0;
        self.maybe_finished = false;
        self.lsu_queue.clear();
        self.in_flight.clear();
        self.next_packet_seq = 0;
        self.injected_packets = 0;
    }

    /// Number of resident blocks.
    pub fn resident_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Kernels with at least one block resident on this SM.
    pub fn resident_kernels(&self) -> impl Iterator<Item = KernelId> + '_ {
        self.blocks.iter().map(|b| b.kernel)
    }

    /// Total packets this SM has injected into the fabric.
    pub fn injected_packets(&self) -> u64 {
        self.injected_packets
    }

    /// Installs a thread block with its warp programs.
    pub fn place_block(
        &mut self,
        kernel: KernelId,
        block: BlockId,
        warps: Vec<Box<dyn WarpProgram>>,
    ) {
        let warps = warps
            .into_iter()
            .enumerate()
            .map(|(i, program)| WarpSlot {
                id: WarpId::new(i),
                program,
                state: WarpState::Ready,
                outstanding: 0,
                cap: 0,
                issue_cycle: 0,
                last_latency: 0,
                blocked_at: 0,
            })
            .collect::<Vec<_>>();
        self.ready_warps += warps.len();
        self.blocks.push(BlockSlot {
            kernel,
            block,
            warps,
        });
    }

    /// Removes and returns blocks whose warps have all finished and
    /// drained; the engine uses this to free capacity and time kernels.
    pub fn take_finished_blocks(&mut self) -> Vec<(KernelId, BlockId)> {
        if !self.maybe_finished {
            return Vec::new();
        }
        self.maybe_finished = false;
        let mut finished = Vec::new();
        self.blocks.retain(|b| {
            if b.is_done() {
                finished.push((b.kernel, b.block));
                false
            } else {
                true
            }
        });
        finished
    }

    /// Whether ticking this SM can have any effect. An SM with no
    /// resident blocks and an empty LSU queue ticks to a no-op (replies
    /// arrive via [`on_reply`](Self::on_reply), not the tick), so the
    /// engine may skip it.
    pub fn is_active(&self) -> bool {
        !self.blocks.is_empty() || !self.lsu_queue.is_empty()
    }

    /// When this SM next has actionable work (see [`NextEvent`]).
    ///
    /// Ready warps and queued LSU packets need service every cycle.
    /// Sleeping warps wake at a known cycle. Clock-aligned waits are
    /// predictable too when the mask selects contiguous low bits (every
    /// protocol kernel's slot wait does): `read32` is affine in `now`
    /// over any fault-free stretch, so the wake cycle is
    /// `now + ((target - clock32) mod (mask + 1))`. Under clock faults
    /// the wake estimate only holds while the fault offset is constant,
    /// so it is clamped to [`ClockDomain::stable_until`] — the run loop
    /// re-evaluates at the boundary with the post-fault clock value.
    /// Exotic masks conservatively report [`NextEvent::Busy`]. Warps in
    /// `WaitMem`/`Throttled` wake from replies, which the fabric's own
    /// events account for.
    pub fn next_event(&self, now: Cycle, clock: &ClockDomain) -> NextEvent {
        debug_assert_eq!(
            self.ready_warps,
            self.blocks
                .iter()
                .flat_map(|b| &b.warps)
                .filter(|w| w.state == WarpState::Ready)
                .count(),
            "sm{} ready-warp counter out of sync",
            self.id.index()
        );
        debug_assert_eq!(
            self.timed_warps,
            self.blocks
                .iter()
                .flat_map(|b| &b.warps)
                .filter(|w| {
                    matches!(
                        w.state,
                        WarpState::Sleeping { .. } | WarpState::WaitClock { .. }
                    )
                })
                .count(),
            "sm{} timed-warp counter out of sync",
            self.id.index()
        );
        if !self.lsu_queue.is_empty() || self.ready_warps > 0 {
            return NextEvent::Busy;
        }
        if self.timed_warps == 0 {
            // Every warp is in `WaitMem`/`Throttled`/`Done`: nothing here
            // can act until a reply arrives, and the reply delivery wakes
            // the SM. This O(1) exit is the common case for memory-bound
            // kernels — the warp scan below runs only when a timed wait
            // actually exists.
            return NextEvent::Idle;
        }
        let mut ev = NextEvent::Idle;
        for block in &self.blocks {
            for warp in &block.warps {
                match warp.state {
                    WarpState::Ready => return NextEvent::Busy,
                    WarpState::Sleeping { until } => ev = ev.merge(NextEvent::At(until)),
                    WarpState::WaitClock { mask, target } => {
                        // Predictable only for masks of contiguous low
                        // bits with an in-range target.
                        let contiguous = mask & mask.wrapping_add(1) == 0;
                        if !contiguous || mask == 0 || target & !mask != 0 {
                            return NextEvent::Busy;
                        }
                        let cur = clock.read32(self.id, now) & mask;
                        let wake = now + Cycle::from(target.wrapping_sub(cur) & mask);
                        ev = ev.merge(match clock.stable_until(self.id, now) {
                            None => NextEvent::At(wake),
                            Some(stable) => NextEvent::At(wake.min(stable)),
                        });
                    }
                    WarpState::WaitMem | WarpState::Throttled | WarpState::Done => {}
                }
            }
        }
        ev
    }

    /// Delivers a reply packet from the reply fabric.
    pub fn on_reply(&mut self, packet: &Packet, now: Cycle) {
        self.on_reply_probed(packet, now, &mut NullProbe);
    }

    /// [`on_reply`](Self::on_reply) with telemetry: warps leaving
    /// `WaitMem`/`Throttled` report how long they were blocked.
    pub fn on_reply_probed<P: Probe>(&mut self, packet: &Packet, now: Cycle, probe: &mut P) {
        let Some((kernel, block, warp_idx)) = self.in_flight.remove(&packet.id) else {
            // A reply no warp is waiting for means the fabric duplicated
            // or misrouted a packet: the machine state is corrupt, and a
            // benchmarked release binary must not silently drop it (this
            // was a release-stripped debug_assert! once). Unwind with the
            // structured error so supervised sweeps record a failed trial.
            panic!(
                "{}",
                gnc_common::error::SimError::ProtocolViolation {
                    component: format!("sm{}", self.id.index()),
                    detail: format!("reply {} does not match any outstanding request", packet.id),
                }
            );
        };
        let Some(slot) = self
            .blocks
            .iter_mut()
            .find(|b| b.kernel == kernel && b.block == block)
        else {
            return; // block already retired (fire-and-forget stragglers)
        };
        let warp = &mut slot.warps[warp_idx];
        warp.outstanding = warp.outstanding.saturating_sub(1);
        if warp.outstanding == 0 && warp.state == WarpState::Done {
            self.maybe_finished = true;
        }
        match warp.state {
            WarpState::WaitMem if warp.outstanding == 0 => {
                warp.last_latency = now - warp.issue_cycle;
                warp.state = WarpState::Ready;
                self.ready_warps += 1;
                if P::ENABLED {
                    probe.sm_stall(self.id.index(), StallReason::WaitMem, now - warp.blocked_at);
                }
            }
            WarpState::Throttled if warp.outstanding <= warp.cap / 2 => {
                warp.state = WarpState::Ready;
                self.ready_warps += 1;
                if P::ENABLED {
                    probe.sm_stall(
                        self.id.index(),
                        StallReason::Throttled,
                        now - warp.blocked_at,
                    );
                }
            }
            _ => {}
        }
    }

    /// Advances the SM one cycle: wakes blocked warps, steps ready warp
    /// programs, and injects queued packets into the fabric.
    pub fn tick(
        &mut self,
        now: Cycle,
        clock: &ClockDomain,
        fabric: &mut RequestFabric,
        recorder: &mut Recorder,
    ) {
        self.tick_probed(now, clock, fabric, recorder, &mut NullProbe);
    }

    /// [`tick`](Self::tick) with telemetry: waking warps report their
    /// stall spans and injected packets report their (SM, slice) route.
    pub fn tick_probed<P: Probe>(
        &mut self,
        now: Cycle,
        clock: &ClockDomain,
        fabric: &mut RequestFabric,
        recorder: &mut Recorder,
        probe: &mut P,
    ) {
        let clock32 = clock.read32(self.id, now);
        // Wake phase. Skipped outright when no warp holds a timed wait —
        // the common case for memory-bound kernels, whose warps park in
        // `WaitMem`/`Throttled` and wake from replies instead.
        let sm_idx = self.id.index();
        if self.timed_warps > 0 {
            let mut woke = 0usize;
            for block in &mut self.blocks {
                for warp in &mut block.warps {
                    match warp.state {
                        WarpState::Sleeping { until } if now >= until => {
                            warp.state = WarpState::Ready;
                            woke += 1;
                            if P::ENABLED {
                                probe.sm_stall(sm_idx, StallReason::Sleep, now - warp.blocked_at);
                            }
                        }
                        WarpState::WaitClock { mask, target } if clock32 & mask == target => {
                            warp.state = WarpState::Ready;
                            woke += 1;
                            if P::ENABLED {
                                probe.sm_stall(
                                    sm_idx,
                                    StallReason::WaitClock,
                                    now - warp.blocked_at,
                                );
                            }
                        }
                        _ => {}
                    }
                }
            }
            self.timed_warps -= woke;
            self.ready_warps += woke;
        }
        // Issue phase: every ready warp takes (at most) one costed step.
        if self.ready_warps > 0 {
            for bi in 0..self.blocks.len() {
                for wi in 0..self.blocks[bi].warps.len() {
                    if self.blocks[bi].warps[wi].state != WarpState::Ready {
                        continue;
                    }
                    self.step_warp(bi, wi, now, clock32, recorder);
                }
            }
        }
        // LSU phase: one packet per cycle into the fabric.
        if let Some(front) = self.lsu_queue.front() {
            if fabric.can_inject(self.id) {
                let mut packet = self.lsu_queue.pop_front().expect("front exists");
                packet.injected_at = now;
                let slice = packet.slice.index();
                fabric
                    .inject_probed(self.id, packet, probe)
                    .expect("can_inject was checked");
                self.injected_packets += 1;
                if P::ENABLED {
                    probe.packet_injected(now, sm_idx, slice);
                }
            } else {
                let _ = front;
            }
        }
    }

    fn step_warp(
        &mut self,
        bi: usize,
        wi: usize,
        now: Cycle,
        clock32: u32,
        recorder: &mut Recorder,
    ) {
        let kernel = self.blocks[bi].kernel;
        let block = self.blocks[bi].block;
        for _free_step in 0..MAX_FREE_STEPS {
            let warp = &mut self.blocks[bi].warps[wi];
            let ctx = WarpContext {
                now,
                clock32,
                sm: self.id,
                kernel,
                block,
                warp: warp.id,
                last_mem_latency: warp.last_latency,
            };
            match warp.program.step(&ctx) {
                WarpStep::Record { tag, value } => {
                    recorder.push(Record {
                        cycle: now,
                        kernel,
                        sm: self.id,
                        block,
                        warp: warp.id,
                        tag,
                        value,
                    });
                    continue; // free step
                }
                WarpStep::UntilClock { mask, target } => {
                    if clock32 & mask == target {
                        continue; // already aligned: free step
                    }
                    warp.state = WarpState::WaitClock { mask, target };
                    warp.blocked_at = now;
                    self.ready_warps -= 1;
                    self.timed_warps += 1;
                    return;
                }
                WarpStep::Sleep(cycles) => {
                    warp.state = WarpState::Sleeping {
                        until: now + Cycle::from(cycles.max(1)),
                    };
                    warp.blocked_at = now;
                    self.ready_warps -= 1;
                    self.timed_warps += 1;
                    return;
                }
                WarpStep::Finish => {
                    warp.state = WarpState::Done;
                    self.ready_warps -= 1;
                    self.maybe_finished = true;
                    return;
                }
                WarpStep::Memory { kind, addrs, wait } => {
                    let cap = if wait {
                        None
                    } else {
                        Some(self.max_outstanding)
                    };
                    self.issue_burst(bi, wi, now, kind, &addrs, wait, cap);
                    return;
                }
                WarpStep::MemoryCapped { kind, addrs, cap } => {
                    self.issue_burst(
                        bi,
                        wi,
                        now,
                        kind,
                        &addrs,
                        false,
                        Some((cap as usize).max(1)),
                    );
                    return;
                }
            }
        }
        // A program looping on free steps forfeits the rest of the cycle.
    }

    /// Coalesces a burst, creates its packets, and transitions the warp.
    ///
    /// Address lists longer than the SIMT width model a burst of
    /// back-to-back warp instructions (the paper's "iterations" of memory
    /// operations per bit); they pipeline through the LSU like separate
    /// instructions would. `cap` is `None` for a waited burst and
    /// `Some(limit)` for fire-and-forget streams.
    #[allow(clippy::too_many_arguments)]
    fn issue_burst(
        &mut self,
        bi: usize,
        wi: usize,
        now: Cycle,
        kind: AccessKind,
        addrs: &[u64],
        wait: bool,
        cap: Option<usize>,
    ) {
        let kernel = self.blocks[bi].kernel;
        let block = self.blocks[bi].block;
        let txns = coalesce(addrs, self.line_bytes);
        let warp = &mut self.blocks[bi].warps[wi];
        if txns.is_empty() {
            warp.state = WarpState::Sleeping { until: now + 1 };
            warp.blocked_at = now;
            self.ready_warps -= 1;
            self.timed_warps += 1;
            return;
        }
        let pkt_kind = match kind {
            AccessKind::Read => PacketKind::ReadRequest,
            AccessKind::Write => PacketKind::WriteRequest,
        };
        // Coarse-grain arbitration groups are per warp *instruction*:
        // a burst of k instructions yields k groups of up to 32
        // transactions, matching §6's per-warp CRR granularity.
        let group_base = self.packet_id_base | self.next_packet_seq;
        let warp_id = warp.id;
        warp.issue_cycle = now;
        warp.blocked_at = now;
        warp.outstanding += txns.len();
        warp.cap = cap.unwrap_or(self.max_outstanding);
        warp.state = if wait {
            WarpState::WaitMem
        } else if warp.outstanding >= warp.cap {
            WarpState::Throttled
        } else {
            WarpState::Ready
        };
        if warp.state != WarpState::Ready {
            self.ready_warps -= 1;
        }
        for (i, txn) in txns.into_iter().enumerate() {
            let id = PacketId(self.packet_id_base | self.next_packet_seq);
            self.next_packet_seq += 1;
            let packet = Packet {
                id,
                kind: pkt_kind,
                sm: self.id,
                warp: warp_id,
                slice: self.map.slice_of(txn.line_base),
                addr: txn.line_base,
                data_bytes: txn.bytes,
                injected_at: now,
                group: group_base + (i / 32) as u64,
            };
            self.in_flight.insert(id, (kernel, block, wi));
            self.lsu_queue.push_back(packet);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A warp that issues one waited batch and records the latency.
    struct OneShot {
        issued: bool,
        recorded: bool,
        addrs: Vec<u64>,
    }

    impl WarpProgram for OneShot {
        fn step(&mut self, ctx: &WarpContext) -> WarpStep {
            if !self.issued {
                self.issued = true;
                return WarpStep::Memory {
                    kind: AccessKind::Write,
                    addrs: self.addrs.clone(),
                    wait: true,
                };
            }
            if !self.recorded {
                self.recorded = true;
                return WarpStep::Record {
                    tag: 1,
                    value: ctx.last_mem_latency,
                };
            }
            WarpStep::Finish
        }
    }

    fn harness() -> (GpuConfig, Sm, ClockDomain, RequestFabric, Recorder) {
        let cfg = GpuConfig::volta_v100();
        let sm = Sm::new(SmId::new(0), &cfg);
        let clock = ClockDomain::new(&cfg, 0);
        let fabric = RequestFabric::new(&cfg);
        (cfg, sm, clock, fabric, Recorder::new())
    }

    /// Drains the fabric at the slices and feeds synthetic replies back
    /// after `reply_delay` cycles (stand-in for L2 + reply net).
    fn pump(
        sm: &mut Sm,
        clock: &ClockDomain,
        fabric: &mut RequestFabric,
        recorder: &mut Recorder,
        cycles: Cycle,
        reply_delay: Cycle,
    ) {
        let mut pending: Vec<(Cycle, Packet)> = Vec::new();
        for now in 0..cycles {
            pending.retain(|(ready, p)| {
                if *ready <= now {
                    sm.on_reply(p, now);
                    false
                } else {
                    true
                }
            });
            sm.tick(now, clock, fabric, recorder);
            fabric.tick(now);
            for s in 0..48 {
                while let Some(p) = fabric.pop_at_slice(gnc_common::ids::SliceId::new(s), now) {
                    pending.push((now + reply_delay, p.to_reply(now)));
                }
            }
        }
    }

    #[test]
    fn waited_batch_measures_latency() {
        let (_cfg, mut sm, clock, mut fabric, mut rec) = harness();
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 128).collect();
        sm.place_block(
            KernelId::new(0),
            BlockId::new(0),
            vec![Box::new(OneShot {
                issued: false,
                recorded: false,
                addrs,
            })],
        );
        pump(&mut sm, &clock, &mut fabric, &mut rec, 400, 50);
        let records = rec.records();
        assert_eq!(records.len(), 1);
        let latency = records[0].value;
        // 32 scattered 4-byte writes = 32 packets × 2 flits = 64
        // serialization cycles + pipeline + 50-cycle synthetic reply
        // delay.
        assert!(
            (110..220).contains(&latency),
            "unexpected latency {latency}"
        );
        assert_eq!(sm.take_finished_blocks().len(), 1);
        assert_eq!(sm.resident_blocks(), 0);
    }

    #[test]
    fn coalesced_batch_is_one_packet() {
        let (_cfg, mut sm, clock, mut fabric, mut rec) = harness();
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 4).collect();
        sm.place_block(
            KernelId::new(0),
            BlockId::new(0),
            vec![Box::new(OneShot {
                issued: false,
                recorded: false,
                addrs,
            })],
        );
        pump(&mut sm, &clock, &mut fabric, &mut rec, 400, 50);
        assert_eq!(sm.injected_packets(), 1);
        let latency = rec.records()[0].value;
        assert!(latency < 120, "coalesced latency {latency} should be small");
    }

    /// A warp sleeping then finishing.
    struct Sleeper {
        slept: bool,
    }
    impl WarpProgram for Sleeper {
        fn step(&mut self, _ctx: &WarpContext) -> WarpStep {
            if !self.slept {
                self.slept = true;
                WarpStep::Sleep(10)
            } else {
                WarpStep::Finish
            }
        }
    }

    #[test]
    fn sleep_blocks_for_requested_cycles() {
        let (_cfg, mut sm, clock, mut fabric, mut rec) = harness();
        sm.place_block(
            KernelId::new(0),
            BlockId::new(0),
            vec![Box::new(Sleeper { slept: false })],
        );
        for now in 0..5 {
            sm.tick(now, &clock, &mut fabric, &mut rec);
        }
        assert!(sm.take_finished_blocks().is_empty(), "still sleeping");
        for now in 5..15 {
            sm.tick(now, &clock, &mut fabric, &mut rec);
        }
        assert_eq!(sm.take_finished_blocks().len(), 1);
    }

    /// A warp that waits for clock alignment, then records the clock.
    struct ClockAligner {
        aligned: bool,
    }
    impl WarpProgram for ClockAligner {
        fn step(&mut self, ctx: &WarpContext) -> WarpStep {
            if !self.aligned {
                self.aligned = true;
                return WarpStep::UntilClock {
                    mask: 0xFF,
                    target: 0,
                };
            }
            let _ = ctx;
            WarpStep::Finish
        }
    }

    #[test]
    fn until_clock_wakes_on_alignment() {
        let (_cfg, mut sm, clock, mut fabric, mut rec) = harness();
        sm.place_block(
            KernelId::new(0),
            BlockId::new(0),
            vec![Box::new(ClockAligner { aligned: false })],
        );
        let mut finish_cycle = None;
        for now in 0..1024 {
            sm.tick(now, &clock, &mut fabric, &mut rec);
            if !sm.take_finished_blocks().is_empty() {
                finish_cycle = Some(now);
                break;
            }
        }
        let when = finish_cycle.expect("warp must finish");
        // The finish happens on the cycle the low byte was 0 (or the step
        // after); verify alignment within one step.
        let c = clock.read32(SmId::new(0), when);
        assert!(c & 0xFF <= 1, "woke at misaligned clock {c:#x}");
    }

    /// Saturating fire-and-forget writer.
    struct Streamer {
        remaining: u32,
        base: u64,
    }
    impl WarpProgram for Streamer {
        fn step(&mut self, _ctx: &WarpContext) -> WarpStep {
            if self.remaining == 0 {
                return WarpStep::Finish;
            }
            self.remaining -= 1;
            let base = self.base;
            self.base += 32 * 128;
            WarpStep::Memory {
                kind: AccessKind::Write,
                addrs: (0..32u64).map(|i| base + i * 128).collect(),
                wait: false,
            }
        }
    }

    #[test]
    fn fire_and_forget_throttles_at_outstanding_cap() {
        let (cfg, mut sm, clock, mut fabric, mut rec) = harness();
        sm.place_block(
            KernelId::new(0),
            BlockId::new(0),
            vec![Box::new(Streamer {
                remaining: 8,
                base: 0,
            })],
        );
        // Without replies the warp must stall at the cap, not flood.
        for now in 0..200 {
            sm.tick(now, &clock, &mut fabric, &mut rec);
        }
        let queued_plus_flight = sm.in_flight.len();
        assert!(
            queued_plus_flight <= cfg.max_outstanding_per_warp,
            "outstanding {queued_plus_flight} exceeds cap"
        );
    }

    #[test]
    fn two_blocks_coexist() {
        let (_cfg, mut sm, clock, mut fabric, mut rec) = harness();
        sm.place_block(
            KernelId::new(0),
            BlockId::new(0),
            vec![Box::new(Sleeper { slept: false })],
        );
        sm.place_block(
            KernelId::new(1),
            BlockId::new(3),
            vec![Box::new(Sleeper { slept: false })],
        );
        assert_eq!(sm.resident_blocks(), 2);
        for now in 0..20 {
            sm.tick(now, &clock, &mut fabric, &mut rec);
        }
        let done = sm.take_finished_blocks();
        assert_eq!(done.len(), 2);
        assert!(done.contains(&(KernelId::new(1), BlockId::new(3))));
    }
}
