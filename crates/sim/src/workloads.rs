//! Reusable synthetic kernels.
//!
//! These are the simulator-side equivalents of the paper's measurement
//! kernels: Algorithm 1's smid-gated streaming writer (used to reverse
//! engineer TPC/GPC membership), its read twin, a clock-dump kernel
//! (Fig 6), and a compute-only spinner (for the §6 overhead study).

use crate::kernel::{
    warp_addresses, AccessKind, KernelProgram, WarpContext, WarpProgram, WarpStep,
};
use gnc_common::ids::{BlockId, WarpId};
use gnc_common::GpuConfig;

/// Record tag: per-batch latency measured by a waiting stream warp.
pub const TAG_LATENCY: u32 = 1;
/// Record tag: the SM id observed by a block (one record per warp).
pub const TAG_SMID: u32 = 2;
/// Record tag: the 32-bit clock value read by a warp.
pub const TAG_CLOCK: u32 = 3;

/// Configuration of a [`StreamKernel`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Thread blocks in the grid.
    pub blocks: usize,
    /// Warps per block.
    pub warps_per_block: usize,
    /// Reads or writes.
    pub kind: AccessKind,
    /// Warp-wide memory instructions each active warp executes.
    pub batches: u32,
    /// Accesses per instruction (≤ SIMT width).
    pub requests_per_batch: u32,
    /// Uncoalesced (one line per access) or coalesced (one line total).
    pub uncoalesced: bool,
    /// Wait for replies each batch (receivers measure; senders may not).
    pub wait: bool,
    /// When `Some`, only warps whose block landed on one of these SM ids
    /// do the memory work; everyone else exits immediately — the
    /// Algorithm 1 `%smid` gate.
    pub target_sms: Option<Vec<usize>>,
    /// Emit a [`TAG_LATENCY`] record after every waited batch.
    pub record_latency: bool,
    /// Base byte address of the kernel's working set.
    pub base_addr: u64,
    /// Lines in each warp's private reuse region.
    pub region_lines: u64,
}

impl StreamConfig {
    /// A saturating uncoalesced writer in the paper's default shape:
    /// 32 uncoalesced requests per batch, fire-and-forget.
    pub fn writer(blocks: usize, warps: usize, batches: u32) -> Self {
        Self {
            blocks,
            warps_per_block: warps,
            kind: AccessKind::Write,
            batches,
            requests_per_batch: 32,
            uncoalesced: true,
            wait: false,
            target_sms: None,
            record_latency: false,
            base_addr: 0,
            region_lines: 96,
        }
    }

    /// A measuring reader: waits each batch and records the latency.
    pub fn reader(blocks: usize, warps: usize, batches: u32) -> Self {
        Self {
            kind: AccessKind::Read,
            wait: true,
            record_latency: true,
            ..Self::writer(blocks, warps, batches)
        }
    }
}

/// A streaming memory kernel (Algorithm 1 and friends).
#[derive(Debug, Clone)]
pub struct StreamKernel {
    config: StreamConfig,
    line_bytes: u64,
}

impl StreamKernel {
    /// Builds the kernel for a GPU configured as `gpu_cfg`.
    pub fn new(config: StreamConfig, gpu_cfg: &GpuConfig) -> Self {
        Self {
            config,
            line_bytes: u64::from(gpu_cfg.mem.line_bytes),
        }
    }

    /// The `(base, lines)` range to preload so every access is an L2 hit.
    pub fn working_set(&self) -> (u64, u64) {
        let warps = (self.config.blocks * self.config.warps_per_block) as u64;
        (self.config.base_addr, warps * self.config.region_lines)
    }

    /// The stream configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }
}

impl KernelProgram for StreamKernel {
    fn name(&self) -> &str {
        "stream"
    }

    fn num_blocks(&self) -> usize {
        self.config.blocks
    }

    fn warps_per_block(&self) -> usize {
        self.config.warps_per_block
    }

    fn create_warp(&self, block: BlockId, warp: WarpId) -> Box<dyn WarpProgram> {
        let warp_index = (block.index() * self.config.warps_per_block + warp.index()) as u64;
        let warp_base =
            self.config.base_addr + warp_index * self.config.region_lines * self.line_bytes;
        Box::new(StreamWarp {
            cfg: self.config.clone(),
            line_bytes: self.line_bytes,
            warp_base,
            issued: 0,
            gated: None,
            pending_latency_record: false,
        })
    }
}

struct StreamWarp {
    cfg: StreamConfig,
    line_bytes: u64,
    warp_base: u64,
    issued: u32,
    gated: Option<bool>,
    pending_latency_record: bool,
}

impl WarpProgram for StreamWarp {
    fn step(&mut self, ctx: &WarpContext) -> WarpStep {
        let active = *self
            .gated
            .get_or_insert_with(|| match &self.cfg.target_sms {
                Some(sms) => sms.contains(&ctx.sm.index()),
                None => true,
            });
        if !active {
            return WarpStep::Finish;
        }
        if self.pending_latency_record {
            self.pending_latency_record = false;
            return WarpStep::Record {
                tag: TAG_LATENCY,
                value: ctx.last_mem_latency,
            };
        }
        if self.issued >= self.cfg.batches {
            return WarpStep::Finish;
        }
        // Rotate the batch window through the warp's private region so
        // every access is a (preloaded) L2 hit on a fresh line.
        let span = u64::from(self.cfg.requests_per_batch);
        let offset_lines = (u64::from(self.issued) * span) % self.cfg.region_lines.max(1);
        let base = self.warp_base + offset_lines * self.line_bytes;
        self.issued += 1;
        self.pending_latency_record = self.cfg.wait && self.cfg.record_latency;
        WarpStep::Memory {
            kind: self.cfg.kind,
            addrs: warp_addresses(
                base,
                self.cfg.requests_per_batch,
                self.cfg.uncoalesced,
                self.line_bytes,
            ),
            wait: self.cfg.wait,
        }
    }
}

/// A kernel whose warps record their SM id and 32-bit clock, then exit —
/// the Fig 6 measurement kernel.
#[derive(Debug, Clone)]
pub struct ClockReadKernel {
    blocks: usize,
}

impl ClockReadKernel {
    /// One block per SM slot the caller wants sampled (launch with the SM
    /// count to cover the whole GPU).
    pub fn new(blocks: usize) -> Self {
        Self { blocks }
    }
}

impl KernelProgram for ClockReadKernel {
    fn name(&self) -> &str {
        "clock-read"
    }

    fn num_blocks(&self) -> usize {
        self.blocks
    }

    fn warps_per_block(&self) -> usize {
        1
    }

    fn create_warp(&self, _block: BlockId, _warp: WarpId) -> Box<dyn WarpProgram> {
        Box::new(ClockReadWarp { stage: 0 })
    }
}

struct ClockReadWarp {
    stage: u8,
}

impl WarpProgram for ClockReadWarp {
    fn step(&mut self, ctx: &WarpContext) -> WarpStep {
        match self.stage {
            0 => {
                self.stage = 1;
                WarpStep::Record {
                    tag: TAG_SMID,
                    value: ctx.sm.index() as u64,
                }
            }
            1 => {
                self.stage = 2;
                WarpStep::Record {
                    tag: TAG_CLOCK,
                    value: u64::from(ctx.clock32),
                }
            }
            _ => WarpStep::Finish,
        }
    }
}

/// A compute-only kernel: spins for a fixed cycle count without touching
/// memory. Used as the "compute-intensive workload" in the §6 SRR
/// overhead study (its performance must be arbitration-independent).
#[derive(Debug, Clone)]
pub struct ComputeKernel {
    blocks: usize,
    warps_per_block: usize,
    spin_cycles: u32,
}

impl ComputeKernel {
    /// Builds a spinner of `spin_cycles` per warp.
    pub fn new(blocks: usize, warps_per_block: usize, spin_cycles: u32) -> Self {
        Self {
            blocks,
            warps_per_block,
            spin_cycles,
        }
    }
}

impl KernelProgram for ComputeKernel {
    fn name(&self) -> &str {
        "compute"
    }

    fn num_blocks(&self) -> usize {
        self.blocks
    }

    fn warps_per_block(&self) -> usize {
        self.warps_per_block
    }

    fn create_warp(&self, _block: BlockId, _warp: WarpId) -> Box<dyn WarpProgram> {
        Box::new(SpinWarp {
            remaining: self.spin_cycles,
        })
    }
}

struct SpinWarp {
    remaining: u32,
}

impl WarpProgram for SpinWarp {
    fn step(&mut self, _ctx: &WarpContext) -> WarpStep {
        if self.remaining == 0 {
            WarpStep::Finish
        } else {
            let chunk = self.remaining.min(64);
            self.remaining -= chunk;
            WarpStep::Sleep(chunk)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::Gpu;
    use gnc_common::ids::StreamId;

    #[test]
    fn stream_kernel_working_set_covers_all_warps() {
        let cfg = GpuConfig::volta_v100();
        let k = StreamKernel::new(StreamConfig::writer(4, 2, 10), &cfg);
        let (base, lines) = k.working_set();
        assert_eq!(base, 0);
        assert_eq!(lines, 4 * 2 * 96);
    }

    #[test]
    fn clock_kernel_records_one_clock_per_block() {
        let cfg = GpuConfig::volta_v100();
        let mut gpu = Gpu::new(cfg).expect("valid");
        let k = gpu.launch(Box::new(ClockReadKernel::new(80)), StreamId::new(0));
        assert!(gpu.run_until_idle(10_000).is_idle());
        let clocks: Vec<_> = gpu
            .recorder()
            .for_kernel(k)
            .filter(|r| r.tag == TAG_CLOCK)
            .collect();
        assert_eq!(clocks.len(), 80);
        // TPC siblings read nearly identical values.
        let mut by_sm = vec![0u64; 80];
        for r in &clocks {
            by_sm[r.sm.index()] = r.value;
        }
        for t in 0..40 {
            let d = by_sm[2 * t].abs_diff(by_sm[2 * t + 1]);
            assert!(d <= 4, "TPC{t} clock skew {d} too large");
        }
    }

    #[test]
    fn gated_stream_kernel_only_runs_on_targets() {
        let cfg = GpuConfig::volta_v100();
        let mut gpu = Gpu::new(cfg.clone()).expect("valid");
        let mut sc = StreamConfig::reader(80, 1, 3);
        sc.target_sms = Some(vec![0, 5]);
        let kern = StreamKernel::new(sc, &cfg);
        let (base, lines) = kern.working_set();
        gpu.preload_range(base, lines);
        let k = gpu.launch(Box::new(kern), StreamId::new(0));
        assert!(gpu.run_until_idle(100_000).is_idle());
        let sms: std::collections::HashSet<usize> = gpu
            .recorder()
            .for_kernel(k)
            .filter(|r| r.tag == TAG_LATENCY)
            .map(|r| r.sm.index())
            .collect();
        assert_eq!(sms, [0usize, 5].into_iter().collect());
    }

    #[test]
    fn measuring_reader_latency_is_in_the_l2_hit_band() {
        let cfg = GpuConfig::volta_v100();
        let mut gpu = Gpu::new(cfg.clone()).expect("valid");
        let mut sc = StreamConfig::reader(1, 1, 5);
        sc.requests_per_batch = 1;
        let kern = StreamKernel::new(sc, &cfg);
        let (base, lines) = kern.working_set();
        gpu.preload_range(base, lines);
        let k = gpu.launch(Box::new(kern), StreamId::new(0));
        assert!(gpu.run_until_idle(100_000).is_idle());
        let lat: Vec<u64> = gpu
            .recorder()
            .for_kernel(k)
            .filter(|r| r.tag == TAG_LATENCY)
            .map(|r| r.value)
            .collect();
        assert_eq!(lat.len(), 5);
        // The paper quotes ~200–250 cycles for an L2 round trip; our
        // pipeline should land in that band for a single read.
        for &l in &lat {
            assert!((180..280).contains(&l), "latency {l} outside L2 band");
        }
    }

    #[test]
    fn compute_kernel_duration_scales_with_spin() {
        let cfg = GpuConfig::volta_v100();
        let run = |spin: u32| -> u64 {
            let mut gpu = Gpu::new(cfg.clone()).expect("valid");
            let k = gpu.launch(Box::new(ComputeKernel::new(2, 1, spin)), StreamId::new(0));
            assert!(gpu.run_until_idle(100_000).is_idle());
            let (s, e) = gpu.kernel_span(k);
            e.unwrap() - s.unwrap()
        };
        let short = run(100);
        let long = run(1000);
        assert!(long > short + 500, "spin scaling broken: {short} vs {long}");
    }

    #[test]
    fn writer_saturates_its_tpc_channel() {
        // A 1-block, 5-warp fire-and-forget writer should keep the TPC
        // request channel near 100% utilisation.
        let cfg = GpuConfig::volta_v100();
        let mut gpu = Gpu::new(cfg.clone()).expect("valid");
        let kern = StreamKernel::new(StreamConfig::writer(1, 5, 200), &cfg);
        let (base, lines) = kern.working_set();
        gpu.preload_range(base, lines);
        gpu.launch(Box::new(kern), StreamId::new(0));
        let outcome = gpu.run_until_idle(200_000);
        assert!(outcome.is_idle());
        // 5 warps × 200 batches × 32 packets × 2 flits (scattered 4-byte
        // stores) = 64_000 flit-cycles on a 1 flit/cycle channel: the run
        // must take at least that long, and saturation means barely
        // longer.
        let total = outcome.cycle();
        assert!(
            total >= 64_000,
            "writer finished impossibly fast: {total} cycles"
        );
        assert!(
            total < 72_000,
            "writer badly under-utilises the channel: {total} cycles"
        );
    }
}
