//! Diagnostic: print the blind GPC recovery for a given seed so
//! misclassifications can be inspected against the ground truth.
//!
//! ```text
//! cargo run --release --example diag_reverse -- 21
//! ```

use gpu_noc_covert::common::ids::GpcId;
use gpu_noc_covert::common::GpuConfig;
use gpu_noc_covert::covert::reverse::recover_mapping;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(21);
    let cfg = GpuConfig::volta_v100();
    let mapping = recover_mapping(&cfg, 400, 10, seed);
    println!("seed {seed}:");
    for (i, g) in mapping.groups.iter().enumerate() {
        let tpcs: Vec<usize> = g.iter().map(|t| t.index()).collect();
        println!("  recovered group {i}: {tpcs:?}");
    }
    println!("ground truth:");
    for g in 0..cfg.num_gpcs {
        let tpcs: Vec<usize> = cfg
            .tpcs_of_gpc(GpcId::new(g))
            .iter()
            .map(|t| t.index())
            .collect();
        println!("  GPC{g}: {tpcs:?}");
    }
    println!("match: {}", mapping.matches_ground_truth(&cfg));
}
