//! Diagnostic: dump adaptive-decode behaviour under each fault preset.
//!
//! ```text
//! cargo run --release --example diag_robust [preset] [seed]
//! ```

use gnc_common::bits::BitVec;
use gnc_common::fault::{FaultConfig, FaultPlan};
use gnc_common::fec::{fec_decode_symbols, fec_encode, FecSymbol};
use gnc_common::GpuConfig;
use gnc_covert::channel::ChannelPlan;
use gnc_covert::protocol::ProtocolConfig;
use gnc_covert::robust::{adaptive_decode, RobustOptions};

fn main() {
    let mut args = std::env::args().skip(1);
    let preset = args.next().unwrap_or_else(|| "mild".into());
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let cfg = GpuConfig::volta_v100();
    let plan = ChannelPlan::tpc(&cfg, ProtocolConfig::tpc(4), &[0]);
    let payload = BitVec::from_bytes(b"n");
    let crc = gnc_covert::robust::crc16(&payload);
    let mut frame = payload.clone();
    for i in (0..16).rev() {
        frame.push(crc & (1 << i) != 0);
    }
    let coded = fec_encode(&frame);

    let fault_cfg = FaultConfig::parse(&preset).unwrap().with_seed(seed);
    let fault_plan = FaultPlan::new(fault_cfg);
    let (report, traces) = plan.transmit_with_faults(&cfg, &coded, seed, &fault_plan);
    println!(
        "naive: {} raw errors / {} bits, outcome {:?}",
        report.errors,
        coded.len(),
        report.outcome
    );
    println!("fault stats: {:?}", fault_plan.stats());

    let opts = RobustOptions::default();
    for trace in &traces {
        let out = adaptive_decode(trace, plan.protocol().preamble_bits, &opts);
        println!(
            "trace {}: {} samples (expected {}), dup {}, missing {}, erasures {}, resync {}",
            trace.label,
            trace.samples.len(),
            trace.expected_samples,
            out.duplicates,
            out.missing,
            out.erasures,
            out.resynchronized
        );
        println!("  thresholds: {:?}", out.thresholds);
        let sent = &trace.chunk;
        let mut wrong = 0;
        for (i, (sym, bit)) in out.symbols.iter().zip(sent).enumerate() {
            let tag = i + plan.protocol().preamble_bits;
            let sample = trace
                .samples
                .iter()
                .find(|(t, _)| *t as usize == tag)
                .map(|(_, v)| *v);
            let mark = match (sym, bit) {
                (FecSymbol::Erased, _) => "ERASED",
                (FecSymbol::One, true) | (FecSymbol::Zero, false) => "",
                _ => {
                    wrong += 1;
                    "WRONG"
                }
            };
            if !mark.is_empty() {
                println!("  slot {tag}: sent {bit}, sample {sample:?}, sym {sym:?} {mark}");
            }
        }
        println!("  hard symbol errors: {wrong}");
        let fec = fec_decode_symbols(&out.symbols, frame.len());
        println!(
            "  fec: corrected {}, truncated {}, erased_bits {}, payload errors {}",
            fec.corrected_blocks,
            fec.truncated_blocks,
            fec.erased_bits,
            fec.payload
                .iter()
                .zip(frame.iter())
                .filter(|(a, b)| a != b)
                .count()
        );
    }
}
