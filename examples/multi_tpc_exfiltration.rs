//! The paper's headline configuration: stripe a payload across all 40
//! TPC channels in parallel and reach tens of Mbps of covert bandwidth
//! (§4.4, Fig 10(b)).
//!
//! ```text
//! cargo run --release --example multi_tpc_exfiltration
//! ```

use gpu_noc_covert::common::bits::BitVec;
use gpu_noc_covert::common::rng::experiment_rng;
use gpu_noc_covert::common::GpuConfig;
use gpu_noc_covert::covert::channel::ChannelPlan;
use gpu_noc_covert::covert::protocol::ProtocolConfig;

fn main() {
    let cfg = GpuConfig::volta_v100();

    // 5 iterations per bit: the multi-TPC operating point the paper
    // needs for negligible error at ~24 Mbps (Fig 10(b)). The plan
    // doubles the slot for the shared reply path.
    let plan = ChannelPlan::multi_tpc(&cfg, ProtocolConfig::tpc(5));
    println!(
        "40 parallel TPC channels, T = {} cycles/bit -> theoretical {:.1} Mbps aggregate",
        plan.protocol().slot_cycles,
        plan.protocol().bits_per_second(&cfg) * 40.0 / 1e6
    );

    // A 4000-bit random payload (100 bits per channel).
    let mut rng = experiment_rng("exfiltration-demo", 0);
    let payload = BitVec::random(&mut rng, 4000);
    let report = plan.transmit(&cfg, &payload, 7);

    println!(
        "payload {} bits | errors {} ({:.4} %)",
        report.sent.len(),
        report.errors,
        report.error_rate * 100.0
    );
    println!(
        "measured aggregate bandwidth: {:.2} Mbps over a {}-cycle window",
        report.bandwidth_bps / 1e6,
        report.elapsed_cycles
    );
    let worst = report
        .per_channel
        .iter()
        .max_by_key(|c| c.errors)
        .expect("40 channels");
    println!(
        "worst channel: {} with {} errors (threshold {:.0} cycles)",
        worst.label, worst.errors, worst.threshold
    );
    assert!(report.error_rate < 0.01, "error rate too high");
    assert!(
        report.bandwidth_bps > 15e6,
        "aggregate bandwidth below the paper's order of magnitude"
    );
}
