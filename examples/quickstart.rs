//! Quickstart: exfiltrate a short message over one TPC covert channel.
//!
//! The trojan (sender) occupies SM0, the spy (receiver) SM1 — the two
//! SMs of TPC0, co-located by the §4.3 block-scheduler behaviour. Run
//! with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpu_noc_covert::common::bits::BitVec;
use gpu_noc_covert::common::GpuConfig;
use gpu_noc_covert::covert::channel::ChannelPlan;
use gpu_noc_covert::covert::protocol::ProtocolConfig;

fn main() {
    let cfg = GpuConfig::volta_v100();
    let secret = b"NOC COVERT CHANNEL";
    let payload = BitVec::from_bytes(secret);

    // 4 iterations per bit: the paper's near-zero-error operating point
    // for a single TPC channel (Fig 10a).
    let proto = ProtocolConfig::tpc(4);
    println!(
        "protocol: T = {} cycles/bit, {} iterations, raw rate {:.2} kbps per channel",
        proto.slot_cycles,
        proto.iterations,
        proto.bits_per_second(&cfg) / 1000.0
    );

    let plan = ChannelPlan::tpc(&cfg, proto, &[0]);
    let report = plan.transmit(&cfg, &payload, 42);

    let received = report.received.to_bytes();
    println!("sent     : {:?}", String::from_utf8_lossy(secret));
    println!("received : {:?}", String::from_utf8_lossy(&received));
    println!(
        "bits {} | errors {} ({:.3} %) | goodput {:.2} kbps | window {} cycles",
        report.sent.len(),
        report.errors,
        report.error_rate * 100.0,
        report.bandwidth_bps / 1000.0,
        report.elapsed_cycles,
    );
    assert_eq!(received, secret, "transmission corrupted");
    println!("message recovered exactly — the interconnect leaks.");
}
