//! Run the channel fast-and-noisy, recover reliability in software.
//!
//! The paper trades bandwidth for error rate through the iteration count
//! (Fig 10). A real exfiltration tool instead picks a faster, noisier
//! operating point (2 iterations instead of 4: double the slot rate, a
//! few percent raw error) and wraps the payload in forward error
//! correction — the classic coding-layer answer.
//!
//! ```text
//! cargo run --release --example reliable_exfiltration
//! ```

use gpu_noc_covert::common::bits::BitVec;
use gpu_noc_covert::common::fec::{fec_decode, fec_encode, FEC_RATE};
use gpu_noc_covert::common::GpuConfig;
use gpu_noc_covert::covert::channel::ChannelPlan;
use gpu_noc_covert::covert::protocol::ProtocolConfig;

fn main() {
    let cfg = GpuConfig::volta_v100();
    let secret = b"FAST&NOISY";
    let payload = BitVec::from_bytes(secret);

    // 2 iterations per bit: roughly twice the k=4 bandwidth, with a
    // noticeable raw error rate.
    let proto = ProtocolConfig::tpc(2);
    let plan = ChannelPlan::tpc(&cfg, proto.clone(), &[0]);
    println!(
        "noisy operating point: k=2, raw rate {:.2} kbps",
        proto.bits_per_second(&cfg) / 1000.0
    );

    // Unprotected run.
    let raw = plan.transmit(&cfg, &payload, 11);
    println!(
        "unprotected: {} errors in {} bits ({:.2} %)",
        raw.errors,
        raw.sent.len(),
        raw.error_rate * 100.0
    );

    // Protected run: Hamming(7,4) over the same channel.
    let coded = fec_encode(&payload);
    let coded_report = plan.transmit(&cfg, &coded, 12);
    let decoded = fec_decode(&coded_report.received, payload.len());
    println!(
        "protected  : channel carried {} coded bits ({} flipped), FEC corrected {} blocks",
        coded.len(),
        coded_report.errors,
        decoded.corrected_blocks
    );
    let recovered = decoded.payload.to_bytes();
    println!(
        "recovered  : {:?} (goodput {:.2} kbps at rate {:.2})",
        String::from_utf8_lossy(&recovered),
        proto.bits_per_second(&cfg) * FEC_RATE / 1000.0,
        FEC_RATE
    );
    assert_eq!(recovered, secret, "FEC failed to recover the payload");
    println!("byte-exact recovery over a noisy channel.");
}
