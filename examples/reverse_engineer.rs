//! Reverse-engineer the GPU's on-chip network blind, as §3 does on real
//! silicon: recover the SM pairing (Fig 2), then the full TPC→GPC
//! mapping (Figs 3–4), and verify against the simulator's ground truth
//! only at the end.
//!
//! ```text
//! cargo run --release --example reverse_engineer
//! ```

use gpu_noc_covert::common::ids::GpcId;
use gpu_noc_covert::common::GpuConfig;
use gpu_noc_covert::covert::reverse::{recover_mapping, sibling_from_sweep, tpc_pairing_sweep};

fn main() {
    let cfg = GpuConfig::volta_v100();

    // --- Fig 2: which SM shares SM0's injection channel? -------------
    println!("== TPC channel discovery (Fig 2) ==");
    let sweep = tpc_pairing_sweep(&cfg, 0, 40, 0);
    for point in sweep.iter().take(6) {
        println!(
            "  SM0 + SM{:<2}  -> normalized exec {:.2}",
            point.other_sm, point.normalized
        );
    }
    let sibling = sibling_from_sweep(&sweep).expect("a unique sibling should emerge");
    println!("  => SM0's TPC sibling is SM{sibling} (2x slowdown)\n");

    // --- Figs 3-4: which TPCs share each GPC channel? -----------------
    println!("== GPC membership recovery (Figs 3-4, two-phase) ==");
    let mapping = recover_mapping(&cfg, 400, 10, 0);
    for (g, group) in mapping.groups.iter().enumerate() {
        let ids: Vec<usize> = group.iter().map(|t| t.index()).collect();
        println!("  recovered group {g}: TPCs {ids:?}");
    }

    // --- Verify against ground truth (the recovery never read it). ----
    let ok = mapping.matches_ground_truth(&cfg);
    println!(
        "\nground-truth check: {}",
        if ok { "EXACT MATCH" } else { "MISMATCH" }
    );
    for g in 0..cfg.num_gpcs {
        let truth: Vec<usize> = cfg
            .tpcs_of_gpc(GpcId::new(g))
            .iter()
            .map(|t| t.index())
            .collect();
        println!("  ground truth GPC{g}: {truth:?}");
    }
    assert!(ok, "recovered mapping does not match ground truth");
}
