//! The §6 countermeasure study: compare RR / CRR / SRR / age-based
//! arbitration (Fig 15), show strict round-robin kills the covert
//! channel end-to-end, and quantify its performance cost.
//!
//! ```text
//! cargo run --release --example secure_arbitration
//! ```

use gpu_noc_covert::common::config::Arbitration;
use gpu_noc_covert::common::GpuConfig;
use gpu_noc_covert::covert::countermeasure::{
    arbitration_sweep, channel_error_under, srr_overhead,
};

fn main() {
    let cfg = GpuConfig::volta_v100();
    let fractions = [0.0, 0.25, 0.5, 0.75, 1.0];

    println!("== Fig 15: SM0 slowdown vs SM1 traffic fraction ==");
    let sweep = arbitration_sweep(&cfg, &Arbitration::ALL, &fractions, 40, 0);
    print!("{:>10}", "fraction");
    for f in &fractions {
        print!("{f:>8.2}");
    }
    println!();
    for (policy, points) in &sweep.curves {
        print!("{:>10}", policy.label());
        print!("{:>8.2}", 1.0); // each curve normalised at f = 0
        for p in points.iter().filter(|p| p.fraction > 0.0) {
            print!("{:>8.2}", p.normalized);
        }
        println!();
    }

    println!("\n== End-to-end covert channel error rate by arbitration ==");
    for policy in Arbitration::ALL {
        let err = channel_error_under(&cfg, policy, 48, 1);
        println!(
            "  {:<4} -> {:>6.2} % {}",
            policy.label(),
            err * 100.0,
            if err > 0.3 {
                "(channel dead)"
            } else {
                "(channel alive)"
            }
        );
    }

    println!("\n== SRR performance cost (paper: up to ~60 % on memory-bound) ==");
    let cost = srr_overhead(&cfg, 60, 2);
    println!(
        "  memory-intensive : {:.2}x slower ({:.0} % performance loss)",
        cost.memory_intensive_slowdown,
        (1.0 - 1.0 / cost.memory_intensive_slowdown) * 100.0
    );
    println!(
        "  compute-intensive: {:.2}x slower (negligible)",
        cost.compute_intensive_slowdown
    );
}
