//! The §5 side-channel sketch: a spy meters a victim's L2 access
//! intensity purely through NoC contention, with zero cooperation.
//!
//! The victim (think: an AES kernel whose table-lookup rate depends on
//! key-dependent data) runs phases of varying memory intensity on SM0;
//! the spy, co-located on SM1 by the block scheduler, samples its own
//! L2 latency once per slot and recovers the victim's activity profile.
//!
//! ```text
//! cargo run --release --example side_channel
//! ```

use gpu_noc_covert::common::GpuConfig;
use gpu_noc_covert::covert::sidechannel::spy_on_victim;

fn main() {
    let cfg = GpuConfig::volta_v100();
    // The victim's secret activity profile (L2 store accesses per slot).
    let secret_profile = [0u32, 28, 8, 20, 0, 12, 32, 4];
    println!("victim's secret activity profile: {secret_profile:?}\n");

    let report = spy_on_victim(&cfg, &secret_profile, 7);

    println!("spy's per-phase mean latency (no cooperation, sibling SM only):");
    for (i, phase) in report.phases.iter().enumerate() {
        let bar = "#".repeat(((phase.observed_latency - 250.0) / 8.0).max(0.0) as usize);
        println!(
            "  phase {i}: true intensity {} -> observed {:>6.1} cycles  {bar}",
            phase.true_intensity, phase.observed_latency
        );
    }
    println!(
        "\nPearson correlation (true intensity vs observed latency): {:.3}",
        report.correlation
    );
    assert!(
        report.correlation > 0.9,
        "the paper's 'linear correlation' claim should hold"
    );
    println!("the interconnect leaks the victim's memory behaviour.");
}
