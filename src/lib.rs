//! `gpu-noc-covert` — a from-scratch Rust reproduction of
//! *Network-on-Chip Microarchitecture-based Covert Channel in GPUs*
//! (MICRO 2021).
//!
//! This umbrella crate re-exports the workspace layers:
//!
//! * [`common`] — identifiers, the Table-1 GPU configuration, statistics
//!   and bit utilities.
//! * [`noc`] — the hierarchical on-chip network: concentrating muxes,
//!   arbiters (RR / CRR / SRR / age-based), crossbar, request and reply
//!   fabrics.
//! * [`mem`] — banked L2 slices with MSHRs over an HBM2-style DRAM
//!   timing model.
//! * [`sim`] — the cycle-level GPU engine: SMs, warps, coalescing, clock
//!   registers, the §4.3 block scheduler, streams.
//! * [`covert`] — the paper's contribution: NoC reverse engineering,
//!   clock synchronization, the TPC/GPC covert channels, multi-level
//!   encoding, and the secure-arbitration countermeasure.
//!
//! # Quickstart
//!
//! ```
//! use gpu_noc_covert::common::bits::BitVec;
//! use gpu_noc_covert::common::GpuConfig;
//! use gpu_noc_covert::covert::channel::ChannelPlan;
//! use gpu_noc_covert::covert::protocol::ProtocolConfig;
//!
//! let cfg = GpuConfig::volta_v100();
//! let plan = ChannelPlan::tpc(&cfg, ProtocolConfig::tpc(4), &[0]);
//! let report = plan.transmit(&cfg, &BitVec::from_bytes(b"hi"), 0);
//! assert!(report.error_rate < 0.05);
//! ```

pub use gnc_common as common;
pub use gnc_covert as covert;
pub use gnc_mem as mem;
pub use gnc_noc as noc;
pub use gnc_sim as sim;
