//! Allocation audits: the engine's zero-alloc steady-state contract,
//! enforced with a counting global allocator.
//!
//! Two contracts are gated here:
//!
//! 1. **Zero heap operations per steady-state cycle.** The three hot
//!    component loops of `benches/engine_hot_paths.rs` — a saturated
//!    concentrator mux, a spread crossbar, and an L2 slice streaming
//!    misses — must perform *no* allocator calls once warmed up: every
//!    queue, arena slot, delay line, and MSHR waiter list is recycled.
//! 2. **Bounded per-trial allocations under reset-reuse.** A pooled
//!    sweep trial (`gnc_sim::with_pooled_gpu` + `Gpu::reset`) must
//!    allocate a small fraction of what a fresh construction does —
//!    the reset path recycles the machine instead of rebuilding it.
//!
//! The counters only exist when the `alloc-audit` feature installs the
//! counting allocator, and they are process-wide, so CI runs this suite
//! as:
//!
//! ```text
//! cargo test --release --features alloc-audit --test alloc_audit -- --test-threads=1
//! ```
//!
//! Without the feature the loops still run (keeping the test compiled
//! and honest) but the allocation assertions are skipped.

use gpu_noc_covert::common::alloc_audit;
use gpu_noc_covert::common::bits::BitVec;
use gpu_noc_covert::common::config::{Arbitration, NocConfig};
use gpu_noc_covert::common::ids::{SliceId, SmId, WarpId};
use gpu_noc_covert::common::GpuConfig;
use gpu_noc_covert::covert::channel::ChannelPlan;
use gpu_noc_covert::covert::protocol::ProtocolConfig;
use gpu_noc_covert::mem::dram::DramController;
use gpu_noc_covert::mem::l2::L2Slice;
use gpu_noc_covert::noc::crossbar::Crossbar;
use gpu_noc_covert::noc::mux::ConcentratorMux;
use gpu_noc_covert::noc::packet::{Packet, PacketId, PacketKind};

fn packet(id: u64, input: usize, slice: usize, kind: PacketKind, now: u64) -> Packet {
    Packet {
        id: PacketId(id),
        kind,
        sm: SmId::new(input),
        warp: WarpId::new(0),
        slice: SliceId::new(slice),
        addr: id * 128,
        data_bytes: 32,
        injected_at: now,
        group: id,
    }
}

/// Asserts `measured` performed zero heap operations, with a useful
/// message; a no-op when the audit allocator is not installed.
fn assert_zero_alloc(what: &str, delta: alloc_audit::AllocCounts) {
    if !alloc_audit::is_active() {
        eprintln!("alloc-audit feature off; skipping zero-alloc assertion for {what}");
        return;
    }
    assert_eq!(
        delta.total_ops(),
        0,
        "{what} steady state must be allocation-free, saw {delta:?}"
    );
}

#[test]
fn mux_steady_state_is_allocation_free() {
    let noc = NocConfig::default();
    let mut mux = ConcentratorMux::new(2, 1, 2, 8, Arbitration::RoundRobin, &noc);
    let mut next = 0u64;
    let mut delivered = 0u64;
    let mut drive = |mux: &mut ConcentratorMux, span: std::ops::Range<u64>| {
        for now in span {
            for input in 0..2 {
                if mux.can_accept(input) {
                    let p = packet(next, input, 0, PacketKind::WriteRequest, now);
                    if mux.try_push(input, p).is_ok() {
                        next += 1;
                    }
                }
            }
            mux.tick(now);
            while mux.pop_delivered(now).is_some() {
                delivered += 1;
            }
        }
    };
    // Warm-up: queues, arena, and delay lines reach their high-water mark.
    drive(&mut mux, 0..2_000);
    let ((), delta) = alloc_audit::allocation_delta(|| drive(&mut mux, 2_000..12_000));
    assert!(delivered > 0, "mux must actually move traffic");
    assert_zero_alloc("concentrator mux", delta);
}

#[test]
fn crossbar_steady_state_is_allocation_free() {
    let noc = NocConfig::default();
    let mut xbar = Crossbar::new(6, 8, 1, 2, 8, Arbitration::RoundRobin, &noc);
    let mut next = 0u64;
    let mut delivered = 0u64;
    let mut drive = |xbar: &mut Crossbar, span: std::ops::Range<u64>| {
        for now in span {
            for input in 0..6 {
                let output = (next % 8) as usize;
                if xbar.can_accept(input, output) {
                    let p = packet(next, input, output, PacketKind::ReadRequest, now);
                    if xbar.try_push(input, output, p).is_ok() {
                        next += 1;
                    }
                }
            }
            xbar.tick(now);
            for output in 0..8 {
                while xbar.pop_delivered(output, now).is_some() {
                    delivered += 1;
                }
            }
        }
    };
    drive(&mut xbar, 0..2_000);
    let ((), delta) = alloc_audit::allocation_delta(|| drive(&mut xbar, 2_000..12_000));
    assert!(delivered > 0, "crossbar must actually move traffic");
    assert_zero_alloc("crossbar", delta);
}

#[test]
fn l2_miss_stream_steady_state_is_allocation_free() {
    let cfg = GpuConfig::volta_v100();
    let mut slice = L2Slice::new(SliceId::new(0), &cfg);
    let mut dram = DramController::new(&cfg.mem);
    let mut next = 0u64;
    let mut replies = 0u64;
    let mut drive = |slice: &mut L2Slice, dram: &mut DramController, span: std::ops::Range<u64>| {
        for now in span {
            // Bounded outstanding requests, like the LSU that feeds the
            // real slice: unbounded injection would grow the lookup
            // pipeline's queue without limit, which is not a steady
            // state. Addresses stride a whole slice set apart so every
            // access misses and allocates (then recycles) an MSHR.
            if next - replies < 48 {
                let p = Packet {
                    addr: next * 128 * 48,
                    ..packet(next, 0, 0, PacketKind::ReadRequest, now)
                };
                slice.push_request(p, now);
                next += 1;
            }
            slice.tick(now, dram);
            while slice.pop_reply().is_some() {
                replies += 1;
            }
        }
    };
    // Long warm-up: the L2 sets fill, the MSHR map and fill queues reach
    // their steady occupancy, and the waiter-Vec pool is primed.
    drive(&mut slice, &mut dram, 0..20_000);
    let ((), delta) =
        alloc_audit::allocation_delta(|| drive(&mut slice, &mut dram, 20_000..40_000));
    assert!(replies > 0, "L2 slice must actually serve misses");
    assert_zero_alloc("L2 miss stream", delta);
}

#[test]
fn reset_reuse_trials_have_bounded_allocation_budget() {
    let cfg = GpuConfig::volta_v100();
    let plan = ChannelPlan::tpc(&cfg, ProtocolConfig::tpc(4), &[0]);
    let payload = BitVec::from_bytes(b"au");

    // Trial 0 constructs the machine (cold pool on this thread).
    let (report, build_delta) =
        alloc_audit::allocation_delta(|| plan.transmit(&cfg, &payload, 1000));
    assert_eq!(report.errors, 0);

    // Trials 1..: the pooled machine is reset in place. Each must cost a
    // small fraction of construction.
    let mut worst_reset = alloc_audit::AllocCounts::default();
    for seed in 1001..1006u64 {
        let (report, delta) = alloc_audit::allocation_delta(|| plan.transmit(&cfg, &payload, seed));
        assert_eq!(report.errors, 0, "seed {seed}");
        if delta.total_ops() > worst_reset.total_ops() {
            worst_reset = delta;
        }
    }

    if !alloc_audit::is_active() {
        eprintln!("alloc-audit feature off; skipping per-trial budget assertion");
        return;
    }
    eprintln!(
        "construction trial: {} heap ops / {} bytes; worst reset trial: {} heap ops / {} bytes",
        build_delta.total_ops(),
        build_delta.bytes,
        worst_reset.total_ops(),
        worst_reset.bytes
    );
    assert!(
        build_delta.total_ops() > 0,
        "construction must show up in the audit"
    );
    // The budget: a reset trial may allocate (kernel/warp bring-up is per
    // trial) but must stay well under construction cost — the machine's
    // queues, arenas, calendars, and cache arrays are all recycled.
    assert!(
        worst_reset.total_ops() * 4 <= build_delta.total_ops(),
        "reset trial heap ops ({}) must be <= 1/4 of construction ({})",
        worst_reset.total_ops(),
        build_delta.total_ops()
    );
}
